// Micro-benchmarks of the communication substrate (google-benchmark):
// wall-clock cost of the shared-memory collectives and the cost-model
// evaluation itself, across group sizes and payloads. These measure the
// *simulator*, complementing the figure benches that report modeled time.
#include <benchmark/benchmark.h>

#include <vector>

#include "comm/runtime.hpp"

namespace hc = hpcg::comm;

namespace {

void BM_AllReduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto count = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                     [&](hc::Comm& comm) {
      std::vector<double> data(count, comm.rank());
      for (int i = 0; i < 8; ++i) {
        comm.allreduce(std::span(data), hc::ReduceOp::kSum);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 8 * count * p);
}
BENCHMARK(BM_AllReduce)->Args({4, 1024})->Args({16, 1024})->Args({16, 65536});

void BM_AllGatherv(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto count = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                     [&](hc::Comm& comm) {
      std::vector<std::int64_t> data(count, comm.rank());
      for (int i = 0; i < 8; ++i) {
        auto out = comm.allgatherv(std::span<const std::int64_t>(data));
        benchmark::DoNotOptimize(out.data());
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 8 * count * p);
}
BENCHMARK(BM_AllGatherv)->Args({4, 1024})->Args({16, 4096});

void BM_Alltoallv(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto per_dest = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                     [&](hc::Comm& comm) {
      std::vector<std::size_t> counts(static_cast<std::size_t>(p), per_dest);
      std::vector<std::int64_t> data(per_dest * static_cast<std::size_t>(p), 7);
      for (int i = 0; i < 8; ++i) {
        auto out = comm.alltoallv(std::span<const std::int64_t>(data),
                                  std::span<const std::size_t>(counts));
        benchmark::DoNotOptimize(out.data());
      }
    });
  }
}
BENCHMARK(BM_Alltoallv)->Args({4, 512})->Args({16, 512});

void BM_IAllReduce(benchmark::State& state) {
  // Nonblocking issue+wait with no interleaved compute: measures the
  // request machinery's wall-clock overhead relative to BM_AllReduce.
  const int p = static_cast<int>(state.range(0));
  const auto count = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                     [&](hc::Comm& comm) {
      std::vector<double> data(count, comm.rank());
      for (int i = 0; i < 8; ++i) {
        auto req = comm.iallreduce(std::span(data), hc::ReduceOp::kSum);
        req.wait();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 8 * count * p);
}
BENCHMARK(BM_IAllReduce)->Args({4, 1024})->Args({16, 1024})->Args({16, 65536});

void BM_IAllGathervPipelined(benchmark::State& state) {
  // Two requests in flight, double-buffered: the chunked sparse-exchange
  // issue pattern.
  const int p = static_cast<int>(state.range(0));
  const auto count = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                     [&](hc::Comm& comm) {
      std::vector<std::int64_t> data(count, comm.rank());
      std::vector<std::int64_t> out[2];
      hc::Request reqs[2];
      constexpr int kChunks = 8;
      reqs[0] = comm.iallgatherv(std::span<const std::int64_t>(data), out[0]);
      for (int k = 0; k < kChunks; ++k) {
        if (k + 1 < kChunks) {
          reqs[(k + 1) & 1] =
              comm.iallgatherv(std::span<const std::int64_t>(data), out[(k + 1) & 1]);
        }
        reqs[k & 1].wait();
        benchmark::DoNotOptimize(out[k & 1].data());
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 8 * count * p);
}
BENCHMARK(BM_IAllGathervPipelined)->Args({4, 1024})->Args({16, 4096});

void BM_RankLaunchOverhead(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                     [](hc::Comm& comm) { comm.barrier(); });
  }
}
BENCHMARK(BM_RankLaunchOverhead)->Arg(4)->Arg(64)->Arg(256);

void BM_CostModelEvaluation(benchmark::State& state) {
  const auto topo = hc::Topology::aimos(256);
  const hc::CostModel cost;
  std::vector<int> members(256);
  for (int i = 0; i < 256; ++i) members[static_cast<std::size_t>(i)] = i;
  const auto link = hc::make_group_link(topo, members.data(), 256);
  double acc = 0.0;
  for (auto _ : state) {
    acc += cost.allreduce(link, 1 << 20);
    acc += cost.broadcast(link, 1 << 20);
    acc += cost.allgather(link, 1 << 20);
    acc += cost.alltoallv(link, 1 << 20);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CostModelEvaluation);

}  // namespace

BENCHMARK_MAIN();

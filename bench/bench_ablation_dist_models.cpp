// Distribution-model comparison: 1D vs 1.5D vs 2D on a skewed input as
// rank count grows — the lineage the paper's introduction walks through
// (1D's owner imbalance and O(p^2) messages; 1.5D's heavy-vertex sharing
// fixing balance but not message scaling; 2D fixing both). Not a paper
// figure; the supporting experiment for DESIGN.md's background claims.
#include "algos/cc.hpp"
#include "baselines/dist15d.hpp"
#include "baselines/dist1d.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hbl = hpcg::baselines;
namespace hc = hpcg::core;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const auto ranks = options.get_int_list("ranks", {4, 16, 64});
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("Distribution models",
             "CC under 1D vs 1.5D vs 2D distributions (extension experiment)");

  // Random vertex permutation first: RMAT's bit-self-similar skew defeats
  // striping (see bench_ablation_distribution), and the model comparison
  // should not be confounded by that input quirk.
  auto el = hb::load("tw-mini", shift);
  hpcg::graph::randomize_ids(el, 99);
  hpcg::util::Table table(
      {"model", "ranks", "total_s", "comm_s", "messages", "max_edges/rank"});

  for (const auto p : ranks) {
    const auto topo = hb::bench_topology(static_cast<int>(p), alpha);
    const auto cost = hb::bench_cost(alpha);

    {
      const auto parts = hbl::Partitioned1D::build(el, static_cast<int>(p));
      std::int64_t max_edges = 0;
      for (int r = 0; r < p; ++r) {
        max_edges = std::max(max_edges,
                             static_cast<std::int64_t>(parts.edges_of(r).size()));
      }
      auto stats = hpcg::comm::Runtime::run(
          static_cast<int>(p), topo, cost, hpcg::comm::RunOptions{},
          [&](hpcg::comm::Comm& comm) {
            hbl::Dist1DGraph g(comm, parts);
            comm.reset_clocks();
            hbl::connected_components_1d(g);
          });
      const auto t = hb::to_times(stats);
      table.row() << "1D" << p << t.total << t.comm
                  << static_cast<std::int64_t>(t.messages) << max_edges;
    }
    {
      const auto parts = hbl::Partitioned15D::build(el, static_cast<int>(p));
      std::int64_t max_edges = 0;
      for (int r = 0; r < p; ++r) {
        max_edges = std::max(max_edges,
                             static_cast<std::int64_t>(parts.edges_of(r).size()));
      }
      auto stats = hpcg::comm::Runtime::run(
          static_cast<int>(p), topo, cost, hpcg::comm::RunOptions{},
          [&](hpcg::comm::Comm& comm) {
            hbl::Dist15DGraph g(comm, parts);
            comm.reset_clocks();
            hbl::connected_components_15d(g);
          });
      const auto t = hb::to_times(stats);
      table.row() << "1.5D" << p << t.total << t.comm
                  << static_cast<std::int64_t>(t.messages) << max_edges;
    }
    {
      const auto grid = hc::Grid::squarest(static_cast<int>(p));
      const auto parts = hc::Partitioned2D::build(el, grid);
      std::int64_t max_edges = 0;
      for (int r = 0; r < p; ++r) {
        max_edges = std::max(max_edges,
                             static_cast<std::int64_t>(parts.edges_of(r).size()));
      }
      const auto t = hb::run_parts(parts, topo, cost, [](hc::Dist2DGraph& g) {
        ha::connected_components(g, ha::CcOptions::all_push());
      });
      table.row() << "2D" << p << t.total << t.comm
                  << static_cast<std::int64_t>(t.messages) << max_edges;
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

// Figure 6 reproduction: the effect of the communication/workload
// strategies on color-propagation CC — Base (pull, dense, no queue),
// +SP (always-sparse), +SP+SW (dense->sparse switching), +SP+SW+VQ
// (vertex queues), +All+Push. The paper observes differences of an order
// of magnitude, consistent across inputs and shared by the other
// queue/sparse-using algorithms (§5.4).
#include "algos/cc.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hc = hpcg::core;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const int p = static_cast<int>(options.get_int("ranks", 64));
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("Figure 6", "CC optimization ablation (Base .. +All+Push)");

  const struct {
    const char* name;
    ha::CcOptions options;
  } variants[] = {
      {"Base", ha::CcOptions::base()},
      {"+SP", ha::CcOptions::sp()},
      {"+SP+SW", ha::CcOptions::sp_sw()},
      {"+SP+SW+VQ", ha::CcOptions::sp_sw_vq()},
      {"+All+Push", ha::CcOptions::all_push()},
  };

  hpcg::util::Table table({"graph", "variant", "ranks", "total_s", "comm_s",
                           "bytes", "iters(dense/sparse)", "x_vs_base"});
  for (const std::string name : {"cw-deep", "wdc-deep"}) {
    const auto el = hb::load(name, shift);
    const auto grid = hc::Grid::squarest(p);
    const auto parts = hc::Partitioned2D::build(el, grid);
    const auto topo = hb::bench_topology(grid.ranks(), alpha);
    double base_time = 0.0;
    for (const auto& variant : variants) {
      int dense_iters = 0;
      int sparse_iters = 0;
      const auto times = hb::run_parts(parts, topo, hb::bench_cost(alpha),
                                       [&](hc::Dist2DGraph& g) {
        const auto result = ha::connected_components(g, variant.options);
        if (g.world().rank() == 0) {
          dense_iters = result.dense_iterations;
          sparse_iters = result.sparse_iterations;
        }
      });
      if (base_time == 0.0) base_time = times.total;
      table.row() << name << variant.name << p << times.total << times.comm
                  << static_cast<std::int64_t>(times.bytes)
                  << (std::to_string(dense_iters) + "/" + std::to_string(sparse_iters))
                  << base_time / times.total;
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

// Streaming-mutation bench: update-batch latency and the incremental-vs-
// from-scratch maintenance tradeoff, swept over mutation batch size.
//
// Two resident sessions consume the SAME seeded insert-only op stream.
// The "incremental" side keeps one Service alive across rounds, so every
// post-batch query repairs the resident state (CC label ripple, BFS
// frontier repair, delta-seeded PageRank). The "scratch" side gets a
// fresh Service per round, so the identical query recomputes from
// scratch on the identically mutated graph. The mutate commit itself is
// timed separately — its cost is the same on both sides — and the
// speedup column is scratch_query / incremental_query. Small batches
// should win big (the delta frontier is tiny); the crossover batch size,
// where repairing stops paying, is reported per algorithm. Wall-clock
// host seconds: both sides simulate the same cluster, so simulation
// overhead cancels out of the ratio.
//
//   bench_stream --graph=rmat12 --ranks=4 --rounds=4
//   bench_stream --batches=2,8,32,128,512 --csv=stream.csv
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "stream/mutation_log.hpp"
#include "util/timer.hpp"

namespace {

using hpcg::graph::Gid;

struct Sample {
  std::string algo;
  int batch = 0;
  int rounds = 0;
  double mutate_ms = 0.0;   // commit latency per batch (same work both sides)
  double inc_ms = 0.0;      // post-batch query, incremental maintenance
  double scratch_ms = 0.0;  // post-batch query, from-scratch recompute
  double speedup = 0.0;     // scratch_ms / inc_ms
};

hpcg::serve::Request query_for(const std::string& algo, Gid root) {
  hpcg::serve::Request req;
  if (algo == "bfs") {
    req.algo = hpcg::serve::Algo::kBfs;
    req.roots = {root};
  } else if (algo == "pr") {
    // Tolerance solve: the warm side seeds delta-PageRank from the
    // resident ranks, the cold side iterates from uniform.
    req.algo = hpcg::serve::Algo::kPageRank;
    req.tolerance = 1e-10;
    req.iterations = 1000;
  } else {
    req.algo = hpcg::serve::Algo::kCc;
  }
  return req;
}

hpcg::serve::ServiceOptions bench_service_options() {
  hpcg::serve::ServiceOptions vopts;
  vopts.auto_dispatch = false;
  vopts.cache_capacity = 0;  // identical repeated queries: no cache assist
  return vopts;
}

double drain_timed(hpcg::serve::Service& service,
                   hpcg::serve::Service::Ticket& ticket) {
  hpcg::util::WallTimer timer;
  service.drain();
  ticket.result.get();  // propagate failures
  return timer.elapsed();
}

}  // namespace

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  options.usage(
      "usage: bench_stream [options]\n"
      "Update-batch latency and incremental-vs-recompute query speedup.\n"
      "\n"
      "  --graph=NAME      dataset analog (default rmat12)\n"
      "  --scale-shift=K   shrink/grow the analog by 2^K\n"
      "  --ranks=N         grid ranks (default 4)\n"
      "  --algos=LIST      algorithms to sweep (default cc,bfs,pr)\n"
      "  --batches=LIST    edge ops per batch (default 2,8,32,128,512)\n"
      "  --rounds=N        mutation rounds averaged per point (default 4)\n"
      "  --seed=N          op-stream seed (default 1)\n"
      "  --csv=FILE        write the result rows as CSV\n"
      "  --help            show this text and exit\n");
  const std::string dataset = options.get_string("graph", "rmat12");
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const int ranks = static_cast<int>(options.get_int("ranks", 4));
  const std::string algos_text = options.get_string("algos", "cc,bfs,pr");
  const auto batches = options.get_int_list("batches", {2, 8, 32, 128, 512});
  const int rounds = static_cast<int>(options.get_int("rounds", 4));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  std::vector<std::string> algos;
  {
    std::string token;
    for (const char c : algos_text + ",") {
      if (c == ',') {
        if (!token.empty()) algos.push_back(token);
        token.clear();
      } else {
        token += c;
      }
    }
  }

  const auto el = hpcg::bench::load(dataset, shift);
  const auto grid = hpcg::core::Grid::squarest(ranks);
  hpcg::bench::banner("stream",
                      "incremental maintenance vs from-scratch recompute "
                      "under streaming edge inserts");
  std::cout << "grid " << grid.row_groups() << " x " << grid.col_groups()
            << ", " << rounds
            << " insert-only batches per point (wall-clock host ms)\n";

  const Gid root = el.edges.empty() ? 0 : el.edges.front().u;
  std::vector<Sample> samples;

  for (const auto& algo : algos) {
    for (const auto batch : batches) {
      // One session per (algo, batch, side): both sides replay the same
      // op stream, so the graphs evolve identically.
      Sample sample;
      sample.algo = algo;
      sample.batch = static_cast<int>(batch);
      sample.rounds = rounds;

      const auto ops_for = [&](int round) {
        // Stream-split per (batch size, round); insert-only so the
        // incremental side never hits the structural-delete fallback.
        return hpcg::stream::generate_ops(
            seed + static_cast<std::uint64_t>(batch) * 7919ull,
            static_cast<std::uint64_t>(round), static_cast<int>(batch), 0,
            el.n);
      };

      {  // Incremental: one Service keeps the resident state warm.
        hpcg::serve::Session session(el, grid);
        hpcg::serve::Service service(session, bench_service_options());
        auto warm = service.submit(query_for(algo, root));
        drain_timed(service, warm);  // untimed warm-up creates the state
        for (int r = 0; r < rounds; ++r) {
          hpcg::serve::Request mreq;
          mreq.algo = hpcg::serve::Algo::kMutate;
          mreq.ops = ops_for(r);
          auto mticket = service.submit(std::move(mreq));
          sample.mutate_ms += drain_timed(service, mticket) * 1e3;
          auto qticket = service.submit(query_for(algo, root));
          sample.inc_ms += drain_timed(service, qticket) * 1e3;
        }
        service.stop();
        session.close();
      }
      {  // Scratch: a fresh Service per round answers the same query cold.
        hpcg::serve::Session session(el, grid);
        for (int r = 0; r < rounds; ++r) {
          hpcg::serve::Service service(session, bench_service_options());
          hpcg::serve::Request mreq;
          mreq.algo = hpcg::serve::Algo::kMutate;
          mreq.ops = ops_for(r);
          auto mticket = service.submit(std::move(mreq));
          drain_timed(service, mticket);  // commit cost counted on the other side
          auto qticket = service.submit(query_for(algo, root));
          sample.scratch_ms += drain_timed(service, qticket) * 1e3;
          service.stop();
        }
        session.close();
      }

      sample.mutate_ms /= rounds;
      sample.inc_ms /= rounds;
      sample.scratch_ms /= rounds;
      sample.speedup = sample.inc_ms > 0.0 ? sample.scratch_ms / sample.inc_ms
                                           : 0.0;
      samples.push_back(sample);
    }
  }

  std::cout << "\nalgo  batch  rounds  mutate_ms  inc_query_ms  "
               "scratch_query_ms  speedup\n";
  for (const auto& sample : samples) {
    std::printf("%-4s  %5d  %6d  %-9.4g  %-12.4g  %-16.4g  %-7.3g\n",
                sample.algo.c_str(), sample.batch, sample.rounds,
                sample.mutate_ms, sample.inc_ms, sample.scratch_ms,
                sample.speedup);
  }

  // Crossover: the smallest swept batch size where incremental maintenance
  // stops beating a from-scratch recompute.
  std::cout << "\n";
  for (const auto& algo : algos) {
    int crossover = 0;
    for (const auto& sample : samples) {
      if (sample.algo == algo && sample.speedup <= 1.0) {
        crossover = sample.batch;
        break;
      }
    }
    if (crossover > 0) {
      std::cout << "crossover " << algo << ": incremental stops winning at "
                << crossover << " ops/batch\n";
    } else {
      std::cout << "crossover " << algo
                << ": incremental wins at every swept batch size\n";
    }
  }

  if (!csv.empty()) {
    std::ofstream out(csv);
    out << "algo,batch,rounds,mutate_ms,inc_query_ms,scratch_query_ms,"
           "speedup\n";
    for (const auto& sample : samples) {
      out << sample.algo << "," << sample.batch << "," << sample.rounds << ","
          << sample.mutate_ms << "," << sample.inc_ms << ","
          << sample.scratch_ms << "," << sample.speedup << "\n";
    }
    std::cout << "wrote " << csv << "\n";
  }
  return 0;
}

// Serving-layer throughput: requests/second of the resident Service
// against the one-shot hpcg_run-style execution model, swept over the BFS
// coalescing bound.
//
// The baseline pays the full one-shot tax per request — 2D partition,
// rank-thread spawn, distributed-graph construction — then runs one BFS
// and gathers the answer, exactly what scripting hpcg_run in a loop costs.
// The service amortizes all of that across the session and additionally
// coalesces up to `batch` single-source requests into one multi-source
// traversal, so the superstep loop (and every collective in it) is also
// shared. Wall-clock seconds on the host: both sides simulate the same
// cluster, so simulation overhead cancels out of the ratio.
//
//   bench_serve_throughput --graph=rmat12 --ranks=9 --requests=64
//   bench_serve_throughput --batches=1,8,32 --csv=serve_throughput.csv
#include <algorithm>
#include <fstream>
#include <iostream>
#include <span>
#include <vector>

#include "algos/bfs.hpp"
#include "algos/gather.hpp"
#include "harness.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace {

using hpcg::graph::Gid;

struct Sample {
  std::string mode;
  int batch = 0;
  int requests = 0;
  double wall_s = 0.0;
  double rps = 0.0;
  double speedup = 1.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double exact_quantile_us(std::vector<double> latencies_s, double q) {
  if (latencies_s.empty()) return 0.0;
  std::sort(latencies_s.begin(), latencies_s.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(latencies_s.size() - 1) + 0.5);
  return latencies_s[std::min(idx, latencies_s.size() - 1)] * 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  options.usage(
      "usage: bench_serve_throughput [options]\n"
      "Requests/sec: resident service (batched MS-BFS) vs one-shot runs.\n"
      "\n"
      "  --graph=NAME      dataset analog (default rmat12)\n"
      "  --scale-shift=K   shrink/grow the analog by 2^K\n"
      "  --ranks=N         grid ranks (default 9)\n"
      "  --requests=N      BFS requests per sweep point (default 64)\n"
      "  --batches=LIST    coalescing bounds to sweep (default 1,8,32)\n"
      "  --seed=N          root-choice seed (default 1)\n"
      "  --csv=FILE        write the result rows as CSV\n"
      "  --help            show this text and exit\n");
  const std::string dataset = options.get_string("graph", "rmat12");
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const int ranks = static_cast<int>(options.get_int("ranks", 9));
  const int requests = static_cast<int>(options.get_int("requests", 64));
  const auto batches = options.get_int_list("batches", {1, 8, 32});
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  const auto el = hpcg::bench::load(dataset, shift);
  const auto grid = hpcg::core::Grid::squarest(ranks);
  hpcg::bench::banner("serve-throughput",
                      "resident session + batched MS-BFS vs one-shot runs");
  std::cout << "grid " << grid.row_groups() << " x " << grid.col_groups()
            << ", " << requests << " BFS requests (wall-clock host seconds)\n";

  // Identical request stream for every mode: seeded distinct-ish roots.
  hpcg::util::Xoshiro256 rng(seed);
  std::vector<Gid> roots(static_cast<std::size_t>(requests));
  for (auto& root : roots) {
    root = static_cast<Gid>(rng.next_below(static_cast<std::uint64_t>(el.n)));
  }

  std::vector<Sample> samples;

  // Baseline: the one-shot tax per request, as if looping hpcg_run.
  {
    std::vector<double> latencies_s;
    latencies_s.reserve(roots.size());
    hpcg::util::WallTimer wall;
    for (const auto root : roots) {
      hpcg::util::WallTimer one;
      const auto parts = hpcg::core::Partitioned2D::build(el, grid, true);
      hpcg::comm::Runtime::run(
          grid.ranks(), hpcg::comm::Topology::aimos(grid.ranks()),
          hpcg::comm::CostModel{}, {}, [&](hpcg::comm::Comm& comm) {
            hpcg::core::Dist2DGraph g(comm, parts);
            comm.reset_clocks();
            const auto result = hpcg::algos::bfs(g, root);
            auto levels = hpcg::algos::gather_row_state(
                g, std::span<const std::int64_t>(result.level));
            (void)levels;
          });
      latencies_s.push_back(one.elapsed());
    }
    Sample sample;
    sample.mode = "oneshot";
    sample.batch = 1;
    sample.requests = requests;
    sample.wall_s = wall.elapsed();
    sample.rps = requests / sample.wall_s;
    sample.p50_us = exact_quantile_us(latencies_s, 0.50);
    sample.p99_us = exact_quantile_us(latencies_s, 0.99);
    samples.push_back(sample);
  }
  const double baseline_rps = samples[0].rps;

  // Service: one resident session across every sweep point; a fresh
  // Service per batch bound so each point gets clean metrics and cache.
  hpcg::serve::Session session(el, grid);
  for (const auto batch : batches) {
    hpcg::serve::ServiceOptions vopts;
    vopts.queue_capacity = static_cast<std::size_t>(requests);
    vopts.max_inflight_per_client = requests;
    vopts.max_batch = static_cast<int>(batch);
    vopts.cache_capacity = 0;  // distinct roots; keep the comparison honest
    vopts.auto_dispatch = false;
    hpcg::serve::Service service(session, vopts);

    std::vector<hpcg::serve::Service::Ticket> tickets;
    tickets.reserve(roots.size());
    hpcg::util::WallTimer wall;
    for (const auto root : roots) {
      hpcg::serve::Request request;
      request.algo = hpcg::serve::Algo::kBfs;
      request.roots = {root};
      tickets.push_back(service.submit(std::move(request)));
    }
    service.drain();
    const double wall_s = wall.elapsed();
    for (auto& ticket : tickets) ticket.result.get();  // propagate failures

    const auto snap = service.metrics().snapshot();
    const auto& hist = snap.histograms.at("serve.latency.total_us");
    Sample sample;
    sample.mode = "service";
    sample.batch = static_cast<int>(batch);
    sample.requests = requests;
    sample.wall_s = wall_s;
    sample.rps = requests / wall_s;
    sample.speedup = sample.rps / baseline_rps;
    sample.p50_us =
        hpcg::telemetry::MetricsRegistry::histogram_quantile(hist, 0.50);
    sample.p99_us =
        hpcg::telemetry::MetricsRegistry::histogram_quantile(hist, 0.99);
    samples.push_back(sample);
    service.stop();
  }
  session.close();

  std::cout << "\nmode     batch  requests  wall_s     req/s      speedup  "
               "p50_us     p99_us\n";
  for (const auto& sample : samples) {
    std::printf("%-8s %5d  %8d  %-9.4g  %-9.4g  %-7.3g  %-9.4g  %-9.4g\n",
                sample.mode.c_str(), sample.batch, sample.requests,
                sample.wall_s, sample.rps, sample.speedup, sample.p50_us,
                sample.p99_us);
  }

  if (!csv.empty()) {
    std::ofstream out(csv);
    out << "mode,batch,requests,wall_s,rps,speedup,p50_us,p99_us\n";
    for (const auto& sample : samples) {
      out << sample.mode << "," << sample.batch << "," << sample.requests
          << "," << sample.wall_s << "," << sample.rps << "," << sample.speedup
          << "," << sample.p50_us << "," << sample.p99_us << "\n";
    }
    std::cout << "wrote " << csv << "\n";
  }
  return 0;
}

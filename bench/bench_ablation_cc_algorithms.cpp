// CC algorithm choice ablation: color propagation (the paper's pick, §4 —
// "its simplicity and typical 'graph algorithmic' pattern enables us to
// generalize results") vs the hooking + pointer-jumping alternative it is
// contrasted with. Quantifies the tradeoff: propagation needs O(diameter)
// cheap rounds, hook-and-jump needs O(log N) expensive ones — so the
// crossover sits between the shallow and deep input regimes.
#include "algos/cc.hpp"
#include "algos/pointer_jump.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hc = hpcg::core;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const int p = static_cast<int>(options.get_int("ranks", 64));
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("CC algorithm ablation",
             "color propagation vs hooking+pointer-jumping (extension)");

  hpcg::util::Table table({"graph", "algorithm", "total_s", "comm_s",
                           "rounds", "x_vs_colorprop"});
  for (const std::string name : {"tw-mini", "cw-mini", "cw-deep", "wdc-deep"}) {
    const auto el = hb::load(name, shift);
    const auto grid = hc::Grid::squarest(p);
    const auto parts = hc::Partitioned2D::build(el, grid);
    const auto topo = hb::bench_topology(grid.ranks(), alpha);

    int cp_rounds = 0;
    const auto cp = hb::run_parts(parts, topo, hb::bench_cost(alpha),
                                  [&](hc::Dist2DGraph& g) {
                                    auto r = ha::connected_components(
                                        g, ha::CcOptions::all_push());
                                    if (g.world().rank() == 0) cp_rounds = r.iterations;
                                  });
    int sv_rounds = 0;
    const auto sv = hb::run_parts(parts, topo, hb::bench_cost(alpha),
                                  [&](hc::Dist2DGraph& g) {
                                    auto r = ha::connected_components_sv(g);
                                    if (g.world().rank() == 0) sv_rounds = r.rounds;
                                  });
    table.row() << name << "color-prop" << cp.total << cp.comm << cp_rounds << 1.0;
    table.row() << name << "hook+jump" << sv.total << sv.comm << sv_rounds
                << (sv.total > 0 ? cp.total / sv.total : 0.0);
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

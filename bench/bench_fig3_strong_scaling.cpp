// Figure 3 reproduction: strong scaling of BFS, PageRank and CC from 1 to
// 256 ranks on the benchmark inputs. Reports, as the paper's three panels
// do: total modeled time, communication time, and the speedup from 16
// ranks against the sqrt(p) theoretical bound of 2D distributions.
#include <cmath>
#include <map>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/pagerank.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hc = hpcg::core;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const auto ranks = options.get_int_list("ranks", {1, 4, 16, 64, 256});
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  const std::string async_text = options.get_string("async", "off");
  const int async_chunk = static_cast<int>(options.get_int("async-chunk", 1));
  options.check_unknown();

  hpcg::comm::RunOptions run_options;
  run_options.async = async_text == "on";
  run_options.async_chunk = async_chunk;

  hb::banner("Figure 3",
             "strong scaling (total, comm, speedup vs sqrt(p)) for BFS/PR/CC"
             + std::string(run_options.async ? " [async overlap on]" : ""));

  const std::vector<std::string> graphs = {"tw-mini", "fr-mini", "cw-mini",
                                           "gsh-mini"};
  hpcg::util::Table table({"graph", "algo", "ranks", "total_s", "comp_s",
                           "comm_s", "speedup_vs_16", "sqrt_bound"});
  std::map<std::pair<std::string, std::string>, double> t16;

  for (const auto& name : graphs) {
    const auto el = hb::load(name, shift);
    for (const auto p : ranks) {
      const auto grid = hc::Grid::squarest(static_cast<int>(p));
      const auto parts = hc::Partitioned2D::build(el, grid);
      const auto topo = hb::bench_topology(grid.ranks(), alpha);
      const struct {
        const char* algo;
        std::function<void(hc::Dist2DGraph&)> body;
      } runs[] = {
          {"BFS", [](hc::Dist2DGraph& g) { ha::bfs(g, 0); }},
          {"PR", [](hc::Dist2DGraph& g) { ha::pagerank(g, 20); }},
          {"CC",
           [](hc::Dist2DGraph& g) {
             ha::connected_components(g, ha::CcOptions::all_push());
           }},
      };
      for (const auto& run : runs) {
        const auto times = hb::run_parts(parts, topo, hb::bench_cost(alpha),
                                         run.body, run_options);
        if (p == 16) t16[{name, run.algo}] = times.total;
        const double base = t16.count({name, run.algo}) ? t16[{name, run.algo}] : 0;
        const double speedup = (p >= 16 && base > 0) ? base / times.total : 0.0;
        const double bound =
            p >= 16 ? std::sqrt(static_cast<double>(p) / 16.0) : 0.0;
        table.row() << name << run.algo << p << times.total << times.comp
                    << times.comm << speedup << bound;
      }
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

// Figure 9 reproduction: HPCGraph-GPU vs the Gluon-like comparator from 1
// to 256 ranks, PR/CC/BFS. The paper's finding: the two roughly match on
// single-rank and single-node runs, but Gluon degrades sharply once
// communication crosses the network and "does not scale at all past 64
// ranks on the majority of tests" — the generic substrate's per-message
// overhead and payload duplication dominate. The Gluon-like runs use the
// same 2D CVC block partition but generic update-list exchanges, under a
// cost model with substrate overhead (gluon_cost_params).
#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/pagerank.hpp"
#include "baselines/gluon_like.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hbl = hpcg::baselines;
namespace hc = hpcg::core;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const auto ranks = options.get_int_list("ranks", {1, 4, 16, 64, 256});
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("Figure 9", "HPCGraph-2D vs Gluon-like CVC on generic substrate");

  hpcg::util::Table table({"graph", "algo", "ranks", "ours_s", "gluon_s",
                           "gluon/ours", "ours_msgs", "gluon_msgs"});
  for (const std::string name : {"tw-mini", "fr-mini", "rmat14"}) {
    const auto el = hb::load(name, shift);
    for (const auto p : ranks) {
      const auto grid = hc::Grid::squarest(static_cast<int>(p));
      const auto parts = hc::Partitioned2D::build(el, grid);
      const auto topo = hb::bench_topology(static_cast<int>(p), alpha);
      const auto ours_cost = hb::bench_cost(alpha);
      // The generic substrate: same device compute model, but per-message
      // software overhead and a serialization bandwidth derate (scaled by
      // the same calibration factor).
      auto gluon_params = ours_cost.params();
      gluon_params.software_alpha_s = hbl::gluon_cost_params().software_alpha_s * alpha;
      gluon_params.bw_derate = hbl::gluon_cost_params().bw_derate;
      const hpcg::comm::CostModel gluon_cost{gluon_params};

      const struct {
        const char* algo;
        std::function<void(hc::Dist2DGraph&)> ours;
        std::function<void(hc::Dist2DGraph&)> gluon;
      } runs[] = {
          {"PR", [](hc::Dist2DGraph& g) { ha::pagerank(g, 20); },
           [](hc::Dist2DGraph& g) { hbl::gluon_pagerank(g, 20); }},
          {"CC",
           [](hc::Dist2DGraph& g) {
             ha::connected_components(g, ha::CcOptions::all_push());
           },
           [](hc::Dist2DGraph& g) { hbl::gluon_connected_components(g); }},
          {"BFS", [](hc::Dist2DGraph& g) { ha::bfs(g, 0); },
           [](hc::Dist2DGraph& g) { hbl::gluon_bfs(g, 0); }},
      };
      for (const auto& run : runs) {
        const auto ours = hb::run_parts(parts, topo, ours_cost, run.ours);
        const auto gluon = hb::run_parts(parts, topo, gluon_cost, run.gluon);
        table.row() << name << run.algo << p << ours.total << gluon.total
                    << (ours.total > 0 ? gluon.total / ours.total : 0.0)
                    << static_cast<std::int64_t>(ours.messages)
                    << static_cast<std::int64_t>(gluon.messages);
      }
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

// Collective-policy benchmark: adaptive selection vs the fixed default and
// a forced-ring baseline, in MODELED time (the simulator's virtual clock —
// deterministic, so "beyond noise" here is a strict epsilon, not a
// confidence interval).
//
// Two layers, both enforced (exit 1 on violation), so CI's bench-smoke run
// doubles as the acceptance check for docs/TUNING.md:
//
//   1. Model grid — every (op, level, group size, bytes) cell of a sweep
//      over the reference calibration's fitted constants. The adaptive
//      pick must never cost more than the ring or the default variant
//      (it is their argmin by construction; the grid guards the formula
//      set against regressions), and it must be STRICTLY cheaper than the
//      ring on the small-message / high-group-count corner, where the
//      ring's (g-1) latency depth loses to the log-depth variants.
//
//   2. Run level — the same collective-heavy body executed through
//      Runtime::run under fixed, forced-ring, and adaptive policies.
//      Results must be bit-identical across all three (the policy
//      invariant: selection changes modeled time only), the adaptive
//      makespan must not exceed either baseline, and on the small-message
//      corner it must strictly beat the ring.
//
//   bench_collectives --ranks=48 --run-ranks=12 --csv=out.csv
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "comm/policy.hpp"
#include "comm/runtime.hpp"
#include "comm/topology.hpp"
#include "tune/calibration.hpp"
#include "util/options.hpp"

namespace hc = hpcg::comm;

namespace {

// Relative slack for "never slower": the virtual clock is deterministic,
// so this only absorbs floating-point association differences.
constexpr double kEps = 1e-9;

struct GridRow {
  hc::CollectiveOp op;
  hc::LinkClass level;
  int group;
  std::size_t bytes;
  double fixed_s;
  double ring_s;
  double adaptive_s;
  hc::CollectiveAlgo algo;
};

// The small-message / high-group-count corner where adaptive must win
// strictly: payloads below the eager scale on groups deep enough that the
// ring's linear latency term dominates.
bool corner(int group, std::size_t bytes) {
  return group >= 8 && bytes <= 4096;
}

int model_grid(const hc::Topology& topo, const hc::CollectivePolicy& policy,
               std::vector<GridRow>* rows) {
  const int nranks = topo.nranks();
  std::vector<int> groups = {2, topo.clique_size(), topo.gpus_per_node(),
                             nranks / 2, nranks};
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  int violations = 0;
  for (const int g : groups) {
    if (g < 2 || g > nranks) continue;
    const hc::LinkClass cls = topo.link_class(0, g - 1);
    const hc::FittedLevel& fit = policy.at(cls);
    if (!fit.valid) continue;
    for (const hc::CollectiveOp op :
         {hc::CollectiveOp::kAllReduce, hc::CollectiveOp::kBroadcast,
          hc::CollectiveOp::kAllGather, hc::CollectiveOp::kAllToAllV}) {
      for (std::size_t bytes = 8; bytes <= (16u << 20); bytes *= 4) {
        const auto cost = [&](hc::CollectiveAlgo a) {
          return hc::algo_cost(op, a, fit.alpha_s, fit.software_alpha_s,
                               fit.beta_bytes_s, g, bytes);
        };
        GridRow row;
        row.op = op;
        row.level = cls;
        row.group = g;
        row.bytes = bytes;
        row.fixed_s = cost(hc::CollectiveAlgo::kDefault);
        row.ring_s = cost(hc::CollectiveAlgo::kRing);
        row.algo = policy.select(op, cls, g, bytes);
        row.adaptive_s = cost(row.algo);
        rows->push_back(row);
        if (row.adaptive_s > row.ring_s * (1.0 + kEps) ||
            row.adaptive_s > row.fixed_s * (1.0 + kEps)) {
          std::fprintf(stderr,
                       "VIOLATION: %s %s g=%d B=%zu adaptive %.6g > "
                       "min(fixed %.6g, ring %.6g)\n",
                       hc::to_string(op), hc::to_string(cls), g, bytes,
                       row.adaptive_s, row.fixed_s, row.ring_s);
          ++violations;
        }
      }
    }
  }
  return violations;
}

/// One collective-heavy request mix. Every rank folds everything it
/// computes into `digest` so runs under different policies can be
/// bit-compared. `small_only` restricts the mix to the tiny-payload corner
/// (where the adaptive-vs-ring win must be strict).
void workload(hc::Comm& c, bool small_only, std::vector<double>* digest) {
  const int rank = c.rank();
  const int reps = 6;
  for (int r = 0; r < reps; ++r) {
    double one = static_cast<double>(rank + 1) * (r + 1);
    std::vector<double> v{one};
    c.allreduce(std::span<double>(v), hc::ReduceOp::kSum);
    digest->push_back(v[0]);

    std::vector<double> bc(small_only ? 2 : 2048);
    if (rank == 0) {
      for (std::size_t i = 0; i < bc.size(); ++i)
        bc[i] = static_cast<double>(i) + r;
    }
    c.broadcast(std::span<double>(bc), 0);
    digest->push_back(bc.back());

    std::vector<double> mine(small_only ? 1 : 256,
                             static_cast<double>(rank) + 0.5 * r);
    const auto gathered = c.allgatherv<double>(mine);
    digest->push_back(gathered.front());
    digest->push_back(gathered.back());

    const std::size_t per_dest = small_only ? 1 : 128;
    std::vector<double> send(per_dest * static_cast<std::size_t>(c.size()));
    std::vector<std::size_t> counts(static_cast<std::size_t>(c.size()),
                                    per_dest);
    for (std::size_t i = 0; i < send.size(); ++i)
      send[i] = rank * 1000.0 + static_cast<double>(i);
    const auto recv = c.alltoallv<double>(send, counts);
    digest->push_back(recv.empty() ? -1.0 : recv.back());
  }
}

struct RunResult {
  double makespan_s = 0.0;
  std::vector<std::vector<double>> digests;  // per rank
};

RunResult run_policy(int nranks, const hc::CollectivePolicy& policy,
                     bool small_only) {
  RunResult out;
  out.digests.assign(static_cast<std::size_t>(nranks), {});
  hc::RunOptions ropts;
  ropts.policy = policy;
  const auto stats = hc::Runtime::run(
      nranks, hc::Topology::aimos(nranks), hc::CostModel{}, ropts,
      [&](hc::Comm& c) {
        workload(c, small_only, &out.digests[static_cast<std::size_t>(c.rank())]);
      });
  out.makespan_s = stats.makespan();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  hpcg::util::Options opts(argc, argv);
  opts.usage(
      "usage: bench_collectives [options]\n"
      "Adaptive collective policy vs fixed/ring baselines (modeled time).\n"
      "\n"
      "  --ranks=N      topology span for the model grid (default 48)\n"
      "  --run-ranks=N  simulated ranks for the run-level check (default 12)\n"
      "  --csv=FILE     write the model-grid rows as CSV\n"
      "  --help         show this text and exit\n");
  const int ranks = opts.get_int("ranks", 48);
  const int run_ranks = opts.get_int("run-ranks", 12);
  const std::string csv = opts.get_string("csv", "");
  opts.check_unknown();

  const auto topo = hc::Topology::aimos(ranks);
  const auto cal = hpcg::tune::reference_calibration(topo);
  const auto policy = cal.to_policy();

  std::vector<GridRow> rows;
  int violations = model_grid(topo, policy, &rows);

  int corner_rows = 0, corner_wins = 0, switched = 0;
  for (const auto& row : rows) {
    if (row.algo != hc::CollectiveAlgo::kDefault) ++switched;
    if (!corner(row.group, row.bytes)) continue;
    ++corner_rows;
    if (row.adaptive_s < row.ring_s * (1.0 - kEps)) ++corner_wins;
  }
  std::printf("model grid: %zu cells, %d picked a non-default algorithm\n",
              rows.size(), switched);
  std::printf("corner (g>=8, B<=4KiB): adaptive beats ring in %d/%d cells\n",
              corner_wins, corner_rows);
  if (corner_rows > 0 && corner_wins == 0) {
    std::fprintf(stderr,
                 "VIOLATION: no strict adaptive win on the small-message "
                 "corner\n");
    ++violations;
  }

  if (!csv.empty()) {
    std::ofstream out(csv);
    out << "op,level,group,bytes,fixed_s,ring_s,adaptive_s,algo\n";
    out.precision(17);
    for (const auto& row : rows) {
      out << hc::to_string(row.op) << ',' << hc::to_string(row.level) << ','
          << row.group << ',' << row.bytes << ',' << row.fixed_s << ','
          << row.ring_s << ',' << row.adaptive_s << ','
          << hc::to_string(row.algo) << '\n';
    }
  }

  hc::CollectivePolicy fixed;  // default: Mode::kFixed
  hc::CollectivePolicy ring;
  ring.mode = hc::CollectivePolicy::Mode::kForced;
  ring.forced = hc::CollectiveAlgo::kRing;
  const auto run_cal =
      hpcg::tune::reference_calibration(hc::Topology::aimos(run_ranks));
  const auto adaptive = run_cal.to_policy();

  for (const bool small_only : {true, false}) {
    const auto rf = run_policy(run_ranks, fixed, small_only);
    const auto rr = run_policy(run_ranks, ring, small_only);
    const auto ra = run_policy(run_ranks, adaptive, small_only);
    const char* mix = small_only ? "small-message corner" : "mixed sizes";
    std::printf(
        "run (%d ranks, %s): fixed %.6gs  ring %.6gs  adaptive %.6gs\n",
        run_ranks, mix, rf.makespan_s, rr.makespan_s, ra.makespan_s);
    if (rf.digests != rr.digests || rf.digests != ra.digests) {
      std::fprintf(stderr, "VIOLATION: results differ across policies (%s)\n",
                   mix);
      ++violations;
    }
    if (ra.makespan_s > rr.makespan_s * (1.0 + kEps) ||
        ra.makespan_s > rf.makespan_s * (1.0 + kEps)) {
      std::fprintf(stderr,
                   "VIOLATION: adaptive makespan exceeds a baseline (%s)\n",
                   mix);
      ++violations;
    }
    if (small_only && ra.makespan_s >= rr.makespan_s * (1.0 - kEps)) {
      std::fprintf(stderr,
                   "VIOLATION: adaptive not strictly faster than ring on the "
                   "small-message corner\n");
      ++violations;
    }
  }

  if (violations > 0) {
    std::fprintf(stderr, "%d violation(s)\n", violations);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}

// Micro-benchmarks of the per-rank kernel machinery, in measured WALL-CLOCK
// time (std::chrono::steady_clock) alongside the cost model's modeled time.
//
// Each row races a seed-era kernel shape (the `base` column: Manhattan
// collapse with its per-edge binary search, per-edge division PageRank
// gather, level-array bottom-up probes, branchy test-and-set mask merges)
// against the worker-pool SIMD rewrite (the `pool` column: edge-balanced
// chunks + flat loops, contribution hoisting, frontier bitmaps, word-wide
// OR accumulation) on the same local CSR, and bit-compares the outputs —
// the determinism contract (docs/KERNELS.md) says every pair must match
// exactly, at every thread count. A mismatch fails the binary (exit 1), so
// CI's bench-smoke doubles as an identity check.
//
// Modeled time uses the harness cost model's per-edge rate (bench/
// harness.hpp bench_cost: 2e-10 s/edge) over the edges the kernel actually
// touches; it is identical for both variants by construction — the rewrite
// changes wall-clock, never the modeled charge.
//
//   bench_micro_kernels --scale=16 --ef=16 --threads=1,4 \
//                       --grains=16384 --reps=5 --csv=out.csv
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/manhattan.hpp"
#include "core/simd.hpp"
#include "core/worker_pool.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace hc = hpcg::core;
namespace hg = hpcg::graph;

namespace {

// Matches bench/harness.hpp bench_cost (per_edge_s), so modeled columns
// here line up with the figure benches.
constexpr double kPerEdgeSeconds = 2e-10;

hg::Csr make_csr(int scale, int edge_factor) {
  hg::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = 5;
  auto el = hg::generate_rmat(params);
  hg::remove_self_loops(el);
  hg::symmetrize(el);
  return hg::Csr(el.n, el.edges);
}

/// Times a baseline/pool pair with the reps INTERLEAVED (base, pool, base,
/// pool, ...) and returns the min of each. On a shared host, load bursts
/// last seconds; timing all base reps then all pool reps lets one burst
/// land entirely on one side and skew the ratio both ways. Interleaving
/// makes both sides sample the same load windows, so min-of-reps converges
/// to the same quiet-machine estimate for both.
template <typename FA, typename FB>
std::pair<double, double> best_pair_ms(int reps, FA&& base, FB&& pool) {
  base();  // warm-up, untimed
  pool();
  double best_base = std::numeric_limits<double>::infinity();
  double best_pool = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    base();
    const auto t1 = std::chrono::steady_clock::now();
    pool();
    const auto t2 = std::chrono::steady_clock::now();
    best_base = std::min(
        best_base, std::chrono::duration<double, std::milli>(t1 - t0).count());
    best_pool = std::min(
        best_pool, std::chrono::duration<double, std::milli>(t2 - t1).count());
  }
  return {best_base, best_pool};
}

// ---- BFS top-down: Manhattan collapse vs two-phase chunked flat loop ----
//
// The baseline is the seed's exact schedule: per-block degree prefix sums
// and a binary search per edge to find the owning vertex, with immediate
// level claims. The pool kernel cuts the frontier into edge-balanced
// chunks, records unvisited candidates per chunk (phase A), then replays
// the claims serially in chunk order (phase B) — the same two-phase shape
// algos/bfs.cpp uses, which visits neighbours in the identical nested
// order, so levels AND next-frontier order are bit-identical.

std::vector<std::int64_t> bfs_baseline(const hg::Csr& csr) {
  std::vector<std::int64_t> level(static_cast<std::size_t>(csr.n()), -1);
  std::vector<hc::Lid> frontier, next;
  level[0] = 0;
  frontier.push_back(0);
  std::int64_t depth = 0;
  while (!frontier.empty()) {
    next.clear();
    hc::manhattan_for_each_edge(
        csr, std::span<const hc::Lid>(frontier),
        [&](hc::Lid, hc::Lid u, std::int64_t) {
          if (level[u] < 0) {
            level[u] = depth + 1;
            next.push_back(u);
          }
        });
    frontier.swap(next);
    ++depth;
  }
  return level;
}

std::vector<std::int64_t> bfs_pool(const hg::Csr& csr, hc::WorkerPool* pool,
                                   std::int64_t grain) {
  const auto offsets = csr.offsets();
  const auto adj = csr.adjacencies();
  std::vector<std::int64_t> level(static_cast<std::size_t>(csr.n()), -1);
  // 1-bit visited mirror of `level >= 0`: the candidate phase probes 8KB
  // of bitmap (L1-resident at scale 16) instead of the 512KB level array;
  // the serial claim phase keeps it in sync, so the mirror costs the scan
  // nothing and determinism is untouched.
  std::vector<std::uint64_t> visited(
      (static_cast<std::size_t>(csr.n()) + 63) / 64, 0);
  std::vector<hc::Lid> frontier, next;
  level[0] = 0;
  visited[0] = 1;
  frontier.push_back(0);
  std::int64_t depth = 0;
  // Candidates fit in 32 bits (local ids), halving the buffer traffic the
  // serial claim phase re-reads.
  std::vector<std::vector<std::uint32_t>> cand;
  while (!frontier.empty()) {
    next.clear();
    const auto chunks = hc::edge_balanced_chunks(
        offsets, std::span<const hc::Lid>(frontier), grain);
    if (cand.size() < chunks.size()) cand.resize(chunks.size());
    hc::for_each_chunk(
        pool, chunks, [&](const hc::Chunk& c, std::size_t ci, int) {
          auto& out = cand[ci];
          out.clear();
          out.reserve(static_cast<std::size_t>(c.edges));
          for (std::size_t i = c.begin; i < c.end; ++i) {
            const hc::Lid v = frontier[i];
            for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
              const hc::Lid u = adj[e];
              if (!(visited[u >> 6] >> (u & 63) & 1)) {
                out.push_back(static_cast<std::uint32_t>(u));
              }
            }
          }
        });
    for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
      for (const std::uint32_t u : cand[ci]) {
        if (!(visited[u >> 6] >> (u & 63) & 1)) {
          level[u] = depth + 1;
          visited[u >> 6] |= std::uint64_t{1} << (u & 63);
          next.push_back(static_cast<hc::Lid>(u));
        }
      }
    }
    frontier.swap(next);
    ++depth;
  }
  return level;
}

// ---- BFS bottom-up: level-array probes vs frontier bitmap --------------
//
// One pull sweep claiming depth d+1 at the BFS's widest level. The
// baseline probes the 8-byte level array per edge; the pool kernel probes
// a 1-bit-per-vertex frontier bitmap, so the probe working set shrinks
// 64x (8KB at scale 16 — L1-resident where the level array is not). The
// bitmap itself is taken as an input: in the two-phase design the serial
// claim phase of the preceding level sets the bit alongside the level
// claim, so maintaining it costs the sweep nothing — the bench builds it
// untimed to match. Chunks own disjoint vertex rows, so parallel claims
// are race-free and order-invariant.

std::vector<std::int64_t> bu_baseline(const hg::Csr& csr,
                                      const std::vector<std::int64_t>& in,
                                      std::int64_t d) {
  auto level = in;
  const auto offsets = csr.offsets();
  const auto adj = csr.adjacencies();
  for (hc::Lid v = 0; v < csr.n(); ++v) {
    if (level[v] >= 0) continue;
    for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      if (in[adj[e]] == d) {
        level[v] = d + 1;
        break;
      }
    }
  }
  return level;
}

/// The frontier bitmap the claim phase of level d would have produced.
std::vector<std::uint64_t> frontier_bitmap(const std::vector<std::int64_t>& in,
                                           std::int64_t d) {
  std::vector<std::uint64_t> front((in.size() + 63) / 64, 0);
  for (std::size_t v = 0; v < in.size(); ++v) {
    if (in[v] == d) front[v >> 6] |= std::uint64_t{1} << (v & 63);
  }
  return front;
}

std::vector<std::int64_t> bu_pool(const hg::Csr& csr,
                                  const std::vector<std::int64_t>& in,
                                  const std::vector<std::uint64_t>& front,
                                  std::int64_t d, hc::WorkerPool* pool,
                                  std::int64_t grain) {
  auto level = in;
  const auto offsets = csr.offsets();
  const auto adj = csr.adjacencies();
  const auto chunks = hc::edge_balanced_chunks(
      offsets, 0, static_cast<std::size_t>(csr.n()), grain);
  hc::for_each_chunk(pool, chunks, [&](const hc::Chunk& c, std::size_t, int) {
    for (std::size_t v = c.begin; v < c.end; ++v) {
      if (level[v] >= 0) continue;
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        const auto u = adj[e];
        if (front[u >> 6] & (std::uint64_t{1} << (u & 63))) {
          level[v] = d + 1;
          break;
        }
      }
    }
  });
  return level;
}

// ---- PageRank gather: per-edge division vs hoisted strided lanes -------
//
// The baseline is the seed gather verbatim: pr[u] / max(degree[u], 1.0)
// per edge, with `degree` the separate materialized array the seed's
// global_degrees_state builds, accumulated on one running sum — two random
// loads, a divide, and an FP-add latency chain per edge. The pool kernel
// is the algos/pagerank.cpp rewrite: contrib[u] = pr[u]/deg hoisted out of
// the edge loop and an eight-lane strided row sum whose independent add
// chains overlap in the pipeline. The lane order is a fixed function of
// the row (never of threads or grain), so pool outputs are bit-identical
// threads on/off — the identity column for this kernel compares against
// the one-thread pool run, not the (differently-rounded) seed sum.

std::vector<double> pr_baseline(const hg::Csr& csr,
                                const std::vector<double>& pr,
                                const std::vector<double>& degree) {
  const auto offsets = csr.offsets();
  const auto adj = csr.adjacencies();
  std::vector<double> acc(static_cast<std::size_t>(csr.n()), 0.0);
  for (hc::Lid v = 0; v < csr.n(); ++v) {
    double sum = 0.0;
    for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const auto u = adj[e];
      sum += pr[u] / std::max(degree[u], 1.0);
    }
    acc[v] = sum;
  }
  return acc;
}

std::vector<double> pr_pool(const hg::Csr& csr, const std::vector<double>& pr,
                            hc::WorkerPool* pool, std::int64_t grain) {
  const auto offsets = csr.offsets();
  const auto adj = csr.adjacencies();
  std::vector<double> contrib(static_cast<std::size_t>(csr.n()));
  for (hc::Lid u = 0; u < csr.n(); ++u) {
    const double deg = static_cast<double>(offsets[u + 1] - offsets[u]);
    contrib[u] = pr[u] / std::max(deg, 1.0);
  }
  std::vector<double> acc(static_cast<std::size_t>(csr.n()), 0.0);
  const auto chunks = hc::edge_balanced_chunks(
      offsets, 0, static_cast<std::size_t>(csr.n()), grain);
  hc::for_each_chunk(pool, chunks, [&](const hc::Chunk& c, std::size_t, int) {
    // The same lane_gather_sum algos/pagerank.cpp calls (core/simd.hpp):
    // AVX-512/AVX2 vgatherqpd when available, eight scalar chains
    // otherwise, all bit-identical.
    const hg::Gid* ap = adj.data();
    const double* cp = contrib.data();
    const std::int64_t* off = offsets.data();
    for (std::size_t v = c.begin; v < c.end; ++v) {
      acc[v] = hc::lane_gather_sum(cp, ap, off[v], off[v + 1]);
    }
  });
  return acc;
}

// ---- MS-BFS OR-merge: branchy test-and-set vs register accumulation ----
//
// One pull sweep of 64-source mask propagation. The baseline is the seed's
// per-edge test-and-set (load out[v], branch, store); the pool kernel ORs
// neighbour masks into a register and stores once per vertex. OR is
// order-independent, so outputs match bit-for-bit.

std::vector<std::uint64_t> msbfs_baseline(const hg::Csr& csr,
                                          const std::vector<std::uint64_t>& mask) {
  const auto offsets = csr.offsets();
  const auto adj = csr.adjacencies();
  auto out = mask;
  for (hc::Lid v = 0; v < csr.n(); ++v) {
    for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const std::uint64_t m = mask[adj[e]];
      if (m & ~out[v]) out[v] |= m;
    }
  }
  return out;
}

std::vector<std::uint64_t> msbfs_pool(const hg::Csr& csr,
                                      const std::vector<std::uint64_t>& mask,
                                      hc::WorkerPool* pool,
                                      std::int64_t grain) {
  const auto offsets = csr.offsets();
  const auto adj = csr.adjacencies();
  auto out = mask;
  const auto chunks = hc::edge_balanced_chunks(
      offsets, 0, static_cast<std::size_t>(csr.n()), grain);
  hc::for_each_chunk(pool, chunks, [&](const hc::Chunk& c, std::size_t, int) {
    for (std::size_t v = c.begin; v < c.end; ++v) {
      std::uint64_t acc = out[v];
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        acc |= mask[adj[e]];
      }
      out[v] = acc;
    }
  });
  return out;
}

// ---- CC pull: per-edge conditional stores vs register min --------------
//
// One Jacobi label-minimum sweep (both variants read the input snapshot,
// so chunk order cannot matter). The baseline conditionally stores per
// improving edge; the pool kernel keeps the running minimum in a register.

std::vector<std::int64_t> cc_baseline(const hg::Csr& csr,
                                      const std::vector<std::int64_t>& in) {
  const auto offsets = csr.offsets();
  const auto adj = csr.adjacencies();
  auto out = in;
  for (hc::Lid v = 0; v < csr.n(); ++v) {
    for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const std::int64_t l = in[adj[e]];
      if (l < out[v]) out[v] = l;
    }
  }
  return out;
}

std::vector<std::int64_t> cc_pool(const hg::Csr& csr,
                                  const std::vector<std::int64_t>& in,
                                  hc::WorkerPool* pool, std::int64_t grain) {
  const auto offsets = csr.offsets();
  const auto adj = csr.adjacencies();
  auto out = in;
  const auto chunks = hc::edge_balanced_chunks(
      offsets, 0, static_cast<std::size_t>(csr.n()), grain);
  hc::for_each_chunk(pool, chunks, [&](const hc::Chunk& c, std::size_t, int) {
    for (std::size_t v = c.begin; v < c.end; ++v) {
      std::int64_t best = out[v];
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        best = std::min(best, in[adj[e]]);
      }
      out[v] = best;
    }
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  options.usage(
      "usage: bench_micro_kernels [options]\n"
      "  --scale=N      rmat scale, 2^N vertices (default 16)\n"
      "  --ef=N         rmat edge factor (default 16)\n"
      "  --threads=LIST worker threads per rank to sweep (default 1,4)\n"
      "  --grains=LIST  chunk grains in edges to sweep (default 16384)\n"
      "  --reps=N       timed repetitions, best-of (default 5)\n"
      "  --csv=FILE     also write the table as CSV\n"
      "  --help         this text\n");
  const int scale = static_cast<int>(options.get_int("scale", 16));
  const int ef = static_cast<int>(options.get_int("ef", 16));
  const int reps = static_cast<int>(options.get_int("reps", 5));
  const auto threads = options.get_int_list("threads", {1, 4});
  const auto grains = options.get_int_list("grains", {16384});
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  const auto csr = make_csr(scale, ef);
  const auto offsets = csr.offsets();

  // Reference outputs (baseline shapes, serial): every pool run at every
  // thread count must reproduce these bit-for-bit.
  const auto ref_level = bfs_baseline(csr);
  std::int64_t bfs_edges = 0;  // edges a top-down BFS actually scans
  std::vector<std::int64_t> width(static_cast<std::size_t>(scale) + 64, 0);
  for (hc::Lid v = 0; v < csr.n(); ++v) {
    if (ref_level[v] < 0) continue;
    bfs_edges += offsets[v + 1] - offsets[v];
    if (static_cast<std::size_t>(ref_level[v]) < width.size()) {
      ++width[ref_level[v]];
    }
  }
  // Bottom-up sweeps run at the direction switch: the frontier is the
  // level BEFORE the widest one, everything deeper is truncated back to
  // unvisited — the state a direction-optimized BFS is in when it flips to
  // pull (the pull sweep is what produces the widest level).
  const std::int64_t mid = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::max_element(width.begin(), width.end()) - width.begin()) -
             1);
  auto bu_in = ref_level;
  for (auto& l : bu_in) {
    if (l > mid) l = -1;
  }
  std::int64_t bu_edges = 0;  // edges the early-exit probe loop touches
  {
    const auto adj = csr.adjacencies();
    for (hc::Lid v = 0; v < csr.n(); ++v) {
      if (bu_in[v] >= 0) continue;
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        ++bu_edges;
        if (bu_in[adj[e]] == mid) break;
      }
    }
  }

  std::vector<double> pr0(static_cast<std::size_t>(csr.n()));
  std::vector<double> degree0(static_cast<std::size_t>(csr.n()));
  std::vector<std::uint64_t> mask0(static_cast<std::size_t>(csr.n()), 0);
  std::vector<std::int64_t> label0(static_cast<std::size_t>(csr.n()));
  for (hc::Lid v = 0; v < csr.n(); ++v) {
    pr0[v] = 1.0 / static_cast<double>(csr.n());
    degree0[v] = static_cast<double>(offsets[v + 1] - offsets[v]);
    if (v % 97 == 0) mask0[v] = std::uint64_t{1} << (v % 64);
    label0[v] = (v * 2654435761LL) % csr.n();  // scrambled so the sweep works
  }
  const auto ref_bu = bu_baseline(csr, bu_in, mid);
  const auto bu_front = frontier_bitmap(bu_in, mid);
  // PR's strided lane sum rounds differently than the seed's sequential
  // sum, so its identity reference is the one-thread pool run (threads
  // on/off identity); the other kernels' math is order-free and must also
  // match the baseline exactly.
  const auto ref_pr = pr_pool(csr, pr0, nullptr, grains.front());
  const auto ref_mask = msbfs_baseline(csr, mask0);
  const auto ref_cc = cc_baseline(csr, label0);

  hpcg::util::Table table({"kernel", "scale", "threads", "grain", "base_ms",
                           "pool_ms", "speedup", "modeled_ms", "identical"});
  bool all_identical = true;
  const auto modeled_ms = [](std::int64_t edges) {
    return static_cast<double>(edges) * kPerEdgeSeconds * 1e3;
  };
  for (const std::int64_t t : threads) {
    std::unique_ptr<hc::WorkerPool> owned =
        t > 1 ? std::make_unique<hc::WorkerPool>(static_cast<int>(t)) : nullptr;
    hc::WorkerPool* pool = owned.get();
    for (const std::int64_t grain : grains) {
      const auto [bfs_b, bfs_p] =
          best_pair_ms(reps, [&] { (void)bfs_baseline(csr); },
                       [&] { (void)bfs_pool(csr, pool, grain); });
      const auto [bu_b, bu_p] = best_pair_ms(
          reps, [&] { (void)bu_baseline(csr, bu_in, mid); },
          [&] { (void)bu_pool(csr, bu_in, bu_front, mid, pool, grain); });
      const auto [pr_b, pr_p] =
          best_pair_ms(reps, [&] { (void)pr_baseline(csr, pr0, degree0); },
                       [&] { (void)pr_pool(csr, pr0, pool, grain); });
      const auto [ms_b, ms_p] =
          best_pair_ms(reps, [&] { (void)msbfs_baseline(csr, mask0); },
                       [&] { (void)msbfs_pool(csr, mask0, pool, grain); });
      const auto [cc_b, cc_p] =
          best_pair_ms(reps, [&] { (void)cc_baseline(csr, label0); },
                       [&] { (void)cc_pool(csr, label0, pool, grain); });
      struct Row {
        const char* kernel;
        double base_ms;
        double pool_ms;
        std::int64_t edges;
        bool identical;
      };
      const Row rows[] = {
          {"bfs-topdown", bfs_b, bfs_p, bfs_edges,
           bfs_pool(csr, pool, grain) == ref_level},
          {"bfs-bottomup", bu_b, bu_p, bu_edges,
           bu_pool(csr, bu_in, bu_front, mid, pool, grain) == ref_bu},
          {"pr-gather", pr_b, pr_p, csr.m(),
           pr_pool(csr, pr0, pool, grain) == ref_pr},
          {"msbfs-or", ms_b, ms_p, csr.m(),
           msbfs_pool(csr, mask0, pool, grain) == ref_mask},
          {"cc-pull", cc_b, cc_p, csr.m(),
           cc_pool(csr, label0, pool, grain) == ref_cc},
      };
      for (const Row& r : rows) {
        all_identical = all_identical && r.identical;
        table.row() << r.kernel << scale << static_cast<int>(t)
                    << static_cast<std::int64_t>(grain) << r.base_ms
                    << r.pool_ms << r.base_ms / r.pool_ms
                    << modeled_ms(r.edges) << (r.identical ? "yes" : "NO");
      }
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  if (!all_identical) {
    std::cerr << "FAIL: pool kernel output diverged from the baseline\n";
    return 1;
  }
  return 0;
}

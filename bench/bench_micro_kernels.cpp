// Micro-benchmarks of the per-rank kernel machinery (google-benchmark):
// the Manhattan-collapse schedule vs the naive nested loop (the paper's
// §3.4.2 overhead discussion), queue operations, and the GPU-style
// counting hash table used by Label Propagation.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/manhattan.hpp"
#include "core/queue.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "util/hash_table.hpp"

namespace hc = hpcg::core;
namespace hg = hpcg::graph;

namespace {

hg::Csr make_csr(int scale, int edge_factor) {
  hg::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = 5;
  auto el = hg::generate_rmat(params);
  hg::remove_self_loops(el);
  hg::symmetrize(el);
  return hg::Csr(el.n, el.edges);
}

void BM_ManhattanCollapse(benchmark::State& state) {
  const auto csr = make_csr(static_cast<int>(state.range(0)), 16);
  std::vector<hc::Lid> queue(static_cast<std::size_t>(csr.n()));
  std::iota(queue.begin(), queue.end(), 0);
  std::int64_t sink = 0;
  for (auto _ : state) {
    hc::manhattan_for_each_edge(csr, std::span<const hc::Lid>(queue),
                                [&](hc::Lid, hc::Lid u, std::int64_t) { sink += u; });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * csr.m());
}
BENCHMARK(BM_ManhattanCollapse)->Arg(12)->Arg(14);

void BM_NestedLoop(benchmark::State& state) {
  const auto csr = make_csr(static_cast<int>(state.range(0)), 16);
  std::vector<hc::Lid> queue(static_cast<std::size_t>(csr.n()));
  std::iota(queue.begin(), queue.end(), 0);
  std::int64_t sink = 0;
  for (auto _ : state) {
    hc::nested_for_each_edge(csr, std::span<const hc::Lid>(queue),
                             [&](hc::Lid, hc::Lid u, std::int64_t) { sink += u; });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * csr.m());
}
BENCHMARK(BM_NestedLoop)->Arg(12)->Arg(14);

void BM_ManhattanSpanStatistic(benchmark::State& state) {
  const auto csr = make_csr(12, 16);
  std::vector<hc::Lid> queue(static_cast<std::size_t>(csr.n()));
  std::iota(queue.begin(), queue.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hc::manhattan_span(csr, std::span<const hc::Lid>(queue)));
  }
}
BENCHMARK(BM_ManhattanSpanStatistic);

void BM_VertexQueuePushClear(benchmark::State& state) {
  const auto n = static_cast<hc::Lid>(state.range(0));
  hc::VertexQueue queue(n);
  for (auto _ : state) {
    for (hc::Lid v = 0; v < n; v += 3) queue.try_push(v);
    for (hc::Lid v = 0; v < n; v += 3) queue.try_push(v);  // duplicate hits
    queue.clear();
  }
  state.SetItemsProcessed(state.iterations() * (n / 3) * 2);
}
BENCHMARK(BM_VertexQueuePushClear)->Arg(1 << 14)->Arg(1 << 18);

void BM_CountingHashTableMode(benchmark::State& state) {
  const auto keys = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    hpcg::util::CountingHashTable table(keys);
    for (std::size_t i = 0; i < keys * 4; ++i) {
      table.add(i % keys, 1);
    }
    benchmark::DoNotOptimize(table.mode());
  }
  state.SetItemsProcessed(state.iterations() * keys * 4);
}
BENCHMARK(BM_CountingHashTableMode)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();

// Figure 4 reproduction: weak scaling on RMAT and Erdős–Rényi random
// graphs. The paper fixes 2^24 vertices and 2^28 edges per rank and
// compares measured times against the single-rank time scaled by sqrt(p)
// (the theoretical 2D weak-scaling factor); timings "just under doubling
// for every 4x increase in rank count" indicate near-optimal efficiency.
// Here the per-rank size is reduced (default 2^12 vertices, 2^16 edges per
// rank) but the sweep and the sqrt(p) reference line are the same.
#include <cmath>
#include <map>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/pagerank.hpp"
#include "graph/generators.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hc = hpcg::core;
namespace hg = hpcg::graph;

namespace {

hg::EdgeList weak_graph(const std::string& family, int per_rank_scale, int p,
                        int edge_factor) {
  // p is a power of 4 in this sweep, so scale grows by log2(p).
  int scale = per_rank_scale;
  for (int q = p; q > 1; q /= 4) scale += 2;
  hg::EdgeList el;
  if (family == "RMAT") {
    hg::RmatParams params;
    params.scale = scale;
    params.edge_factor = edge_factor;
    params.seed = 1000 + static_cast<std::uint64_t>(scale);
    el = hg::generate_rmat(params);
  } else {
    const hg::Gid n = hg::Gid{1} << scale;
    el = hg::generate_erdos_renyi(n, edge_factor * n,
                                  2000 + static_cast<std::uint64_t>(scale));
  }
  hg::remove_self_loops(el);
  hg::symmetrize(el);
  return el;
}

}  // namespace

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int per_rank_scale = static_cast<int>(options.get_int("per-rank-scale", 12));
  const auto ranks = options.get_int_list("ranks", {1, 4, 16, 64, 256});
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("Figure 4",
             "weak scaling on RMAT/RAND vs the sqrt(p)-scaled 1-rank time");

  hpcg::util::Table table({"family", "algo", "ranks", "scale", "total_s",
                           "comm_s", "sqrt_p_x_T1", "ratio_to_bound"});
  std::map<std::pair<std::string, std::string>, double> t1;

  for (const std::string family : {"RMAT", "RAND"}) {
    for (const auto p : ranks) {
      const auto el =
          weak_graph(family, per_rank_scale, static_cast<int>(p), 16);
      const auto grid = hc::Grid::squarest(static_cast<int>(p));
      const auto parts = hc::Partitioned2D::build(el, grid);
      const auto topo = hb::bench_topology(grid.ranks(), alpha);
      const struct {
        const char* algo;
        std::function<void(hc::Dist2DGraph&)> body;
      } runs[] = {
          {"BFS", [](hc::Dist2DGraph& g) { ha::bfs(g, 0); }},
          {"PR", [](hc::Dist2DGraph& g) { ha::pagerank(g, 20); }},
          {"CC",
           [](hc::Dist2DGraph& g) {
             ha::connected_components(g, ha::CcOptions::all_push());
           }},
      };
      for (const auto& run : runs) {
        const auto times = hb::run_parts(parts, topo, hb::bench_cost(alpha), run.body);
        if (p == 1) t1[{family, run.algo}] = times.total;
        const double bound =
            t1[{family, run.algo}] * std::sqrt(static_cast<double>(p));
        table.row() << family << run.algo << p
                    << (per_rank_scale + static_cast<int>(std::log2(p)))
                    << times.total << times.comm << bound
                    << (bound > 0 ? times.total / bound : 0.0);
      }
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

// Figure 5 + headline reproduction: the WDC12 runs from 100 to 400 ranks
// with the computation/communication split, plus the paper's headline
// metric — edges processed per second (the paper reports 26-123 GTEPS on
// 400 V100s depending on algorithm complexity). The WDC analog is a
// miniature web-crawl-like graph; modeled GTEPS are simulator-scale, but
// the ~2x speedup from 100->400 ranks (the sqrt(p) factor) and the
// comp/comm split shapes are the reproduced result.
#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/pagerank.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hc = hpcg::core;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const auto ranks = options.get_int_list("ranks", {100, 144, 196, 256, 324, 400});
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("Figure 5", "WDC12 analog, 100-400 ranks, comp/comm split + GTEPS");

  const auto el = hb::load("wdc-mini", shift);
  hpcg::util::Table table({"algo", "ranks", "total_s", "comp_s", "comm_s",
                           "edges_processed", "modeled_GTEPS", "speedup_vs_100"});
  std::map<std::string, double> t100;

  for (const auto p : ranks) {
    const auto grid = hc::Grid::squarest(static_cast<int>(p));
    const auto parts = hc::Partitioned2D::build(el, grid);
    const auto topo = hb::bench_topology(grid.ranks(), alpha);
    // Edge-work estimates per algorithm, for the TEPS metric: BFS touches
    // each edge once; PR touches every edge every iteration; CC touches
    // edges each propagation round (counted as iterations x M, an upper
    // bound consistent with how TEPS-style rates are quoted).
    struct Run {
      const char* algo;
      std::function<std::int64_t(hc::Dist2DGraph&)> body;  // returns edge work
    };
    const Run runs[] = {
        {"BFS",
         [&](hc::Dist2DGraph& g) {
           ha::bfs(g, 0);
           return g.m_global();
         }},
        {"PR",
         [&](hc::Dist2DGraph& g) {
           ha::pagerank(g, 20);
           return 20 * g.m_global();
         }},
        {"CC",
         [&](hc::Dist2DGraph& g) {
           auto result = ha::connected_components(g, ha::CcOptions::all_push());
           return result.iterations * g.m_global();
         }},
    };
    for (const auto& run : runs) {
      std::int64_t edge_work = 0;
      const auto times = hb::run_parts(parts, topo, hb::bench_cost(alpha),
                                       [&](hc::Dist2DGraph& g) {
                                         const auto work = run.body(g);
                                         // joined before read
                                         if (g.world().rank() == 0) edge_work = work;
                                       });
      if (!t100.count(run.algo)) t100[run.algo] = times.total;
      table.row() << run.algo << p << times.total << times.comp << times.comm
                  << edge_work << hb::gteps(edge_work, times.total)
                  << t100[run.algo] / times.total;
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

// Figure 8 reproduction: strong scaling of the complex algorithms — MWM
// (complex reductions), LP (2.5D processing), PJ (packet swapping) — from
// 1 to 256 ranks on the real-graph analogs. The paper sees scaling for
// almost all methods/inputs, with MWM and PJ plateauing earlier (heavier
// synchronization) and LP scaling best thanks to the 2.5D split of
// computation vs. communication.
#include "algos/label_prop.hpp"
#include "algos/mwm.hpp"
#include "algos/pointer_jump.hpp"
#include "graph/edge_list.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hc = hpcg::core;
namespace hg = hpcg::graph;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const auto ranks = options.get_int_list("ranks", {1, 4, 16, 64, 256});
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("Figure 8", "complex algorithms (MWM, LP, PJ) strong scaling");

  hpcg::util::Table table(
      {"graph", "algo", "ranks", "total_s", "comp_s", "comm_s", "speedup_vs_1"});
  for (const std::string name : {"tw-mini", "fr-mini", "cw-mini"}) {
    auto el = hb::load(name, shift);
    // MWM needs weights; attach them once so every rank count sees the
    // same weighted input.
    hg::attach_symmetric_weights(el, 4242);
    std::map<std::string, double> t1;
    for (const auto p : ranks) {
      const auto grid = hc::Grid::squarest(static_cast<int>(p));
      const auto parts = hc::Partitioned2D::build(el, grid);
      const auto topo = hb::bench_topology(grid.ranks(), alpha);
      const struct {
        const char* algo;
        std::function<void(hc::Dist2DGraph&)> body;
      } runs[] = {
          {"MWM", [](hc::Dist2DGraph& g) { ha::max_weight_matching(g); }},
          {"LP", [](hc::Dist2DGraph& g) { ha::label_propagation(g, 20); }},
          {"PJ", [](hc::Dist2DGraph& g) { ha::pointer_jump(g); }},
      };
      for (const auto& run : runs) {
        const auto times = hb::run_parts(parts, topo, hb::bench_cost(alpha), run.body);
        if (!t1.count(run.algo)) t1[run.algo] = times.total;
        table.row() << name << run.algo << p << times.total << times.comp
                    << times.comm << t1[run.algo] / times.total;
      }
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

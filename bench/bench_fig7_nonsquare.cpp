// Figure 7 reproduction: non-square distributions. CC (a push
// implementation, so the expensive reduction runs along the column group)
// on a fixed total rank count while varying R x C across all
// factorizations. The paper finds 16x16 optimal at 256 ranks, mild
// degradation nearby (~1.4x from (32,8) to (16,16)), and recommends
// biasing toward minimizing the reduction direction.
#include "algos/cc.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hc = hpcg::core;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const int p = static_cast<int>(options.get_int("ranks", 256));
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("Figure 7", "non-square R x C sweep with push CC at fixed ranks");

  const auto run_cc = [](hc::Dist2DGraph& g) {
    ha::connected_components(g, ha::CcOptions::all_push());
  };

  hpcg::util::Table table({"graph", "R(row grp size)", "C(col grp size)",
                           "total_s", "comm_s", "x_vs_square"});
  for (const std::string name : {"tw-mini", "cw-mini"}) {
    const auto el = hb::load(name, shift);
    const double square_time =
        hb::run_2d(el, hc::Grid::squarest(p), alpha, run_cc).total;
    for (int row_groups = 1; row_groups <= p; ++row_groups) {
      if (p % row_groups != 0) continue;
      const hc::Grid grid(row_groups, p / row_groups);
      const auto times = hb::run_2d(el, grid, alpha, run_cc);
      table.row() << name << grid.ranks_per_row_group()
                  << grid.ranks_per_col_group() << times.total << times.comm
                  << (square_time > 0 ? times.total / square_time : 0.0);
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

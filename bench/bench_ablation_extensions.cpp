// Extension algorithms on the 2D framework: triangle counting (the 2D
// analytics the paper's related work highlights), k-core decomposition
// and sampled harmonic centrality (the HPCGraph CPU lineage). Strong
// scaling sweep demonstrating that the framework's communication patterns
// generalize beyond the paper's six benchmarked algorithms.
#include "algos/centrality.hpp"
#include "algos/kcore.hpp"
#include "algos/triangle_count.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hc = hpcg::core;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const auto ranks = options.get_int_list("ranks", {1, 4, 16, 64});
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("Extension algorithms",
             "TC / k-core / harmonic centrality strong scaling (extension)");

  hpcg::util::Table table(
      {"graph", "algo", "ranks", "total_s", "comp_s", "comm_s", "speedup_vs_1"});
  for (const std::string name : {"fr-mini", "cw-mini"}) {
    const auto el = hb::load(name, shift);
    std::map<std::string, double> t1;
    for (const auto p : ranks) {
      const auto grid = hc::Grid::squarest(static_cast<int>(p));
      const auto parts = hc::Partitioned2D::build(el, grid);
      const auto topo = hb::bench_topology(grid.ranks(), alpha);
      const struct {
        const char* algo;
        std::function<void(hc::Dist2DGraph&)> body;
      } runs[] = {
          {"TC", [](hc::Dist2DGraph& g) { ha::triangle_count(g); }},
          {"KCORE", [](hc::Dist2DGraph& g) { ha::kcore(g); }},
          {"HARMONIC",
           [](hc::Dist2DGraph& g) { ha::harmonic_centrality(g, 4, 7); }},
      };
      for (const auto& run : runs) {
        const auto times = hb::run_parts(parts, topo, hb::bench_cost(alpha), run.body);
        if (!t1.count(run.algo)) t1[run.algo] = times.total;
        table.row() << name << run.algo << p << times.total << times.comp
                    << times.comm << t1[run.algo] / times.total;
      }
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every benchmark binary reproduces one table/figure of the paper: it
// generates the (miniature analog) workload, sweeps the paper's parameter
// axis, and prints the same rows/series the paper reports — total modeled
// time, and the computation/communication split where the figure shows it.
// Timing excludes graph construction (the paper times algorithm execution
// on an already-loaded graph): clocks are reset after the distributed
// structure is built.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "graph/datasets.hpp"
#include "graph/edge_list.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace hpcg::bench {

/// Modeled durations of one distributed run (seconds, max over ranks —
/// "the maximum time over all ranks is reported").
struct Times {
  double total = 0.0;
  double comp = 0.0;
  double comm = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

inline Times to_times(const comm::RunStats& stats) {
  Times t;
  t.total = stats.makespan();
  t.comp = stats.max_comp();
  t.comm = stats.max_comm();
  t.bytes = stats.bytes;
  t.messages = stats.messages;
  return t;
}

/// Latency calibration shared by the figure benchmarks: the analog inputs
/// are ~10^3-4x smaller than the paper's, so per-message latencies are
/// scaled by the same order to keep collectives in the bandwidth-dominated
/// regime the real runs operate in (override with --alpha-scale).
inline double alpha_scale(util::Options& options) {
  return options.get_double("alpha-scale", 1e-3);
}

inline comm::Topology bench_topology(int nranks, double alpha) {
  return comm::Topology::aimos(nranks).with_alpha_scale(alpha);
}

/// Cost model for the figure benchmarks: software (launch/runtime)
/// overheads scaled by the same calibration factor as the hardware
/// latencies, and compute charged per work item (vertices/edges touched)
/// at V100-class memory-bound rates rather than from measured thread-CPU
/// time — per-rank device throughput does not degrade with the number of
/// ranks simulated on this one host, but the host's caches do.
inline comm::CostModel bench_cost(double alpha) {
  comm::CostParams params;
  params.software_alpha_s *= alpha;
  params.kernel_launch_s *= alpha;
  params.compute_scale = 0.0;
  params.per_edge_s = 2e-10;    // ~5 Gedge/s
  params.per_vertex_s = 5e-10;  // ~2 Gvertex/s (state update + queue ops)
  return comm::CostModel(params);
}

/// Measured-compute variant (used where the result *is* a kernel-level
/// implementation difference, e.g. the Figure 10 SpMV-vs-graph-model PR
/// comparison): real thread-CPU time scaled to device speed.
inline comm::CostModel bench_cost_measured(double alpha) {
  comm::CostParams params;
  params.software_alpha_s *= alpha;
  params.kernel_launch_s *= alpha;
  return comm::CostModel(params);
}

/// Runs `body` over a prebuilt partition (reuse across sweep points to
/// avoid repartitioning the same graph). `run_options` carries the run-wide
/// async default for overlap benchmarks.
inline Times run_parts(const core::Partitioned2D& parts, const comm::Topology& topo,
                       const comm::CostModel& cost,
                       const std::function<void(core::Dist2DGraph&)>& body,
                       const comm::RunOptions& run_options = {}) {
  auto stats = comm::Runtime::run(
      parts.grid().ranks(), topo, cost, run_options, [&](comm::Comm& comm) {
        core::Dist2DGraph g(comm, parts);
        comm.reset_clocks();  // exclude construction, as the paper's timings do
        body(g);
      });
  return to_times(stats);
}

/// Builds the 2D partition, spawns the ranks, constructs the distributed
/// graph, resets the clocks, and times `body`.
inline Times run_2d(const graph::EdgeList& el, core::Grid grid,
                    const comm::Topology& topo, const comm::CostModel& cost,
                    const std::function<void(core::Dist2DGraph&)>& body,
                    const comm::RunOptions& run_options = {}) {
  const auto parts = core::Partitioned2D::build(el, grid);
  return run_parts(parts, topo, cost, body, run_options);
}

/// Calibrated-topology + calibrated-cost convenience.
inline Times run_2d(const graph::EdgeList& el, core::Grid grid, double alpha,
                    const std::function<void(core::Dist2DGraph&)>& body,
                    const comm::RunOptions& run_options = {}) {
  return run_2d(el, grid, bench_topology(grid.ranks(), alpha), bench_cost(alpha),
                body, run_options);
}

/// Loads a dataset analog once per (name, shift) — benches sweep rank
/// counts over the same input.
inline graph::EdgeList load(const std::string& name, int shift) {
  std::cerr << "[bench] generating " << name << " (shift " << shift << ") ... ";
  auto el = graph::load_dataset(name, shift);
  std::cerr << el.n << " vertices, " << el.m() << " directed edges\n";
  return el;
}

/// Billions of traversed edges per second at the modeled time scale.
inline double gteps(std::int64_t edges, double seconds) {
  return seconds > 0 ? static_cast<double>(edges) / seconds / 1e9 : 0.0;
}

/// Standard header printed by every figure benchmark.
inline void banner(const std::string& figure, const std::string& description) {
  std::cout << "==========================================================\n"
            << figure << ": " << description << "\n"
            << "(modeled seconds on the simulated AiMOS topology; shapes —\n"
            << " who wins, scaling factors, crossovers — reproduce the\n"
            << " paper; absolute values are simulator-scale)\n"
            << "==========================================================\n";
}

}  // namespace hpcg::bench

// Rank-placement ablation (the paper's future-work pointer:
// "communication-optimizing methods based on hardware network topology").
// World-rank neighbors share NVLink triplets and nodes, so mapping grid
// coordinates row-major packs row groups onto fast links while
// column-major packs column groups. A push algorithm reduces along the
// column group (its heavy exchange) and a pull algorithm along the row
// group — each should prefer the placement that puts its reduction on the
// fast links.
#include "algos/cc.hpp"
#include "algos/pagerank.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hc = hpcg::core;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const int p = static_cast<int>(options.get_int("ranks", 36));
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("Placement ablation",
             "row-major vs column-major rank placement (future-work knob)");

  const auto el = hb::load("wdc-mini", shift);
  const auto square = hc::Grid::squarest(p);
  hpcg::util::Table table(
      {"algo", "reduction dir", "placement", "total_s", "comm_s"});

  for (const auto placement : {hc::Placement::kRowMajor, hc::Placement::kColMajor}) {
    const hc::Grid grid(square.row_groups(), square.col_groups(), placement);
    const auto parts = hc::Partitioned2D::build(el, grid);
    const auto topo = hb::bench_topology(grid.ranks(), alpha);
    const char* name =
        placement == hc::Placement::kRowMajor ? "row-major" : "col-major";

    const auto cc = hb::run_parts(parts, topo, hb::bench_cost(alpha),
                                  [](hc::Dist2DGraph& g) {
                                    ha::connected_components(
                                        g, ha::CcOptions::all_push());
                                  });
    table.row() << "CC (push)" << "column group" << name << cc.total << cc.comm;

    const auto pr = hb::run_parts(parts, topo, hb::bench_cost(alpha),
                                  [](hc::Dist2DGraph& g) { ha::pagerank(g, 20); });
    table.row() << "PR (pull)" << "row group" << name << pr.total << pr.comm;
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

// Figure 10 reproduction: comparison against the cuGraph-like baseline on
// the 4-GPU single-node "zepy" topology with RMAT input (the paper used
// RMAT26 on 4xA100; larger inputs did not fit cuGraph there). The paper
// measures our PR ~1.47x *slower* (cuGraph's optimized SpMV wins where
// computation dominates) but our CC 3.25x and BFS 2.64x *faster* (general
// graph-model baselines without the 2D sparse/queue machinery lose).
// cuGraph's PR stand-in is the tuned SpMV kernel on the same 2D
// distribution; its CC/BFS stand-ins are the 1D-distribution baselines.
#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/pagerank.hpp"
#include "baselines/dist1d.hpp"
#include "baselines/spmv_pagerank.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hbl = hpcg::baselines;
namespace hc = hpcg::core;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const int p = static_cast<int>(options.get_int("ranks", 4));
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("Figure 10", "vs cuGraph-like on 4-rank zepy (PR loses, CC/BFS win)");

  // RMAT26 on 4 A100s is firmly compute-dominated; the analog keeps that
  // regime by using the largest RMAT the simulator turns around quickly.
  const auto el = hb::load("rmat17", shift);
  // Measured compute: the PR verdict hinges on real kernel implementation
  // differences (tight SpMV vs general graph model), which work-counting
  // would erase. At 4 ranks the host-simulation cache artifacts that
  // motivate work-counting elsewhere are minimal.
  const auto topo = hpcg::comm::Topology::zepy(p).with_alpha_scale(alpha);
  const auto cost = hb::bench_cost_measured(alpha);
  const auto grid = hc::Grid::squarest(p);

  // Ours.
  const auto ours_pr =
      hb::run_2d(el, grid, topo, cost, [](hc::Dist2DGraph& g) { ha::pagerank(g, 20); });
  const auto ours_cc = hb::run_2d(el, grid, topo, cost, [](hc::Dist2DGraph& g) {
    ha::connected_components(g, ha::CcOptions::all_push());
  });
  const auto ours_bfs =
      hb::run_2d(el, grid, topo, cost, [](hc::Dist2DGraph& g) { ha::bfs(g, 0); });

  // cuGraph-like: SpMV PageRank on the same 2D distribution.
  const auto cug_pr = hb::run_2d(el, grid, topo, cost, [](hc::Dist2DGraph& g) {
    hbl::spmv_pagerank(g, 20);
  });

  // cuGraph-like CC/BFS: general 1D-distribution implementations.
  const auto parts1d = hbl::Partitioned1D::build(el, p);
  auto run_1d = [&](const std::function<void(hbl::Dist1DGraph&)>& body) {
    auto stats = hpcg::comm::Runtime::run(
        p, topo, cost, hpcg::comm::RunOptions{}, [&](hpcg::comm::Comm& comm) {
      hbl::Dist1DGraph g(comm, parts1d);
      comm.reset_clocks();
      body(g);
    });
    return hb::to_times(stats);
  };
  const auto cug_cc =
      run_1d([](hbl::Dist1DGraph& g) { hbl::connected_components_1d_dense(g); });
  const auto cug_bfs =
      run_1d([](hbl::Dist1DGraph& g) { hbl::bfs_1d_dense(g, 0); });

  hpcg::util::Table table(
      {"algo", "ours_s", "cugraph_like_s", "ours/cugraph", "paper_observed"});
  table.row() << "PR" << ours_pr.total << cug_pr.total
              << ours_pr.total / cug_pr.total << "1.47x slower (ours)";
  table.row() << "CC" << ours_cc.total << cug_cc.total
              << ours_cc.total / cug_cc.total << "3.25x faster (ours)";
  table.row() << "BFS" << ours_bfs.total << cug_bfs.total
              << ours_bfs.total / cug_bfs.total << "2.64x faster (ours)";
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

// Vertex-distribution ablation (paper §3.4.2, "Vertex Distribution"): the
// paper uses a striped GID->row-group assignment, arguing it "offers
// comparable load balance to a random distribution without having varying
// group sizes". This benchmark quantifies the claim against the naive
// contiguous assignment on skewed inputs: per-rank edge imbalance and the
// resulting CC/PR times. (Not a paper figure; the design choice is called
// out in DESIGN.md and this is its supporting experiment.)
#include "algos/cc.hpp"
#include "algos/pagerank.hpp"
#include "core/balance.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace ha = hpcg::algos;
namespace hc = hpcg::core;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const int p = static_cast<int>(options.get_int("ranks", 64));
  const double alpha = hb::alpha_scale(options);
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("Distribution ablation",
             "striped vs contiguous vertex assignment (not a paper figure)");

  hpcg::util::Table table({"graph", "assignment", "edge_imbalance", "max_edges",
                           "PR_s", "CC_s"});
  for (const std::string name : {"wdc-mini", "rmat15"}) {
    const auto grid = hc::Grid::squarest(p);
    const auto topo = hb::bench_topology(grid.ranks(), alpha);
    for (const std::string assignment : {"contiguous", "striped", "random"}) {
      auto el = hb::load(name, shift);
      if (assignment == "random") hpcg::graph::randomize_ids(el, 777);
      const auto parts =
          hc::Partitioned2D::build(el, grid, /*striped=*/assignment == "striped");
      const auto balance = hc::partition_balance(parts);
      const auto pr = hb::run_parts(parts, topo, hb::bench_cost(alpha),
                                    [](hc::Dist2DGraph& g) { ha::pagerank(g, 20); });
      const auto cc = hb::run_parts(parts, topo, hb::bench_cost(alpha),
                                    [](hc::Dist2DGraph& g) {
                                      ha::connected_components(
                                          g, ha::CcOptions::all_push());
                                    });
      table.row() << name << assignment << balance.edge_imbalance()
                  << balance.max_edges << pr.total << cc.total;
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

// Table 4 reproduction: the graph input inventory. Prints the paper's
// datasets alongside the miniature analogs this build generates, with the
// analogs' actual vertex/edge counts and degree-skew statistics so the
// substitution is auditable.
#include <algorithm>

#include "graph/edge_list.hpp"
#include "harness.hpp"

namespace hb = hpcg::bench;
namespace hg = hpcg::graph;

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const std::string csv = options.get_string("csv", "");
  options.check_unknown();

  hb::banner("Table 4", "graph input datasets (paper originals vs. analogs)");

  hpcg::util::Table table({"analog", "paper graph", "paper |V|", "paper |E|",
                           "analog |V|", "analog |E| (sym)", "max deg",
                           "avg deg"});
  auto add_row = [&](const std::string& name, const std::string& paper_name,
                     const std::string& paper_v, const std::string& paper_e) {
    const auto el = hb::load(name, shift);
    std::vector<std::int64_t> deg(static_cast<std::size_t>(el.n), 0);
    for (const auto& e : el.edges) ++deg[static_cast<std::size_t>(e.u)];
    const auto max_deg = *std::max_element(deg.begin(), deg.end());
    table.row() << name << paper_name << paper_v << paper_e << el.n << el.m()
                << max_deg
                << static_cast<double>(el.m()) / static_cast<double>(el.n);
  };
  for (const auto& info : hg::dataset_catalog()) {
    add_row(info.name, info.paper_name, std::to_string(info.paper_vertices),
            std::to_string(info.paper_edges));
  }
  add_row("rmat14", "RMATXX (2^24-2^32 V, ef 16)", "2^24-2^32", "2^28-2^36");
  add_row("rand14", "RANDXX (same sizes)", "2^24-2^32", "2^28-2^36");

  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}

// Distributed PageRank (paper §4): "the standard PageRank algorithm as a
// pull-based vertex state program with dense communications" — every
// iteration accumulates neighbor shares locally, reduces partial sums
// across the row group and broadcasts the result to the column ghosts
// (Algorithm 2's PULL branch). Run for a fixed iteration count (the paper
// uses 20).
#pragma once

#include <vector>

#include "core/dist2d.hpp"
#include "core/sparse_comm.hpp"
#include "fault/checkpoint.hpp"

namespace hpcg::algos {

/// Returns the LID-indexed PageRank state (row and column slots are
/// globally consistent on return). Collective over the graph's grid. When
/// `ckpt` is non-null, the rank vector is snapshotted at superstep
/// boundaries and restored on entry after a fault-triggered restart.
/// With `opts` async-enabled, the row-slot update overlaps the ghost
/// broadcast each iteration; the summation order is unchanged, so the
/// returned vector is bit-identical either way.
std::vector<double> pagerank(core::Dist2DGraph& g, int iterations,
                             double damping = 0.85,
                             const core::SparseOptions& opts = {},
                             fault::Checkpointer* ckpt = nullptr);

/// Warm-start variant for the serving layer: continues iterating from a
/// caller-supplied LID-indexed state vector (row and ghost slots globally
/// consistent — i.e. exactly what a previous pagerank() call returned for
/// the same distribution). Running k cold iterations then j warm ones is
/// bit-identical to k+j cold iterations, since the loop carries no state
/// besides the rank vector. Throws std::invalid_argument when the state
/// size does not match the rank's LID span.
std::vector<double> pagerank_warm_start(core::Dist2DGraph& g,
                                        std::vector<double> state,
                                        int iterations, double damping = 0.85,
                                        const core::SparseOptions& opts = {},
                                        fault::Checkpointer* ckpt = nullptr);

/// Library-convenience variant: iterate until the global L1 delta drops
/// below `tolerance` (or `max_iterations`). The paper benchmarks fixed
/// iteration counts; real deployments usually want a tolerance.
struct PrToleranceResult {
  std::vector<double> rank;
  int iterations = 0;
  double final_delta = 0.0;
};
PrToleranceResult pagerank_tolerance(core::Dist2DGraph& g, double tolerance,
                                     int max_iterations = 1000,
                                     double damping = 0.85,
                                     const core::SparseOptions& opts = {},
                                     fault::Checkpointer* ckpt = nullptr);

/// Tolerance iteration from a caller-supplied state vector (the
/// warm-start analog of pagerank_tolerance; same state contract as
/// pagerank_warm_start). This is the engine under algos::delta_pagerank:
/// seeded with the pre-mutation fixpoint, the residual is concentrated at
/// the mutated endpoints and convergence takes a handful of iterations
/// instead of a cold run. Throws std::invalid_argument on a state size
/// mismatch.
PrToleranceResult pagerank_tolerance_warm(core::Dist2DGraph& g,
                                          std::vector<double> state,
                                          double tolerance,
                                          int max_iterations = 1000,
                                          double damping = 0.85,
                                          const core::SparseOptions& opts = {},
                                          fault::Checkpointer* ckpt = nullptr);

/// LID-indexed true vertex degrees (row + ghost slots), computed with one
/// dense pull exchange. Exposed for reuse by BFS's Beamer heuristics.
std::vector<double> global_degrees_state(core::Dist2DGraph& g);

}  // namespace hpcg::algos

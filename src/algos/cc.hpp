// Distributed connected components via color propagation (paper §4):
// every vertex starts with its own id as color and iteratively adopts the
// minimum color of its neighborhood until no color changes anywhere. The
// paper uses CC as the vehicle for its optimization study (Figure 6), so
// every combination of the §3.3/§3.4 strategies is exposed:
//
//   * direction: push (scatter updates to ghosts) or pull (gather from
//     ghosts);
//   * dense vs. sparse communications, plus the dense->sparse switch at
//     the N / max(R, C) update-count cutoff;
//   * active-vertex queues (push frontiers, or pull activation through
//     neighbor expansion).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algos/kernel_options.hpp"
#include "core/dist2d.hpp"
#include "core/sparse_comm.hpp"
#include "fault/checkpoint.hpp"

namespace hpcg::algos {

using core::Gid;

/// CC keeps a thin variant-selector struct (the Figure 6 ablation axes are
/// CC-specific), but all kernel-execution knobs — threading, chunk grain,
/// async/chunk opt-in for the exchanges — now live in the embedded unified
/// KernelOptions. The old `sparse_opts` member name is gone; construction
/// sites set `.kernel` instead (docs/ARCHITECTURE.md §15).
struct CcOptions {
  bool push = false;          // default pull, as the paper's Base variant
  bool sparse = false;        // always-sparse communications
  bool auto_switch = false;   // dense until the update count drops below cutoff
  bool vertex_queue = false;  // active-vertex queues (requires sparse phase)
  int max_iterations = 100000;
  /// Unified kernel options (threads, chunk grain, async opt-in for the
  /// exchanges in either mode; kRunDefault follows RunOptions). Labels are
  /// bit-identical for every setting.
  KernelOptions kernel = {};

  /// The named variants of Figure 6.
  static CcOptions base() { return {}; }
  static CcOptions sp() { return {.sparse = true}; }
  static CcOptions sp_sw() { return {.sparse = false, .auto_switch = true}; }
  static CcOptions sp_sw_vq() {
    return {.sparse = false, .auto_switch = true, .vertex_queue = true};
  }
  static CcOptions all_push() {
    return {.push = true, .sparse = false, .auto_switch = true, .vertex_queue = true};
  }
};

struct CcResult {
  std::vector<Gid> label;  // LID-indexed color (striped GID space)
  int iterations = 0;
  int dense_iterations = 0;
  int sparse_iterations = 0;
};

/// Collective over the graph's grid. When `ckpt` is non-null, the label
/// array, mode flags, and active queue are snapshotted at superstep
/// boundaries and restored on entry after a fault-triggered restart.
CcResult connected_components(core::Dist2DGraph& g, const CcOptions& options = {},
                              fault::Checkpointer* ckpt = nullptr);

}  // namespace hpcg::algos

#include "algos/label_prop.hpp"

#include <algorithm>

#include "core/activation.hpp"
#include "core/reduce25d.hpp"
#include "core/work.hpp"
#include "core/worker_pool.hpp"
#include "util/hash_table.hpp"

namespace hpcg::algos {

using core::Gid;
using core::Lid;
using core::PartialAggregate;
using core::VertexQueue;

namespace {

struct LabelUpdate {
  Gid gid;
  std::uint64_t label;
};

/// Per-chunk output of the hash-table construction kernel. Chunks read only
/// the label snapshot (labels change in stage 4, after the kernel), so each
/// builds its partial-aggregate run independently; concatenating the runs in
/// chunk order reproduces the serial record sequence exactly.
struct LpChunkOut {
  std::vector<core::PartialAggregate> partials;
  std::int64_t edges = 0;
};

}  // namespace

LpResult label_propagation(core::Dist2DGraph& g, int iterations,
                           const core::SparseOptions& opts,
                           fault::Checkpointer* ckpt) {
  const auto& lids = g.lids();
  const auto n_total = static_cast<std::size_t>(lids.n_total());
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  const bool async = opts.enabled(g.world());
  const int nseg = async ? opts.segments(g.world()) : 1;
  const std::int64_t grain = opts.resolved_grain(g.world());
  core::WorkerPool* pool = g.worker_pool(opts.resolved_threads(g.world()));
  std::vector<LpChunkOut> outs;
  // Fixed slots: an in-flight request holds pointers into these buffers.
  core::OwnerExchange owner_ex[2];
  std::vector<LabelUpdate> col_updates_buf;

  LpResult result;
  result.label.assign(n_total, 0);
  auto& label = result.label;
  for (Lid l = 0; l < lids.n_total(); ++l) {
    label[static_cast<std::size_t>(l)] = static_cast<std::uint64_t>(lids.to_gid(l));
  }

  // All row vertices are active in the first iteration.
  VertexQueue active(lids.n_total());
  for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) active.try_push(v);

  int start = 0;
  if (ckpt && ckpt->resume_epoch() >= 0) {
    ckpt->restore(g.world(), [&](fault::BlobReader& r) {
      start = static_cast<int>(r.get<std::int64_t>());
      result.total_updates = r.get<std::int64_t>();
      label = r.get_vec<std::uint64_t>();
      active.clear();
      for (const Lid v : r.get_vec<Lid>()) active.try_push(v);
    });
  }

  for (int it = start; it < iterations; ++it) {
    if (ckpt && ckpt->due(it)) {
      ckpt->save(g.world(), it, [&](fault::BlobWriter& w) {
        w.put<std::int64_t>(it);
        w.put<std::int64_t>(result.total_updates);
        w.put_vec(label);
        w.put_vec(active.items());
      });
    }
    // The superstep boundary: opens the telemetry span and consults the
    // fault injector, so superstep-keyed fault triggers fire for LP like
    // they do for BFS/PageRank/CC.
    auto superstep = g.world().superstep_span(
        "lp", static_cast<std::int64_t>(active.size()));
    // Stage 1: reduce locally-owned edges into per-vertex label counts and
    // serialize them as partial aggregates.
    //
    // The local reduction kernel builds per-vertex hash tables over the
    // active vertices' local edges. A hash insert (hash + probe chain +
    // atomicCAS/atomicAdd) costs several simple edge operations — the
    // "compute-intensive hash table construction" of §3.3.3.
    constexpr std::int64_t kHashOpCost = 6;  // in simple-edge-op units
    auto build_partials = [&](std::span<const Lid> vertices,
                              std::vector<PartialAggregate>& partials) {
      partials.clear();
      const auto chunks = core::edge_balanced_chunks(offsets, vertices, grain);
      if (outs.size() < chunks.size()) outs.resize(chunks.size());
      core::for_each_chunk(
          pool, chunks, [&](const core::Chunk& c, std::size_t ci, int) {
            LpChunkOut& out = outs[ci];
            out.partials.clear();
            out.edges = 0;
            for (std::size_t i = c.begin; i < c.end; ++i) {
              const Lid v = vertices[i];
              const std::int64_t degree = offsets[v + 1] - offsets[v];
              out.edges += degree;
              if (degree == 0) continue;
              util::CountingHashTable table(static_cast<std::size_t>(degree));
              for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
                table.add(label[static_cast<std::size_t>(adj[e])]);
              }
              const Gid v_gid = lids.to_gid(v);
              std::vector<std::uint64_t> flat;
              table.serialize(flat);
              for (std::size_t k = 0; k < flat.size(); k += 2) {
                out.partials.push_back({v_gid, flat[k], flat[k + 1]});
              }
            }
          });
      core::record_chunk_telemetry(g.world(), chunks, pool);
      std::int64_t edges = 0;
      for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
        edges += outs[ci].edges;
        partials.insert(partials.end(), outs[ci].partials.begin(),
                        outs[ci].partials.end());
      }
      core::charge_kernel(g.world(), static_cast<std::int64_t>(vertices.size()),
                          edges * kHashOpCost);
    };

    // Stage 2: a row-group Alltoallv moves each vertex's partials to its
    // hierarchical owner. Async mode slices the active set and pipelines
    // chunk k+1's hash-table construction under chunk k's in-flight
    // Alltoallv; counts are additive, so the owner merge sees the same
    // multiset of records in either mode.
    std::vector<PartialAggregate> received;
    if (async) {
      const std::span<const Lid> items(active.items());
      const std::size_t total = items.size();
      std::vector<PartialAggregate> chunk_partials[2];
      auto build_and_issue = [&](int k) {
        const std::size_t lo = total * static_cast<std::size_t>(k) /
                               static_cast<std::size_t>(nseg);
        const std::size_t hi = total * static_cast<std::size_t>(k + 1) /
                               static_cast<std::size_t>(nseg);
        build_partials(items.subspan(lo, hi - lo), chunk_partials[k & 1]);
        core::exchange_to_owners_issue(
            g, std::span<const PartialAggregate>(chunk_partials[k & 1]),
            owner_ex[k & 1]);
      };
      build_and_issue(0);
      for (int k = 0; k < nseg; ++k) {
        if (k + 1 < nseg) build_and_issue(k + 1);
        owner_ex[k & 1].request.wait();
        received.insert(received.end(), owner_ex[k & 1].recv.begin(),
                        owner_ex[k & 1].recv.end());
      }
    } else {
      std::vector<PartialAggregate> partials;
      build_partials(std::span<const Lid>(active.items()), partials);
      received = core::exchange_to_owners(
          g, std::span<const PartialAggregate>(partials));
    }

    // Stage 3: the owner finishes the mode per owned vertex. Sort by
    // vertex so each vertex's records are contiguous, then reduce each run
    // through a hash table (ties toward the smaller label, matching the
    // reference oracle).
    // Owner-side merge kernel (sort + hash-table reduction per vertex run).
    core::charge_kernel(g.world(), 0,
                        static_cast<std::int64_t>(received.size()) * kHashOpCost);
    std::sort(received.begin(), received.end(),
              [](const PartialAggregate& a, const PartialAggregate& b) {
                return a.vertex < b.vertex;
              });
    std::vector<LabelUpdate> updates;
    std::size_t i = 0;
    while (i < received.size()) {
      std::size_t j = i;
      while (j < received.size() && received[j].vertex == received[i].vertex) ++j;
      util::CountingHashTable table(j - i);
      for (std::size_t k = i; k < j; ++k) {
        table.add(received[k].key, received[k].weight);
      }
      const std::uint64_t mode = table.mode();
      const Gid v_gid = received[i].vertex;
      const Lid v = lids.row_lid(v_gid);
      if (mode != label[static_cast<std::size_t>(v)]) {
        updates.push_back({v_gid, mode});
      }
      i = j;
    }

    // Stage 4: finalized labels go back out to the row group...
    VertexQueue changed_rows(lids.n_total());
    const auto row_updates =
        g.row_comm().allgatherv(std::span<const LabelUpdate>(updates));

    // ... and then to the column group in the standard fashion (each
    // changed vertex is contributed by its unique row/column overlap rank).
    // Async mode issues the column gather first and applies the row labels
    // under it; row and column LID slots are disjoint, so the write order
    // does not matter.
    std::vector<LabelUpdate> col_out;
    for (const auto& u : row_updates) {
      if (lids.has_col_gid(u.gid)) col_out.push_back(u);
    }
    comm::Request col_req;
    if (async) {
      col_req = g.col_comm().iallgatherv(std::span<const LabelUpdate>(col_out),
                                         col_updates_buf);
    }
    for (const auto& u : row_updates) {
      label[static_cast<std::size_t>(lids.row_lid(u.gid))] = u.label;
      changed_rows.try_push(lids.row_lid(u.gid));
    }
    result.total_updates += static_cast<std::int64_t>(row_updates.size());
    if (!async) {
      col_updates_buf = g.col_comm().allgatherv(std::span<const LabelUpdate>(col_out));
    }
    col_req.wait();
    for (const auto& u : col_updates_buf) {
      label[static_cast<std::size_t>(lids.col_lid(u.gid))] = u.label;
    }

    if (it + 1 < iterations) {
      active = core::pull_activation(g, changed_rows);
    }
  }
  return result;
}

}  // namespace hpcg::algos

// Distributed triangle counting on the 2D structure.
//
// A generalizability demonstration beyond the paper's six algorithms: 2D
// triangle counting is the related work its §1 cites (Tom & Karypis,
// ICPP'19) as one of the few prior uses of 2D distributions for graph
// analytics. The implementation composes three pieces of this framework:
//
//   1. degree-ordered orientation (the standard wedge-explosion guard:
//      only enumerate wedges at a vertex over its higher-ordered
//      neighbors, so per-vertex work is O(out_deg^2) with out_deg bounded
//      by ~sqrt(2M));
//   2. the 2.5D owner exchange assembles each vertex's *full* oriented
//      neighbor list at one rank (local adjacency is only a block slice);
//   3. block-addressed packet swapping routes each wedge's closing-edge
//      existence query (v, w) to the unique rank owning block
//      (row_group(v), col_group(w)), which answers from a local edge hash.
//
// Multi-edges are deduplicated internally (triangles are a simple-graph
// notion).
#pragma once

#include <cstdint>

#include "core/dist2d.hpp"

namespace hpcg::algos {

struct TcResult {
  std::int64_t triangles = 0;
  std::int64_t wedges_checked = 0;  // closing-edge queries issued (global)
};

/// Collective over the graph's grid. Every rank returns the global count.
TcResult triangle_count(core::Dist2DGraph& g);

namespace ref {
/// Sequential oracle (exact, simple-graph semantics).
std::int64_t triangle_count(const graph::EdgeList& el);
}  // namespace ref

}  // namespace hpcg::algos

// Distributed k-core decomposition on the 2D structure.
//
// Another complex-reduction workload in the HPCGraph lineage (the CPU
// HPCGraph study the paper extends includes k-core). Core numbers are
// computed with the convergent H-operator (Lü et al.): starting from
// h(v) = degree(v), repeatedly set h(v) to the H-index of its neighbors'
// h values (the largest h such that at least h neighbors have value >= h);
// the fixpoint is the coreness. Like Label Propagation's mode, the
// H-index is a non-decomposable neighborhood reduction, so it runs through
// the 2.5D pattern: per-rank partial value counts -> hierarchical owner ->
// finalized values re-broadcast, with pull activation driving the
// iteration tail.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dist2d.hpp"

namespace hpcg::algos {

struct KcoreResult {
  std::vector<std::int64_t> core;  // LID-indexed coreness
  int iterations = 0;
};

/// Collective over the graph's grid. Multigraph semantics: parallel edges
/// each contribute to degree and to the H-index multiset.
KcoreResult kcore(core::Dist2DGraph& g);

namespace ref {
/// Sequential oracle: bucket peeling (multigraph-aware).
std::vector<std::int64_t> kcore(const graph::EdgeList& el);
}  // namespace ref

}  // namespace hpcg::algos

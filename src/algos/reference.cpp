#include "algos/reference.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>

namespace hpcg::algos::ref {

std::vector<std::int64_t> bfs_levels(const Csr& csr, Gid root) {
  if (root < 0 || root >= csr.n()) throw std::out_of_range("bfs root out of range");
  std::vector<std::int64_t> level(static_cast<std::size_t>(csr.n()), -1);
  std::deque<Gid> frontier{root};
  level[static_cast<std::size_t>(root)] = 0;
  while (!frontier.empty()) {
    const Gid v = frontier.front();
    frontier.pop_front();
    for (const Gid u : csr.neighbors(v)) {
      if (level[static_cast<std::size_t>(u)] < 0) {
        level[static_cast<std::size_t>(u)] = level[static_cast<std::size_t>(v)] + 1;
        frontier.push_back(u);
      }
    }
  }
  return level;
}

std::vector<double> pagerank(const Csr& csr, int iterations, double damping) {
  const auto n = static_cast<std::size_t>(csr.n());
  std::vector<double> pr(n, 1.0 / static_cast<double>(csr.n()));
  std::vector<double> next(n);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (Gid v = 0; v < csr.n(); ++v) {
      const double share = pr[static_cast<std::size_t>(v)] /
                           static_cast<double>(std::max<std::int64_t>(csr.degree(v), 1));
      for (const Gid u : csr.neighbors(v)) {
        next[static_cast<std::size_t>(u)] += share;
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      next[v] = (1.0 - damping) / static_cast<double>(csr.n()) + damping * next[v];
    }
    pr.swap(next);
  }
  return pr;
}

std::vector<Gid> connected_components(const EdgeList& el) {
  std::vector<Gid> parent(static_cast<std::size_t>(el.n));
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](Gid v) {
    Gid root = v;
    while (parent[static_cast<std::size_t>(root)] != root) {
      root = parent[static_cast<std::size_t>(root)];
    }
    while (parent[static_cast<std::size_t>(v)] != root) {
      const Gid next = parent[static_cast<std::size_t>(v)];
      parent[static_cast<std::size_t>(v)] = root;
      v = next;
    }
    return root;
  };
  for (const auto& e : el.edges) {
    const Gid a = find(e.u);
    const Gid b = find(e.v);
    if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  }
  std::vector<Gid> label(static_cast<std::size_t>(el.n));
  for (Gid v = 0; v < el.n; ++v) label[static_cast<std::size_t>(v)] = find(v);
  return label;
}

std::vector<Gid> max_weight_matching(const Csr& csr) {
  if (!csr.weighted()) throw std::invalid_argument("matching needs edge weights");
  const auto n = static_cast<std::size_t>(csr.n());
  std::vector<Gid> mate(n, -1);
  // Iterate the locally-dominant process: each unmatched vertex points at
  // its heaviest unmatched neighbor (ties toward the smaller id); mutual
  // pairs are committed. Terminates because each round either matches a
  // pair along the globally heaviest remaining edge or halts.
  for (;;) {
    std::vector<Gid> pointer(n, -1);
    bool any_pointer = false;
    for (Gid v = 0; v < csr.n(); ++v) {
      if (mate[static_cast<std::size_t>(v)] >= 0) continue;
      double best_w = -1.0;
      Gid best_u = -1;
      const auto neigh = csr.neighbors(v);
      const auto weights = csr.neighbor_weights(v);
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        const Gid u = neigh[i];
        if (u == v || mate[static_cast<std::size_t>(u)] >= 0) continue;
        if (weights[i] > best_w || (weights[i] == best_w && u < best_u)) {
          best_w = weights[i];
          best_u = u;
        }
      }
      if (best_u >= 0) {
        pointer[static_cast<std::size_t>(v)] = best_u;
        any_pointer = true;
      }
    }
    if (!any_pointer) break;
    for (Gid v = 0; v < csr.n(); ++v) {
      const Gid u = pointer[static_cast<std::size_t>(v)];
      if (u >= 0 && u > v && pointer[static_cast<std::size_t>(u)] == v) {
        mate[static_cast<std::size_t>(v)] = u;
        mate[static_cast<std::size_t>(u)] = v;
      }
    }
  }
  return mate;
}

std::vector<std::uint64_t> label_propagation(const Csr& csr, int iterations) {
  const auto n = static_cast<std::size_t>(csr.n());
  std::vector<std::uint64_t> label(n);
  std::iota(label.begin(), label.end(), 0);
  std::vector<std::uint64_t> next(n);
  for (int it = 0; it < iterations; ++it) {
    for (Gid v = 0; v < csr.n(); ++v) {
      std::map<std::uint64_t, std::uint64_t> counts;
      for (const Gid u : csr.neighbors(v)) ++counts[label[static_cast<std::size_t>(u)]];
      std::uint64_t best = label[static_cast<std::size_t>(v)];
      std::uint64_t best_count = 0;
      for (const auto& [l, c] : counts) {
        if (c > best_count || (c == best_count && l < best)) {
          best = l;
          best_count = c;
        }
      }
      next[static_cast<std::size_t>(v)] = best_count == 0 ? label[static_cast<std::size_t>(v)] : best;
    }
    label.swap(next);
  }
  return label;
}

std::vector<Gid> min_neighbor_forest(const Csr& csr) {
  std::vector<Gid> parent(static_cast<std::size_t>(csr.n()));
  for (Gid v = 0; v < csr.n(); ++v) {
    Gid best = v;
    for (const Gid u : csr.neighbors(v)) best = std::min(best, u);
    parent[static_cast<std::size_t>(v)] = best;
  }
  return parent;
}

std::vector<Gid> pointer_jump_roots(const Csr& csr) {
  auto parent = min_neighbor_forest(csr);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t v = 0; v < parent.size(); ++v) {
      const Gid next = parent[static_cast<std::size_t>(parent[v])];
      if (next != parent[v]) {
        parent[v] = next;
        changed = true;
      }
    }
  }
  return parent;
}

double matching_weight(const Csr& csr, const std::vector<Gid>& mate) {
  double total = 0.0;
  for (Gid v = 0; v < csr.n(); ++v) {
    const Gid u = mate[static_cast<std::size_t>(v)];
    if (u < 0 || u < v) continue;  // count each pair once
    const auto neigh = csr.neighbors(v);
    const auto weights = csr.neighbor_weights(v);
    double w = -1.0;
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      if (neigh[i] == u) w = std::max(w, weights[i]);
    }
    if (w < 0) throw std::logic_error("mate edge not present in graph");
    total += w;
  }
  return total;
}

}  // namespace hpcg::algos::ref

// Batched multi-source BFS: up to 64 sources traverse the graph in ONE
// direction-optimizing superstep loop, GraphBLAST-style — the batch's
// frontiers are packed into a single 64-bit word per vertex (bit s set =
// "vertex reached from source s"), and the words ride the existing sparse
// exchange machinery with a bitwise-OR reduction. One superstep costs one
// round of collectives regardless of batch size, which is where the
// serving layer's throughput multiplier comes from.
//
// Exactness: bit s is set on vertex v exactly at superstep dist_s(v).
// Induction over supersteps — a vertex enters the frontier the step after
// its mask last changed, and propagation reads the *previous* superstep's
// masks (`prev`), never bits gained mid-step, mirroring single-source
// BFS's "level[u] == cur" tests. The OR-reduction is monotone and
// order-insensitive, so async chunked exchanges and any
// direction-optimization schedule all yield the same per-source levels;
// the returned levels are therefore bit-identical to running algos::bfs
// once per source (asserted by tests/test_serve.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algos/kernel_options.hpp"
#include "core/dist2d.hpp"
#include "core/sparse_comm.hpp"

namespace hpcg::algos {

using graph::Gid;

/// DEPRECATED alias kept for one release: MS-BFS now takes the unified
/// KernelOptions directly (direction_optimizing / alpha / beta keep their
/// names; the old `.sparse` sub-struct's async/chunk fields are now
/// top-level members of the same struct). See docs/ARCHITECTURE.md §15.
/// Direction switching uses the aggregate (union-of-frontiers) statistics;
/// any schedule yields identical levels, the heuristic only affects
/// modeled cost.
using MsBfsOptions = KernelOptions;

struct MsBfsResult {
  static constexpr int kMaxBatch = 64;
  static constexpr std::int64_t kUnvisited = std::int64_t{1} << 62;

  int batch = 0;
  /// level[s] is the LID-indexed level vector for source s, laid out
  /// exactly like BfsResult::level (kUnvisited for unreached vertices).
  std::vector<std::vector<std::int64_t>> level;
  /// Per-source eccentricity + 1 (matches BfsResult::depth: the number of
  /// supersteps a single-source run from that root would execute).
  std::vector<std::int64_t> depth;
  std::int64_t supersteps = 0;  // shared loop iterations for the batch
  int top_down_steps = 0;
  int bottom_up_steps = 0;
};

/// Runs BFS from every root in `roots_original` (1..64 original-id
/// sources; duplicates are legal) in one shared superstep loop.
/// Collective over the graph's grid. Throws std::invalid_argument for an
/// empty or oversized batch, or a root outside [0, n).
MsBfsResult multi_source_bfs(core::Dist2DGraph& g,
                             std::span<const Gid> roots_original,
                             const MsBfsOptions& options = {});

}  // namespace hpcg::algos

// Distributed breadth-first search (paper §4): the standard hybrid
// direction-optimizing method of Beamer et al. with the original static
// parameters. Top-down steps are sparse pushes over the frontier queue
// (Manhattan-collapsed edge expansion); bottom-up steps scan unvisited row
// vertices against the current level and exchange with a sparse pull.
#pragma once

#include <cstdint>
#include <vector>

#include "algos/kernel_options.hpp"
#include "core/dist2d.hpp"
#include "core/sparse_comm.hpp"
#include "fault/checkpoint.hpp"

namespace hpcg::algos {

using core::Gid;

/// DEPRECATED alias kept for one release: BFS now takes the unified
/// KernelOptions directly (direction_optimizing / alpha / beta keep their
/// names; the old `.sparse` sub-struct's async/chunk fields are now
/// top-level members of the same struct). See docs/ARCHITECTURE.md §15.
using BfsOptions = KernelOptions;

struct BfsResult {
  std::vector<std::int64_t> level;  // LID-indexed; kUnvisited if unreached
  std::int64_t depth = 0;           // number of BFS levels expanded
  int top_down_steps = 0;
  int bottom_up_steps = 0;

  static constexpr std::int64_t kUnvisited = std::int64_t{1} << 62;
};

/// Runs BFS from `root` (an *original* vertex id; the striped relabeling is
/// applied internally). Collective over the graph's grid. When `ckpt` is
/// non-null, the full traversal state is snapshotted at superstep
/// boundaries and restored on entry after a fault-triggered restart.
BfsResult bfs(core::Dist2DGraph& g, Gid root, const BfsOptions& options = {},
              fault::Checkpointer* ckpt = nullptr);

/// BFS tracking parents instead of bare levels — the paper's alternative
/// state choice ("BFS will update parent or level state information", as
/// the Graph500 requires). The combined (level, parent) state travels
/// through the same sparse exchanges with a lexicographic-minimum custom
/// reduction, so all owners agree on one deterministic parent per vertex.
struct BfsParentResult {
  std::vector<std::int64_t> level;  // LID-indexed
  std::vector<Gid> parent;          // LID-indexed striped GID; -1 unreached
  std::int64_t depth = 0;
};

BfsParentResult bfs_parents(core::Dist2DGraph& g, Gid root,
                            const BfsOptions& options = {});

}  // namespace hpcg::algos

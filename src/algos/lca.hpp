// Distributed least common ancestor queries — the second packet-swapping
// application the paper names ("pointer jumping and least common ancestor
// traversal [4, 5]"). Operates on the same min-neighbor forest as
// pointer_jump: depths are computed with distance-accumulating pointer
// doubling, then each query's deeper endpoint is lifted level by level
// (all queries progress together, one packet round per level) until the
// endpoints meet.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dist2d.hpp"

namespace hpcg::algos {

using core::Gid;

/// An LCA query over the min-neighbor forest; vertices are original ids.
struct LcaQuery {
  Gid a;
  Gid b;
};

struct LcaResult {
  /// Per query: the LCA's original id, or -1 when the endpoints are in
  /// different trees.
  std::vector<Gid> lca;
  int rounds = 0;
};

/// Collective over the graph's grid. Every rank passes the same query list
/// and receives the full answer vector.
LcaResult lca_queries(core::Dist2DGraph& g, const std::vector<LcaQuery>& queries);

namespace ref {
/// Sequential oracle over the same forest definition (min-neighbor parent
/// in the id space of `csr`).
std::vector<Gid> lca_queries(const graph::Csr& csr,
                             const std::vector<LcaQuery>& queries);
}  // namespace ref

}  // namespace hpcg::algos

#include "algos/triangle_count.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "algos/pagerank.hpp"  // global_degrees_state
#include "graph/edge_list.hpp"
#include "core/packet.hpp"
#include "core/reduce25d.hpp"
#include "core/work.hpp"

namespace hpcg::algos {

using core::Gid;
using core::Lid;

namespace {

/// Packed undirected-pair key; valid while n^2 fits in 63 bits (n < 2^31,
/// far above simulated sizes).
std::int64_t edge_key(Gid n, Gid a, Gid b) { return a * n + b; }

/// Closing-edge query: does edge (v, w) exist? Routed to the block owner.
struct WedgeQuery {
  Gid v;
  Gid w;
};

/// Degree-ordered orientation rank: (degree, gid) packed for comparison.
struct Orient {
  std::int64_t degree;
  Gid gid;
  friend bool operator<(const Orient& a, const Orient& b) {
    return a.degree < b.degree || (a.degree == b.degree && a.gid < b.gid);
  }
};

}  // namespace

TcResult triangle_count(core::Dist2DGraph& g) {
  const auto& lids = g.lids();
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  const Gid n = g.n();

  // Degrees for every local slot (row + ghosts) drive the orientation.
  const auto degree = global_degrees_state(g);
  const auto orient_of = [&](Lid l) {
    return Orient{static_cast<std::int64_t>(degree[static_cast<std::size_t>(l)]),
                  lids.to_gid(l)};
  };

  // Local (deduplicated) edge hash for answering closing-edge queries.
  std::unordered_set<std::int64_t> local_edges;
  local_edges.reserve(static_cast<std::size_t>(g.m_local()));
  for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
    const Gid v_gid = lids.to_gid(v);
    for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      local_edges.insert(edge_key(n, v_gid, lids.to_gid(adj[e])));
    }
  }

  // Oriented partial adjacency -> hierarchical owners; each record carries
  // the neighbor's degree so the owner can re-derive the orientation.
  std::vector<core::PartialAggregate> partials;
  for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
    const Orient ov = orient_of(v);
    for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const Lid w = adj[e];
      if (ov < orient_of(w)) {
        partials.push_back(
            {lids.to_gid(v), static_cast<std::uint64_t>(lids.to_gid(w)),
             static_cast<std::uint64_t>(degree[static_cast<std::size_t>(w)])});
      }
    }
  }
  core::charge_kernel(g.world(), lids.n_row(), g.m_local());
  auto received =
      core::exchange_to_owners(g, std::span<const core::PartialAggregate>(partials));

  // Owner: per vertex, sort the full oriented neighbor list and enumerate
  // wedge pairs (v, w) with orient(v) < orient(w).
  std::sort(received.begin(), received.end(),
            [](const core::PartialAggregate& a, const core::PartialAggregate& b) {
              if (a.vertex != b.vertex) return a.vertex < b.vertex;
              if (a.weight != b.weight) return a.weight < b.weight;  // degree
              return a.key < b.key;                                  // gid
            });
  std::vector<WedgeQuery> queries;
  {
    std::size_t i = 0;
    while (i < received.size()) {
      std::size_t j = i;
      while (j < received.size() && received[j].vertex == received[i].vertex) ++j;
      for (std::size_t a = i; a < j; ++a) {
        if (a > i && received[a].key == received[a - 1].key) continue;  // dedup
        for (std::size_t b = a + 1; b < j; ++b) {
          if (received[b].key == received[a].key) continue;
          if (b > a + 1 && received[b].key == received[b - 1].key) continue;
          queries.push_back({static_cast<Gid>(received[a].key),
                             static_cast<Gid>(received[b].key)});
        }
      }
      i = j;
    }
  }
  core::charge_kernel(g.world(), static_cast<std::int64_t>(received.size()),
                      static_cast<std::int64_t>(queries.size()));

  // Route each query to the unique block owning edge (v, w) and answer
  // from the local hash.
  auto arrived = core::packet_swap_blocks(
      g, std::span<const WedgeQuery>(queries),
      [](const WedgeQuery& q) { return std::pair<Gid, Gid>(q.v, q.w); });
  std::int64_t hits = 0;
  for (const auto& q : arrived) {
    if (local_edges.contains(edge_key(n, q.v, q.w))) ++hits;
  }
  core::charge_kernel(g.world(), 0, static_cast<std::int64_t>(arrived.size()));

  TcResult result;
  std::int64_t totals[2] = {hits, static_cast<std::int64_t>(queries.size())};
  g.world().allreduce(std::span<std::int64_t>(totals, 2), comm::ReduceOp::kSum);
  result.triangles = totals[0];
  result.wedges_checked = totals[1];
  return result;
}

namespace ref {

std::int64_t triangle_count(const graph::EdgeList& el) {
  // Dedup + degree-ordered orientation, then set intersections.
  auto degree = graph::out_degrees(el);
  const auto orient_less = [&](Gid a, Gid b) {
    return degree[static_cast<std::size_t>(a)] < degree[static_cast<std::size_t>(b)] ||
           (degree[static_cast<std::size_t>(a)] == degree[static_cast<std::size_t>(b)] &&
            a < b);
  };
  std::vector<std::vector<Gid>> out(static_cast<std::size_t>(el.n));
  for (const auto& e : el.edges) {
    if (e.u != e.v && orient_less(e.u, e.v)) {
      out[static_cast<std::size_t>(e.u)].push_back(e.v);
    }
  }
  for (auto& list : out) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  std::int64_t triangles = 0;
  for (Gid u = 0; u < el.n; ++u) {
    const auto& neighbors = out[static_cast<std::size_t>(u)];
    for (std::size_t a = 0; a < neighbors.size(); ++a) {
      for (std::size_t b = a + 1; b < neighbors.size(); ++b) {
        // Triangle closed iff the edge between the two higher-ordered
        // endpoints exists (in either oriented direction).
        const Gid v = neighbors[a];
        const Gid w = neighbors[b];
        const auto& from_v = out[static_cast<std::size_t>(v)];
        const auto& from_w = out[static_cast<std::size_t>(w)];
        if (std::binary_search(from_v.begin(), from_v.end(), w) ||
            std::binary_search(from_w.begin(), from_w.end(), v)) {
          ++triangles;
        }
      }
    }
  }
  return triangles;
}

}  // namespace ref

}  // namespace hpcg::algos

// Distributed label propagation community detection (paper §4): the
// "2.5D" variant. The mode-of-neighborhood reduction is too expensive to
// replicate, so each rank reduces its locally-owned edges into per-vertex
// label-count hash tables, ships the partial tables to hierarchical owners
// inside the row group (one Alltoallv), lets the owner finish the mode, and
// broadcasts finalized labels back across the row group and then the
// column group. Runs a fixed number of synchronous iterations (paper: 20)
// with pull-style vertex activation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dist2d.hpp"
#include "core/sparse_comm.hpp"
#include "fault/checkpoint.hpp"

namespace hpcg::algos {

struct LpResult {
  std::vector<std::uint64_t> label;  // LID-indexed (striped GID space)
  std::int64_t total_updates = 0;
};

/// Collective over the graph's grid. With `opts` async-enabled, the
/// hash-table stage is chunked and pipelined under the in-flight owner
/// Alltoallv, and the column broadcast overlaps the row-update
/// application; labels are bit-identical either way (counts are additive
/// and the mode tie-break is deterministic). When `ckpt` is non-null, the
/// label/activation state is snapshotted at iteration boundaries and
/// restored on entry after a fault-triggered restart, exactly like
/// BFS/PageRank/CC — a recovered run resumes from the last committed
/// epoch instead of silently replaying from iteration 0.
LpResult label_propagation(core::Dist2DGraph& g, int iterations = 20,
                           const core::SparseOptions& opts = {},
                           fault::Checkpointer* ckpt = nullptr);

}  // namespace hpcg::algos

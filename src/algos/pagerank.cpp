#include "algos/pagerank.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/dense_comm.hpp"
#include "core/work.hpp"
#include "core/simd.hpp"
#include "core/worker_pool.hpp"

namespace hpcg::algos {

using core::Direction;
using core::Lid;

std::vector<double> global_degrees_state(core::Dist2DGraph& g) {
  const auto& lids = g.lids();
  std::vector<double> deg(static_cast<std::size_t>(lids.n_total()), 0.0);
  for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
    deg[static_cast<std::size_t>(v)] = static_cast<double>(g.csr().degree(v));
  }
  // Row AllReduce sums the per-block local degrees into true degrees; the
  // column broadcast fills the ghost slots.
  core::charge_kernel(g.world(), lids.n_row(), 0);
  core::dense_exchange(g, std::span(deg), comm::ReduceOp::kSum, Direction::kPull);
  return deg;
}

namespace {

/// Shared driver: runs up to `max_iterations` pull steps; when `tolerance`
/// is positive, also reduces the global L1 delta each iteration and stops
/// once it falls below. Returns (iterations run, final delta).
std::pair<int, double> pagerank_loop(core::Dist2DGraph& g, std::vector<double>& pr,
                                     int max_iterations, double damping,
                                     double tolerance,
                                     const core::SparseOptions& opts,
                                     fault::Checkpointer* ckpt) {
  const auto& lids = g.lids();
  const auto n_total = static_cast<std::size_t>(lids.n_total());
  const double n_global = static_cast<double>(g.n());
  const std::vector<double> degree = global_degrees_state(g);
  std::vector<double> acc(n_total);
  std::vector<double> contrib(n_total);
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();

  const std::int64_t grain = opts.resolved_grain(g.world());
  core::WorkerPool* pool = g.worker_pool(opts.resolved_threads(g.world()));
  // Fixed edge-balanced chunking of the row range; the gather writes only
  // acc slots of its own chunk and reads only the per-iteration `contrib`
  // snapshot, so chunks are fully independent and every per-vertex sum is
  // a pure function of the row — bit-identical for any thread count.
  const auto chunks = core::edge_balanced_chunks(
      offsets, static_cast<std::size_t>(g.row_lid_begin()),
      static_cast<std::size_t>(g.row_lid_end()), grain);

  double delta = 0.0;
  int it = 0;
  if (ckpt && ckpt->resume_epoch() >= 0) {
    ckpt->restore(g.world(), [&](fault::BlobReader& r) {
      it = static_cast<int>(r.get<std::int64_t>());
      pr = r.get_vec<double>();
    });
  }
  for (; it < max_iterations; ++it) {
    if (ckpt && ckpt->due(it)) {
      ckpt->save(g.world(), it, [&](fault::BlobWriter& w) {
        w.put<std::int64_t>(it);
        w.put_vec(pr);
      });
    }
    // Dense pull PageRank touches every vertex each superstep.
    auto superstep = g.world().superstep_span("pagerank", g.n());
    std::fill(acc.begin(), acc.end(), 0.0);
    // Hoist the per-vertex share out of the edge loop: contrib[u] is the
    // same division the naive gather performs per EDGE, computed once per
    // vertex instead, so the hot loop drops to one load + add per edge.
    for (std::size_t u = 0; u < n_total; ++u) {
      contrib[u] = pr[u] / std::max(degree[u], 1.0);
    }
    core::for_each_chunk(
        pool, chunks, [&](const core::Chunk& c, std::size_t, int) {
          // Eight-lane strided row sum (core/simd.hpp, docs/KERNELS.md).
          // The lane order is a fixed function of the row's local edge
          // list — never of threads, chunk grain, async mode, or the SIMD
          // path taken — so repeat runs, thread flips and recovery replays
          // stay bit-identical; cross-layout comparisons were always
          // tolerance-based. Eight independent add chains (or gathers +
          // lane-wise vector adds) overlap in the pipeline where a single
          // running sum serializes on FP-add latency.
          for (std::size_t vs = c.begin; vs < c.end; ++vs) {
            const Lid v = static_cast<Lid>(vs);
            acc[vs] = core::lane_gather_sum(contrib.data(), adj.data(),
                                            offsets[v], offsets[v + 1]);
          }
        });
    core::record_chunk_telemetry(g.world(), chunks, pool);
    core::charge_kernel(g.world(), lids.n_total(), g.m_local());
    double local_delta = 0.0;
    if (opts.enabled(g.world())) {
      // Row slots of `acc` are final once the internal allreduce resolves;
      // updating them rides under the in-flight ghost broadcast. Iteration
      // stays ascending (row range first, the rest after the wait), so
      // `pr` and the delta sum are bit-identical to the blocking path.
      comm::Request req = core::dense_exchange_async(
          g, std::span(acc), comm::ReduceOp::kSum, Direction::kPull);
      const auto row_begin = static_cast<std::size_t>(lids.c_offset_r());
      const auto row_end = row_begin + static_cast<std::size_t>(lids.n_row());
      for (std::size_t l = row_begin; l < row_end; ++l) {
        const double next = (1.0 - damping) / n_global + damping * acc[l];
        if (tolerance > 0.0 && g.rank_r() == 0) {
          local_delta += std::abs(next - pr[l]);
        }
        pr[l] = next;
      }
      core::charge_kernel(g.world(), lids.n_row(), 0);
      if (tolerance > 0.0) {
        // The world delta reduction only needs row slots, so it too rides
        // under the in-flight ghost broadcast (disjoint comm groups).
        delta = g.world().allreduce_one(local_delta, comm::ReduceOp::kSum);
      }
      req.wait();
      for (std::size_t l = 0; l < n_total; ++l) {
        if (lids.lid_is_row(static_cast<Lid>(l))) continue;
        pr[l] = (1.0 - damping) / n_global + damping * acc[l];
      }
      core::charge_kernel(g.world(), lids.n_total() - lids.n_row(), 0);
    } else {
      core::dense_exchange(g, std::span(acc), comm::ReduceOp::kSum,
                           Direction::kPull);
      for (std::size_t l = 0; l < n_total; ++l) {
        const double next = (1.0 - damping) / n_global + damping * acc[l];
        const Lid lid = static_cast<Lid>(l);
        if (tolerance > 0.0 && lids.lid_is_row(lid) && g.rank_r() == 0) {
          local_delta += std::abs(next - pr[l]);
        }
        pr[l] = next;
      }
      core::charge_kernel(g.world(), lids.n_total(), 0);
    }
    if (tolerance > 0.0) {
      if (!opts.enabled(g.world())) {
        delta = g.world().allreduce_one(local_delta, comm::ReduceOp::kSum);
      }
      if (delta < tolerance) {
        ++it;
        break;
      }
    }
  }
  return {it, delta};
}

}  // namespace

std::vector<double> pagerank(core::Dist2DGraph& g, int iterations, double damping,
                             const core::SparseOptions& opts,
                             fault::Checkpointer* ckpt) {
  std::vector<double> pr(static_cast<std::size_t>(g.lids().n_total()),
                         1.0 / static_cast<double>(g.n()));
  pagerank_loop(g, pr, iterations, damping, /*tolerance=*/0.0, opts, ckpt);
  return pr;
}

std::vector<double> pagerank_warm_start(core::Dist2DGraph& g,
                                        std::vector<double> state,
                                        int iterations, double damping,
                                        const core::SparseOptions& opts,
                                        fault::Checkpointer* ckpt) {
  if (state.size() != static_cast<std::size_t>(g.lids().n_total())) {
    throw std::invalid_argument(
        "pagerank_warm_start: state size != this rank's LID span");
  }
  pagerank_loop(g, state, iterations, damping, /*tolerance=*/0.0, opts, ckpt);
  return state;
}

PrToleranceResult pagerank_tolerance(core::Dist2DGraph& g, double tolerance,
                                     int max_iterations, double damping,
                                     const core::SparseOptions& opts,
                                     fault::Checkpointer* ckpt) {
  PrToleranceResult result;
  result.rank.assign(static_cast<std::size_t>(g.lids().n_total()),
                     1.0 / static_cast<double>(g.n()));
  const auto [iterations, delta] =
      pagerank_loop(g, result.rank, max_iterations, damping, tolerance, opts, ckpt);
  result.iterations = iterations;
  result.final_delta = delta;
  return result;
}

PrToleranceResult pagerank_tolerance_warm(core::Dist2DGraph& g,
                                          std::vector<double> state,
                                          double tolerance, int max_iterations,
                                          double damping,
                                          const core::SparseOptions& opts,
                                          fault::Checkpointer* ckpt) {
  if (state.size() != static_cast<std::size_t>(g.lids().n_total())) {
    throw std::invalid_argument(
        "pagerank_tolerance_warm: state size != this rank's LID span");
  }
  PrToleranceResult result;
  result.rank = std::move(state);
  const auto [iterations, delta] =
      pagerank_loop(g, result.rank, max_iterations, damping, tolerance, opts, ckpt);
  result.iterations = iterations;
  result.final_delta = delta;
  return result;
}


}  // namespace hpcg::algos

#include "algos/centrality.hpp"

#include "algos/bfs.hpp"
#include "algos/reference.hpp"
#include "util/prng.hpp"

namespace hpcg::algos {

using core::Lid;
using graph::Gid;

namespace {

std::vector<Gid> sample_sources(Gid n, int samples, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Gid> sources;
  sources.reserve(static_cast<std::size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    sources.push_back(static_cast<Gid>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  return sources;
}

}  // namespace

HarmonicResult harmonic_centrality(core::Dist2DGraph& g, int samples,
                                   std::uint64_t seed) {
  HarmonicResult result;
  result.sources = sample_sources(g.n(), samples, seed);
  result.centrality.assign(static_cast<std::size_t>(g.lids().n_total()), 0.0);
  for (const Gid source : result.sources) {
    const auto bfs_result = bfs(g, source);
    for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      const auto level = bfs_result.level[static_cast<std::size_t>(v)];
      if (level > 0 && level != BfsResult::kUnvisited) {
        result.centrality[static_cast<std::size_t>(v)] +=
            1.0 / static_cast<double>(level);
      }
    }
  }
  return result;
}

namespace ref {

std::vector<double> harmonic_centrality(const graph::Csr& csr,
                                        const std::vector<Gid>& sources) {
  std::vector<double> centrality(static_cast<std::size_t>(csr.n()), 0.0);
  for (const Gid source : sources) {
    const auto levels = bfs_levels(csr, source);
    for (std::size_t v = 0; v < levels.size(); ++v) {
      if (levels[v] > 0) centrality[v] += 1.0 / static_cast<double>(levels[v]);
    }
  }
  return centrality;
}

}  // namespace ref

}  // namespace hpcg::algos

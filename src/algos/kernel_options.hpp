// Algorithm-facing name for the unified kernel-execution options. The
// actual struct lives in comm/ (Runtime::run resolves it into the World);
// algorithms and their callers spell it algos::KernelOptions. The legacy
// per-algo structs (BfsOptions, MsBfsOptions, core::SparseOptions) are thin
// aliases of this type for one release — see docs/ARCHITECTURE.md §15.
#pragma once

#include "comm/kernel_options.hpp"

namespace hpcg::algos {

using KernelOptions = comm::KernelOptions;
using KernelOptionsError = comm::KernelOptionsError;

}  // namespace hpcg::algos

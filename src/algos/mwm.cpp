#include "algos/mwm.hpp"

#include <stdexcept>

#include "core/sparse_comm.hpp"
#include "core/work.hpp"

namespace hpcg::algos {

using core::Lid;
using core::SparseDirection;
using core::VertexQueue;

namespace {

/// Pointer candidate: heaviest unmatched edge seen so far.
struct Cand {
  double weight;
  Gid target;
};

constexpr Cand kNoCand{-1.0, -1};

struct CandReduce {
  bool operator()(Cand& current, const Cand& incoming) const {
    if (incoming.weight > current.weight ||
        (incoming.weight == current.weight && incoming.target >= 0 &&
         (current.target < 0 || incoming.target < current.target))) {
      current = incoming;
      return true;
    }
    return false;
  }
};

}  // namespace

MwmResult max_weight_matching(core::Dist2DGraph& g) {
  if (!g.partition().weighted()) {
    throw std::invalid_argument("max_weight_matching requires edge weights");
  }
  const auto& lids = g.lids();
  const auto n_total = static_cast<std::size_t>(lids.n_total());
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  const auto weights = g.csr().weights();

  MwmResult result;
  result.mate.assign(n_total, -1);
  auto& mate = result.mate;
  std::vector<Cand> cand(n_total);
  CandReduce cand_reduce;
  core::MaxReduce<Gid> max_reduce;

  for (;;) {
    ++result.rounds;
    std::fill(cand.begin(), cand.end(), kNoCand);

    // Pointer kernel: every unmatched row vertex points along its heaviest
    // local unmatched edge (ties toward the smaller neighbor GID).
    VertexQueue updated(lids.n_total());
    std::int64_t found_local = 0;
    std::int64_t edges_scanned = 0;
    for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      if (mate[static_cast<std::size_t>(v)] >= 0) continue;
      const Gid v_gid = lids.to_gid(v);
      Cand best = kNoCand;
      edges_scanned += offsets[v + 1] - offsets[v];
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        const Lid u = adj[e];
        const Gid u_gid = lids.to_gid(u);
        if (u_gid == v_gid || mate[static_cast<std::size_t>(u)] >= 0) continue;
        cand_reduce(best, Cand{weights[e], u_gid});
      }
      if (best.target >= 0) {
        cand[static_cast<std::size_t>(v)] = best;
        updated.try_push(v);
        ++found_local;
      }
    }

    core::charge_kernel(g.world(), lids.n_row(), edges_scanned);  // pointer kernel

    // Any pointer set anywhere? (Counts partial candidates; zero globally
    // means no unmatched vertex has an unmatched neighbor.)
    if (g.world().allreduce_one(found_local, comm::ReduceOp::kSum) == 0) break;

    // Complex reduction across the row group finalizes each vertex's
    // pointer; the column phase makes ghost pointers visible.
    core::sparse_exchange(g, std::span(cand), updated, cand_reduce,
                          SparseDirection::kPull);

    // Mutual check where the edge lives: the owning block sees both
    // endpoint pointers. Only the column endpoint is marked locally; the
    // transposed edge's block marks the other endpoint symmetrically.
    VertexQueue matched(lids.n_total());
    edges_scanned = 0;
    for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      const Gid v_gid = lids.to_gid(v);
      if (cand[static_cast<std::size_t>(v)].target < 0) continue;
      edges_scanned += offsets[v + 1] - offsets[v];
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        const Lid u = adj[e];
        const Gid u_gid = lids.to_gid(u);
        if (cand[static_cast<std::size_t>(v)].target == u_gid &&
            cand[static_cast<std::size_t>(u)].target == v_gid) {
          if (mate[static_cast<std::size_t>(u)] < 0) {
            mate[static_cast<std::size_t>(u)] = v_gid;
            matched.try_push(u);
          }
        }
      }
    }
    core::charge_kernel(g.world(), lids.n_row(), edges_scanned);  // mutual kernel
    core::sparse_exchange(g, std::span(mate), matched, max_reduce,
                          SparseDirection::kPush);
  }
  return result;
}

}  // namespace hpcg::algos

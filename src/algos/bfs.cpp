#include "algos/bfs.hpp"

#include <algorithm>

#include "core/manhattan.hpp"
#include "core/sparse_comm.hpp"
#include "core/work.hpp"
#include "core/worker_pool.hpp"

namespace hpcg::algos {

using core::Lid;
using core::SparseDirection;
using core::VertexQueue;

namespace {

/// Per-chunk kernel output: candidate vertices + the chunk's edge count.
/// Chunks only READ shared state (phase A); the serial merge in ascending
/// chunk order (phase B) replays the exact sequential claim logic, so the
/// committed state, queue membership and queue ORDER are bit-identical to
/// the single-threaded sweep (docs/KERNELS.md).
struct ChunkOut {
  std::vector<Lid> items;
  std::int64_t edges = 0;
};

inline bool test_bit(const std::vector<std::uint64_t>& bits, Lid v) {
  return (bits[static_cast<std::size_t>(v) >> 6] >>
          (static_cast<std::size_t>(v) & 63)) &
         1u;
}

inline void set_bit(std::vector<std::uint64_t>& bits, Lid v) {
  bits[static_cast<std::size_t>(v) >> 6] |= std::uint64_t{1}
                                            << (static_cast<std::size_t>(v) & 63);
}

}  // namespace

BfsResult bfs(core::Dist2DGraph& g, Gid root_original, const BfsOptions& options,
              fault::Checkpointer* ckpt) {
  const auto& lids = g.lids();
  const Gid root = g.partition().relabel().to_new(root_original);

  BfsResult result;
  result.level.assign(static_cast<std::size_t>(lids.n_total()), BfsResult::kUnvisited);
  auto& level = result.level;

  const auto& gdeg = g.global_row_degrees();
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();

  VertexQueue frontier(lids.n_total());
  if (lids.owns_row_gid(root)) {
    level[static_cast<std::size_t>(lids.row_lid(root))] = 0;
    frontier.try_push(lids.row_lid(root));
  }
  if (lids.has_col_gid(root)) {
    level[static_cast<std::size_t>(lids.col_lid(root))] = 0;
  }

  double m_unvisited = static_cast<double>(g.m_global());
  bool bottom_up = false;
  core::MinReduce<std::int64_t> min_reduce;
  core::SparseBuffers<std::int64_t> sparse_bufs;

  const std::int64_t grain = options.resolved_grain(g.world());
  core::WorkerPool* pool = g.worker_pool(options.resolved_threads(g.world()));
  std::vector<ChunkOut> outs;
  // Frontier bitset over the column range, rebuilt per bottom-up step: the
  // pull test `level[adj[e]] == cur` becomes one bit probe, and chunks stop
  // sharing cache lines with the level writes entirely.
  std::vector<std::uint64_t> front_bits(
      (static_cast<std::size_t>(lids.n_total()) + 63) / 64);

  std::int64_t start = 0;
  if (ckpt && ckpt->resume_epoch() >= 0) {
    ckpt->restore(g.world(), [&](fault::BlobReader& r) {
      start = r.get<std::int64_t>();
      result.depth = r.get<std::int64_t>();
      result.top_down_steps = r.get<int>();
      result.bottom_up_steps = r.get<int>();
      m_unvisited = r.get<double>();
      bottom_up = r.get<std::uint8_t>() != 0;
      level = r.get_vec<std::int64_t>();
      frontier.clear();
      for (const Lid v : r.get_vec<Lid>()) frontier.try_push(v);
    });
  }

  for (std::int64_t cur = start;; ++cur) {
    if (ckpt && ckpt->due(cur)) {
      ckpt->save(g.world(), cur, [&](fault::BlobWriter& w) {
        w.put<std::int64_t>(cur);
        w.put<std::int64_t>(result.depth);
        w.put<int>(result.top_down_steps);
        w.put<int>(result.bottom_up_steps);
        w.put<double>(m_unvisited);
        w.put<std::uint8_t>(bottom_up ? 1 : 0);
        w.put_vec(level);
        w.put_vec(frontier.items());
      });
    }
    auto superstep = g.world().superstep_span("bfs");
    // Global frontier statistics (each row group contributes once).
    std::int64_t stats[2] = {0, 0};  // n_frontier, m_frontier
    if (g.rank_r() == 0) {
      for (const Lid v : frontier.items()) {
        ++stats[0];
        stats[1] += gdeg[static_cast<std::size_t>(v - lids.c_offset_r())];
      }
    }
    g.world().allreduce(std::span<std::int64_t>(stats, 2), comm::ReduceOp::kSum);
    const auto n_frontier = stats[0];
    const auto m_frontier = stats[1];
    superstep.set_value(n_frontier);
    if (n_frontier == 0) break;
    result.depth = cur + 1;

    if (options.direction_optimizing) {
      if (!bottom_up && static_cast<double>(m_frontier) > m_unvisited / options.alpha) {
        bottom_up = true;
      } else if (bottom_up &&
                 static_cast<double>(n_frontier) <
                     static_cast<double>(g.n()) / options.beta) {
        bottom_up = false;
      }
    }

    VertexQueue updated(lids.n_total());
    VertexQueue next_frontier(lids.n_total());
    if (!bottom_up) {
      ++result.top_down_steps;
      // Top-down push: expand frontier edges, claiming unvisited column
      // vertices at level cur+1. Phase A (parallel, read-only): each
      // edge-balanced chunk of the frontier records every target still
      // unvisited in the pre-step snapshot. Phase B (serial, chunk order):
      // replay the claims — the snapshot test is a superset of the live
      // test (levels only decrease), so the ordered commit filters to the
      // exact sequential claim set and order.
      const auto chunks = core::edge_balanced_chunks(
          offsets, std::span<const Lid>(frontier.items()), grain);
      if (outs.size() < chunks.size()) outs.resize(chunks.size());
      core::for_each_chunk(
          pool, chunks, [&](const core::Chunk& c, std::size_t ci, int) {
            ChunkOut& out = outs[ci];
            out.items.clear();
            out.edges = 0;
            for (std::size_t i = c.begin; i < c.end; ++i) {
              const Lid v = frontier.items()[i];
              for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
                ++out.edges;
                const Lid u = adj[e];
                if (level[static_cast<std::size_t>(u)] > cur + 1) {
                  out.items.push_back(u);
                }
              }
            }
          });
      core::record_chunk_telemetry(g.world(), chunks, pool);
      std::int64_t edges_expanded = 0;
      for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
        edges_expanded += outs[ci].edges;
        for (const Lid u : outs[ci].items) {
          if (level[static_cast<std::size_t>(u)] > cur + 1) {
            level[static_cast<std::size_t>(u)] = cur + 1;
            updated.try_push(u);
          }
        }
      }
      core::charge_kernel(g.world(), static_cast<std::int64_t>(frontier.size()),
                          edges_expanded);
      core::sparse_exchange(g, std::span(level), updated, min_reduce,
                            SparseDirection::kPush, &next_frontier,
                            options, &sparse_bufs);
    } else {
      ++result.bottom_up_steps;
      // Bottom-up pull: every unvisited row vertex looks for a parent in
      // the current frontier among its local neighbors. The frontier is
      // materialized as a bitset first (levels only gain cur+1 entries this
      // step, so the snapshot equals the live `== cur` test), making the
      // chunks pure readers of shared state: each writes only its own
      // vertices' candidate list, merged in chunk (= ascending LID) order.
      std::fill(front_bits.begin(), front_bits.end(), 0);
      const Lid col_end = lids.c_offset_c() + lids.n_col();
      for (Lid x = lids.c_offset_c(); x < col_end; ++x) {
        if (level[static_cast<std::size_t>(x)] == cur) set_bit(front_bits, x);
      }
      const auto chunks = core::edge_balanced_chunks(
          offsets, static_cast<std::size_t>(g.row_lid_begin()),
          static_cast<std::size_t>(g.row_lid_end()), grain);
      if (outs.size() < chunks.size()) outs.resize(chunks.size());
      core::for_each_chunk(
          pool, chunks, [&](const core::Chunk& c, std::size_t ci, int) {
            ChunkOut& out = outs[ci];
            out.items.clear();
            out.edges = 0;
            for (std::size_t vs = c.begin; vs < c.end; ++vs) {
              const Lid v = static_cast<Lid>(vs);
              if (level[vs] != BfsResult::kUnvisited) continue;
              for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
                ++out.edges;
                if (test_bit(front_bits, adj[e])) {
                  out.items.push_back(v);
                  break;
                }
              }
            }
          });
      core::record_chunk_telemetry(g.world(), chunks, pool);
      std::int64_t edges_scanned = 0;
      for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
        edges_scanned += outs[ci].edges;
        for (const Lid v : outs[ci].items) {
          level[static_cast<std::size_t>(v)] = cur + 1;
          updated.try_push(v);
        }
      }
      core::charge_kernel(g.world(), lids.n_row(), edges_scanned);
      core::sparse_exchange(g, std::span(level), updated, min_reduce,
                            SparseDirection::kPull, &next_frontier,
                            options, &sparse_bufs);
    }
    m_unvisited -= static_cast<double>(m_frontier);
    frontier.swap(next_frontier);
  }
  return result;
}

namespace {

/// Combined BFS state: claims are ordered by (level, parent) so the
/// lexicographic minimum is a deterministic valid parent assignment.
struct LevelParent {
  std::int64_t level;
  Gid parent;
};

struct LevelParentReduce {
  bool operator()(LevelParent& current, const LevelParent& incoming) const {
    if (incoming.level < current.level ||
        (incoming.level == current.level && incoming.parent < current.parent)) {
      current = incoming;
      return true;
    }
    return false;
  }
};

}  // namespace

BfsParentResult bfs_parents(core::Dist2DGraph& g, Gid root_original,
                            const BfsOptions& options) {
  const auto& lids = g.lids();
  const Gid root = g.partition().relabel().to_new(root_original);

  std::vector<LevelParent> state(static_cast<std::size_t>(lids.n_total()),
                                 LevelParent{BfsResult::kUnvisited, -1});
  const auto& gdeg = g.global_row_degrees();
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();

  VertexQueue frontier(lids.n_total());
  if (lids.owns_row_gid(root)) {
    state[static_cast<std::size_t>(lids.row_lid(root))] = {0, root};
    frontier.try_push(lids.row_lid(root));
  }
  if (lids.has_col_gid(root)) {
    state[static_cast<std::size_t>(lids.col_lid(root))] = {0, root};
  }

  double m_unvisited = static_cast<double>(g.m_global());
  bool bottom_up = false;
  LevelParentReduce reduce;
  core::SparseBuffers<LevelParent> sparse_bufs;
  BfsParentResult result;

  for (std::int64_t cur = 0;; ++cur) {
    auto superstep = g.world().superstep_span("bfs_parents");
    std::int64_t stats[2] = {0, 0};
    if (g.rank_r() == 0) {
      for (const Lid v : frontier.items()) {
        ++stats[0];
        stats[1] += gdeg[static_cast<std::size_t>(v - lids.c_offset_r())];
      }
    }
    g.world().allreduce(std::span<std::int64_t>(stats, 2), comm::ReduceOp::kSum);
    superstep.set_value(stats[0]);
    if (stats[0] == 0) break;
    result.depth = cur + 1;

    if (options.direction_optimizing) {
      if (!bottom_up && static_cast<double>(stats[1]) > m_unvisited / options.alpha) {
        bottom_up = true;
      } else if (bottom_up && static_cast<double>(stats[0]) <
                                  static_cast<double>(g.n()) / options.beta) {
        bottom_up = false;
      }
    }

    VertexQueue updated(lids.n_total());
    VertexQueue next_frontier(lids.n_total());
    std::int64_t edges = 0;
    if (!bottom_up) {
      core::manhattan_for_each_edge(
          g.csr(), std::span<const Lid>(frontier.items()),
          [&](Lid v, Lid u, std::int64_t) {
            ++edges;
            const LevelParent claim{cur + 1, lids.to_gid(v)};
            if (reduce(state[static_cast<std::size_t>(u)], claim)) {
              updated.try_push(u);
            }
          });
      core::charge_kernel(g.world(), static_cast<std::int64_t>(frontier.size()),
                          edges);
      core::sparse_exchange(g, std::span(state), updated, reduce,
                            SparseDirection::kPush, &next_frontier,
                            options, &sparse_bufs);
    } else {
      for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
        if (state[static_cast<std::size_t>(v)].level != BfsResult::kUnvisited) {
          continue;
        }
        // Scan the whole local neighborhood for the smallest-GID parent at
        // the current level, keeping the result deterministic.
        LevelParent best{BfsResult::kUnvisited, -1};
        for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
          ++edges;
          const auto& neighbor = state[static_cast<std::size_t>(adj[e])];
          if (neighbor.level == cur) {
            reduce(best, LevelParent{cur + 1, lids.to_gid(adj[e])});
          }
        }
        if (best.parent >= 0 && reduce(state[static_cast<std::size_t>(v)], best)) {
          updated.try_push(v);
        }
      }
      core::charge_kernel(g.world(), lids.n_row(), edges);
      core::sparse_exchange(g, std::span(state), updated, reduce,
                            SparseDirection::kPull, &next_frontier,
                            options, &sparse_bufs);
    }
    m_unvisited -= static_cast<double>(stats[1]);
    frontier.swap(next_frontier);
  }

  result.level.resize(state.size());
  result.parent.resize(state.size());
  for (std::size_t l = 0; l < state.size(); ++l) {
    result.level[l] = state[l].level;
    result.parent[l] = state[l].parent;
  }
  return result;
}

}  // namespace hpcg::algos

// Distributed pointer jumping (paper §4): root finding over the forest
// induced by pointing every vertex at its minimum neighbor (vertices with
// no smaller neighbor are roots). Pointers are halved each round by asking
// the owner of parent(v) for its parent; the requests and replies are
// information *packets* delivered with the paper's packet-swapping pattern
// (§3.3.3) — one row-group and one column-group personalized exchange per
// hop, since these updates do not travel along graph edges.
#pragma once

#include <vector>

#include "core/dist2d.hpp"

namespace hpcg::algos {

using core::Gid;

struct PjResult {
  std::vector<Gid> root;  // LID-indexed; valid at row LIDs (striped GIDs)
  int rounds = 0;
};

/// Collective over the graph's grid.
PjResult pointer_jump(core::Dist2DGraph& g);

/// The jump loop itself, reusable over any row-consistent parent state
/// (LID-indexed; row slots authoritative): repeatedly replaces parent[v]
/// with parent[parent[v]] via packet-swapped queries until every pointer
/// is a root. Returns the number of rounds. Used by pointer_jump and by
/// the hooking-based connectivity (connected_components_sv).
int jump_to_roots(core::Dist2DGraph& g, std::span<Gid> parent);

/// Connected components via hooking + pointer jumping — the
/// Shiloach-Vishkin-flavored alternative the paper mentions alongside
/// color propagation ("in place of a pointer-jumping based routine").
/// Each round hooks every component root under the smallest root seen
/// across any incident edge (hook requests travel as packets, since the
/// target is an arbitrary vertex, not a neighbor), then fully compresses
/// with pointer jumping; converges in O(log N) rounds instead of
/// O(diameter), at the cost of heavier per-round communication.
struct CcSvResult {
  std::vector<Gid> label;  // LID-indexed; component = min member (striped)
  int rounds = 0;
  int jump_rounds = 0;
};

CcSvResult connected_components_sv(core::Dist2DGraph& g);

}  // namespace hpcg::algos

// Collects a distributed LID-indexed row state into one striped-GID-indexed
// global vector on every rank. Used by tests, examples and benchmark
// verification — not part of any timed path. Positions are striped GIDs;
// convert with Partitioned2D::relabel() when original identifiers are
// needed.
#pragma once

#include <span>
#include <vector>

#include "core/dist2d.hpp"

namespace hpcg::algos {

using core::Gid;
using core::Lid;

template <class T>
std::vector<T> gather_row_state(core::Dist2DGraph& g, std::span<const T> state) {
  struct Pair {
    Gid gid;
    T value;
  };
  std::vector<Pair> mine;
  // Every member of a row group holds identical row state after an
  // exchange; contribute it once per group.
  if (g.rank_r() == 0) {
    mine.reserve(static_cast<std::size_t>(g.lids().n_row()));
    for (Lid l = g.row_lid_begin(); l < g.row_lid_end(); ++l) {
      mine.push_back({g.lids().to_gid(l), state[static_cast<std::size_t>(l)]});
    }
  }
  auto all = g.world().allgatherv(std::span<const Pair>(mine));
  std::vector<T> out(static_cast<std::size_t>(g.n()));
  for (const auto& p : all) out[static_cast<std::size_t>(p.gid)] = p.value;
  return out;
}

}  // namespace hpcg::algos

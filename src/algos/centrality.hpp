// Sampled harmonic centrality on the 2D structure — a multi-BFS analytic
// from the CPU HPCGraph study this framework extends. Centrality of v is
// sum over sources s of 1/d(s, v) (0 for unreachable pairs), estimated
// from `samples` pseudo-random sources; each source runs one
// direction-optimizing BFS and accumulates into the row state.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dist2d.hpp"
#include "graph/csr.hpp"

namespace hpcg::algos {

struct HarmonicResult {
  std::vector<double> centrality;  // LID-indexed (row slots meaningful)
  std::vector<graph::Gid> sources; // the original-id sources sampled
};

/// Collective over the graph's grid. Sources are sampled deterministically
/// from `seed` over original vertex ids.
HarmonicResult harmonic_centrality(core::Dist2DGraph& g, int samples,
                                   std::uint64_t seed = 1);

namespace ref {
/// Sequential oracle over the same deterministic source sample (`csr` and
/// the returned values are in whatever id space the caller built them in;
/// pass the matching sources).
std::vector<double> harmonic_centrality(const graph::Csr& csr,
                                        const std::vector<graph::Gid>& sources);
}  // namespace ref

}  // namespace hpcg::algos

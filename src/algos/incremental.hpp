// Incremental maintenance kernels for streaming mutations
// (docs/STREAMING.md): given an algorithm's converged state for the
// pre-mutation graph, repair it to the post-mutation answer instead of
// recomputing from scratch.
//
// The decision rule is shared by all three kernels and decided by the
// commit (stream::CommitResult::structural_delete): inserts and deletes
// that leave at least one parallel copy of the pair cannot grow any
// distance or split any component, so the previous state is still a valid
// upper bound and a monotone ripple from the mutated endpoints restores
// the exact fixpoint. Only a delete that removed the LAST copy of a pair
// can invalidate that bound — then CC/BFS fall back to a from-scratch run
// (PageRank needs no fallback: the warm start is always a valid seed).
//
// CC and BFS repairs reach the same min fixpoint as from-scratch, so
// labels and levels are bit-identical — hpcg_check's stream oracle holds
// them to that. Delta-PageRank converges to the same tolerance, agreeing
// within tolerance / (1 - damping) of a cold run.
//
// All kernels take `inserted` as this rank's applied directed entries in
// (row LID, col LID) form — exactly stream::CommitResult::local_inserts.
// Each undirected insert appears as both directed entries, each at its
// owning rank, so every rank only ripples source -> destination and the
// reverse relaxation happens at the reverse entry's owner.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/dist2d.hpp"
#include "core/sparse_comm.hpp"

namespace hpcg::algos {

using core::Gid;

/// This rank's freshly inserted directed entries, (row LID, col LID).
using InsertedEdges = std::span<const std::pair<core::Lid, core::Lid>>;

struct IncrementalCcResult {
  std::vector<Gid> label;  // LID-indexed, same contract as CcResult::label
  int iterations = 0;      // ripple supersteps (or full-run iterations)
  bool fell_back = false;  // structural delete forced a from-scratch run
};

/// Repairs CC labels after a commit: seeds the min merge at every inserted
/// entry's endpoints, then label-ripples (push + vertex queue) until no
/// label changes anywhere. `prev` must be the converged LID-indexed labels
/// for the pre-mutation graph. Collective over the graph's grid; the
/// result is bit-identical to connected_components() on the mutated graph.
IncrementalCcResult incremental_cc(core::Dist2DGraph& g, std::vector<Gid> prev,
                                   InsertedEdges inserted,
                                   bool structural_delete,
                                   const core::SparseOptions& opts = {});

struct BfsRepairResult {
  std::vector<std::int64_t> level;  // LID-indexed, BfsResult contract
  std::int64_t depth = 0;
  int iterations = 0;
  bool fell_back = false;
};

/// Repairs BFS levels from `root` (original id, used only by the
/// fallback): previous exact distances are upper bounds under inserts, so
/// re-relaxing `level[src] + 1 < level[dst]` from the affected entries
/// until global quiescence restores exact distances — bit-identical to
/// bfs() on the mutated graph. Collective over the graph's grid.
BfsRepairResult bfs_repair(core::Dist2DGraph& g, Gid root,
                           std::vector<std::int64_t> prev,
                           InsertedEdges inserted, bool structural_delete,
                           const core::SparseOptions& opts = {});

struct DeltaPrResult {
  std::vector<double> rank;  // LID-indexed, pagerank() contract
  int iterations = 0;
  double final_delta = 0.0;
  bool seeded = false;  // warm-started from `prev` (vs cold restart)
};

/// Delta-PageRank: re-solves to `tolerance` seeded from the pre-mutation
/// ranks. The mutation perturbs the fixpoint only near the mutated
/// endpoints, so the seeded residual is tiny and convergence takes a few
/// iterations. An empty/mis-sized `prev` degrades to a cold tolerance run.
/// Collective over the graph's grid.
DeltaPrResult delta_pagerank(core::Dist2DGraph& g, std::vector<double> prev,
                             double tolerance = 1e-12,
                             int max_iterations = 500, double damping = 0.85,
                             const core::SparseOptions& opts = {});

}  // namespace hpcg::algos

// Sequential reference implementations used as test oracles and by the
// comparison benchmarks' correctness checks. Each matches the update
// semantics of its distributed counterpart exactly (same tie-breaking, same
// iteration policy), so distributed results can be compared bit-for-bit
// (or within float tolerance for PageRank).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace hpcg::algos::ref {

using graph::Csr;
using graph::EdgeList;
using graph::Gid;

/// BFS levels from `root`; unreachable vertices get -1.
std::vector<std::int64_t> bfs_levels(const Csr& csr, Gid root);

/// PageRank: `iterations` synchronous power steps of
/// pr'(v) = (1-d)/N + d * sum_{(u,v) in E} pr(u)/deg(u), dangling mass
/// dropped (matching the distributed pull implementation).
std::vector<double> pagerank(const Csr& csr, int iterations, double damping = 0.85);

/// Connected components via union-find; label of a component is its
/// smallest member vertex (the distributed color propagation converges to
/// the same labeling).
std::vector<Gid> connected_components(const EdgeList& el);

/// Preis locally-dominant 1/2-approximate maximum weight matching. Returns
/// mate[v] (or -1). Ties broken toward the smaller neighbor id; with
/// distinct weights the locally-dominant matching is unique, so the
/// distributed algorithm must produce exactly this.
std::vector<Gid> max_weight_matching(const Csr& csr);

/// Synchronous label propagation for `iterations` rounds. Labels start as
/// vertex ids; each round every vertex adopts the statistical mode of its
/// neighbors' previous-round labels (multi-edges count once per entry),
/// ties toward the smaller label; isolated vertices keep their label.
std::vector<std::uint64_t> label_propagation(const Csr& csr, int iterations);

/// The forest used by pointer jumping: parent[v] = min neighbor if smaller
/// than v, else v (v is then a root).
std::vector<Gid> min_neighbor_forest(const Csr& csr);

/// Root of every vertex's tree in the min-neighbor forest.
std::vector<Gid> pointer_jump_roots(const Csr& csr);

/// Total weight of a matching given as a mate array.
double matching_weight(const Csr& csr, const std::vector<Gid>& mate);

}  // namespace hpcg::algos::ref

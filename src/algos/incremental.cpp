#include "algos/incremental.hpp"

#include <algorithm>
#include <stdexcept>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/pagerank.hpp"
#include "core/manhattan.hpp"
#include "core/work.hpp"

namespace hpcg::algos {

using core::Lid;
using core::SparseDirection;
using core::VertexQueue;

namespace {

void check_prev_size(std::size_t have, const core::Dist2DGraph& g,
                     const char* who) {
  if (have != static_cast<std::size_t>(g.lids().n_total())) {
    throw std::invalid_argument(std::string(who) +
                                ": prev state size != this rank's LID span");
  }
}

/// Shared ripple driver for the two monotone integer kernels: expands the
/// active row frontier with `edge_fn` (which performs the min relaxation
/// into `updated`), exchanges, and repeats until no kernel wrote anywhere.
/// Returns the superstep count. `label` is T = Gid or int64 state.
template <class T, class EdgeFn>
int ripple_to_fixpoint(core::Dist2DGraph& g, std::span<T> state,
                       VertexQueue& active, EdgeFn&& edge_fn,
                       const char* span_name,
                       const core::SparseOptions& opts) {
  core::MinReduce<T> min_reduce;
  core::SparseBuffers<T> bufs;
  const auto n_total = g.lids().n_total();
  int iterations = 0;
  // Same bound as the CC loop: a safety net, never the convergence path.
  for (int iter = 0; iter < 100000; ++iter) {
    auto superstep = g.world().superstep_span(span_name);
    VertexQueue updated(n_total);
    std::int64_t local_writes = 0;
    std::int64_t kernel_edges = 0;
    core::manhattan_for_each_edge(
        g.csr(), std::span<const Lid>(active.items()),
        [&](Lid v, Lid u, std::int64_t) {
          ++kernel_edges;
          if (edge_fn(v, u)) {
            updated.try_push(u);
            ++local_writes;
          }
        });
    core::charge_kernel(g.world(), static_cast<std::int64_t>(active.size()),
                        kernel_edges);
    active.clear();

    VertexQueue changed_rows(n_total);
    std::int64_t counts[2] = {local_writes, 0};
    core::sparse_exchange(g, state, updated, min_reduce, SparseDirection::kPush,
                          &changed_rows, opts, &bufs);
    if (g.rank_r() == 0) {
      counts[1] = static_cast<std::int64_t>(changed_rows.size());
    }
    g.world().allreduce(std::span<std::int64_t>(counts, 2),
                        comm::ReduceOp::kSum);
    superstep.set_value(counts[1]);
    iterations = iter + 1;
    if (counts[0] == 0) break;  // no kernel wrote anywhere: fixpoint
    active.swap(changed_rows);
  }
  return iterations;
}

}  // namespace

IncrementalCcResult incremental_cc(core::Dist2DGraph& g, std::vector<Gid> prev,
                                   InsertedEdges inserted,
                                   bool structural_delete,
                                   const core::SparseOptions& opts) {
  IncrementalCcResult result;
  if (structural_delete) {
    // A split is possible; min labels cannot be repaired monotonically.
    CcOptions options = CcOptions::all_push();
    options.kernel = opts;
    auto full = connected_components(g, options);
    result.label = std::move(full.label);
    result.iterations = full.iterations;
    result.fell_back = true;
    return result;
  }
  check_prev_size(prev.size(), g, "incremental_cc");
  result.label = std::move(prev);
  auto& label = result.label;
  const auto& lids = g.lids();
  auto span = g.world().phase_span("stream.incremental_cc");

  // Seed: merge the two endpoint labels of every inserted entry. Column
  // targets ride a push exchange, row targets a pull exchange, so every
  // slot of a seeded vertex (row-group copies and ghosts) agrees before
  // the ripple starts. Both exchanges run on every rank — empty queues
  // are legal — keeping the commit collectively consistent.
  VertexQueue col_updated(lids.n_total());
  VertexQueue row_updated(lids.n_total());
  for (const auto& [r, c] : inserted) {
    const Gid merged = std::min(label[static_cast<std::size_t>(r)],
                                label[static_cast<std::size_t>(c)]);
    if (label[static_cast<std::size_t>(c)] > merged) {
      label[static_cast<std::size_t>(c)] = merged;
      col_updated.try_push(c);
    }
    if (label[static_cast<std::size_t>(r)] > merged) {
      label[static_cast<std::size_t>(r)] = merged;
      row_updated.try_push(r);
    }
  }
  core::charge_kernel(g.world(), 0,
                      static_cast<std::int64_t>(inserted.size()));
  core::MinReduce<Gid> min_reduce;
  core::SparseBuffers<Gid> bufs;
  VertexQueue active(lids.n_total());
  core::sparse_exchange(g, std::span(label), col_updated, min_reduce,
                        SparseDirection::kPush, &active, opts, &bufs);
  core::sparse_exchange(g, std::span(label), row_updated, min_reduce,
                        SparseDirection::kPull, &active, opts, &bufs);

  result.iterations = ripple_to_fixpoint(
      g, std::span(label), active,
      [&](Lid v, Lid u) {
        if (label[static_cast<std::size_t>(v)] <
            label[static_cast<std::size_t>(u)]) {
          label[static_cast<std::size_t>(u)] =
              label[static_cast<std::size_t>(v)];
          return true;
        }
        return false;
      },
      "incremental_cc", opts);
  return result;
}

BfsRepairResult bfs_repair(core::Dist2DGraph& g, Gid root,
                           std::vector<std::int64_t> prev,
                           InsertedEdges inserted, bool structural_delete,
                           const core::SparseOptions& opts) {
  BfsRepairResult result;
  if (structural_delete) {
    // A removed last copy can lengthen shortest paths; the previous levels
    // are no longer upper bounds.
    const BfsOptions options = opts;
    auto full = bfs(g, root, options);
    result.level = std::move(full.level);
    result.depth = full.depth;
    result.iterations = full.top_down_steps + full.bottom_up_steps;
    result.fell_back = true;
    return result;
  }
  check_prev_size(prev.size(), g, "bfs_repair");
  result.level = std::move(prev);
  auto& level = result.level;
  const auto& lids = g.lids();
  auto span = g.world().phase_span("stream.bfs_repair");

  // Seed: relax each inserted entry source -> destination. The reverse
  // relaxation belongs to the reverse entry's owning rank. An unvisited
  // source (kUnvisited + 1) can never win, so no guard is needed.
  VertexQueue updated(lids.n_total());
  for (const auto& [r, c] : inserted) {
    const std::int64_t cand = level[static_cast<std::size_t>(r)] + 1;
    if (cand < level[static_cast<std::size_t>(c)]) {
      level[static_cast<std::size_t>(c)] = cand;
      updated.try_push(c);
    }
  }
  core::charge_kernel(g.world(), 0,
                      static_cast<std::int64_t>(inserted.size()));
  core::MinReduce<std::int64_t> min_reduce;
  core::SparseBuffers<std::int64_t> bufs;
  VertexQueue active(lids.n_total());
  core::sparse_exchange(g, std::span(level), updated, min_reduce,
                        SparseDirection::kPush, &active, opts, &bufs);

  result.iterations = ripple_to_fixpoint(
      g, std::span(level), active,
      [&](Lid v, Lid u) {
        const std::int64_t cand = level[static_cast<std::size_t>(v)] + 1;
        if (cand < level[static_cast<std::size_t>(u)]) {
          level[static_cast<std::size_t>(u)] = cand;
          return true;
        }
        return false;
      },
      "bfs_repair", opts);

  // Depth matches bfs(): one expansion step per populated level.
  std::int64_t local_max = -1;
  for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
    const auto l = level[static_cast<std::size_t>(v)];
    if (l != BfsResult::kUnvisited) local_max = std::max(local_max, l);
  }
  result.depth = g.world().allreduce_one(local_max, comm::ReduceOp::kMax) + 1;
  return result;
}

DeltaPrResult delta_pagerank(core::Dist2DGraph& g, std::vector<double> prev,
                             double tolerance, int max_iterations,
                             double damping, const core::SparseOptions& opts) {
  DeltaPrResult result;
  const auto n_total = static_cast<std::size_t>(g.lids().n_total());
  result.seeded = prev.size() == n_total;
  auto span = g.world().phase_span("stream.delta_pagerank");
  if (result.seeded) {
    // Condition the seed before iterating. The fixpoint satisfies exact
    // mass identities on any undirected graph: every isolated vertex
    // holds (1-d)/N, and every connected component C of non-isolated
    // vertices holds |C|/N in total, regardless of structure. A seed
    // violating a component identity keeps an error along that
    // component's stochastic eigenvector, which decays only at rate d
    // per iteration — a slow mode that would make the warm run take MORE
    // iterations than a cold start (whose uniform seed balances every
    // component exactly). Restore the identities:
    //   * a vertex the mutation pulled out of isolation (old fixpoint
    //     value exactly (1-d)/N — no in-neighbors; strictly above that
    //     otherwise) is reseeded to 1/N, which is precisely the mass its
    //     new component is owed;
    //   * vertices now isolated get their exact value (1-d)/N;
    //   * any residual drift (delete-heavy batches) is spread over the
    //     whole core so at least the global invariant holds.
    const auto deg = global_degrees_state(g);
    const double n_global = static_cast<double>(g.n());
    const double dangling_mass = (1.0 - damping) / n_global;
    for (std::size_t l = 0; l < n_total; ++l) {
      if (deg[l] > 0.0) {
        if (prev[l] <= dangling_mass) prev[l] = 1.0 / n_global;
      } else {
        prev[l] = dangling_mass;
      }
    }
    double mass[2] = {0.0, 0.0};  // core vertex count, core seed mass
    if (g.rank_r() == 0) {
      for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
        if (deg[static_cast<std::size_t>(v)] > 0.0) {
          mass[0] += 1.0;
          mass[1] += prev[static_cast<std::size_t>(v)];
        }
      }
    }
    g.world().allreduce(std::span<double>(mass, 2), comm::ReduceOp::kSum);
    if (mass[0] > 0.0) {
      const double correction = (mass[0] / n_global - mass[1]) / mass[0];
      for (std::size_t l = 0; l < n_total; ++l) {
        if (deg[l] > 0.0) prev[l] += correction;
      }
    }
    core::charge_kernel(g.world(), g.lids().n_total(), 0);
  }
  auto solved = result.seeded
                    ? pagerank_tolerance_warm(g, std::move(prev), tolerance,
                                              max_iterations, damping, opts)
                    : pagerank_tolerance(g, tolerance, max_iterations, damping,
                                         opts);
  result.rank = std::move(solved.rank);
  result.iterations = solved.iterations;
  result.final_delta = solved.final_delta;
  return result;
}

}  // namespace hpcg::algos

// Distributed approximate maximum weight matching (paper §4): the
// locally-dominant 1/2-approximation of Preis. Each round, every unmatched
// vertex points along its heaviest unmatched edge; pointer candidates are
// reduced across row groups with a *complex reduction* (max weight, ties
// toward the smaller neighbor — Algorithm 5 with a custom AtomicOp), then
// mutually-pointing pairs are committed and the matched state propagated
// with a sparse push. This exercises the paper's "complex reductions"
// communication class.
#pragma once

#include <vector>

#include "core/dist2d.hpp"

namespace hpcg::algos {

using core::Gid;

struct MwmResult {
  std::vector<Gid> mate;  // LID-indexed; striped GID of the mate or -1
  int rounds = 0;
};

/// Requires the graph to be weighted. Collective over the graph's grid.
MwmResult max_weight_matching(core::Dist2DGraph& g);

}  // namespace hpcg::algos

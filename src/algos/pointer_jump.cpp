#include "algos/pointer_jump.hpp"

#include <unordered_map>

#include "core/dense_comm.hpp"
#include "core/packet.hpp"
#include "core/work.hpp"

namespace hpcg::algos {

using core::Direction;
using core::Lid;

namespace {

/// The information packet: destination vertex, originating vertex, and the
/// carried pointer value (paper: "packets contain owner, state, and send
/// direction ... as well as other application-specific data").
struct Packet {
  Gid dest;
  Gid src;
  Gid value;
};

struct Update {
  Gid gid;
  Gid parent;
};

}  // namespace

PjResult pointer_jump(core::Dist2DGraph& g) {
  const auto& lids = g.lids();
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();

  // Build the forest: parent[v] = min(v, min neighbor), reduced across the
  // row group with one dense pull (MIN) exchange.
  PjResult result;
  result.root.assign(static_cast<std::size_t>(lids.n_total()), 0);
  auto& parent = result.root;
  for (Lid l = 0; l < lids.n_total(); ++l) {
    parent[static_cast<std::size_t>(l)] = lids.to_gid(l);
  }
  for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
    for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      parent[static_cast<std::size_t>(v)] =
          std::min(parent[static_cast<std::size_t>(v)], lids.to_gid(adj[e]));
    }
  }
  core::charge_kernel(g.world(), lids.n_total(), g.m_local());  // forest build
  core::dense_exchange(g, std::span(parent), comm::ReduceOp::kMin, Direction::kPull);

  result.rounds = jump_to_roots(g, std::span(parent));
  return result;
}

int jump_to_roots(core::Dist2DGraph& g, std::span<Gid> parent) {
  const auto& lids = g.lids();
  // Each vertex's jump queries are issued by one designated member of its
  // row group (round-robin by GID) to avoid duplicate packets.
  const int row_members = g.row_comm().size();
  std::vector<Gid> active;
  for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
    const Gid v_gid = lids.to_gid(v);
    if (parent[static_cast<std::size_t>(v)] != v_gid &&
        v_gid % row_members == g.rank_r()) {
      active.push_back(v_gid);
    }
  }

  int rounds = 0;
  for (;;) {
    ++rounds;
    // Queries: "what is your parent?" to each active vertex's parent.
    std::vector<Packet> queries;
    queries.reserve(active.size());
    for (const Gid v : active) {
      queries.push_back({parent[static_cast<std::size_t>(lids.row_lid(v))], v, 0});
    }
    auto arrived = core::packet_swap(g, std::span<const Packet>(queries),
                                     [](const Packet& p) { return p.dest; });

    // Replies carry parent(dest) back to the querying vertex's owners.
    std::vector<Packet> replies;
    replies.reserve(arrived.size());
    for (const auto& q : arrived) {
      replies.push_back(
          {q.src, q.dest, parent[static_cast<std::size_t>(lids.row_lid(q.dest))]});
    }
    auto answered = core::packet_swap(g, std::span<const Packet>(replies),
                                      [](const Packet& p) { return p.dest; });

    // Commit the jumps that moved; share them across the row group so all
    // owners stay consistent.
    std::vector<Update> updates;
    for (const auto& r : answered) {
      const Lid v = lids.row_lid(r.dest);
      if (parent[static_cast<std::size_t>(v)] != r.value) {
        updates.push_back({r.dest, r.value});
      }
    }
    core::charge_kernel(g.world(),
                        static_cast<std::int64_t>(queries.size() + arrived.size() +
                                                  answered.size()),
                        0);
    const auto shared = g.row_comm().allgatherv(std::span<const Update>(updates));
    std::vector<std::uint8_t> moved_flag(static_cast<std::size_t>(lids.n_row()), 0);
    for (const auto& u : shared) {
      parent[static_cast<std::size_t>(lids.row_lid(u.gid))] = u.parent;
      moved_flag[static_cast<std::size_t>(u.gid - lids.row_offset())] = 1;
    }

    // A vertex stays active only while its pointer moves (an unchanged
    // reply proves parent(v) is a root).
    const auto moved = g.world().allreduce_one(
        g.rank_r() == 0 ? static_cast<std::int64_t>(shared.size()) : 0,
        comm::ReduceOp::kSum);
    if (moved == 0) break;

    std::vector<Gid> next_active;
    for (const Gid v : active) {
      if (moved_flag[static_cast<std::size_t>(v - lids.row_offset())]) {
        next_active.push_back(v);
      }
    }
    active.swap(next_active);
  }
  return rounds;
}

CcSvResult connected_components_sv(core::Dist2DGraph& g) {
  const auto& lids = g.lids();
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();

  CcSvResult result;
  result.label.assign(static_cast<std::size_t>(lids.n_total()), 0);
  auto& parent = result.label;
  for (Lid l = 0; l < lids.n_total(); ++l) {
    parent[static_cast<std::size_t>(l)] = lids.to_gid(l);
  }
  // Invariant throughout: parent[x] <= x (hooks go to the smaller root,
  // jumps only move pointers toward roots), so MIN dense exchanges are
  // idempotent refreshes of ghost copies.
  for (;;) {
    ++result.rounds;
    // Hooking: for every local edge whose endpoints have different
    // parents, ask the larger parent to adopt the smaller one. The target
    // is an arbitrary vertex (a root somewhere in the grid), so requests
    // travel as packets; deduplicate per destination first.
    std::unordered_map<Gid, Gid> hooks;  // dest root -> smallest proposal
    std::int64_t edges_scanned = 0;
    for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      const Gid pv = parent[static_cast<std::size_t>(v)];
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        ++edges_scanned;
        const Gid pu = parent[static_cast<std::size_t>(adj[e])];
        if (pu == pv) continue;
        const Gid lo = std::min(pu, pv);
        const Gid hi = std::max(pu, pv);
        auto [it, inserted] = hooks.try_emplace(hi, lo);
        if (!inserted) it->second = std::min(it->second, lo);
      }
    }
    core::charge_kernel(g.world(), lids.n_row(), edges_scanned);

    struct Packet {
      Gid dest;
      Gid src;
      Gid value;
    };
    std::vector<Packet> requests;
    requests.reserve(hooks.size());
    for (const auto& [dest, value] : hooks) requests.push_back({dest, value, value});
    auto arrived = core::packet_swap(g, std::span<const Packet>(requests),
                                     [](const Packet& p) { return p.dest; });
    std::int64_t hooked = 0;
    for (const auto& p : arrived) {
      auto& slot = parent[static_cast<std::size_t>(lids.row_lid(p.dest))];
      if (p.value < slot) {
        slot = p.value;
        ++hooked;
      }
    }
    core::charge_kernel(g.world(), static_cast<std::int64_t>(arrived.size()), 0);
    // Re-establish row consistency (the packet landed on one member per
    // row group) and refresh ghosts.
    core::dense_exchange(g, std::span(parent), comm::ReduceOp::kMin,
                         core::Direction::kPull);

    // Count hooks on every receiving rank: a vertex's hook packets can
    // land on any member of its row group, so filtering to one member
    // could miss real hooks and terminate early.
    if (g.world().allreduce_one(hooked, comm::ReduceOp::kSum) == 0) break;
    // Full path compression, then refresh ghosts for the next hook scan.
    result.jump_rounds += jump_to_roots(g, std::span(parent));
    core::dense_exchange(g, std::span(parent), comm::ReduceOp::kMin,
                         core::Direction::kPull);
  }
  return result;
}

}  // namespace hpcg::algos

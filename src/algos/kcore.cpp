#include "algos/kcore.hpp"

#include <algorithm>
#include <map>

#include "algos/pagerank.hpp"  // global_degrees_state
#include "core/activation.hpp"
#include "core/reduce25d.hpp"
#include "core/work.hpp"
#include "graph/edge_list.hpp"
#include "util/hash_table.hpp"

namespace hpcg::algos {

using core::Gid;
using core::Lid;
using core::VertexQueue;

namespace {

struct CoreUpdate {
  Gid gid;
  std::int64_t value;
};

/// H-index of a (value -> count) multiset given as descending-sorted pairs:
/// the largest h with at least h entries of value >= h.
std::int64_t h_index(const std::vector<std::pair<std::int64_t, std::int64_t>>& desc) {
  std::int64_t seen = 0;
  for (const auto& [value, count] : desc) {
    if (value <= seen) break;
    seen += count;
    if (value <= seen) return value;
  }
  return seen;
}

}  // namespace

KcoreResult kcore(core::Dist2DGraph& g) {
  const auto& lids = g.lids();
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();

  KcoreResult result;
  // Initialize with true degrees (row and ghost slots).
  const auto degree = global_degrees_state(g);
  result.core.assign(static_cast<std::size_t>(lids.n_total()), 0);
  auto& core_value = result.core;
  for (Lid l = 0; l < lids.n_total(); ++l) {
    core_value[static_cast<std::size_t>(l)] =
        static_cast<std::int64_t>(degree[static_cast<std::size_t>(l)]);
  }

  VertexQueue active(lids.n_total());
  for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) active.try_push(v);

  for (;;) {
    ++result.iterations;
    // Stage 1: per-rank partial counts of neighbor core values.
    std::vector<core::PartialAggregate> partials;
    std::int64_t active_edges = 0;
    for (const Lid v : active.items()) {
      const std::int64_t deg = offsets[v + 1] - offsets[v];
      if (deg == 0) continue;
      active_edges += deg;
      util::CountingHashTable table(static_cast<std::size_t>(deg));
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        table.add(static_cast<std::uint64_t>(
            core_value[static_cast<std::size_t>(adj[e])]));
      }
      std::vector<std::uint64_t> flat;
      table.serialize(flat);
      const Gid v_gid = lids.to_gid(v);
      for (std::size_t i = 0; i < flat.size(); i += 2) {
        partials.push_back({v_gid, flat[i], flat[i + 1]});
      }
    }
    core::charge_kernel(g.world(), static_cast<std::int64_t>(active.size()),
                        active_edges);

    // Stage 2/3: owner merge + H-index.
    auto received =
        core::exchange_to_owners(g, std::span<const core::PartialAggregate>(partials));
    core::charge_kernel(g.world(), 0, static_cast<std::int64_t>(received.size()));
    std::sort(received.begin(), received.end(),
              [](const core::PartialAggregate& a, const core::PartialAggregate& b) {
                if (a.vertex != b.vertex) return a.vertex < b.vertex;
                return a.key > b.key;  // descending values within a vertex
              });
    std::vector<CoreUpdate> updates;
    std::size_t i = 0;
    while (i < received.size()) {
      std::size_t j = i;
      std::vector<std::pair<std::int64_t, std::int64_t>> desc;
      while (j < received.size() && received[j].vertex == received[i].vertex) {
        if (!desc.empty() &&
            desc.back().first == static_cast<std::int64_t>(received[j].key)) {
          desc.back().second += static_cast<std::int64_t>(received[j].weight);
        } else {
          desc.emplace_back(static_cast<std::int64_t>(received[j].key),
                            static_cast<std::int64_t>(received[j].weight));
        }
        ++j;
      }
      const Gid v_gid = received[i].vertex;
      const Lid v = lids.row_lid(v_gid);
      const std::int64_t next =
          std::min(core_value[static_cast<std::size_t>(v)], h_index(desc));
      if (next != core_value[static_cast<std::size_t>(v)]) {
        updates.push_back({v_gid, next});
      }
      i = j;
    }

    // Stage 4: finalized values back across the row group...
    VertexQueue changed_rows(lids.n_total());
    const auto row_updates =
        g.row_comm().allgatherv(std::span<const CoreUpdate>(updates));
    for (const auto& u : row_updates) {
      core_value[static_cast<std::size_t>(lids.row_lid(u.gid))] = u.value;
      changed_rows.try_push(lids.row_lid(u.gid));
    }
    // ... and to the column ghosts via the overlap owners.
    std::vector<CoreUpdate> col_out;
    for (const auto& u : row_updates) {
      if (lids.has_col_gid(u.gid)) col_out.push_back(u);
    }
    const auto col_updates =
        g.col_comm().allgatherv(std::span<const CoreUpdate>(col_out));
    for (const auto& u : col_updates) {
      core_value[static_cast<std::size_t>(lids.col_lid(u.gid))] = u.value;
    }

    const auto changed = g.world().allreduce_one(
        g.rank_r() == 0 ? static_cast<std::int64_t>(row_updates.size()) : 0,
        comm::ReduceOp::kSum);
    if (changed == 0) break;
    active = core::pull_activation(g, changed_rows);
  }
  return result;
}

namespace ref {

std::vector<std::int64_t> kcore(const graph::EdgeList& el) {
  // Bucket peeling over the multigraph.
  graph::Csr csr(el.n, el.edges);
  std::vector<std::int64_t> core(static_cast<std::size_t>(el.n));
  std::vector<std::int64_t> degree(static_cast<std::size_t>(el.n));
  std::multimap<std::int64_t, Gid> buckets;
  std::vector<std::multimap<std::int64_t, Gid>::iterator> where(
      static_cast<std::size_t>(el.n));
  for (Gid v = 0; v < el.n; ++v) {
    degree[static_cast<std::size_t>(v)] = csr.degree(v);
    where[static_cast<std::size_t>(v)] = buckets.emplace(csr.degree(v), v);
  }
  std::vector<bool> removed(static_cast<std::size_t>(el.n), false);
  std::int64_t current = 0;
  while (!buckets.empty()) {
    const auto it = buckets.begin();
    const Gid v = it->second;
    current = std::max(current, it->first);
    buckets.erase(it);
    removed[static_cast<std::size_t>(v)] = true;
    core[static_cast<std::size_t>(v)] = current;
    for (const Gid u : csr.neighbors(v)) {
      if (removed[static_cast<std::size_t>(u)]) continue;
      auto& slot = where[static_cast<std::size_t>(u)];
      const auto next = --degree[static_cast<std::size_t>(u)];
      buckets.erase(slot);
      slot = buckets.emplace(next, u);
    }
  }
  return core;
}

}  // namespace ref

}  // namespace hpcg::algos

#include "algos/lca.hpp"

#include <algorithm>

#include "algos/reference.hpp"
#include "core/dense_comm.hpp"
#include "core/packet.hpp"
#include "core/work.hpp"

namespace hpcg::algos {

using core::Direction;
using core::Lid;

namespace {

/// Request for (parent, depth) of `dest`, tagged with the query slot and
/// carrying the reply's routing keys (any vertex in the asking rank's row
/// and column ranges addresses that rank).
struct InfoRequest {
  Gid dest;
  Gid reply_row;
  Gid reply_col;
  std::int64_t tag;
};

struct InfoReply {
  Gid row_key;
  Gid col_key;
  std::int64_t tag;
  Gid parent;
  std::int64_t depth;
};

struct PtrUpdate {
  Gid gid;
  Gid ptr;
  std::int64_t dist;
};

}  // namespace

LcaResult lca_queries(core::Dist2DGraph& g, const std::vector<LcaQuery>& queries) {
  const auto& lids = g.lids();
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  const auto& relabel = g.partition().relabel();

  // --- Forest (as pointer_jump builds it) and one-step parents. ----------
  std::vector<Gid> parent_state(static_cast<std::size_t>(lids.n_total()));
  for (Lid l = 0; l < lids.n_total(); ++l) {
    parent_state[static_cast<std::size_t>(l)] = lids.to_gid(l);
  }
  for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
    for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      parent_state[static_cast<std::size_t>(v)] = std::min(
          parent_state[static_cast<std::size_t>(v)], lids.to_gid(adj[e]));
    }
  }
  core::charge_kernel(g.world(), lids.n_total(), g.m_local());
  core::dense_exchange(g, std::span(parent_state), comm::ReduceOp::kMin,
                       Direction::kPull);

  // Row-indexed views: one-step parent (immutable) and the doubling state.
  const auto row_of = [&](Gid gid) {
    return static_cast<std::size_t>(gid - lids.row_offset());
  };
  std::vector<Gid> parent(static_cast<std::size_t>(lids.n_row()));
  std::vector<Gid> ptr(static_cast<std::size_t>(lids.n_row()));
  std::vector<std::int64_t> dist(static_cast<std::size_t>(lids.n_row()));
  for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
    const Gid gid = lids.to_gid(v);
    const Gid p = parent_state[static_cast<std::size_t>(v)];
    parent[row_of(gid)] = p;
    ptr[row_of(gid)] = p;
    dist[row_of(gid)] = p == gid ? 0 : 1;
  }

  // --- Depths by distance-accumulating pointer doubling. -----------------
  LcaResult result;
  const int row_members = g.row_comm().size();
  for (;;) {
    ++result.rounds;
    std::vector<InfoRequest> requests;
    for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      const Gid gid = lids.to_gid(v);
      if (ptr[row_of(gid)] != gid && gid % row_members == g.rank_r()) {
        // Reply returns to this vertex's canonical owner (diagonal path).
        requests.push_back({ptr[row_of(gid)], gid, gid, gid});
      }
    }
    auto arrived = core::packet_swap_blocks(
        g, std::span<const InfoRequest>(requests), [](const InfoRequest& r) {
          return std::pair<Gid, Gid>(r.dest, r.dest);
        });
    std::vector<InfoReply> replies;
    replies.reserve(arrived.size());
    for (const auto& r : arrived) {
      replies.push_back({r.reply_row, r.reply_col, r.tag, ptr[row_of(r.dest)],
                         dist[row_of(r.dest)]});
    }
    auto answered = core::packet_swap_blocks(
        g, std::span<const InfoReply>(replies), [](const InfoReply& r) {
          return std::pair<Gid, Gid>(r.row_key, r.col_key);
        });
    std::vector<PtrUpdate> updates;
    for (const auto& r : answered) {
      const Gid v = r.tag;
      if (r.parent != ptr[row_of(v)]) {
        updates.push_back({v, r.parent, dist[row_of(v)] + r.depth});
      }
    }
    core::charge_kernel(g.world(),
                        static_cast<std::int64_t>(requests.size() + arrived.size() +
                                                  answered.size()),
                        0);
    const auto shared = g.row_comm().allgatherv(std::span<const PtrUpdate>(updates));
    for (const auto& u : shared) {
      ptr[row_of(u.gid)] = u.ptr;
      dist[row_of(u.gid)] = u.dist;
    }
    const auto moved = g.world().allreduce_one(
        g.rank_r() == 0 ? static_cast<std::int64_t>(shared.size()) : 0,
        comm::ReduceOp::kSum);
    if (moved == 0) break;
  }
  const auto& depth = dist;  // fixpoint reached: dist == depth in the forest

  // --- Query processing: each query is driven by one rank. ---------------
  struct QueryState {
    Gid a = -1, b = -1;             // current (striped) endpoints
    Gid parent_a = -1, parent_b = -1;
    std::int64_t depth_a = 0, depth_b = 0;
    bool resolved = false;
    Gid answer = -1;
  };
  const int world_size = g.world().size();
  const int my_rank = g.world().rank();
  std::vector<std::int64_t> mine;  // indices of queries this rank drives
  std::vector<QueryState> state(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (static_cast<int>(q % static_cast<std::size_t>(world_size)) != my_rank) continue;
    mine.push_back(static_cast<std::int64_t>(q));
    state[q].a = relabel.to_new(queries[q].a);
    state[q].b = relabel.to_new(queries[q].b);
  }

  // Reply keys addressing this rank's block.
  const Gid my_row_key = g.partition().row_partition().start(g.id_r());
  const Gid my_col_key = g.partition().col_partition().start(g.id_c());

  // Round 0 fetches (parent, depth) of both endpoints; later rounds fetch
  // only lifted endpoints. Tags encode query*2 + endpoint.
  std::vector<InfoRequest> requests;
  for (const auto q : mine) {
    requests.push_back({state[q].a, my_row_key, my_col_key, q * 2});
    requests.push_back({state[q].b, my_row_key, my_col_key, q * 2 + 1});
  }
  for (;;) {
    ++result.rounds;
    auto arrived = core::packet_swap_blocks(
        g, std::span<const InfoRequest>(requests), [](const InfoRequest& r) {
          return std::pair<Gid, Gid>(r.dest, r.dest);
        });
    std::vector<InfoReply> replies;
    replies.reserve(arrived.size());
    for (const auto& r : arrived) {
      replies.push_back({r.reply_row, r.reply_col, r.tag, parent[row_of(r.dest)],
                         depth[row_of(r.dest)]});
    }
    auto answered = core::packet_swap_blocks(
        g, std::span<const InfoReply>(replies), [](const InfoReply& r) {
          return std::pair<Gid, Gid>(r.row_key, r.col_key);
        });
    for (const auto& r : answered) {
      auto& s = state[static_cast<std::size_t>(r.tag / 2)];
      if (r.tag % 2 == 0) {
        s.parent_a = r.parent;
        s.depth_a = r.depth;
      } else {
        s.parent_b = r.parent;
        s.depth_b = r.depth;
      }
    }
    // Advance every unresolved query one step and emit its next requests.
    requests.clear();
    std::int64_t unresolved = 0;
    for (const auto q : mine) {
      auto& s = state[q];
      if (s.resolved) continue;
      if (s.a == s.b) {
        s.answer = s.a;
        s.resolved = true;
        continue;
      }
      if (s.depth_a == 0 && s.depth_b == 0) {
        s.resolved = true;  // different roots: different trees
        continue;
      }
      if (s.depth_a >= s.depth_b) {
        s.a = s.parent_a;
        requests.push_back({s.a, my_row_key, my_col_key, q * 2});
      }
      if (s.depth_b >= s.depth_a && s.b != s.a) {
        s.b = s.parent_b;
        requests.push_back({s.b, my_row_key, my_col_key, q * 2 + 1});
      }
      ++unresolved;
    }
    core::charge_kernel(g.world(), static_cast<std::int64_t>(mine.size()), 0);
    if (g.world().allreduce_one(unresolved, comm::ReduceOp::kSum) == 0) break;
  }

  // Collect all drivers' answers everywhere (original id space).
  struct Answer {
    std::int64_t query;
    Gid lca;
  };
  std::vector<Answer> out;
  out.reserve(mine.size());
  for (const auto q : mine) {
    out.push_back({q, state[q].answer < 0 ? -1 : relabel.to_original(state[q].answer)});
  }
  auto all = g.world().allgatherv(std::span<const Answer>(out));
  result.lca.assign(queries.size(), -1);
  for (const auto& a : all) {
    result.lca[static_cast<std::size_t>(a.query)] = a.lca;
  }
  return result;
}

namespace ref {

std::vector<Gid> lca_queries(const graph::Csr& csr,
                             const std::vector<LcaQuery>& queries) {
  const auto parent = min_neighbor_forest(csr);
  std::vector<std::int64_t> depth(parent.size(), -1);
  const auto depth_of = [&](Gid v) {
    std::vector<Gid> chain;
    while (depth[static_cast<std::size_t>(v)] < 0) {
      if (parent[static_cast<std::size_t>(v)] == v) {
        depth[static_cast<std::size_t>(v)] = 0;
        break;
      }
      chain.push_back(v);
      v = parent[static_cast<std::size_t>(v)];
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[static_cast<std::size_t>(*it)] =
          depth[static_cast<std::size_t>(parent[static_cast<std::size_t>(*it)])] + 1;
    }
    return depth[static_cast<std::size_t>(chain.empty() ? v : chain.front())];
  };
  std::vector<Gid> out;
  out.reserve(queries.size());
  for (const auto& query : queries) {
    Gid a = query.a;
    Gid b = query.b;
    depth_of(a);
    depth_of(b);
    while (a != b) {
      const auto da = depth[static_cast<std::size_t>(a)];
      const auto db = depth[static_cast<std::size_t>(b)];
      if (da == 0 && db == 0) break;  // different trees
      if (da >= db) a = parent[static_cast<std::size_t>(a)];
      if (db >= da && b != a) b = parent[static_cast<std::size_t>(b)];
    }
    out.push_back(a == b ? a : -1);
  }
  return out;
}

}  // namespace ref

}  // namespace hpcg::algos

#include "algos/cc.hpp"

#include <numeric>

#include "core/activation.hpp"
#include "core/dense_comm.hpp"
#include "core/manhattan.hpp"
#include "core/sparse_comm.hpp"
#include "core/work.hpp"
#include "core/worker_pool.hpp"

namespace hpcg::algos {

using core::Direction;
using core::Lid;
using core::SparseDirection;
using core::VertexQueue;

CcResult connected_components(core::Dist2DGraph& g, const CcOptions& options,
                              fault::Checkpointer* ckpt) {
  const auto& lids = g.lids();
  CcResult result;
  result.label.assign(static_cast<std::size_t>(lids.n_total()), 0);
  auto& label = result.label;
  for (Lid l = 0; l < lids.n_total(); ++l) {
    label[static_cast<std::size_t>(l)] = lids.to_gid(l);
  }

  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  core::MinReduce<Gid> min_reduce;

  // The dense->sparse cutoff: switch once fewer than N / max(R, C) vertices
  // updated in an iteration (paper §3.3.1).
  const double cutoff =
      static_cast<double>(g.n()) /
      static_cast<double>(std::max(g.grid().ranks_per_row_group(),
                                   g.grid().ranks_per_col_group()));

  bool sparse_mode = options.sparse;
  VertexQueue active(lids.n_total());
  bool queue_live = false;  // becomes true once sparse && vertex_queue
  core::SparseBuffers<Gid> sparse_bufs;
  const bool async = options.kernel.enabled(g.world());

  // Min-label propagation is Gauss-Seidel within a sweep when the row and
  // column LID ranges share slots (overlap layouts): a read of
  // label[adj[e]] can observe a write made earlier in the SAME sweep, so
  // the sequential visit order is part of the algorithm's trajectory (it
  // changes CcResult::iterations, not the fixpoint). On disjoint layouts
  // the sweep's reads and writes never alias, so chunks parallelize with
  // bit-identical results; on overlap layouts the kernels stay serial in
  // exact sweep order (docs/KERNELS.md).
  const bool disjoint_lids = lids.n_row() + lids.n_col() == lids.n_total();
  const std::int64_t grain = options.kernel.resolved_grain(g.world());
  core::WorkerPool* pool =
      disjoint_lids
          ? g.worker_pool(options.kernel.resolved_threads(g.world()))
          : nullptr;
  struct CcChunkOut {
    std::vector<Lid> items;          // pull: rows that improved
    std::vector<std::pair<Lid, Gid>> claims;  // push: (target, color)
    std::int64_t writes = 0;
    std::int64_t vertices = 0;
    std::int64_t edges = 0;
  };
  std::vector<CcChunkOut> outs;

  int start = 0;
  if (ckpt && ckpt->resume_epoch() >= 0) {
    ckpt->restore(g.world(), [&](fault::BlobReader& r) {
      start = static_cast<int>(r.get<std::int64_t>());
      result.iterations = r.get<int>();
      result.dense_iterations = r.get<int>();
      result.sparse_iterations = r.get<int>();
      sparse_mode = r.get<std::uint8_t>() != 0;
      queue_live = r.get<std::uint8_t>() != 0;
      label = r.get_vec<Gid>();
      active.clear();
      for (const Lid v : r.get_vec<Lid>()) active.try_push(v);
    });
  }

  for (int iter = start; iter < options.max_iterations; ++iter) {
    if (ckpt && ckpt->due(iter)) {
      ckpt->save(g.world(), iter, [&](fault::BlobWriter& w) {
        w.put<std::int64_t>(iter);
        w.put<int>(result.iterations);
        w.put<int>(result.dense_iterations);
        w.put<int>(result.sparse_iterations);
        w.put<std::uint8_t>(sparse_mode ? 1 : 0);
        w.put<std::uint8_t>(queue_live ? 1 : 0);
        w.put_vec(label);
        w.put_vec(active.items());
      });
    }
    auto superstep = g.world().superstep_span("cc");
    VertexQueue updated(lids.n_total());
    std::int64_t local_writes = 0;
    std::int64_t kernel_vertices = 0;
    std::int64_t kernel_edges = 0;

    const auto chunks =
        queue_live
            ? core::edge_balanced_chunks(
                  offsets, std::span<const Lid>(active.items()), grain)
            : core::edge_balanced_chunks(
                  offsets, static_cast<std::size_t>(g.row_lid_begin()),
                  static_cast<std::size_t>(g.row_lid_end()), grain);
    if (outs.size() < chunks.size()) outs.resize(chunks.size());
    if (!options.push) {
      // Pull kernel: row vertices gather the minimum neighbor color with a
      // cache-blocked sweep over the chunk's CSR slice. Each chunk writes
      // only its own rows' labels; the sweep order (ascending chunk, then
      // ascending vertex) is the sequential order, so the overlap-layout
      // serial path is the seed sweep exactly, and the disjoint-layout
      // parallel path reads only never-written column slots.
      core::for_each_chunk(
          pool, chunks, [&](const core::Chunk& c, std::size_t ci, int) {
            CcChunkOut& out = outs[ci];
            out.items.clear();
            out.writes = 0;
            out.vertices = 0;
            out.edges = 0;
            const auto visit = [&](Lid v) {
              ++out.vertices;
              out.edges += offsets[v + 1] - offsets[v];
              Gid best = label[static_cast<std::size_t>(v)];
              for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
                best = std::min(best, label[static_cast<std::size_t>(adj[e])]);
              }
              if (best < label[static_cast<std::size_t>(v)]) {
                label[static_cast<std::size_t>(v)] = best;
                out.items.push_back(v);
                ++out.writes;
              }
            };
            if (queue_live) {
              for (std::size_t i = c.begin; i < c.end; ++i) {
                visit(active.items()[i]);
              }
            } else {
              for (std::size_t vs = c.begin; vs < c.end; ++vs) {
                visit(static_cast<Lid>(vs));
              }
            }
          });
      core::record_chunk_telemetry(g.world(), chunks, pool);
      for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
        kernel_vertices += outs[ci].vertices;
        kernel_edges += outs[ci].edges;
        local_writes += outs[ci].writes;
        for (const Lid v : outs[ci].items) updated.try_push(v);
      }
    } else if (disjoint_lids) {
      // Push kernel, disjoint layout: two-phase. Phase A (parallel,
      // read-only): chunks record (target, color) claims against the
      // pre-sweep labels — a superset of the live claims, since labels only
      // decrease. Phase B (serial, chunk order) replays the exact
      // sequential test, so writes, membership and order match the seed.
      core::for_each_chunk(
          pool, chunks, [&](const core::Chunk& c, std::size_t ci, int) {
            CcChunkOut& out = outs[ci];
            out.claims.clear();
            out.edges = 0;
            const auto scan = [&](Lid v) {
              const Gid color = label[static_cast<std::size_t>(v)];
              for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
                ++out.edges;
                const Lid u = adj[e];
                if (color < label[static_cast<std::size_t>(u)]) {
                  out.claims.emplace_back(u, color);
                }
              }
            };
            if (queue_live) {
              for (std::size_t i = c.begin; i < c.end; ++i) {
                scan(active.items()[i]);
              }
            } else {
              for (std::size_t vs = c.begin; vs < c.end; ++vs) {
                scan(static_cast<Lid>(vs));
              }
            }
          });
      core::record_chunk_telemetry(g.world(), chunks, pool);
      for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
        kernel_edges += outs[ci].edges;
        for (const auto& [u, color] : outs[ci].claims) {
          if (color < label[static_cast<std::size_t>(u)]) {
            label[static_cast<std::size_t>(u)] = color;
            updated.try_push(u);
            ++local_writes;
          }
        }
      }
      kernel_vertices =
          queue_live ? static_cast<std::int64_t>(active.size()) : lids.n_row();
    } else {
      // Push kernel, overlap layout: a scattered color can land in a slot
      // that is ALSO a later source's row slot, so the sweep must commit
      // writes immediately in sequential order — the seed kernel, kept
      // verbatim (and necessarily serial).
      auto edge_fn = [&](Lid v, Lid u) {
        ++kernel_edges;
        if (label[static_cast<std::size_t>(v)] < label[static_cast<std::size_t>(u)]) {
          label[static_cast<std::size_t>(u)] = label[static_cast<std::size_t>(v)];
          updated.try_push(u);
          ++local_writes;
        }
      };
      if (queue_live) {
        for (const Lid v : active.items()) {
          for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
            edge_fn(v, adj[e]);
          }
        }
        kernel_vertices = static_cast<std::int64_t>(active.size());
      } else {
        for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
          for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
            edge_fn(v, adj[e]);
          }
        }
        kernel_vertices = lids.n_row();
      }
    }
    core::charge_kernel(g.world(), kernel_vertices, kernel_edges);

    // Exchange phase. The change count drives both convergence and the
    // dense->sparse switch; counting queue entries once per row group
    // (rank_r == 0) approximates the global number of updated vertices.
    VertexQueue changed_rows(lids.n_total());
    std::int64_t counts[2] = {local_writes, 0};
    comm::Request dense_req;  // in-flight ghost broadcast in async mode
    if (sparse_mode) {
      ++result.sparse_iterations;
      core::sparse_exchange(g, std::span(label), updated, min_reduce,
                            options.push ? SparseDirection::kPush
                                         : SparseDirection::kPull,
                            &changed_rows, options.kernel, &sparse_bufs);
      if (g.rank_r() == 0) {
        counts[1] = static_cast<std::int64_t>(changed_rows.size());
      }
    } else {
      ++result.dense_iterations;
      // Estimate of globally updated vertices for the switch cutoff:
      // distinct per-rank updates, de-duplicated by the group that shares
      // the written index space (column group for push targets, row group
      // for pull targets).
      counts[1] = static_cast<std::int64_t>(updated.size()) /
                  (options.push ? g.grid().ranks_per_col_group()
                                : g.grid().ranks_per_row_group());
      updated.clear();
      if (async) {
        // The world allreduce of the counts below rides under the
        // in-flight row/column ghost broadcast (different groups).
        dense_req = core::dense_exchange_async(
            g, std::span(result.label), comm::ReduceOp::kMin,
            options.push ? Direction::kPush : Direction::kPull);
      } else {
        core::dense_exchange(g, std::span(result.label), comm::ReduceOp::kMin,
                             options.push ? Direction::kPush : Direction::kPull);
      }
    }
    g.world().allreduce(std::span<std::int64_t>(counts, 2), comm::ReduceOp::kSum);
    dense_req.wait();
    superstep.set_value(counts[1]);
    result.iterations = iter + 1;
    if (counts[0] == 0) break;  // no kernel wrote anywhere: fixpoint

    // Queues can only be armed from a sparse iteration's change set: a
    // dense exchange does not report which vertices changed.
    if (sparse_mode && options.vertex_queue) {
      if (options.push) {
        active.swap(changed_rows);  // push frontier = vertices that changed
      } else {
        active = core::pull_activation(g, changed_rows);
      }
      queue_live = true;
    }
    if (!sparse_mode && options.auto_switch &&
        static_cast<double>(counts[1]) < cutoff) {
      sparse_mode = true;
    }
  }
  return result;
}

}  // namespace hpcg::algos

#include "algos/msbfs.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "core/manhattan.hpp"
#include "core/queue.hpp"
#include "core/work.hpp"
#include "core/worker_pool.hpp"

namespace hpcg::algos {

using core::Lid;
using core::SparseDirection;
using core::VertexQueue;

namespace {

/// Bitwise-OR merge of reachability masks. Monotone and order-insensitive,
/// so chunked async exchanges stay bit-identical.
struct OrReduce {
  bool operator()(std::uint64_t& current, const std::uint64_t& incoming) const {
    const std::uint64_t merged = current | incoming;
    if (merged == current) return false;
    current = merged;
    return true;
  }
};

/// Per-chunk kernel output for the two-phase (parallel read-only scan +
/// serial chunk-ordered commit) sweep: (vertex, mask word) candidates plus
/// the chunk's edge count. Because the OR-merge is idempotent and the
/// snapshot candidate test (`word & ~mask[u]` against pre-step masks) is a
/// superset of the live test, the ordered replay commits exactly the
/// sequential masks, queue membership and queue order.
struct MaskChunkOut {
  std::vector<std::pair<Lid, std::uint64_t>> items;
  std::int64_t edges = 0;
};

}  // namespace

MsBfsResult multi_source_bfs(core::Dist2DGraph& g,
                             std::span<const Gid> roots_original,
                             const MsBfsOptions& options) {
  const int batch = static_cast<int>(roots_original.size());
  if (batch < 1 || batch > MsBfsResult::kMaxBatch) {
    throw std::invalid_argument("multi_source_bfs: batch must be 1..64 sources");
  }
  for (const Gid root : roots_original) {
    if (root < 0 || root >= g.n()) {
      throw std::invalid_argument("multi_source_bfs: root outside [0, n)");
    }
  }

  const auto& lids = g.lids();
  const auto n_total = static_cast<std::size_t>(lids.n_total());
  const auto& gdeg = g.global_row_degrees();
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();

  MsBfsResult result;
  result.batch = batch;
  result.level.assign(static_cast<std::size_t>(batch),
                      std::vector<std::int64_t>(n_total, MsBfsResult::kUnvisited));
  result.depth.assign(static_cast<std::size_t>(batch), 0);

  // mask holds the end-of-superstep reachability words; prev the previous
  // superstep's. Propagation reads prev only — a frontier vertex must not
  // forward bits it gained this very superstep (that would deliver them one
  // level early; single-source BFS's `level[u] == cur` test is the same
  // guard).
  std::vector<std::uint64_t> mask(n_total, 0);
  VertexQueue frontier(lids.n_total());
  for (int s = 0; s < batch; ++s) {
    const Gid root = g.partition().relabel().to_new(roots_original[s]);
    const std::uint64_t bit = std::uint64_t{1} << s;
    if (lids.owns_row_gid(root)) {
      const auto l = static_cast<std::size_t>(lids.row_lid(root));
      mask[l] |= bit;
      result.level[static_cast<std::size_t>(s)][l] = 0;
      frontier.try_push(lids.row_lid(root));
    }
    if (lids.has_col_gid(root)) {
      const auto l = static_cast<std::size_t>(lids.col_lid(root));
      mask[l] |= bit;
      result.level[static_cast<std::size_t>(s)][l] = 0;
    }
  }
  std::vector<std::uint64_t> prev = mask;
  const std::uint64_t full =
      batch == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << batch) - 1);

  double m_unvisited = static_cast<double>(g.m_global());
  bool bottom_up = false;
  OrReduce reduce;
  core::SparseBuffers<std::uint64_t> sparse_bufs;

  const std::int64_t grain = options.resolved_grain(g.world());
  core::WorkerPool* pool = g.worker_pool(options.resolved_threads(g.world()));
  std::vector<MaskChunkOut> outs;

  for (std::int64_t cur = 0;; ++cur) {
    auto superstep = g.world().superstep_span("msbfs");
    // Aggregate (union-of-frontiers) statistics drive the shared direction
    // choice; each row group contributes once.
    std::int64_t stats[2] = {0, 0};  // n_frontier, m_frontier
    if (g.rank_r() == 0) {
      for (const Lid v : frontier.items()) {
        ++stats[0];
        stats[1] += gdeg[static_cast<std::size_t>(v - lids.c_offset_r())];
      }
    }
    g.world().allreduce(std::span<std::int64_t>(stats, 2), comm::ReduceOp::kSum);
    const auto n_frontier = stats[0];
    const auto m_frontier = stats[1];
    superstep.set_value(n_frontier);
    if (n_frontier == 0) break;
    result.supersteps = cur + 1;

    if (options.direction_optimizing) {
      if (!bottom_up &&
          static_cast<double>(m_frontier) > m_unvisited / options.alpha) {
        bottom_up = true;
      } else if (bottom_up && static_cast<double>(n_frontier) <
                                  static_cast<double>(g.n()) / options.beta) {
        bottom_up = false;
      }
    }

    VertexQueue updated(lids.n_total());
    VertexQueue next_frontier(lids.n_total());
    if (!bottom_up) {
      ++result.top_down_steps;
      // Top-down push: every frontier vertex offers its previous-superstep
      // mask word to its neighbors; a neighbor missing any of those bits
      // joins the batch frontiers at level cur+1. Phase A (parallel,
      // read-only): chunks record (target, offered word) candidates against
      // the pre-step masks. Phase B (serial, chunk order) replays the
      // word-at-a-time OR-merge.
      const auto chunks = core::edge_balanced_chunks(
          offsets, std::span<const Lid>(frontier.items()), grain);
      if (outs.size() < chunks.size()) outs.resize(chunks.size());
      core::for_each_chunk(
          pool, chunks, [&](const core::Chunk& c, std::size_t ci, int) {
            MaskChunkOut& out = outs[ci];
            out.items.clear();
            out.edges = 0;
            for (std::size_t i = c.begin; i < c.end; ++i) {
              const Lid v = frontier.items()[i];
              const std::uint64_t want = prev[static_cast<std::size_t>(v)];
              for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
                ++out.edges;
                const Lid u = adj[e];
                if (want & ~mask[static_cast<std::size_t>(u)]) {
                  out.items.emplace_back(u, want);
                }
              }
            }
          });
      core::record_chunk_telemetry(g.world(), chunks, pool);
      std::int64_t edges_expanded = 0;
      for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
        edges_expanded += outs[ci].edges;
        for (const auto& [u, want] : outs[ci].items) {
          const std::uint64_t add = want & ~mask[static_cast<std::size_t>(u)];
          if (add != 0) {
            mask[static_cast<std::size_t>(u)] |= add;
            updated.try_push(u);
          }
        }
      }
      core::charge_kernel(g.world(), static_cast<std::int64_t>(frontier.size()),
                          edges_expanded);
      core::sparse_exchange(g, std::span(mask), updated, reduce,
                            SparseDirection::kPush, &next_frontier,
                            options, &sparse_bufs);
    } else {
      ++result.bottom_up_steps;
      // Bottom-up pull: every row vertex still missing batch bits adopts
      // whatever its neighbors knew at the end of the last superstep.
      // Unlike single-source BFS there is no early break — the scan must
      // collect the union over all neighbors. Chunks read only `prev`
      // (stable this superstep) and write only their own rows' mask words,
      // so the sweep runs directly in parallel; per-chunk queue segments
      // merge in chunk (= ascending LID) order.
      const auto chunks = core::edge_balanced_chunks(
          offsets, static_cast<std::size_t>(g.row_lid_begin()),
          static_cast<std::size_t>(g.row_lid_end()), grain);
      if (outs.size() < chunks.size()) outs.resize(chunks.size());
      core::for_each_chunk(
          pool, chunks, [&](const core::Chunk& c, std::size_t ci, int) {
            MaskChunkOut& out = outs[ci];
            out.items.clear();
            out.edges = 0;
            for (std::size_t vs = c.begin; vs < c.end; ++vs) {
              const Lid v = static_cast<Lid>(vs);
              if ((mask[vs] & full) == full) continue;
              std::uint64_t gained = 0;
              for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
                ++out.edges;
                gained |= prev[static_cast<std::size_t>(adj[e])];
              }
              gained &= ~mask[vs];
              if (gained != 0) {
                mask[vs] |= gained;
                out.items.emplace_back(v, gained);
              }
            }
          });
      core::record_chunk_telemetry(g.world(), chunks, pool);
      std::int64_t edges_scanned = 0;
      for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
        edges_scanned += outs[ci].edges;
        for (const auto& [v, gained] : outs[ci].items) {
          (void)gained;
          updated.try_push(v);
        }
      }
      core::charge_kernel(g.world(), lids.n_row(), edges_scanned);
      core::sparse_exchange(g, std::span(mask), updated, reduce,
                            SparseDirection::kPull, &next_frontier,
                            options, &sparse_bufs);
    }

    // Commit the superstep: bits that appeared this step (locally or via
    // the exchange) are level cur+1 for their source.
    for (std::size_t l = 0; l < n_total; ++l) {
      std::uint64_t diff = mask[l] & ~prev[l];
      while (diff != 0) {
        const int s = std::countr_zero(diff);
        diff &= diff - 1;
        result.level[static_cast<std::size_t>(s)][l] = cur + 1;
      }
      prev[l] = mask[l];
    }
    core::charge_kernel(g.world(), lids.n_total(), 0);

    m_unvisited -= static_cast<double>(m_frontier);
    frontier.swap(next_frontier);
  }

  // Per-source depth, defined like BfsResult::depth (max level + 1): local
  // max over owned row vertices, then a global max reduction.
  std::vector<std::int64_t> depth(static_cast<std::size_t>(batch), 0);
  for (int s = 0; s < batch; ++s) {
    auto& level = result.level[static_cast<std::size_t>(s)];
    for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      const auto l = level[static_cast<std::size_t>(v)];
      if (l != MsBfsResult::kUnvisited) {
        depth[static_cast<std::size_t>(s)] =
            std::max(depth[static_cast<std::size_t>(s)], l + 1);
      }
    }
  }
  g.world().allreduce(std::span<std::int64_t>(depth), comm::ReduceOp::kMax);
  result.depth = std::move(depth);
  return result;
}

}  // namespace hpcg::algos

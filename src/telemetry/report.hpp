// Offline analysis over a span stream: per-rank computation/communication
// totals, per-superstep breakdowns with the load-imbalance ratio
// (max/mean rank time, the paper's balance metric), straggler
// identification and the bulk-synchronous critical path. Shared by the
// hpcg_trace CLI, the metrics exporters and the telemetry tests; works
// identically on a live Recorder's spans or on a trace read back from
// disk, so what the CLI prints is exactly what was recorded.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace hpcg::telemetry {

/// Per-rank totals over the whole run.
struct RankBreakdown {
  int rank = 0;
  double comp_s = 0.0;       // sum of compute spans
  double comm_s = 0.0;       // sum of collective spans (includes waiting)
  double overlap_s = 0.0;    // async comm hidden under compute ("overlap" spans)
  double end_s = 0.0;        // last span end (the rank's modeled finish)
  int supersteps = 0;
};

/// One bulk-synchronous superstep, aggregated across ranks.
struct SuperstepStats {
  int index = -1;
  std::string label;
  double start_s = 0.0;       // earliest rank entry
  double end_s = 0.0;         // latest rank exit
  double comp_max_s = 0.0;    // slowest rank's compute inside the superstep
  double comm_max_s = 0.0;    // slowest rank's collective time inside
  double rank_max_s = 0.0;    // slowest rank's superstep duration
  double rank_mean_s = 0.0;   // mean superstep duration over ranks
  double imbalance = 1.0;     // rank_max_s / rank_mean_s (1.0 = balanced)
  int straggler = -1;         // rank with the longest superstep duration
  std::int64_t active_vertices = -1;  // max reported value (-1 = unreported)
  int ranks = 0;              // ranks that recorded this superstep
};

/// Aggregate of one kind of zero-duration instant event (fault injected,
/// recovery restore, ...), keyed by span name.
struct InstantStats {
  std::string name;
  int count = 0;
  double first_s = 0.0;  // virtual time of the first occurrence
  double last_s = 0.0;   // virtual time of the last occurrence
};

/// Duration distribution of one span family — all spans sharing a
/// (kind, name) pair, across every rank. Durations are fed through the
/// registry's power-of-two histogram in microseconds, so the quantiles
/// carry the same bucketing error as the exported latency metrics
/// (within 2x; sub-microsecond spans land in the zero bucket).
struct SpanDurations {
  std::string name;
  SpanKind kind = SpanKind::kPhase;
  std::uint64_t count = 0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

struct TraceReport {
  int nranks = 0;
  double makespan_s = 0.0;        // max span end over all ranks
  double comp_max_s = 0.0;        // max per-rank compute total
  double comm_max_s = 0.0;        // max per-rank collective total
  double overlap_max_s = 0.0;     // max per-rank hidden-async-comm total
  double critical_path_s = 0.0;   // sum over supersteps of rank_max_s
  double mean_imbalance = 1.0;    // superstep-duration-weighted imbalance
  double worst_imbalance = 1.0;
  int straggler_rank = -1;        // rank most often the superstep straggler
  std::vector<RankBreakdown> ranks;
  std::vector<SuperstepStats> supersteps;
  std::vector<InstantStats> instants;  // fault/recovery events, by name
  std::vector<SpanDurations> durations;  // per-(kind, name) quantiles
};

/// Builds the report from a span stream (`nranks` = track count; pass
/// TraceFile::nranks or Recorder::nranks()).
TraceReport analyze(const std::vector<SpanRecord>& spans, int nranks);

/// Human-readable report: per-rank table, per-superstep comp/comm split,
/// imbalance and straggler summary. `max_supersteps` truncates the
/// superstep table (0 = no limit).
void print_report(std::ostream& out, const TraceReport& report,
                  int max_supersteps = 0);

/// Flat metrics export (registry snapshot + derived per-superstep series).
/// JSON carries the full structure; CSV flattens to `metric,value` rows.
void write_metrics_json(std::ostream& out, const MetricsRegistry::Snapshot& snap,
                        const TraceReport& report);
void write_metrics_csv(std::ostream& out, const MetricsRegistry::Snapshot& snap,
                       const TraceReport& report);

}  // namespace hpcg::telemetry

// Metrics registry: named counters, gauges and histograms shared by all
// rank threads of a run. Instruments are created on first use and live as
// long as the registry; updates are atomic, so any rank (or the collective
// leader acting for the group) can bump them without coordination.
//
// The registry deliberately stores plain scalars, not time series — the
// per-superstep series (active vertices, load-imbalance ratio) are derived
// from the span stream at export time (see report.hpp), which keeps the
// hot-path cost of a metric update to one atomic add.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hpcg::telemetry {

/// Monotone event/byte counter.
class Counter {
 public:
  void add(std::uint64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void increment() { add(1); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (e.g. a ratio computed at the end of a run). `max`
/// keeps the largest value ever set, for high-water-mark style gauges.
class Gauge {
 public:
  void set(double value) {
    v_.store(value, std::memory_order_relaxed);
    double prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
  std::atomic<double> max_{0.0};
};

/// Power-of-two bucketed histogram over unsigned values (bucket i counts
/// observations in [2^(i-1), 2^i), bucket 0 counts zeros) — enough to see
/// e.g. the collective payload-size distribution without configuration.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void observe(std::uint64_t value) {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (0, 1, 2, 4, 8, ...).
  static std::uint64_t bucket_bound(int i) {
    return i == 0 ? 0 : (i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << (i - 1)));
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  static int bucket_of(std::uint64_t value) {
    if (value == 0) return 0;
    int b = 0;
    while (value != 0) {
      value >>= 1;
      ++b;
    }
    return b;  // 1..64
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

class MetricsRegistry {
 public:
  /// Instrument lookup-or-create. References stay valid for the registry's
  /// lifetime (instruments are heap nodes; the map only guards creation).
  Counter& counter(const std::string& name) { return get(counters_, name); }
  Gauge& gauge(const std::string& name) { return get(gauges_, name); }
  Histogram& histogram(const std::string& name) { return get(histograms_, name); }

  /// Point-in-time copy for exporters; safe while ranks keep updating.
  struct HistogramData {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;  // (bound, n)
  };
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;
  };
  Snapshot snapshot() const;

  /// Zeroes every instrument (names are kept). Used by Comm::reset_clocks.
  void reset();

  /// Quantile estimate over a snapshotted histogram: walks the cumulative
  /// bucket counts to the bucket holding the q-th observation and
  /// interpolates linearly inside its [bound, 2*bound) value range. With
  /// power-of-two buckets the estimate is within 2x of the true value —
  /// plenty for p50/p95/p99 latency summaries. `q` is clamped to [0, 1];
  /// an empty histogram yields 0.
  static double histogram_quantile(const HistogramData& h, double q);

 private:
  template <class T>
  T& get(std::map<std::string, std::unique_ptr<T>>& family, const std::string& name) {
    std::lock_guard lock(mutex_);
    auto& slot = family[name];
    if (!slot) slot = std::make_unique<T>();
    return *slot;
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hpcg::telemetry

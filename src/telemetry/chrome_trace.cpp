#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"

namespace hpcg::telemetry {

namespace {

constexpr double kSecondsToUs = 1e6;

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// ---------------------------------------------------------------------------
// Minimal JSON DOM parser — only what the reader needs. Recursive descent
// over the full value grammar; numbers are doubles (exact for the 53-bit
// integers the writer emits).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("chrome trace parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.str = string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return {};
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The writer only escapes control characters, so a code point
          // below 0x80 is all we need to reproduce.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            fail("non-ASCII \\u escape not supported by this reader");
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const auto parsed =
        util::parse_double(std::string(text_.substr(start, pos_ - start)));
    if (!parsed) fail("malformed number");
    v.number = *parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

double number_or(const JsonValue& obj, const std::string& key, double fallback) {
  const JsonValue* v = obj.find(key);
  return (v && v->type == JsonValue::Type::kNumber) ? v->number : fallback;
}

std::string string_or(const JsonValue& obj, const std::string& key,
                      const std::string& fallback) {
  const JsonValue* v = obj.find(key);
  return (v && v->type == JsonValue::Type::kString) ? v->str : fallback;
}

}  // namespace

void write_chrome_trace(std::ostream& out, const std::vector<SpanRecord>& spans,
                        int nranks) {
  const auto previous_precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"nranks\":" << nranks
      << "},\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  // Track-naming metadata: one named thread per rank under one process.
  // Async (nonblocking-collective) spans render on a second track per rank
  // at tid = nranks + rank, named only when such spans exist.
  bool any_async = false;
  for (const auto& span : spans) {
    if (span.kind == SpanKind::kAsync) {
      any_async = true;
      break;
    }
  }
  for (int r = 0; r < nranks; ++r) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << r
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"rank " << r << "\"}}";
  }
  if (any_async) {
    for (int r = 0; r < nranks; ++r) {
      sep();
      out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << nranks + r
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\"rank " << r
          << " (async)\"}}";
    }
  }
  for (const auto& span : spans) {
    sep();
    const int tid =
        span.kind == SpanKind::kAsync ? nranks + span.rank : span.rank;
    out << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid << ",\"ts\":"
        << span.start_s * kSecondsToUs
        << ",\"dur\":" << (span.end_s - span.start_s) * kSecondsToUs
        << ",\"name\":";
    write_escaped(out, span.name);
    out << ",\"cat\":\"" << to_string(span.kind) << "\",\"args\":{\"bytes\":"
        << span.bytes << ",\"group_size\":" << span.group_size
        << ",\"value\":" << span.value << ",\"superstep\":" << span.superstep
        << "}}";
  }
  out << "\n]}\n";
  out.precision(previous_precision);
}

void write_chrome_trace(std::ostream& out, const Recorder& recorder) {
  write_chrome_trace(out, recorder.spans(), recorder.nranks());
}

TraceFile read_chrome_trace(const std::string& json_text) {
  const JsonValue doc = JsonParser(json_text).parse();
  if (doc.type != JsonValue::Type::kObject) {
    throw std::runtime_error("chrome trace: top-level JSON value is not an object");
  }
  TraceFile file;
  if (const JsonValue* other = doc.find("otherData")) {
    file.nranks = static_cast<int>(number_or(*other, "nranks", 0.0));
  }
  const JsonValue* events = doc.find("traceEvents");
  if (!events || events->type != JsonValue::Type::kArray) {
    throw std::runtime_error("chrome trace: missing traceEvents array");
  }
  int max_tid = -1;
  for (const JsonValue& event : events->array) {
    if (event.type != JsonValue::Type::kObject) continue;
    if (string_or(event, "ph", "") != "X") continue;  // skip metadata events
    SpanRecord span;
    span.rank = static_cast<int>(number_or(event, "tid", 0.0));
    span.start_s = number_or(event, "ts", 0.0) / kSecondsToUs;
    span.end_s = span.start_s + number_or(event, "dur", 0.0) / kSecondsToUs;
    span.name = string_or(event, "name", "");
    span.kind = span_kind_from_string(string_or(event, "cat", "phase"));
    // Async spans live on the per-rank async track (tid = nranks + rank);
    // map them back. nranks is written before any events, so it is known
    // here whenever the writer produced the file.
    if (span.kind == SpanKind::kAsync && file.nranks > 0 &&
        span.rank >= file.nranks) {
      span.rank -= file.nranks;
    } else {
      max_tid = std::max(max_tid, span.rank);
    }
    if (const JsonValue* args = event.find("args")) {
      span.bytes = static_cast<std::uint64_t>(number_or(*args, "bytes", 0.0));
      span.group_size = static_cast<int>(number_or(*args, "group_size", 0.0));
      span.value = static_cast<std::int64_t>(number_or(*args, "value", -1.0));
      span.superstep = static_cast<int>(number_or(*args, "superstep", -1.0));
    }
    file.spans.push_back(std::move(span));
  }
  if (file.nranks == 0) file.nranks = max_tid + 1;
  return file;
}

TraceFile read_chrome_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_chrome_trace(buffer.str());
}

}  // namespace hpcg::telemetry

// Per-rank span tracing: the observability core of the simulator.
//
// A `Recorder` owns one append-only span buffer per rank. Spans carry
// virtual-clock start/end times (the same modeled clock RunStats reports),
// so a recorded run can be dissected offline into per-superstep
// computation/communication splits, straggler ranks and critical paths —
// the per-rank breakdowns the paper's Figures 3–8 are built from.
//
// Ownership and threading contract:
//   * each rank thread appends to its own buffer (no lock);
//   * the leader of a collective appends the collective's span to every
//     member's buffer during phase B, when members are parked between the
//     collective's two barriers — the same happens-before argument that
//     makes the runtime's virtual-clock writes safe covers span buffers
//     and the per-rank superstep cursor;
//   * `spans()` / exporters may only run after the rank threads joined.
//
// Everything is inert until a Recorder is attached to a run
// (Runtime::run(..., &recorder)); with no recorder attached the hooks are
// a single null-pointer test, so an untraced run is unchanged (see
// test_telemetry.cpp's bit-identical regression test).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace hpcg::telemetry {

/// What a span measures. Compute and collective spans are emitted by the
/// runtime hooks; superstep and phase spans are opened by algorithm code.
enum class SpanKind : std::uint8_t {
  kCompute,     // modeled kernel time or attributed thread-CPU time
  kCollective,  // one collective, including time spent waiting for peers
  kSuperstep,   // one bulk-synchronous iteration of an algorithm
  kPhase,       // any other labeled region (setup, exchange, ...)
  kInstant,     // zero-duration event (fault injected, recovery restore)
  kAsync,       // nonblocking collective issue->wait window ("overlap"
                // spans mark the portion hidden under compute)
};

constexpr const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCompute: return "compute";
    case SpanKind::kCollective: return "collective";
    case SpanKind::kSuperstep: return "superstep";
    case SpanKind::kPhase: return "phase";
    case SpanKind::kInstant: return "instant";
    case SpanKind::kAsync: return "async";
  }
  return "?";
}

/// Parses an exporter category string back into a kind (trace round-trip).
SpanKind span_kind_from_string(const std::string& s);

/// One closed span on one rank's track, in virtual-clock seconds.
struct SpanRecord {
  double start_s = 0.0;
  double end_s = 0.0;
  int rank = 0;
  SpanKind kind = SpanKind::kPhase;
  std::string name;
  std::uint64_t bytes = 0;     // collective payload bytes (0 otherwise)
  int group_size = 0;          // collective group size (0 otherwise)
  std::int64_t value = -1;     // kind-specific: superstep active vertices,
                               // compute edges touched; -1 = not reported
  int superstep = -1;          // enclosing superstep index, -1 outside
};

class Recorder;

/// RAII handle for an open superstep/phase span. Obtained from
/// Comm::superstep_span / Comm::phase_span (or Recorder::open directly);
/// closes itself — sampling the rank's virtual clock — on destruction.
/// A default-constructed Span is inert, which is how the disabled path
/// stays free of work.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish();
      rec_ = other.rec_;
      data_ = std::move(other.data_);
      other.rec_ = nullptr;
    }
    return *this;
  }
  ~Span() { finish(); }

  /// Whether this span is actually recording.
  explicit operator bool() const { return rec_ != nullptr; }

  /// Attaches a kind-specific measurement (e.g. the superstep's active
  /// vertex count, once known). No-op on an inert span.
  void set_value(std::int64_t value) {
    if (rec_) data_.value = value;
  }

  /// Superstep index this span was assigned (-1 for inert/phase spans).
  int superstep() const { return rec_ ? data_.superstep : -1; }

  /// Closes the span now (idempotent; the destructor calls it).
  void finish();

 private:
  friend class Recorder;
  Span(Recorder* rec, SpanRecord data) : rec_(rec), data_(std::move(data)) {}

  Recorder* rec_ = nullptr;
  SpanRecord data_;
};

/// Per-rank span buffers plus the run's metrics registry.
class Recorder {
 public:
  explicit Recorder(int nranks);

  int nranks() const { return static_cast<int>(per_rank_.size()); }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Connects rank `rank` to its virtual clock. `flush` (optional) is
  /// invoked before each clock sample to attribute pending thread-CPU
  /// compute time, so span edges land on up-to-date clocks. Installed by
  /// Runtime::run; unbound ranks sample a clock stuck at zero (unit tests
  /// that drive the recorder directly pass explicit times instead).
  void bind_rank(int rank, const double* vclock, std::function<void()> flush);

  /// Attributes pending compute and reads rank's virtual clock.
  double sample_clock(int rank);

  /// Appends a fully-formed span (explicit times). Safe from the owning
  /// rank thread, or from a collective leader between the collective's
  /// barriers (see threading contract above).
  void record(SpanRecord span);

  /// Opens a RAII span starting at the rank's current virtual clock. For
  /// kSuperstep the span is assigned the rank's next superstep index and
  /// nested records are tagged with it until the span closes.
  Span open(int rank, SpanKind kind, std::string name, std::int64_t value = -1);

  /// Superstep index currently open on `rank`, or -1.
  int current_superstep(int rank) const { return per_rank_[rank].current; }

  /// Drops rank `rank`'s spans and superstep numbering (Comm::reset_clocks
  /// calls this so telemetry restarts with the zeroed clocks).
  void reset_rank(int rank);

  /// All closed spans, ordered by (rank, start, longer-first). Only valid
  /// once rank threads have joined (or before they start).
  std::vector<SpanRecord> spans() const;

  /// Spans of one rank, in recording order.
  const std::vector<SpanRecord>& rank_spans(int rank) const {
    return per_rank_[rank].spans;
  }

 private:
  friend class Span;

  void close(SpanRecord data);

  // Padded so rank threads appending concurrently don't share lines.
  struct alignas(64) PerRank {
    std::vector<SpanRecord> spans;
    const double* vclock = nullptr;
    std::function<void()> flush;
    int next_superstep = 0;
    int current = -1;  // open superstep index, -1 when none
  };

  std::vector<PerRank> per_rank_;
  MetricsRegistry metrics_;
};

}  // namespace hpcg::telemetry

#include "telemetry/metrics.hpp"

namespace hpcg::telemetry {

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramData data;
    data.count = h->count();
    data.sum = h->sum();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const auto n = h->bucket(i);
      if (n > 0) data.buckets.emplace_back(Histogram::bucket_bound(i), n);
    }
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

double MetricsRegistry::histogram_quantile(const HistogramData& h, double q) {
  if (h.count == 0) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // Rank of the target observation, 1-based (nearest-rank definition).
  const double exact = q * static_cast<double>(h.count);
  std::uint64_t target = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(target) < exact) ++target;
  if (target == 0) target = 1;
  std::uint64_t cum = 0;
  for (const auto& [bound, n] : h.buckets) {
    if (cum + n >= target) {
      if (bound == 0) return 0.0;  // the zero bucket
      // `bound` is 2^(i-1): the bucket holds values in [bound, 2*bound)
      // (exactly {1} for bound 1); spread its observations uniformly.
      const double lo = static_cast<double>(bound);
      const double hi = bound == 1 ? 1.0 : 2.0 * static_cast<double>(bound);
      const double frac =
          static_cast<double>(target - cum) / static_cast<double>(n);
      return lo + frac * (hi - lo);
    }
    cum += n;
  }
  return h.buckets.empty() ? 0.0
                           : 2.0 * static_cast<double>(h.buckets.back().first);
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace hpcg::telemetry

#include "telemetry/metrics.hpp"

namespace hpcg::telemetry {

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramData data;
    data.count = h->count();
    data.sum = h->sum();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const auto n = h->bucket(i);
      if (n > 0) data.buckets.emplace_back(Histogram::bucket_bound(i), n);
    }
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace hpcg::telemetry

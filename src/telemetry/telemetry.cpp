#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpcg::telemetry {

SpanKind span_kind_from_string(const std::string& s) {
  if (s == "compute") return SpanKind::kCompute;
  if (s == "collective") return SpanKind::kCollective;
  if (s == "superstep") return SpanKind::kSuperstep;
  if (s == "phase") return SpanKind::kPhase;
  if (s == "instant") return SpanKind::kInstant;
  if (s == "async") return SpanKind::kAsync;
  throw std::invalid_argument("unknown span kind: " + s);
}

void Span::finish() {
  if (!rec_) return;
  Recorder* rec = rec_;
  rec_ = nullptr;
  data_.end_s = rec->sample_clock(data_.rank);
  rec->close(std::move(data_));
}

Recorder::Recorder(int nranks) : per_rank_(static_cast<std::size_t>(nranks)) {}

void Recorder::bind_rank(int rank, const double* vclock,
                         std::function<void()> flush) {
  auto& pr = per_rank_[static_cast<std::size_t>(rank)];
  pr.vclock = vclock;
  pr.flush = std::move(flush);
}

double Recorder::sample_clock(int rank) {
  auto& pr = per_rank_[static_cast<std::size_t>(rank)];
  if (pr.flush) pr.flush();
  return pr.vclock ? *pr.vclock : 0.0;
}

void Recorder::record(SpanRecord span) {
  per_rank_[static_cast<std::size_t>(span.rank)].spans.push_back(std::move(span));
}

Span Recorder::open(int rank, SpanKind kind, std::string name, std::int64_t value) {
  auto& pr = per_rank_[static_cast<std::size_t>(rank)];
  SpanRecord data;
  data.rank = rank;
  data.kind = kind;
  data.name = std::move(name);
  data.value = value;
  data.start_s = sample_clock(rank);
  if (kind == SpanKind::kSuperstep) {
    data.superstep = pr.next_superstep++;
    pr.current = data.superstep;
  } else {
    data.superstep = pr.current;
  }
  return Span(this, std::move(data));
}

void Recorder::close(SpanRecord data) {
  auto& pr = per_rank_[static_cast<std::size_t>(data.rank)];
  if (data.kind == SpanKind::kSuperstep && pr.current == data.superstep) {
    pr.current = -1;
  }
  pr.spans.push_back(std::move(data));
}

void Recorder::reset_rank(int rank) {
  auto& pr = per_rank_[static_cast<std::size_t>(rank)];
  pr.spans.clear();
  pr.next_superstep = 0;
  pr.current = -1;
}

std::vector<SpanRecord> Recorder::spans() const {
  std::vector<SpanRecord> all;
  std::size_t total = 0;
  for (const auto& pr : per_rank_) total += pr.spans.size();
  all.reserve(total);
  for (const auto& pr : per_rank_) {
    all.insert(all.end(), pr.spans.begin(), pr.spans.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     if (a.start_s != b.start_s) return a.start_s < b.start_s;
                     return a.end_s > b.end_s;  // parents before children
                   });
  return all;
}

}  // namespace hpcg::telemetry

#include "telemetry/report.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <utility>

namespace hpcg::telemetry {

namespace {

struct DurationAccumulator {
  Histogram hist;  // microsecond-bucketed durations
  double max_s = 0.0;
};

struct SuperstepAccumulator {
  std::string label;
  double start_s = std::numeric_limits<double>::infinity();
  double end_s = 0.0;
  std::int64_t active = -1;
  // Per rank, within this superstep.
  std::map<int, double> duration;
  std::map<int, double> comp;
  std::map<int, double> comm;
};

}  // namespace

TraceReport analyze(const std::vector<SpanRecord>& spans, int nranks) {
  TraceReport report;
  report.nranks = nranks;
  report.ranks.resize(static_cast<std::size_t>(std::max(nranks, 0)));
  for (int r = 0; r < nranks; ++r) report.ranks[static_cast<std::size_t>(r)].rank = r;

  std::map<int, SuperstepAccumulator> steps;
  std::map<std::string, InstantStats> instants;
  // Duration histograms per (kind, name) family, microsecond-bucketed like
  // the registry's latency metrics so quantiles agree across exporters.
  std::map<std::pair<int, std::string>, std::unique_ptr<DurationAccumulator>>
      families;
  for (const auto& span : spans) {
    if (span.rank < 0 || span.rank >= nranks) continue;
    auto& rank = report.ranks[static_cast<std::size_t>(span.rank)];
    const double duration = span.end_s - span.start_s;
    rank.end_s = std::max(rank.end_s, span.end_s);
    report.makespan_s = std::max(report.makespan_s, span.end_s);
    if (span.kind != SpanKind::kInstant && duration >= 0.0) {
      auto& family = families[{static_cast<int>(span.kind), span.name}];
      if (!family) family = std::make_unique<DurationAccumulator>();
      family->hist.observe(static_cast<std::uint64_t>(duration * 1e6));
      family->max_s = std::max(family->max_s, duration);
    }
    switch (span.kind) {
      case SpanKind::kCompute:
        rank.comp_s += duration;
        if (span.superstep >= 0) steps[span.superstep].comp[span.rank] += duration;
        break;
      case SpanKind::kCollective:
        rank.comm_s += duration;
        if (span.superstep >= 0) steps[span.superstep].comm[span.rank] += duration;
        break;
      case SpanKind::kSuperstep: {
        ++rank.supersteps;
        auto& acc = steps[span.superstep];
        if (acc.label.empty()) acc.label = span.name;
        acc.start_s = std::min(acc.start_s, span.start_s);
        acc.end_s = std::max(acc.end_s, span.end_s);
        acc.duration[span.rank] += duration;
        acc.active = std::max(acc.active, span.value);
        break;
      }
      case SpanKind::kPhase:
        break;
      case SpanKind::kAsync:
        // Issue->wait windows overlay the main track's compute/collective
        // spans, so they are excluded from the comp/comm sums; only the
        // "overlap" spans (the hidden portion) are aggregated.
        if (span.name == "overlap") rank.overlap_s += duration;
        break;
      case SpanKind::kInstant: {
        auto& inst = instants[span.name];
        if (inst.count == 0) {
          inst.name = span.name;
          inst.first_s = span.start_s;
        }
        ++inst.count;
        inst.last_s = std::max(inst.last_s, span.start_s);
        break;
      }
    }
  }
  for (auto& [name, inst] : instants) report.instants.push_back(std::move(inst));

  for (const auto& [key, acc] : families) {
    MetricsRegistry::HistogramData data;
    data.count = acc->hist.count();
    data.sum = acc->hist.sum();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const auto n = acc->hist.bucket(i);
      if (n > 0) data.buckets.emplace_back(Histogram::bucket_bound(i), n);
    }
    SpanDurations family;
    family.kind = static_cast<SpanKind>(key.first);
    family.name = key.second;
    family.count = data.count;
    family.p50_s = MetricsRegistry::histogram_quantile(data, 0.50) * 1e-6;
    family.p95_s = MetricsRegistry::histogram_quantile(data, 0.95) * 1e-6;
    family.p99_s = MetricsRegistry::histogram_quantile(data, 0.99) * 1e-6;
    family.max_s = acc->max_s;
    report.durations.push_back(std::move(family));
  }

  for (const auto& rank : report.ranks) {
    report.comp_max_s = std::max(report.comp_max_s, rank.comp_s);
    report.comm_max_s = std::max(report.comm_max_s, rank.comm_s);
    report.overlap_max_s = std::max(report.overlap_max_s, rank.overlap_s);
  }

  std::map<int, int> straggler_votes;
  double weighted_imbalance = 0.0;
  double weight = 0.0;
  for (const auto& [index, acc] : steps) {
    SuperstepStats stats;
    stats.index = index;
    stats.label = acc.label;
    stats.start_s = acc.start_s;
    stats.end_s = acc.end_s;
    stats.active_vertices = acc.active;
    stats.ranks = static_cast<int>(acc.duration.size());
    double total = 0.0;
    for (const auto& [rank, duration] : acc.duration) {
      total += duration;
      if (duration > stats.rank_max_s) {
        stats.rank_max_s = duration;
        stats.straggler = rank;
      }
    }
    stats.rank_mean_s = stats.ranks > 0 ? total / stats.ranks : 0.0;
    stats.imbalance =
        stats.rank_mean_s > 0.0 ? stats.rank_max_s / stats.rank_mean_s : 1.0;
    for (const auto& [rank, comp] : acc.comp) {
      stats.comp_max_s = std::max(stats.comp_max_s, comp);
    }
    for (const auto& [rank, comm] : acc.comm) {
      stats.comm_max_s = std::max(stats.comm_max_s, comm);
    }
    report.critical_path_s += stats.rank_max_s;
    report.worst_imbalance = std::max(report.worst_imbalance, stats.imbalance);
    weighted_imbalance += stats.imbalance * stats.rank_max_s;
    weight += stats.rank_max_s;
    if (stats.straggler >= 0) ++straggler_votes[stats.straggler];
    report.supersteps.push_back(std::move(stats));
  }
  if (weight > 0.0) report.mean_imbalance = weighted_imbalance / weight;

  int best_votes = 0;
  for (const auto& [rank, votes] : straggler_votes) {
    if (votes > best_votes) {
      best_votes = votes;
      report.straggler_rank = rank;
    }
  }
  return report;
}

void print_report(std::ostream& out, const TraceReport& report,
                  int max_supersteps) {
  const auto flags = out.flags();
  out << std::fixed << std::setprecision(6);
  out << "ranks: " << report.nranks << ", makespan " << report.makespan_s
      << " s, comp " << report.comp_max_s << " s, comm " << report.comm_max_s
      << " s";
  if (report.overlap_max_s > 0.0) {
    out << ", overlap " << report.overlap_max_s << " s";
  }
  out << " (max over ranks)\n";

  out << "\nper-rank totals:\n";
  out << "  rank      comp_s      comm_s   overlap_s       end_s  supersteps\n";
  for (const auto& rank : report.ranks) {
    out << "  " << std::setw(4) << rank.rank << "  " << std::setw(10)
        << rank.comp_s << "  " << std::setw(10) << rank.comm_s << "  "
        << std::setw(10) << rank.overlap_s << "  " << std::setw(10)
        << rank.end_s << "  " << std::setw(10) << rank.supersteps << "\n";
  }

  if (!report.supersteps.empty()) {
    out << "\nper-superstep breakdown (comp/comm = slowest rank inside):\n";
    out << "  step  label             active    comp_max_s    comm_max_s"
           "    rank_max_s  imbalance  straggler\n";
    int printed = 0;
    for (const auto& step : report.supersteps) {
      if (max_supersteps > 0 && printed++ >= max_supersteps) {
        out << "  ... (" << report.supersteps.size() - max_supersteps
            << " more supersteps)\n";
        break;
      }
      out << "  " << std::setw(4) << step.index << "  " << std::setw(16)
          << std::left << step.label << std::right << std::setw(8)
          << step.active_vertices << "  " << std::setw(12) << step.comp_max_s
          << "  " << std::setw(12) << step.comm_max_s << "  " << std::setw(12)
          << step.rank_max_s << "  " << std::setprecision(3) << std::setw(9)
          << step.imbalance << std::setprecision(6) << "  " << std::setw(9)
          << step.straggler << "\n";
    }
    out << "\ncritical path (sum of per-superstep slowest ranks): "
        << report.critical_path_s << " s\n";
    out << "load imbalance (max/mean rank time): worst " << std::setprecision(3)
        << report.worst_imbalance << ", duration-weighted mean "
        << report.mean_imbalance << "\n";
    if (report.straggler_rank >= 0) {
      out << "most frequent straggler: rank " << report.straggler_rank << "\n";
    }
  }

  if (!report.durations.empty()) {
    // Span durations are micro-scale at simulator time; print in us so the
    // fixed-point columns stay readable.
    out << "\nspan duration quantiles (power-of-two bucketed, microseconds):\n";
    out << "  kind        name                    count      p50_us      p95_us"
           "      p99_us      max_us\n";
    out << std::setprecision(3);
    for (const auto& family : report.durations) {
      out << "  " << std::setw(10) << std::left << to_string(family.kind)
          << "  " << std::setw(20) << family.name << std::right << "  "
          << std::setw(7) << family.count << "  " << std::setw(10)
          << family.p50_s * 1e6 << "  " << std::setw(10) << family.p95_s * 1e6
          << "  " << std::setw(10) << family.p99_s * 1e6 << "  "
          << std::setw(10) << family.max_s * 1e6 << "\n";
    }
    out << std::setprecision(6);
  }

  if (!report.instants.empty()) {
    out << "\nfault/recovery events:\n";
    out << "  event                     count     first_s      last_s\n";
    for (const auto& inst : report.instants) {
      out << "  " << std::setw(22) << std::left << inst.name << std::right
          << "  " << std::setw(7) << inst.count << "  " << std::setw(10)
          << inst.first_s << "  " << std::setw(10) << inst.last_s << "\n";
    }
  }
  out.flags(flags);
}

namespace {

void write_json_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsRegistry::Snapshot& snap,
                        const TraceReport& report) {
  const auto previous_precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_escaped(out, name);
    out << ": " << value;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_escaped(out, name);
    out << ": " << value;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_escaped(out, name);
    out << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"p50\": " << MetricsRegistry::histogram_quantile(h, 0.50)
        << ", \"p95\": " << MetricsRegistry::histogram_quantile(h, 0.95)
        << ", \"p99\": " << MetricsRegistry::histogram_quantile(h, 0.99)
        << ", \"buckets\": [";
    bool b_first = true;
    for (const auto& [bound, n] : h.buckets) {
      if (!b_first) out << ", ";
      b_first = false;
      out << "[" << bound << ", " << n << "]";
    }
    out << "]}";
  }
  out << "\n  },\n  \"run\": {\"nranks\": " << report.nranks
      << ", \"makespan_s\": " << report.makespan_s
      << ", \"comp_max_s\": " << report.comp_max_s
      << ", \"comm_max_s\": " << report.comm_max_s
      << ", \"overlap_max_s\": " << report.overlap_max_s
      << ", \"critical_path_s\": " << report.critical_path_s
      << ", \"worst_imbalance\": " << report.worst_imbalance
      << ", \"mean_imbalance\": " << report.mean_imbalance
      << ", \"straggler_rank\": " << report.straggler_rank << "},\n";
  out << "  \"ranks\": [";
  first = true;
  for (const auto& rank : report.ranks) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    out << "{\"rank\": " << rank.rank << ", \"comp_s\": " << rank.comp_s
        << ", \"comm_s\": " << rank.comm_s
        << ", \"overlap_s\": " << rank.overlap_s << ", \"end_s\": " << rank.end_s
        << ", \"supersteps\": " << rank.supersteps << "}";
  }
  out << "\n  ],\n  \"supersteps\": [";
  first = true;
  for (const auto& step : report.supersteps) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    out << "{\"index\": " << step.index << ", \"label\": ";
    write_json_escaped(out, step.label);
    out << ", \"active_vertices\": " << step.active_vertices
        << ", \"comp_max_s\": " << step.comp_max_s
        << ", \"comm_max_s\": " << step.comm_max_s
        << ", \"rank_max_s\": " << step.rank_max_s
        << ", \"rank_mean_s\": " << step.rank_mean_s
        << ", \"imbalance\": " << step.imbalance
        << ", \"straggler\": " << step.straggler << "}";
  }
  out << "\n  ]\n}\n";
  out.precision(previous_precision);
}

void write_metrics_csv(std::ostream& out, const MetricsRegistry::Snapshot& snap,
                       const TraceReport& report) {
  const auto previous_precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "metric,value\n";
  for (const auto& [name, value] : snap.counters) {
    out << "counter." << name << "," << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "gauge." << name << "," << value << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out << "histogram." << name << ".count," << h.count << "\n";
    out << "histogram." << name << ".sum," << h.sum << "\n";
    out << "histogram." << name << ".p50,"
        << MetricsRegistry::histogram_quantile(h, 0.50) << "\n";
    out << "histogram." << name << ".p95,"
        << MetricsRegistry::histogram_quantile(h, 0.95) << "\n";
    out << "histogram." << name << ".p99,"
        << MetricsRegistry::histogram_quantile(h, 0.99) << "\n";
  }
  out << "run.makespan_s," << report.makespan_s << "\n";
  out << "run.overlap_max_s," << report.overlap_max_s << "\n";
  out << "run.critical_path_s," << report.critical_path_s << "\n";
  out << "run.worst_imbalance," << report.worst_imbalance << "\n";
  out << "run.mean_imbalance," << report.mean_imbalance << "\n";
  out << "run.straggler_rank," << report.straggler_rank << "\n";
  for (const auto& rank : report.ranks) {
    out << "rank." << rank.rank << ".comp_s," << rank.comp_s << "\n";
    out << "rank." << rank.rank << ".comm_s," << rank.comm_s << "\n";
    out << "rank." << rank.rank << ".overlap_s," << rank.overlap_s << "\n";
  }
  for (const auto& step : report.supersteps) {
    out << "superstep." << step.index << ".active_vertices,"
        << step.active_vertices << "\n";
    out << "superstep." << step.index << ".rank_max_s," << step.rank_max_s << "\n";
    out << "superstep." << step.index << ".imbalance," << step.imbalance << "\n";
  }
  out.precision(previous_precision);
}

}  // namespace hpcg::telemetry

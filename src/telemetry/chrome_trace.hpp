// Chrome trace-event exporter and reader.
//
// Writes the span stream in the Chrome trace-event JSON object format
// (load in chrome://tracing or https://ui.perfetto.dev): one complete
// ("ph":"X") event per span, one track ("tid") per rank, timestamps in
// microseconds of virtual-clock time. The reader parses the same format
// back into SpanRecords, which is what the hpcg_trace CLI and the
// round-trip tests run on.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace hpcg::telemetry {

/// Emits a Chrome trace-event JSON document for the given spans.
/// `nranks` names the per-rank tracks (pass Recorder::nranks()).
void write_chrome_trace(std::ostream& out, const std::vector<SpanRecord>& spans,
                        int nranks);

/// Convenience overload over a finished recorder.
void write_chrome_trace(std::ostream& out, const Recorder& recorder);

/// A trace round-tripped from disk: the spans plus the rank count the
/// writer recorded in the document's `otherData`.
struct TraceFile {
  std::vector<SpanRecord> spans;
  int nranks = 0;
};

/// Parses a Chrome trace-event JSON document produced by
/// `write_chrome_trace` (tolerates extra fields; ignores non-"X" events).
/// Throws std::runtime_error on malformed JSON.
TraceFile read_chrome_trace(const std::string& json_text);

/// Reads and parses a trace file from disk.
TraceFile read_chrome_trace_file(const std::string& path);

}  // namespace hpcg::telemetry

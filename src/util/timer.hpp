// Timing primitives. Two clocks matter in this codebase:
//
//  * wall time   — used by tests and micro-benchmarks;
//  * thread CPU  — used by the communication runtime to attribute compute
//                  time to a rank's virtual clock. With many more rank
//                  threads than cores (the normal situation here), wall
//                  time would charge a rank for time it spent preempted;
//                  CLOCK_THREAD_CPUTIME_ID charges only time actually
//                  executed on behalf of the thread.
#pragma once

#include <chrono>
#include <ctime>

namespace hpcg::util {

/// Seconds of CPU time consumed by the calling thread since an unspecified
/// epoch. Monotone per thread.
inline double thread_cpu_seconds() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Monotonic wall-clock seconds since an unspecified epoch.
inline double wall_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simple scoped stopwatch over wall time.
class WallTimer {
 public:
  WallTimer() noexcept : start_(wall_seconds()) {}
  double elapsed() const noexcept { return wall_seconds() - start_; }
  void reset() noexcept { start_ = wall_seconds(); }

 private:
  double start_;
};

}  // namespace hpcg::util

// Minimal command-line option parsing for the benchmark harnesses and
// examples. Supports `--key=value`, `--key value`, and boolean `--flag`.
// Unknown options and malformed numeric values are errors (exit 2 with the
// usage text) so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace hpcg::util {

class Options {
 public:
  Options(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (arg == "--help" || arg == "-h") {
        values_["help"] = "true";
        continue;
      }
      if (!arg.starts_with("--")) {
        std::cerr << "unexpected positional argument: " << arg << "\n";
        std::exit(2);
      }
      arg.remove_prefix(2);
      if (const auto eq = arg.find('='); eq != std::string_view::npos) {
        values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        values_[std::string(arg)] = argv[++i];
      } else {
        values_[std::string(arg)] = "true";
      }
    }
  }

  /// Fetch an option, recording it as known. Every get* call doubles as the
  /// declaration of the option for unknown-option checking.
  std::string get_string(const std::string& key, const std::string& fallback) {
    known_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) {
    known_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : parse_int(key, it->second);
  }

  double get_double(const std::string& key, double fallback) {
    known_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : parse_double(key, it->second);
  }

  bool get_bool(const std::string& key, bool fallback) {
    known_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  /// Comma-separated integer list, e.g. --ranks=1,4,16,64.
  std::vector<std::int64_t> get_int_list(const std::string& key,
                                         std::vector<std::int64_t> fallback) {
    known_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::vector<std::int64_t> out;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(parse_int(key, item));
    return out;
  }

  /// Declares the tool's usage text. Prints it and exits 0 when --help/-h
  /// was passed; check_unknown echoes it before a non-zero exit so typos
  /// leave the user with the flag reference on screen. Call before the
  /// get* declarations so --help wins even with an otherwise bad line.
  void usage(std::string text) {
    usage_ = std::move(text);
    known_.insert("help");
    if (values_.contains("help")) {
      std::cout << usage_;
      std::exit(0);
    }
  }

  /// Call after all get* declarations; aborts on options nobody asked for.
  void check_unknown() const {
    bool bad = false;
    for (const auto& [key, value] : values_) {
      if (!known_.contains(key)) {
        std::cerr << "unknown option --" << key << "=" << value << "\n";
        bad = true;
      }
    }
    if (bad) {
      if (!usage_.empty()) std::cerr << "\n" << usage_;
      std::exit(2);
    }
  }

 private:
  /// Malformed numeric values exit 2 with the usage text on screen, like
  /// unknown flags: a typo in a sweep script must not surface as an
  /// uncaught std::invalid_argument two stack frames away from the flag
  /// that caused it.
  [[noreturn]] void bad_value(const std::string& key,
                              const std::string& text) const {
    std::cerr << "invalid numeric value for --" << key << ": '" << text
              << "'\n";
    if (!usage_.empty()) std::cerr << "\n" << usage_;
    std::exit(2);
  }

  std::int64_t parse_int(const std::string& key, const std::string& text) const {
    std::size_t used = 0;
    std::int64_t value = 0;
    try {
      value = std::stoll(text, &used);
    } catch (const std::exception&) {
      bad_value(key, text);
    }
    if (used != text.size()) bad_value(key, text);
    return value;
  }

  double parse_double(const std::string& key, const std::string& text) const {
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(text, &used);
    } catch (const std::exception&) {
      bad_value(key, text);
    }
    if (used != text.size()) bad_value(key, text);
    return value;
  }

  std::map<std::string, std::string> values_;
  std::set<std::string> known_;
  std::string usage_;
};

}  // namespace hpcg::util

// Compact open-addressing counting hash table, modeled on the space-efficient
// GPU tables the paper adapts for Label Propagation's mode reduction
// (references [24, 25] in the paper). The table stores (key -> count) in a
// flat power-of-two array of slots with linear probing; EMPTY_KEY marks free
// slots. On the GPU the insert path uses atomicCAS on the key word followed
// by atomicAdd on the count; the sequential emulation preserves that
// structure (probe sequence, bounded capacity, saturation behaviour) so the
// 2.5D reduction exercises the same logic the paper describes.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/prng.hpp"

namespace hpcg::util {

class CountingHashTable {
 public:
  using Key = std::uint64_t;
  static constexpr Key kEmptyKey = std::numeric_limits<Key>::max();

  /// Creates a table able to hold at least `capacity` distinct keys before
  /// saturating (sized to the next power of two with ~50% load headroom).
  explicit CountingHashTable(std::size_t capacity) {
    std::size_t slots = 2;
    while (slots < 2 * capacity) slots *= 2;
    keys_.assign(slots, kEmptyKey);
    counts_.assign(slots, 0);
    mask_ = slots - 1;
  }

  /// Adds `weight` to the counter for `key`. Returns false if the table is
  /// saturated (all probe slots taken by other keys); the 2.5D reduction
  /// treats saturation as a signal to fall back to a larger table.
  bool add(Key key, std::uint64_t weight = 1) {
    std::size_t slot = splitmix64(key) & mask_;
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      if (keys_[slot] == key) {
        counts_[slot] += weight;
        return true;
      }
      if (keys_[slot] == kEmptyKey) {
        // atomicCAS(keys[slot], EMPTY, key) on the GPU; uncontended here.
        keys_[slot] = key;
        counts_[slot] = weight;
        ++size_;
        return true;
      }
      slot = (slot + 1) & mask_;
    }
    return false;
  }

  /// Count stored for `key`, or 0 if absent.
  std::uint64_t count(Key key) const {
    std::size_t slot = splitmix64(key) & mask_;
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      if (keys_[slot] == key) return counts_[slot];
      if (keys_[slot] == kEmptyKey) return 0;
      slot = (slot + 1) & mask_;
    }
    return 0;
  }

  /// The key with the largest count; ties broken toward the smaller key so
  /// Label Propagation is deterministic across rank counts. Returns
  /// kEmptyKey when the table is empty.
  Key mode() const {
    Key best = kEmptyKey;
    std::uint64_t best_count = 0;
    for (std::size_t slot = 0; slot <= mask_; ++slot) {
      if (keys_[slot] == kEmptyKey) continue;
      if (counts_[slot] > best_count ||
          (counts_[slot] == best_count && keys_[slot] < best)) {
        best = keys_[slot];
        best_count = counts_[slot];
      }
    }
    return best;
  }

  std::size_t size() const { return size_; }
  std::size_t slot_count() const { return mask_ + 1; }

  /// Serializes occupied entries as (key, count) pairs — the wire format the
  /// 2.5D reduction exchanges between hierarchical owners.
  void serialize(std::vector<std::uint64_t>& out) const {
    for (std::size_t slot = 0; slot <= mask_; ++slot) {
      if (keys_[slot] == kEmptyKey) continue;
      out.push_back(keys_[slot]);
      out.push_back(counts_[slot]);
    }
  }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    std::fill(counts_.begin(), counts_.end(), 0);
    size_ = 0;
  }

 private:
  std::vector<Key> keys_;
  std::vector<std::uint64_t> counts_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hpcg::util

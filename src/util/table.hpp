// Console table / CSV emission for the benchmark harnesses. Every figure
// reproduction prints (a) an aligned human-readable table and (b) optional
// CSV for plotting, with identical rows.
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace hpcg::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Begins a new row; subsequent operator<< calls fill its cells.
  Table& row() {
    rows_.emplace_back();
    return *this;
  }

  Table& operator<<(const std::string& cell) {
    rows_.back().push_back(cell);
    return *this;
  }
  Table& operator<<(const char* cell) { return *this << std::string(cell); }
  Table& operator<<(std::int64_t v) { return *this << std::to_string(v); }
  Table& operator<<(int v) { return *this << std::to_string(v); }
  Table& operator<<(std::size_t v) { return *this << std::to_string(v); }
  Table& operator<<(double v) {
    std::ostringstream os;
    if (v != 0.0 && (std::abs(v) < 1e-3 || std::abs(v) >= 1e6)) {
      os << std::scientific << std::setprecision(3) << v;
    } else {
      os << std::fixed << std::setprecision(4) << v;
    }
    return *this << os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < header_.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(width[c]) + 2)
           << (c < cells.size() ? cells[c] : "");
      }
      os << "\n";
    };
    line(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c) {
      rule += std::string(width[c], '-') + "  ";
    }
    os << rule << "\n";
    for (const auto& r : rows_) line(r);
  }

  void write_csv(const std::string& path) const {
    std::ofstream os(path);
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) os << ",";
        os << cells[c];
      }
      os << "\n";
    };
    line(header_);
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpcg::util

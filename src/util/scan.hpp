// Prefix sums and the binary search used by the Manhattan-collapse kernel
// schedule (Algorithm 6 of the paper): given per-vertex work offsets, map a
// flat work index back to the vertex that owns it.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>

namespace hpcg::util {

/// In-place exclusive prefix sum: out[i] = sum of in[0..i). Returns the
/// total (the value that would occupy index size()).
template <class T>
T exclusive_scan_inplace(std::span<T> data) {
  T running{};
  for (auto& value : data) {
    const T next = running + value;
    value = running;
    running = next;
  }
  return running;
}

/// In-place inclusive prefix sum; returns the total.
template <class T>
T inclusive_scan_inplace(std::span<T> data) {
  T running{};
  for (auto& value : data) {
    running += value;
    value = running;
  }
  return running;
}

/// Finds the owner of flat work item `needle` in a sorted offsets array:
/// the largest index j with offsets[j] <= needle < offsets[j+1].
/// `offsets` has one entry per owner plus no sentinel; the caller
/// guarantees needle < total work. This is the binary_search of Alg. 6.
template <class T>
std::size_t owner_of(std::span<const T> offsets, T needle) {
  assert(!offsets.empty());
  std::size_t lo = 0;
  std::size_t hi = offsets.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (offsets[mid] <= needle) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace hpcg::util

#pragma once

// Checked numeric parsing for untrusted text (CSV rows, script files,
// dataset names, JSON numbers). This is the util::Options policy from the
// CLI layer extended to file input: a parser either consumes the ENTIRE
// field and returns a value, or returns nullopt — it never throws and it
// never silently accepts trailing garbage the way std::sto* does.

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace hpcg::util {

inline std::optional<std::int64_t> parse_int64(std::string_view text) {
  std::int64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || text.empty()) return std::nullopt;
  return value;
}

inline std::optional<std::uint64_t> parse_uint64(std::string_view text) {
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || text.empty()) return std::nullopt;
  return value;
}

inline std::optional<int> parse_int32(std::string_view text) {
  const auto wide = parse_int64(text);
  if (!wide || *wide < INT32_MIN || *wide > INT32_MAX) return std::nullopt;
  return static_cast<int>(*wide);
}

inline std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // strtod skips leading whitespace and stops at trailing junk; reject both
  // so a field is either a complete number or an error.
  if (std::isspace(static_cast<unsigned char>(text.front()))) return std::nullopt;
  const std::string buf(text);  // NUL-terminated copy for strtod
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  if (errno == ERANGE) return std::nullopt;
  return value;
}

}  // namespace hpcg::util

// Deterministic pseudo-random number generation for graph generators and
// tests. We avoid <random> engines for the generator hot paths: splitmix64
// and xoshiro256** are faster, have well-understood statistics, and make
// results bit-reproducible across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace hpcg::util {

/// Mixes a 64-bit value into a well-distributed 64-bit hash (splitmix64
/// finalizer). Suitable for seeding and for hash-based edge placement.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** by Blackman & Vigna: the all-purpose generator used by the
/// synthetic-graph generators and randomized tests. Not cryptographic.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    // SplitMix64 is the recommended seeding procedure for xoshiro.
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = splitmix64(s);
      word = s;
    }
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the tiny modulo bias is irrelevant for graph generation. (__int128 is
  /// a GCC/Clang extension; __extension__ keeps -Wpedantic builds quiet.)
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    __extension__ using Wide = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<Wide>(next()) * bound) >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hpcg::util

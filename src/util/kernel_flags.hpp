// Shared CLI surface for the unified kernel options: every tool that runs
// algorithms (hpcg_run, hpcg_serve, hpcg_check) declares the same four
// flags through parse_kernel_options so flag names, defaults and
// combination validation cannot drift between binaries.
#pragma once

#include <string>

#include "comm/kernel_options.hpp"
#include "util/options.hpp"

namespace hpcg::util {

/// Usage-text block matching parse_kernel_options, for Options::usage.
inline constexpr const char* kKernelFlagsUsage =
    "  --threads=N          worker threads per rank (default 1)\n"
    "  --chunk-grain=N      edges per worker-pool chunk (default 16384)\n"
    "  --async=on|off       compute-comm overlap (default off)\n"
    "  --async-chunk=N      pipeline segments for sparse exchanges\n";

/// Reads --threads, --chunk-grain, --async and --async-chunk into a
/// comm::KernelOptions. Throws comm::KernelOptionsError on a bad value or
/// an inconsistent combination (e.g. --async-chunk=4 without --async=on,
/// which older tools silently ignored) so sweep scripts fail loudly.
inline comm::KernelOptions parse_kernel_options(Options& options) {
  comm::KernelOptions kernel;
  // 0 = "not given": the runtime resolves it to 1 worker, and tools that
  // layer their own defaults (hpcg_check's per-config thr=) can tell an
  // explicit --threads=1 apart from an absent flag.
  kernel.threads = static_cast<int>(options.get_int("threads", 0));
  kernel.chunk_grain = static_cast<int>(options.get_int("chunk-grain", 0));
  kernel.chunk = static_cast<int>(options.get_int("async-chunk", 0));
  const std::string async_text = options.get_string("async", "off");
  if (async_text == "on") {
    kernel.async = comm::KernelOptions::Async::kOn;
  } else if (async_text == "off") {
    // The tools default async off; kRunDefault is the library-level "follow
    // RunOptions" sentinel and has no CLI spelling.
    kernel.async = comm::KernelOptions::Async::kOff;
  } else {
    throw comm::KernelOptionsError("--async must be 'on' or 'off'");
  }
  if (kernel.chunk > 1 && kernel.async != comm::KernelOptions::Async::kOn) {
    throw comm::KernelOptionsError(
        "--async-chunk above 1 requires --async=on (chunked pipelining is "
        "an async-exchange feature)");
  }
  kernel.validate();
  return kernel;
}

}  // namespace hpcg::util

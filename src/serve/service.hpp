// The request front-end of the serving layer: bounded admission queue,
// batching scheduler, result cache and latency accounting in front of one
// resident Session.
//
// Admission (all decisions made synchronously inside submit, so a given
// submission sequence is rejected deterministically):
//   1. cache probe — a hit completes immediately and bypasses the queue;
//   2. queue bound  — `queue_capacity` pending requests, else Overloaded
//      (kQueueFull);
//   3. client quota — `max_inflight_per_client` admitted-but-incomplete
//      requests per client id, else Overloaded (kClientQuota).
//
// Scheduling: the dispatcher pops the oldest request; if it is a
// single-source BFS, every other pending single-source BFS (any client,
// FIFO order) is coalesced with it up to `max_batch` sources, and the
// whole batch traverses in ONE multi-source BFS superstep loop
// (algos/msbfs). Other request types run alone. With
// `auto_dispatch = true` a background scheduler thread drains the queue;
// with false the owner pumps explicitly (deterministic batching for
// scripts and tests).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sparse_comm.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"
#include "serve/session.hpp"
#include "telemetry/telemetry.hpp"

namespace hpcg::serve {

struct ServiceOptions {
  std::size_t queue_capacity = 64;
  int max_inflight_per_client = 8;
  /// Max sources coalesced into one multi-source BFS (1..64; 1 disables
  /// batching).
  int max_batch = 64;
  std::size_t cache_capacity = 128;
  /// Spawn the background scheduler thread. Turn off for deterministic
  /// manual pumping (scripts, admission-order tests).
  bool auto_dispatch = true;
  /// Cache-key prefix identifying the graph; empty = derived from the
  /// session's (n, m).
  std::string graph_key;
  /// Same recorder the session was built with. When it carries at least
  /// nranks + 1 tracks, per-request phase spans (wall-clock seconds since
  /// service start) land on track `session.nranks()`.
  telemetry::Recorder* recorder = nullptr;
  /// Async opt-in forwarded to every algorithm invocation.
  core::SparseOptions sparse = {};
};

class Service {
 public:
  Service(Session& session, const ServiceOptions& options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  struct Ticket {
    std::uint64_t id = 0;
    std::shared_future<Response> result;
  };

  /// Admission decision + enqueue (or immediate completion on cache hit).
  /// Throws Overloaded on rejection, SessionClosed when the session is
  /// gone, std::invalid_argument on malformed requests. Thread-safe.
  Ticket submit(Request request);

  /// Executes one scheduling round (one request or one coalesced batch).
  /// Returns false when the queue was empty. Call only with
  /// auto_dispatch = false.
  bool pump();

  /// Blocks until every admitted request has completed (or failed).
  void drain();

  /// Stops the scheduler thread; pending requests are failed with
  /// SessionClosed. The session itself stays open (the caller owns it).
  void stop();

  telemetry::MetricsRegistry& metrics() { return *metrics_; }
  const ResultCache& cache() const { return cache_; }
  std::size_t queue_depth() const;

  /// The cache key a request would be stored under; empty when the
  /// request is uncacheable (PageRank warm starts). Exposed for tests.
  std::string cache_key(const Request& request) const;

 private:
  struct Pending {
    std::uint64_t id = 0;
    Request request;
    std::string key;
    std::promise<Response> promise;
    std::shared_future<Response> future;
    double submit_s = 0.0;
  };

  void dispatcher_loop();
  void execute(std::vector<std::unique_ptr<Pending>> batch);
  void execute_bfs_batch(std::vector<std::unique_ptr<Pending>>& batch);
  void execute_single(Pending& pending);
  void complete(Pending& pending, Response response, double popped_s);
  void fail(Pending& pending, std::exception_ptr error);
  void validate(const Request& request) const;
  double now_s() const;
  void finish_one(const std::string& client);

  Session& session_;
  const ServiceOptions options_;
  const std::string graph_key_;
  ResultCache cache_;
  std::unique_ptr<telemetry::MetricsRegistry> own_metrics_;
  telemetry::MetricsRegistry* metrics_;
  const int request_track_;  // recorder track for request spans, -1 = off
  const double epoch_s_;     // wall-clock zero of the latency measurements

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;  // dispatcher waits for submissions
  std::condition_variable cv_idle_;  // drain() waits for empty + idle
  std::deque<std::unique_ptr<Pending>> queue_;
  std::map<std::string, int> inflight_;
  std::uint64_t next_id_ = 0;
  int executing_ = 0;
  bool stopping_ = false;
  bool dead_ = false;  // session failed; reject all future work

  /// Resident PageRank state for warm starts, LID-indexed per rank. Each
  /// rank thread writes only its own slot during a PageRank job; the
  /// scheduler serializes jobs, so no lock is needed.
  std::vector<std::vector<double>> pr_state_;

  std::thread dispatcher_;
};

}  // namespace hpcg::serve

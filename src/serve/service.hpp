// The request front-end of the serving layer: bounded admission queue,
// batching scheduler, result cache and latency accounting in front of one
// resident Session.
//
// Admission (all decisions made synchronously inside submit, so a given
// submission sequence is rejected deterministically):
//   1. cache probe — a hit completes immediately and bypasses the queue;
//   2. queue bound  — `queue_capacity` pending requests, else Overloaded
//      (kQueueFull);
//   3. client quota — `max_inflight_per_client` admitted-but-incomplete
//      requests per client id, else Overloaded (kClientQuota).
//
// Scheduling: the dispatcher pops the oldest request; if it is a
// single-source BFS, every other pending single-source BFS (any client,
// FIFO order) is coalesced with it up to `max_batch` sources, and the
// whole batch traverses in ONE multi-source BFS superstep loop
// (algos/msbfs). Other request types run alone. With
// `auto_dispatch = true` a background scheduler thread drains the queue;
// with false the owner pumps explicitly (deterministic batching for
// scripts and tests).
//
// Streaming mutations (docs/STREAMING.md): a kMutate request commits its
// edge batch through stream::commit at a scheduling boundary, bumping the
// graph epoch. Epochs are threaded into every cache key (and BFS
// coalescing never crosses a pending mutation), so a query submitted
// after a mutation can never be answered from pre-mutation state; while
// any mutation is queued the cache probe is skipped outright. The service
// keeps the recent commit deltas plus resident CC / per-root BFS /
// PageRank state so stale queries are repaired incrementally
// (algos/incremental) instead of recomputed, falling back on structural
// deletes or when the delta history no longer covers the staleness gap.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sparse_comm.hpp"
#include "serve/cache.hpp"
#include "serve/frontend.hpp"
#include "serve/request.hpp"
#include "serve/session.hpp"
#include "telemetry/telemetry.hpp"

namespace hpcg::serve {

/// Validates a request against graph shape (vertex bound, weightedness);
/// throws std::invalid_argument on malformed requests. Shared by
/// Service::submit and the supervisor's degraded-mode admission (which
/// must validate while no live session exists).
void validate_request(const Request& request, Gid n, bool weighted);

struct ServiceOptions {
  std::size_t queue_capacity = 64;
  int max_inflight_per_client = 8;
  /// Max sources coalesced into one multi-source BFS (1..64; 1 disables
  /// batching).
  int max_batch = 64;
  std::size_t cache_capacity = 128;
  /// Spawn the background scheduler thread. Turn off for deterministic
  /// manual pumping (scripts, admission-order tests).
  bool auto_dispatch = true;
  /// Cache-key prefix identifying the graph; empty = derived from the
  /// session's (n, m).
  std::string graph_key;
  /// Same recorder the session was built with. When it carries at least
  /// nranks + 1 tracks, per-request phase spans (wall-clock seconds since
  /// service start) land on track `session.nranks()`.
  telemetry::Recorder* recorder = nullptr;
  /// Unified kernel options (threads, chunk grain, async opt-in) forwarded
  /// to every algorithm invocation. Formerly `sparse` (core::SparseOptions),
  /// which is now an alias of the same type (docs/ARCHITECTURE.md §15).
  comm::KernelOptions kernel = {};

  // --- Supervision hooks (serve::Supervisor, docs/RECOVERY.md) -----------
  /// Graph epoch the resident graph starts at: a rebuilt session that
  /// restored a snapshot + replayed the committed suffix resumes the
  /// pre-fault numbering, so cache keys and responses stay monotone.
  std::uint64_t initial_epoch = 0;
  /// On session failure, PARK retryable requests (is_retryable) for
  /// adoption into a rebuilt service instead of failing their futures.
  bool park_on_failure = false;
  /// Execution attempts allowed per request across session rebuilds; a
  /// parked request past the budget fails with SessionClosed instead.
  int max_attempts = 3;
  /// Fired once when a job kills the session, after the in-flight batch
  /// has been parked or failed. Called with no service locks held.
  std::function<void()> on_session_death;
  /// Fired after every effective mutation commit, with the original ops
  /// and the post-commit epoch, BEFORE the response resolves — so a
  /// caller that observed a commit can rely on it surviving recovery
  /// (the supervisor's committed-log append).
  std::function<void(const std::vector<stream::EdgeOp>&, std::uint64_t)>
      on_commit;
  /// External metrics registry; overrides the recorder's/own one so
  /// counters survive service rebuilds.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// External request-id source, so ids stay unique across rebuilds and
  /// supervisor-side admissions.
  std::atomic<std::uint64_t>* id_source = nullptr;
  /// Wall-clock zero of the latency/span timeline; 0 = construction time.
  /// The supervisor passes its own zero so all rebuilds share a timeline.
  double wall_epoch_s = 0.0;
};

class Service final : public Frontend {
 public:
  Service(Session& session, const ServiceOptions& options = {});
  ~Service() override;

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  using Ticket = serve::Ticket;

  /// Admission decision + enqueue (or immediate completion on cache hit).
  /// Throws Overloaded on rejection, SessionClosed when the session is
  /// gone, std::invalid_argument on malformed requests. Thread-safe.
  Ticket submit(Request request) override;

  /// Executes one scheduling round (one request or one coalesced batch,
  /// or expiring deadline-passed entries). Returns false when the queue
  /// was empty. Call only with auto_dispatch = false.
  bool pump() override;

  /// Blocks until every admitted request has completed (or failed).
  void drain() override;

  /// Stops the scheduler thread; pending requests are failed with
  /// SessionClosed (or parked, when park_on_failure and the session
  /// died). The session itself stays open (the caller owns it).
  void stop();

  telemetry::MetricsRegistry& metrics() { return *metrics_; }
  const ResultCache& cache() const { return cache_; }
  std::size_t queue_depth() const override;

  /// Current graph epoch: number of mutation batches committed with
  /// effect since the session was built.
  std::uint64_t epoch() const { return graph_epoch_.load(); }
  /// Vertex-id bound of the resident graph (for generated mutations).
  Gid n() const override { return session_.n(); }

  /// The cache key a request would be stored under at the CURRENT epoch;
  /// empty when the request is uncacheable (PageRank warm starts,
  /// mutations). Exposed for tests.
  std::string cache_key(const Request& request) const;

  /// An admitted request in flight. Public so the supervisor can carry
  /// requests ACROSS a session rebuild without breaking the caller's
  /// future: the promise inside is the one the original Ticket watches.
  struct Pending {
    std::uint64_t id = 0;
    Request request;
    std::string key;
    std::uint64_t epoch = 0;  // graph epoch the key was stamped at (pop time)
    std::promise<Response> promise;
    std::shared_future<Response> future;
    double submit_s = 0.0;    // absolute wall seconds
    double deadline_s = 0.0;  // absolute wall seconds; 0 = none
    int attempts = 1;         // execution attempts consumed or underway
  };

  /// Builds an un-admitted Pending for supervisor-side admission while no
  /// service exists (degraded window); adopt() later enqueues it.
  static std::unique_ptr<Pending> make_pending(Request request,
                                               std::uint64_t id);

  /// Harvests requests parked by a session failure (park_on_failure).
  std::vector<std::unique_ptr<Pending>> take_parked();

  /// Parked requests currently awaiting harvest.
  std::size_t parked_count() const;

  /// The session failed and this service stopped accepting work (the
  /// supervisor's cue to rebuild).
  bool dead() const;

  /// Enqueues carried-over Pendings (quota/cache-key/mutation accounting
  /// re-registered here). Admission bounds are NOT re-checked: these
  /// requests were already admitted once.
  void adopt(std::vector<std::unique_ptr<Pending>> parked);

 private:
  /// One committed mutation batch, remembered for incremental repair:
  /// each rank's freshly inserted (row LID, col LID) entries.
  struct CommitDelta {
    std::uint64_t epoch = 0;
    bool structural_delete = false;
    std::vector<std::vector<std::pair<core::Lid, core::Lid>>> local_inserts;
  };

  void dispatcher_loop();
  /// Routes a failed/unrunnable batch: parks retryables (park_on_failure,
  /// budget permitting) or fails them. `consumed_attempt` distinguishes
  /// "was executing when the session died" from "never started".
  void dispose_failed(std::vector<std::unique_ptr<Pending>> batch,
                      std::exception_ptr error, bool consumed_attempt);
  void execute(std::vector<std::unique_ptr<Pending>> batch);
  void execute_bfs_batch(std::vector<std::unique_ptr<Pending>>& batch);
  void execute_single(Pending& pending);
  void execute_mutate(Pending& pending);
  void complete(Pending& pending, Response response, double popped_s);
  void fail(Pending& pending, std::exception_ptr error);
  void validate(const Request& request) const;
  double now_s() const;
  void finish_one(const std::string& client);
  /// True when commit_history_ covers every epoch in (state_epoch,
  /// current] without a structural delete; appends each rank's inserted
  /// entries (in commit order) to `out`, sized nranks.
  bool deltas_since(
      std::uint64_t state_epoch,
      std::vector<std::vector<std::pair<core::Lid, core::Lid>>>& out) const;

  Session& session_;
  const ServiceOptions options_;
  const std::string graph_key_;
  ResultCache cache_;
  std::unique_ptr<telemetry::MetricsRegistry> own_metrics_;
  telemetry::MetricsRegistry* metrics_;
  const int request_track_;  // recorder track for request spans, -1 = off
  const double epoch_s_;     // wall-clock zero of the latency measurements

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;  // dispatcher waits for submissions
  std::condition_variable cv_idle_;  // drain() waits for empty + idle
  std::deque<std::unique_ptr<Pending>> queue_;
  /// Requests that survived a session failure, awaiting supervisor
  /// adoption into a rebuilt service. Guarded by mutex_.
  std::vector<std::unique_ptr<Pending>> parked_;
  std::map<std::string, int> inflight_;
  std::uint64_t next_id_ = 0;
  int executing_ = 0;
  bool stopping_ = false;
  bool dead_ = false;  // session failed; reject all future work

  /// Post-commit graph epoch; atomic so cache_key() can read it without
  /// the queue lock. Written only by the (serialized) executor.
  std::atomic<std::uint64_t> graph_epoch_{0};
  /// Queued-but-not-yet-committed kMutate requests. While > 0 submit()
  /// skips the cache probe: a hit at the current epoch would serve a
  /// pre-mutation answer to a post-mutation query. Guarded by mutex_.
  int pending_mutations_ = 0;

  /// Resident PageRank state for warm starts, LID-indexed per rank. Each
  /// rank thread writes only its own slot during a PageRank job; the
  /// scheduler serializes jobs, so no lock is needed.
  std::vector<std::vector<double>> pr_state_;

  // Incremental-maintenance state, touched only by the serialized
  // executor (same discipline as pr_state_).
  static constexpr std::size_t kCommitHistory = 16;
  static constexpr std::size_t kBfsStates = 4;
  std::deque<CommitDelta> commit_history_;  // oldest first, bounded
  struct CcState {
    bool valid = false;
    std::uint64_t epoch = 0;
    std::vector<std::vector<Gid>> label;  // per-rank LID-indexed labels
  };
  CcState cc_state_;
  struct BfsState {
    Gid root = 0;
    std::uint64_t epoch = 0;
    std::vector<std::vector<std::int64_t>> level;  // per-rank levels
  };
  std::deque<BfsState> bfs_states_;  // LRU, back = most recent, bounded

  std::thread dispatcher_;
};

}  // namespace hpcg::serve

#include "serve/load_gen.hpp"

#include <chrono>
#include <istream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "util/parse.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace hpcg::serve {

namespace {

// Formats one completed response as a deterministic log line: counts only,
// no wall-clock numbers.
std::string describe(const Response& response) {
  std::ostringstream out;
  out << "done id=" << response.id << " algo=" << to_string(response.algo);
  if (response.from_cache) out << " cached";
  if (response.batch_size > 1) out << " batch=" << response.batch_size;
  switch (response.algo) {
    case Algo::kBfs:
    case Algo::kMsBfs: {
      for (std::size_t s = 0; s < response.levels.size(); ++s) {
        std::int64_t reached = 0;
        for (const auto level : response.levels[s]) {
          if (level != Response::kUnvisited) ++reached;
        }
        out << " src" << s << "=[reached=" << reached
            << " depth=" << response.depth[s] << "]";
      }
      break;
    }
    case Algo::kPageRank: {
      double mass = 0.0;
      for (const auto r : response.rank) mass += r;
      out << " mass=" << mass;
      break;
    }
    case Algo::kCc:
      out << " components=" << response.n_components;
      break;
    case Algo::kMutate:
      out << " epoch=" << response.epoch
          << " inserted=" << response.edges_inserted
          << " deleted=" << response.edges_deleted;
      break;
  }
  out << "\n";
  return out.str();
}

}  // namespace

ScriptResult run_script(Frontend& service, std::istream& script) {
  ScriptResult result;
  std::ostringstream log;
  std::string client = "anon";
  std::uint64_t mutate_batch = 0;
  // Tickets complete in submission order under manual pumping (FIFO plus
  // batching, both deterministic), so draining in submit order keeps the
  // log stable.
  std::vector<Service::Ticket> outstanding;

  const auto settle = [&] {
    service.drain();
    for (auto& ticket : outstanding) {
      try {
        const Response response = ticket.result.get();
        ++result.completed;
        log << describe(response);
      } catch (const ServeError& e) {
        ++result.failed;
        log << "failed id=" << ticket.id << " error=" << e.what() << "\n";
      }
    }
    outstanding.clear();
  };

  const auto submit = [&](Request request) {
    ++result.submitted;
    request.client = client;
    try {
      auto ticket = service.submit(std::move(request));
      ++result.admitted;
      log << "submit id=" << ticket.id << " client=" << client;
      if (ticket.result.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        log << " -> immediate\n";
      } else {
        log << " -> queued\n";
      }
      outstanding.push_back(std::move(ticket));
    } catch (const Overloaded& e) {
      ++result.rejected;
      log << "reject client=" << client << " reason="
          << (e.reason() == Overloaded::Reason::kQueueFull ? "queue_full"
                                                           : "client_quota")
          << "\n";
    }
  };

  std::string line;
  while (std::getline(script, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream words(line);
    std::string cmd;
    if (!(words >> cmd)) continue;
    if (cmd == "client") {
      words >> client;
    } else if (cmd == "bfs") {
      Request request;
      request.algo = Algo::kBfs;
      Gid root = 0;
      words >> root;
      request.roots = {root};
      submit(std::move(request));
    } else if (cmd == "msbfs") {
      Request request;
      request.algo = Algo::kMsBfs;
      std::string roots;
      words >> roots;
      std::istringstream root_words(roots);
      std::string token;
      bool roots_ok = true;
      while (std::getline(root_words, token, ',')) {
        const auto root = util::parse_int64(token);
        if (!root) {
          log << "malformed msbfs root '" << token << "', request skipped\n";
          roots_ok = false;
          break;
        }
        request.roots.push_back(static_cast<Gid>(*root));
      }
      if (roots_ok) submit(std::move(request));
    } else if (cmd == "pr") {
      Request request;
      request.algo = Algo::kPageRank;
      words >> request.iterations;
      std::string extra;
      while (words >> extra) {
        if (extra == "warm") {
          request.warm_start = true;
        } else if (const auto damping = util::parse_double(extra)) {
          request.damping = *damping;
        } else {
          log << "malformed pr damping '" << extra << "', ignored\n";
        }
      }
      submit(std::move(request));
    } else if (cmd == "cc") {
      Request request;
      request.algo = Algo::kCc;
      submit(std::move(request));
    } else if (cmd == "mutate") {
      Request request;
      request.algo = Algo::kMutate;
      int count = 0;
      int delete_pct = 30;
      std::uint64_t seed = 1;
      words >> count;
      // A failed extraction would zero the target; keep defaults instead.
      if (int pct = 0; words >> pct) delete_pct = pct;
      if (std::uint64_t s = 0; words >> s) seed = s;
      // Batch index advances per mutate line, so repeated lines with the
      // same seed produce distinct (but script-reproducible) batches.
      request.ops = stream::generate_ops(seed, mutate_batch++, count,
                                         delete_pct, service.n());
      submit(std::move(request));
    } else if (cmd == "pump") {
      service.pump();
    } else if (cmd == "drain") {
      settle();
    } else {
      log << "unknown command: " << cmd << "\n";
    }
  }
  settle();
  result.log = log.str();
  return result;
}

LoadGenStats run_load(Frontend& service, Gid n, const LoadGenOptions& options) {
  LoadGenStats stats;
  std::mutex stats_mutex;
  const int total_weight = options.bfs_weight + options.msbfs_weight +
                           options.pr_weight + options.cc_weight +
                           options.mutate_weight;
  util::WallTimer timer;

  std::vector<std::thread> drivers;
  drivers.reserve(static_cast<std::size_t>(options.clients));
  for (int c = 0; c < options.clients; ++c) {
    drivers.emplace_back([&, c] {
      util::Xoshiro256 rng(util::splitmix64(options.seed) +
                           static_cast<std::uint64_t>(c) * 0x9e3779b97f4a7c15ull);
      const std::string client = "client" + std::to_string(c);
      int submitted = 0, completed = 0, rejected = 0, failed = 0;
      int failed_session_closed = 0, failed_deadline = 0;
      int failed_unavailable = 0, failed_other = 0;
      int retried_completed = 0, rejected_degraded = 0;
      std::uint64_t cache_hits = 0;
      for (int r = 0; r < options.requests_per_client; ++r) {
        Request request;
        request.client = client;
        request.deadline_s = options.deadline_s;
        const auto pick = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(total_weight)));
        if (pick < options.bfs_weight) {
          request.algo = Algo::kBfs;
          request.roots = {static_cast<Gid>(
              rng.next_below(static_cast<std::uint64_t>(n)))};
        } else if (pick < options.bfs_weight + options.msbfs_weight) {
          request.algo = Algo::kMsBfs;
          for (int s = 0; s < options.msbfs_sources; ++s) {
            request.roots.push_back(static_cast<Gid>(
                rng.next_below(static_cast<std::uint64_t>(n))));
          }
        } else if (pick <
                   options.bfs_weight + options.msbfs_weight + options.pr_weight) {
          request.algo = Algo::kPageRank;
          request.iterations = options.pr_iterations;
        } else if (pick < options.bfs_weight + options.msbfs_weight +
                              options.pr_weight + options.cc_weight) {
          request.algo = Algo::kCc;
        } else {
          request.algo = Algo::kMutate;
          // Batch index (client, request) is unique per driver thread, so
          // the generated edge picks are reproducible across runs even
          // though arrival order is not.
          request.ops = stream::generate_ops(
              options.seed + static_cast<std::uint64_t>(c) * 1000003ull,
              static_cast<std::uint64_t>(r), options.mutate_batch,
              options.mutate_delete_pct, n);
        }
        for (;;) {
          try {
            ++submitted;
            auto ticket = service.submit(request);
            try {
              const Response response = ticket.result.get();
              ++completed;
              if (response.from_cache) ++cache_hits;
              if (response.attempts > 1) ++retried_completed;
            } catch (const DeadlineExceeded&) {
              ++failed;
              ++failed_deadline;
            } catch (const Unavailable&) {
              ++failed;
              ++failed_unavailable;
            } catch (const SessionClosed&) {
              ++failed;
              ++failed_session_closed;
            } catch (const ServeError&) {
              ++failed;
              ++failed_other;
            }
            break;
          } catch (const Overloaded& e) {
            ++rejected;
            if (e.reason() == Overloaded::Reason::kDegraded) {
              ++rejected_degraded;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          } catch (const Unavailable&) {
            // The supervisor exhausted its restart budget: the service is
            // down for good, so stop offering load from this client.
            ++failed;
            ++failed_unavailable;
            break;
          } catch (const SessionClosed&) {
            // A bare (unsupervised) service whose session died: every
            // later submit would throw the same, but the failure must be
            // TALLIED TYPED, never silently swallowed.
            ++failed;
            ++failed_session_closed;
            break;
          }
        }
      }
      std::lock_guard lock(stats_mutex);
      stats.submitted += submitted;
      stats.completed += completed;
      stats.rejected += rejected;
      stats.failed += failed;
      stats.failed_session_closed += failed_session_closed;
      stats.failed_deadline += failed_deadline;
      stats.failed_unavailable += failed_unavailable;
      stats.failed_other += failed_other;
      stats.retried_completed += retried_completed;
      stats.rejected_degraded += rejected_degraded;
      stats.cache_hits += cache_hits;
    });
  }
  for (auto& driver : drivers) driver.join();
  stats.wall_s = timer.elapsed();
  stats.rps = stats.wall_s > 0.0 ? stats.completed / stats.wall_s : 0.0;
  return stats;
}

}  // namespace hpcg::serve

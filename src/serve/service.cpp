#include "serve/service.hpp"

#include <chrono>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/gather.hpp"
#include "algos/incremental.hpp"
#include "algos/msbfs.hpp"
#include "algos/pagerank.hpp"
#include "stream/commit.hpp"

namespace hpcg::serve {

namespace {

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Service::Service(Session& session, const ServiceOptions& options)
    : session_(session),
      options_(options),
      graph_key_(options.graph_key.empty()
                     ? "graph:n" + std::to_string(session.n()) + ":m" +
                           std::to_string(session.partition().m_global())
                     : options.graph_key),
      cache_(options.cache_capacity),
      own_metrics_(options.metrics || options.recorder
                       ? nullptr
                       : std::make_unique<telemetry::MetricsRegistry>()),
      metrics_(options.metrics
                   ? options.metrics
                   : (options.recorder ? &options.recorder->metrics()
                                       : own_metrics_.get())),
      request_track_(options.recorder &&
                             options.recorder->nranks() > session.nranks()
                         ? session.nranks()
                         : -1),
      epoch_s_(options.wall_epoch_s > 0.0 ? options.wall_epoch_s : wall_s()),
      pr_state_(static_cast<std::size_t>(session.nranks())) {
  graph_epoch_.store(options_.initial_epoch);
  if (options_.max_batch < 1 || options_.max_batch > 64) {
    throw std::invalid_argument("ServiceOptions::max_batch must be 1..64");
  }
  if (options_.queue_capacity < 1) {
    throw std::invalid_argument("ServiceOptions::queue_capacity must be >= 1");
  }
  if (options_.max_inflight_per_client < 1) {
    throw std::invalid_argument(
        "ServiceOptions::max_inflight_per_client must be >= 1");
  }
  if (options_.max_attempts < 1) {
    throw std::invalid_argument("ServiceOptions::max_attempts must be >= 1");
  }
  if (options_.auto_dispatch) {
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
  }
}

Service::~Service() { stop(); }

double Service::now_s() const { return wall_s() - epoch_s_; }

void Service::validate(const Request& request) const {
  validate_request(request, session_.n(), session_.partition().weighted());
}

void validate_request(const Request& request, Gid n, bool weighted) {
  switch (request.algo) {
    case Algo::kBfs:
      if (request.roots.size() != 1) {
        throw std::invalid_argument("bfs request needs exactly one root");
      }
      break;
    case Algo::kMsBfs:
      if (request.roots.empty() || request.roots.size() > 64) {
        throw std::invalid_argument("msbfs request needs 1..64 roots");
      }
      break;
    case Algo::kPageRank:
      if (request.iterations < 1) {
        throw std::invalid_argument("pr request needs iterations >= 1");
      }
      if (request.tolerance < 0.0) {
        throw std::invalid_argument("pr request tolerance must be >= 0");
      }
      break;
    case Algo::kCc:
      break;
    case Algo::kMutate:
      if (weighted) {
        throw std::invalid_argument(
            "mutate: streaming mutations require an unweighted graph");
      }
      // Reject malformed ops HERE, synchronously: stream::commit would
      // throw the same error on every rank thread, which tears the
      // resident session down (a failed job is fatal by contract).
      stream::validate_ops(request.ops, n);
      break;
  }
  for (const Gid root : request.roots) {
    if (root < 0 || root >= n) {
      throw std::invalid_argument("request root outside [0, n)");
    }
  }
  if (request.deadline_s < 0.0) {
    throw std::invalid_argument("request deadline_s must be >= 0");
  }
}

std::string Service::cache_key(const Request& request) const {
  std::ostringstream params;
  switch (request.algo) {
    case Algo::kBfs:
      params << "root=" << request.roots[0];
      break;
    case Algo::kMsBfs:
      params << "roots=";
      for (std::size_t i = 0; i < request.roots.size(); ++i) {
        params << (i ? "," : "") << request.roots[i];
      }
      break;
    case Algo::kPageRank:
      // Warm starts depend on whatever state earlier requests left behind;
      // caching them would serve stale history.
      if (request.warm_start) return {};
      // max_digits10 so two requests whose dampings differ below the
      // default 6-significant-digit stream precision cannot share a key.
      params << "it=" << request.iterations << ";d="
             << std::setprecision(std::numeric_limits<double>::max_digits10)
             << request.damping;
      // Tolerance solves answer "within tolerance of the fixpoint", which
      // is the same contract whether delta-seeded or cold — cacheable.
      if (request.tolerance > 0.0) params << ";tol=" << request.tolerance;
      break;
    case Algo::kCc:
      break;
    case Algo::kMutate:
      return {};  // commits are effects, not cacheable answers
  }
  // Length-prefixed join (grammar documented in cache.hpp): a '|' inside
  // graph_key or a params string can never collide with the field
  // separators of a different request. The "@e<epoch>" suffix keeps keys
  // minted before a mutation commit from ever matching probes minted
  // after it (docs/STREAMING.md).
  const auto prefixed = [](const std::string& field) {
    return std::to_string(field.size()) + ":" + field;
  };
  const std::string graph_field =
      graph_key_ + "@e" + std::to_string(graph_epoch_.load());
  return prefixed(graph_field) + "|" + prefixed(to_string(request.algo)) +
         "|" + prefixed(params.str());
}

Service::Ticket Service::submit(Request request) {
  validate(request);
  std::unique_lock lock(mutex_);
  metrics_->counter("serve.requests.submitted").increment();
  if (stopping_ || dead_) {
    throw SessionClosed("service is stopped");
  }
  const std::uint64_t id =
      options_.id_source ? ++*options_.id_source : ++next_id_;
  const std::string key = cache_key(request);

  // A queued mutation means this request logically executes against a
  // graph that does not exist yet; an entry minted at the current epoch
  // would be a pre-mutation answer. Skip the probe entirely.
  if (!key.empty() && pending_mutations_ > 0) {
    metrics_->counter("serve.cache.probe_skipped").increment();
  } else if (!key.empty()) {
    if (auto hit = cache_.get(key)) {
      metrics_->counter("serve.cache.hits").increment();
      Response response = *hit;
      response.id = id;
      response.from_cache = true;
      response.queue_s = 0.0;
      response.exec_s = 0.0;
      response.total_s = 0.0;
      // The producer's retry history is not this request's: a hit is one
      // attempt regardless of how many the cached computation consumed.
      response.attempts = 1;
      std::promise<Response> promise;
      Ticket ticket{id, promise.get_future().share()};
      promise.set_value(std::move(response));
      return ticket;
    }
    metrics_->counter("serve.cache.misses").increment();
  }

  if (queue_.size() >= options_.queue_capacity) {
    metrics_->counter("serve.requests.rejected.queue_full").increment();
    throw Overloaded(Overloaded::Reason::kQueueFull,
                     "queue full (" + std::to_string(options_.queue_capacity) +
                         " pending)");
  }
  auto& inflight = inflight_[request.client];
  if (inflight >= options_.max_inflight_per_client) {
    metrics_->counter("serve.requests.rejected.client_quota").increment();
    throw Overloaded(Overloaded::Reason::kClientQuota,
                     "client '" + request.client + "' already has " +
                         std::to_string(inflight) + " requests in flight");
  }
  ++inflight;
  metrics_->counter("serve.requests.admitted").increment();
  if (request.algo == Algo::kMutate) ++pending_mutations_;

  auto pending = std::make_unique<Pending>();
  pending->id = id;
  pending->request = std::move(request);
  pending->key = key;
  pending->future = pending->promise.get_future().share();
  pending->submit_s = wall_s();
  if (pending->request.deadline_s > 0.0) {
    pending->deadline_s = pending->submit_s + pending->request.deadline_s;
  }
  Ticket ticket{id, pending->future};
  queue_.push_back(std::move(pending));
  metrics_->gauge("serve.queue.depth").set(static_cast<double>(queue_.size()));
  lock.unlock();
  cv_work_.notify_one();
  return ticket;
}

std::size_t Service::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::unique_ptr<Service::Pending> Service::make_pending(Request request,
                                                        std::uint64_t id) {
  auto pending = std::make_unique<Pending>();
  pending->id = id;
  pending->request = std::move(request);
  pending->future = pending->promise.get_future().share();
  pending->submit_s = wall_s();
  if (pending->request.deadline_s > 0.0) {
    pending->deadline_s = pending->submit_s + pending->request.deadline_s;
  }
  return pending;
}

std::vector<std::unique_ptr<Service::Pending>> Service::take_parked() {
  std::lock_guard lock(mutex_);
  return std::move(parked_);
}

std::size_t Service::parked_count() const {
  std::lock_guard lock(mutex_);
  return parked_.size();
}

bool Service::dead() const {
  std::lock_guard lock(mutex_);
  return dead_;
}

void Service::adopt(std::vector<std::unique_ptr<Pending>> parked) {
  if (parked.empty()) return;
  {
    std::lock_guard lock(mutex_);
    for (auto& pending : parked) {
      // Re-mint the key: the old one was suffixed with the failed
      // service's epoch numbering (same graph, so only the epoch moves).
      pending->key = cache_key(pending->request);
      ++inflight_[pending->request.client];
      if (pending->request.algo == Algo::kMutate) ++pending_mutations_;
      queue_.push_back(std::move(pending));
    }
    metrics_->gauge("serve.queue.depth").set(static_cast<double>(queue_.size()));
  }
  cv_work_.notify_all();
}

bool Service::pump() {
  std::vector<std::unique_ptr<Pending>> batch;
  std::vector<std::unique_ptr<Pending>> expired;
  {
    std::lock_guard lock(mutex_);
    const double now = wall_s();
    const auto past_deadline = [&](const Pending& pending) {
      return pending.deadline_s > 0.0 && now > pending.deadline_s;
    };
    // Expire deadline-passed entries at pop time: the request was
    // admitted but never started, so failing it here keeps the contract
    // "an executing request is never interrupted".
    while (!queue_.empty()) {
      auto front = std::move(queue_.front());
      queue_.pop_front();
      if (past_deadline(*front)) {
        expired.push_back(std::move(front));
        continue;
      }
      batch.push_back(std::move(front));
      break;
    }
    if (batch.empty() && expired.empty()) return false;
    if (!batch.empty() && batch[0]->request.algo == Algo::kBfs &&
        options_.max_batch > 1) {
      // Coalesce every pending single-source BFS, oldest first, until the
      // bit-packed frontier word is full. A pending mutation is a
      // scheduling barrier: a BFS submitted after it must observe the
      // post-commit graph, so coalescing never reaches past one.
      for (auto it = queue_.begin();
           it != queue_.end() &&
           static_cast<int>(batch.size()) < options_.max_batch;) {
        if ((*it)->request.algo == Algo::kMutate) break;
        if ((*it)->request.algo == Algo::kBfs) {
          if (past_deadline(**it)) {
            expired.push_back(std::move(*it));
          } else {
            batch.push_back(std::move(*it));
          }
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Stamp each request with the epoch it will execute at. Mutations only
    // commit through this serialized path, so the epoch cannot move
    // between here and completion — the stamped key is the one the result
    // is valid under, even if the submit-time key predates a commit.
    for (auto& pending : batch) {
      pending->epoch = graph_epoch_.load();
      if (!pending->key.empty()) pending->key = cache_key(pending->request);
    }
    metrics_->gauge("serve.queue.depth").set(static_cast<double>(queue_.size()));
    if (!batch.empty()) ++executing_;
  }
  for (auto& pending : expired) {
    metrics_->counter("serve.deadline.exceeded").increment();
    fail(*pending,
         std::make_exception_ptr(DeadlineExceeded(
             "deadline of " + std::to_string(pending->request.deadline_s) +
             "s passed before request " + std::to_string(pending->id) +
             " reached the executor")));
  }
  if (batch.empty()) {
    cv_idle_.notify_all();
    return true;  // expiring entries was this round's work
  }
  execute(std::move(batch));
  {
    std::lock_guard lock(mutex_);
    --executing_;
  }
  cv_idle_.notify_all();
  return true;
}

void Service::dispatcher_loop() {
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
    }
    pump();
  }
}

void Service::drain() {
  if (options_.auto_dispatch) {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [&] { return queue_.empty() && executing_ == 0; });
  } else {
    while (pump()) {
    }
  }
}

void Service::stop() {
  bool was_dead = false;
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    was_dead = dead_;
  }
  cv_work_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Whatever is still queued (manual mode, or a dead session left entries
  // behind): parked for the supervisor when this stop is part of a
  // recovery, failed otherwise.
  std::deque<std::unique_ptr<Pending>> leftover;
  {
    std::lock_guard lock(mutex_);
    leftover.swap(queue_);
  }
  if (was_dead && options_.park_on_failure) {
    std::vector<std::unique_ptr<Pending>> batch;
    batch.reserve(leftover.size());
    for (auto& pending : leftover) batch.push_back(std::move(pending));
    dispose_failed(std::move(batch),
                   std::make_exception_ptr(SessionClosed(
                       "session died before the request could execute")),
                   /*consumed_attempt=*/false);
  } else {
    for (auto& pending : leftover) {
      fail(*pending, std::make_exception_ptr(
                         SessionClosed("service stopped before execution")));
    }
  }
  cv_idle_.notify_all();
}

void Service::finish_one(const std::string& client) {
  std::lock_guard lock(mutex_);
  const auto it = inflight_.find(client);
  if (it != inflight_.end() && --it->second <= 0) inflight_.erase(it);
}

void Service::complete(Pending& pending, Response response, double popped_s) {
  const double done_s = wall_s();
  response.id = pending.id;
  // Queries report the epoch they executed against; mutations already
  // carry their post-commit epoch.
  if (response.algo != Algo::kMutate) response.epoch = pending.epoch;
  response.attempts = pending.attempts;
  response.queue_s = popped_s - pending.submit_s;
  response.exec_s = done_s - popped_s;
  response.total_s = done_s - pending.submit_s;
  metrics_->counter("serve.requests.completed").increment();
  if (pending.attempts > 1) {
    metrics_->counter("serve.recovery.retried_completed").increment();
  }
  metrics_->histogram("serve.latency.queue_us")
      .observe(static_cast<std::uint64_t>(response.queue_s * 1e6));
  metrics_->histogram("serve.latency.exec_us")
      .observe(static_cast<std::uint64_t>(response.exec_s * 1e6));
  metrics_->histogram("serve.latency.total_us")
      .observe(static_cast<std::uint64_t>(response.total_s * 1e6));
  if (request_track_ >= 0) {
    telemetry::SpanRecord span;
    span.start_s = pending.submit_s - epoch_s_;
    span.end_s = done_s - epoch_s_;
    span.rank = request_track_;
    span.kind = telemetry::SpanKind::kPhase;
    span.name = std::string("request.") + to_string(response.algo);
    span.value = static_cast<std::int64_t>(pending.id);
    options_.recorder->record(std::move(span));
  }
  if (!pending.key.empty()) {
    cache_.put(pending.key, std::make_shared<const Response>(response),
               pending.epoch);
  }
  if (pending.request.algo == Algo::kMutate) {
    std::lock_guard lock(mutex_);
    --pending_mutations_;
  }
  finish_one(pending.request.client);
  pending.promise.set_value(std::move(response));
}

void Service::fail(Pending& pending, std::exception_ptr error) {
  metrics_->counter("serve.requests.failed").increment();
  if (pending.request.algo == Algo::kMutate) {
    std::lock_guard lock(mutex_);
    --pending_mutations_;
  }
  finish_one(pending.request.client);
  pending.promise.set_exception(std::move(error));
}

void Service::dispose_failed(std::vector<std::unique_ptr<Pending>> batch,
                             std::exception_ptr error, bool consumed_attempt) {
  for (auto& pending : batch) {
    if (options_.park_on_failure && is_retryable(pending->request)) {
      if (consumed_attempt) ++pending->attempts;
      if (pending->attempts > options_.max_attempts) {
        metrics_->counter("serve.recovery.retry_exhausted").increment();
        fail(*pending,
             std::make_exception_ptr(SessionClosed(
                 "request " + std::to_string(pending->id) + " failed " +
                 std::to_string(options_.max_attempts) +
                 " times across session restarts; retry budget exhausted")));
        continue;
      }
      metrics_->counter("serve.recovery.parked").increment();
      std::lock_guard lock(mutex_);
      parked_.push_back(std::move(pending));
    } else {
      fail(*pending, error);
    }
  }
}

void Service::execute(std::vector<std::unique_ptr<Pending>> batch) {
  if (dead_ || !session_.alive()) {
    dispose_failed(std::move(batch),
                   std::make_exception_ptr(SessionClosed("session is closed")),
                   /*consumed_attempt=*/false);
    return;
  }
  try {
    if (batch.size() > 1) {
      execute_bfs_batch(batch);
    } else if (batch[0]->request.algo == Algo::kMutate) {
      execute_mutate(*batch[0]);
    } else {
      execute_single(*batch[0]);
    }
  } catch (...) {
    {
      std::lock_guard lock(mutex_);
      dead_ = true;
    }
    dispose_failed(std::move(batch), std::current_exception(),
                   /*consumed_attempt=*/true);
    if (options_.on_session_death) options_.on_session_death();
  }
}

void Service::execute_bfs_batch(std::vector<std::unique_ptr<Pending>>& batch) {
  const double popped_s = wall_s();
  std::vector<Gid> roots;
  roots.reserve(batch.size());
  for (const auto& pending : batch) roots.push_back(pending->request.roots[0]);

  const auto& relabel = session_.partition().relabel();
  const auto n = static_cast<std::size_t>(session_.n());
  std::vector<std::vector<std::int64_t>> levels(roots.size());
  std::vector<std::int64_t> depth(roots.size(), 0);
  session_.run([&](core::Dist2DGraph& g, comm::Comm& comm) {
    const algos::MsBfsOptions mo = options_.kernel;
    const auto result = algos::multi_source_bfs(g, roots, mo);
    for (std::size_t s = 0; s < roots.size(); ++s) {
      auto gathered = algos::gather_row_state(
          g, std::span<const std::int64_t>(result.level[s]));
      if (comm.rank() == 0) {
        auto& out = levels[s];
        out.resize(n);
        for (Gid v = 0; v < static_cast<Gid>(n); ++v) {
          out[static_cast<std::size_t>(v)] =
              gathered[static_cast<std::size_t>(relabel.to_new(v))];
        }
        depth[s] = result.depth[s];
      }
    }
  });
  metrics_->counter("serve.batches").increment();
  metrics_->counter("serve.batched_requests").add(batch.size());

  for (std::size_t s = 0; s < batch.size(); ++s) {
    Response response;
    response.algo = Algo::kBfs;
    response.batch_size = static_cast<int>(batch.size());
    response.levels.push_back(std::move(levels[s]));
    response.depth.push_back(depth[s]);
    complete(*batch[s], std::move(response), popped_s);
  }
}

void Service::execute_single(Pending& pending) {
  const double popped_s = wall_s();
  const Request& request = pending.request;
  const auto& relabel = session_.partition().relabel();
  const auto n = static_cast<std::size_t>(session_.n());
  const auto to_original_order = [&](const auto& gathered) {
    std::vector<typename std::decay_t<decltype(gathered)>::value_type> out(n);
    for (Gid v = 0; v < static_cast<Gid>(n); ++v) {
      out[static_cast<std::size_t>(v)] =
          gathered[static_cast<std::size_t>(relabel.to_new(v))];
    }
    return out;
  };

  Response response;
  response.algo = request.algo;

  switch (request.algo) {
    case Algo::kBfs: {
      const Gid root = request.roots[0];
      std::vector<std::int64_t> levels;
      std::int64_t depth = 0;
      // Resident per-root state: repair from the commit deltas when they
      // cover the staleness gap, else run from scratch.
      std::vector<std::vector<std::pair<core::Lid, core::Lid>>> deltas;
      BfsState state;
      bool had_state = false;
      for (auto it = bfs_states_.begin(); it != bfs_states_.end(); ++it) {
        if (it->root == root) {
          state = std::move(*it);
          bfs_states_.erase(it);
          had_state = true;
          break;
        }
      }
      const bool repair = had_state && deltas_since(state.epoch, deltas);
      if (repair) {
        metrics_->counter("stream.bfs.repaired").increment();
      } else if (had_state) {
        metrics_->counter("stream.bfs.fallback").increment();
      }
      state.root = root;
      state.level.resize(static_cast<std::size_t>(session_.nranks()));
      session_.run([&](core::Dist2DGraph& g, comm::Comm& comm) {
        const auto slot = static_cast<std::size_t>(comm.rank());
        std::vector<std::int64_t> level;
        std::int64_t d = 0;
        if (repair) {
          auto repaired = algos::bfs_repair(
              g, root, std::move(state.level[slot]),
              std::span(deltas[slot]), false, options_.kernel);
          level = std::move(repaired.level);
          d = repaired.depth;
        } else {
          const algos::BfsOptions bo = options_.kernel;
          auto result = algos::bfs(g, root, bo);
          level = std::move(result.level);
          d = result.depth;
        }
        auto gathered =
            algos::gather_row_state(g, std::span<const std::int64_t>(level));
        if (comm.rank() == 0) {
          levels = to_original_order(gathered);
          depth = d;
        }
        state.level[slot] = std::move(level);
      });
      state.epoch = graph_epoch_.load();
      bfs_states_.push_back(std::move(state));
      if (bfs_states_.size() > kBfsStates) bfs_states_.pop_front();
      response.incremental = repair;
      response.levels.push_back(std::move(levels));
      response.depth.push_back(depth);
      break;
    }
    case Algo::kMsBfs: {
      std::vector<std::vector<std::int64_t>> levels(request.roots.size());
      std::vector<std::int64_t> depth(request.roots.size(), 0);
      session_.run([&](core::Dist2DGraph& g, comm::Comm& comm) {
        const algos::MsBfsOptions mo = options_.kernel;
        const auto result = algos::multi_source_bfs(g, request.roots, mo);
        for (std::size_t s = 0; s < request.roots.size(); ++s) {
          auto gathered = algos::gather_row_state(
              g, std::span<const std::int64_t>(result.level[s]));
          if (comm.rank() == 0) {
            levels[s] = to_original_order(gathered);
            depth[s] = result.depth[s];
          }
        }
      });
      metrics_->counter("serve.batches").increment();
      metrics_->counter("serve.batched_requests").add(request.roots.size());
      response.batch_size = static_cast<int>(request.roots.size());
      response.levels = std::move(levels);
      response.depth = std::move(depth);
      break;
    }
    case Algo::kPageRank: {
      std::vector<double> rank;
      const bool tol_mode = request.tolerance > 0.0;
      const bool warm = request.warm_start && !pr_state_[0].empty();
      bool seeded = false;
      session_.run([&](core::Dist2DGraph& g, comm::Comm& comm) {
        const auto slot = static_cast<std::size_t>(comm.rank());
        std::vector<double> pr;
        if (tol_mode) {
          // Tolerance solve: delta-PageRank seeds from whatever resident
          // state exists (mis-sized or absent state degrades to a cold
          // tolerance run — delta_pagerank decides).
          auto delta = algos::delta_pagerank(
              g, std::move(pr_state_[slot]), request.tolerance,
              request.iterations, request.damping, options_.kernel);
          if (comm.rank() == 0) seeded = delta.seeded;
          pr = std::move(delta.rank);
        } else if (warm) {
          pr = algos::pagerank_warm_start(g, pr_state_[slot],
                                          request.iterations, request.damping,
                                          options_.kernel);
        } else {
          pr = algos::pagerank(g, request.iterations, request.damping,
                               options_.kernel);
        }
        auto gathered = algos::gather_row_state(g, std::span<const double>(pr));
        if (comm.rank() == 0) rank = to_original_order(gathered);
        // Each rank parks its LID state for the next warm/delta start.
        pr_state_[slot] = std::move(pr);
      });
      if (tol_mode) {
        metrics_
            ->counter(seeded ? "stream.pr.delta_seeded" : "stream.pr.delta_cold")
            .increment();
      }
      response.incremental = seeded;
      response.rank = std::move(rank);
      break;
    }
    case Algo::kCc: {
      std::vector<Gid> component;
      std::int64_t n_components = 0;
      std::vector<std::vector<std::pair<core::Lid, core::Lid>>> deltas;
      const bool repair =
          cc_state_.valid && deltas_since(cc_state_.epoch, deltas);
      if (repair) {
        metrics_->counter("stream.cc.incremental").increment();
      } else if (cc_state_.valid) {
        metrics_->counter("stream.cc.fallback").increment();
      }
      cc_state_.label.resize(static_cast<std::size_t>(session_.nranks()));
      session_.run([&](core::Dist2DGraph& g, comm::Comm& comm) {
        const auto slot = static_cast<std::size_t>(comm.rank());
        std::vector<Gid> label;
        if (repair) {
          auto repaired = algos::incremental_cc(
              g, std::move(cc_state_.label[slot]), std::span(deltas[slot]),
              false, options_.kernel);
          label = std::move(repaired.label);
        } else {
          auto options = algos::CcOptions::all_push();
          options.kernel = options_.kernel;
          auto full = algos::connected_components(g, options);
          label = std::move(full.label);
        }
        auto gathered =
            algos::gather_row_state(g, std::span<const Gid>(label));
        if (comm.rank() == 0) {
          component.resize(n);
          for (Gid v = 0; v < static_cast<Gid>(n); ++v) {
            // Both the position and the representative label live in
            // striped space; translate each back to original ids.
            component[static_cast<std::size_t>(v)] = relabel.to_original(
                gathered[static_cast<std::size_t>(relabel.to_new(v))]);
          }
          const std::set<Gid> distinct(component.begin(), component.end());
          n_components = static_cast<std::int64_t>(distinct.size());
        }
        cc_state_.label[slot] = std::move(label);
      });
      cc_state_.valid = true;
      cc_state_.epoch = graph_epoch_.load();
      response.incremental = repair;
      response.component = std::move(component);
      response.n_components = n_components;
      break;
    }
    case Algo::kMutate:
      break;  // unreachable: execute() routes mutations to execute_mutate
  }
  complete(pending, std::move(response), popped_s);
}

void Service::execute_mutate(Pending& pending) {
  const double popped_s = wall_s();
  const Request& request = pending.request;
  const auto nranks = static_cast<std::size_t>(session_.nranks());
  std::vector<stream::CommitResult> per_rank(nranks);
  session_.run([&](core::Dist2DGraph& g, comm::Comm& comm) {
    per_rank[static_cast<std::size_t>(comm.rank())] =
        stream::commit(g, request.ops);
  });
  // Global counts agree on every rank; local_inserts are per rank.
  const auto& agg = per_rank[0];

  Response response;
  response.algo = Algo::kMutate;
  response.epoch = agg.epoch;
  response.edges_inserted = agg.inserted;
  response.edges_deleted = agg.deleted;

  if (agg.mutated) {
    graph_epoch_.store(agg.epoch);
    // Committed-log append BEFORE the response resolves: a commit the
    // caller observed must survive a later session rebuild.
    if (options_.on_commit) options_.on_commit(request.ops, agg.epoch);
    // Entries minted before this commit are unreachable under the new
    // epoch-suffixed keys; evict them so they stop occupying capacity.
    const auto dropped = cache_.invalidate_epoch(agg.epoch - 1);
    metrics_->counter("stream.cache.invalidated").add(dropped);

    CommitDelta delta;
    delta.epoch = agg.epoch;
    delta.structural_delete = agg.structural_delete;
    delta.local_inserts.resize(nranks);
    for (std::size_t r = 0; r < nranks; ++r) {
      delta.local_inserts[r] = std::move(per_rank[r].local_inserts);
    }
    commit_history_.push_back(std::move(delta));
    if (commit_history_.size() > kCommitHistory) commit_history_.pop_front();

    metrics_->counter("stream.batches.committed").increment();
    metrics_->counter("stream.edges.inserted").add(agg.inserted);
    metrics_->counter("stream.edges.deleted").add(agg.deleted);
  } else {
    metrics_->counter("stream.batches.empty").increment();
  }
  metrics_->counter("stream.deletes.noop").add(agg.noop_deletes);

  complete(pending, std::move(response), popped_s);
}

bool Service::deltas_since(
    std::uint64_t state_epoch,
    std::vector<std::vector<std::pair<core::Lid, core::Lid>>>& out) const {
  out.assign(static_cast<std::size_t>(session_.nranks()), {});
  const std::uint64_t current = graph_epoch_.load();
  if (state_epoch > current) return false;
  // Mutated commits bump the epoch by exactly one, so history epochs are
  // consecutive; coverage just means "every epoch in (state, current] is
  // still retained, none structural".
  std::uint64_t need = state_epoch + 1;
  for (const auto& delta : commit_history_) {
    if (delta.epoch <= state_epoch) continue;
    if (delta.epoch != need || delta.structural_delete) return false;
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r].insert(out[r].end(), delta.local_inserts[r].begin(),
                    delta.local_inserts[r].end());
    }
    ++need;
  }
  return need == current + 1;
}

}  // namespace hpcg::serve

#include "serve/service.hpp"

#include <chrono>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/gather.hpp"
#include "algos/msbfs.hpp"
#include "algos/pagerank.hpp"

namespace hpcg::serve {

namespace {

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Service::Service(Session& session, const ServiceOptions& options)
    : session_(session),
      options_(options),
      graph_key_(options.graph_key.empty()
                     ? "graph:n" + std::to_string(session.n()) + ":m" +
                           std::to_string(session.partition().m_global())
                     : options.graph_key),
      cache_(options.cache_capacity),
      own_metrics_(options.recorder ? nullptr
                                    : std::make_unique<telemetry::MetricsRegistry>()),
      metrics_(options.recorder ? &options.recorder->metrics()
                                : own_metrics_.get()),
      request_track_(options.recorder &&
                             options.recorder->nranks() > session.nranks()
                         ? session.nranks()
                         : -1),
      epoch_s_(wall_s()),
      pr_state_(static_cast<std::size_t>(session.nranks())) {
  if (options_.max_batch < 1 || options_.max_batch > 64) {
    throw std::invalid_argument("ServiceOptions::max_batch must be 1..64");
  }
  if (options_.queue_capacity < 1) {
    throw std::invalid_argument("ServiceOptions::queue_capacity must be >= 1");
  }
  if (options_.max_inflight_per_client < 1) {
    throw std::invalid_argument(
        "ServiceOptions::max_inflight_per_client must be >= 1");
  }
  if (options_.auto_dispatch) {
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
  }
}

Service::~Service() { stop(); }

double Service::now_s() const { return wall_s() - epoch_s_; }

void Service::validate(const Request& request) const {
  const auto n = session_.n();
  switch (request.algo) {
    case Algo::kBfs:
      if (request.roots.size() != 1) {
        throw std::invalid_argument("bfs request needs exactly one root");
      }
      break;
    case Algo::kMsBfs:
      if (request.roots.empty() || request.roots.size() > 64) {
        throw std::invalid_argument("msbfs request needs 1..64 roots");
      }
      break;
    case Algo::kPageRank:
      if (request.iterations < 1) {
        throw std::invalid_argument("pr request needs iterations >= 1");
      }
      break;
    case Algo::kCc:
      break;
  }
  for (const Gid root : request.roots) {
    if (root < 0 || root >= n) {
      throw std::invalid_argument("request root outside [0, n)");
    }
  }
}

std::string Service::cache_key(const Request& request) const {
  std::ostringstream params;
  switch (request.algo) {
    case Algo::kBfs:
      params << "root=" << request.roots[0];
      break;
    case Algo::kMsBfs:
      params << "roots=";
      for (std::size_t i = 0; i < request.roots.size(); ++i) {
        params << (i ? "," : "") << request.roots[i];
      }
      break;
    case Algo::kPageRank:
      // Warm starts depend on whatever state earlier requests left behind;
      // caching them would serve stale history.
      if (request.warm_start) return {};
      // max_digits10 so two requests whose dampings differ below the
      // default 6-significant-digit stream precision cannot share a key.
      params << "it=" << request.iterations << ";d="
             << std::setprecision(std::numeric_limits<double>::max_digits10)
             << request.damping;
      break;
    case Algo::kCc:
      break;
  }
  // Length-prefixed join (grammar documented in cache.hpp): a '|' inside
  // graph_key or a params string can never collide with the field
  // separators of a different request.
  const auto prefixed = [](const std::string& field) {
    return std::to_string(field.size()) + ":" + field;
  };
  return prefixed(graph_key_) + "|" + prefixed(to_string(request.algo)) + "|" +
         prefixed(params.str());
}

Service::Ticket Service::submit(Request request) {
  validate(request);
  std::unique_lock lock(mutex_);
  metrics_->counter("serve.requests.submitted").increment();
  if (stopping_ || dead_) {
    throw SessionClosed("service is stopped");
  }
  const std::uint64_t id = ++next_id_;
  const std::string key = cache_key(request);

  if (!key.empty()) {
    if (auto hit = cache_.get(key)) {
      metrics_->counter("serve.cache.hits").increment();
      Response response = *hit;
      response.id = id;
      response.from_cache = true;
      response.queue_s = 0.0;
      response.exec_s = 0.0;
      response.total_s = 0.0;
      std::promise<Response> promise;
      Ticket ticket{id, promise.get_future().share()};
      promise.set_value(std::move(response));
      return ticket;
    }
    metrics_->counter("serve.cache.misses").increment();
  }

  if (queue_.size() >= options_.queue_capacity) {
    metrics_->counter("serve.requests.rejected.queue_full").increment();
    throw Overloaded(Overloaded::Reason::kQueueFull,
                     "queue full (" + std::to_string(options_.queue_capacity) +
                         " pending)");
  }
  auto& inflight = inflight_[request.client];
  if (inflight >= options_.max_inflight_per_client) {
    metrics_->counter("serve.requests.rejected.client_quota").increment();
    throw Overloaded(Overloaded::Reason::kClientQuota,
                     "client '" + request.client + "' already has " +
                         std::to_string(inflight) + " requests in flight");
  }
  ++inflight;
  metrics_->counter("serve.requests.admitted").increment();

  auto pending = std::make_unique<Pending>();
  pending->id = id;
  pending->request = std::move(request);
  pending->key = key;
  pending->future = pending->promise.get_future().share();
  pending->submit_s = now_s();
  Ticket ticket{id, pending->future};
  queue_.push_back(std::move(pending));
  metrics_->gauge("serve.queue.depth").set(static_cast<double>(queue_.size()));
  lock.unlock();
  cv_work_.notify_one();
  return ticket;
}

std::size_t Service::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

bool Service::pump() {
  std::vector<std::unique_ptr<Pending>> batch;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    if (batch[0]->request.algo == Algo::kBfs && options_.max_batch > 1) {
      // Coalesce every pending single-source BFS, oldest first, until the
      // bit-packed frontier word is full.
      for (auto it = queue_.begin();
           it != queue_.end() &&
           static_cast<int>(batch.size()) < options_.max_batch;) {
        if ((*it)->request.algo == Algo::kBfs) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    metrics_->gauge("serve.queue.depth").set(static_cast<double>(queue_.size()));
    ++executing_;
  }
  execute(std::move(batch));
  {
    std::lock_guard lock(mutex_);
    --executing_;
  }
  cv_idle_.notify_all();
  return true;
}

void Service::dispatcher_loop() {
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
    }
    pump();
  }
}

void Service::drain() {
  if (options_.auto_dispatch) {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [&] { return queue_.empty() && executing_ == 0; });
  } else {
    while (pump()) {
    }
  }
}

void Service::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_work_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Fail whatever is still queued (manual mode, or a dead session left
  // entries behind).
  std::deque<std::unique_ptr<Pending>> leftover;
  {
    std::lock_guard lock(mutex_);
    leftover.swap(queue_);
  }
  for (auto& pending : leftover) {
    fail(*pending, std::make_exception_ptr(
                       SessionClosed("service stopped before execution")));
  }
  cv_idle_.notify_all();
}

void Service::finish_one(const std::string& client) {
  std::lock_guard lock(mutex_);
  const auto it = inflight_.find(client);
  if (it != inflight_.end() && --it->second <= 0) inflight_.erase(it);
}

void Service::complete(Pending& pending, Response response, double popped_s) {
  const double done_s = now_s();
  response.id = pending.id;
  response.queue_s = popped_s - pending.submit_s;
  response.exec_s = done_s - popped_s;
  response.total_s = done_s - pending.submit_s;
  metrics_->counter("serve.requests.completed").increment();
  metrics_->histogram("serve.latency.queue_us")
      .observe(static_cast<std::uint64_t>(response.queue_s * 1e6));
  metrics_->histogram("serve.latency.exec_us")
      .observe(static_cast<std::uint64_t>(response.exec_s * 1e6));
  metrics_->histogram("serve.latency.total_us")
      .observe(static_cast<std::uint64_t>(response.total_s * 1e6));
  if (request_track_ >= 0) {
    telemetry::SpanRecord span;
    span.start_s = pending.submit_s;
    span.end_s = done_s;
    span.rank = request_track_;
    span.kind = telemetry::SpanKind::kPhase;
    span.name = std::string("request.") + to_string(response.algo);
    span.value = static_cast<std::int64_t>(pending.id);
    options_.recorder->record(std::move(span));
  }
  if (!pending.key.empty()) {
    cache_.put(pending.key, std::make_shared<const Response>(response));
  }
  finish_one(pending.request.client);
  pending.promise.set_value(std::move(response));
}

void Service::fail(Pending& pending, std::exception_ptr error) {
  metrics_->counter("serve.requests.failed").increment();
  finish_one(pending.request.client);
  pending.promise.set_exception(std::move(error));
}

void Service::execute(std::vector<std::unique_ptr<Pending>> batch) {
  if (dead_ || !session_.alive()) {
    for (auto& pending : batch) {
      fail(*pending, std::make_exception_ptr(SessionClosed("session is closed")));
    }
    return;
  }
  try {
    if (batch.size() > 1) {
      execute_bfs_batch(batch);
    } else {
      execute_single(*batch[0]);
    }
  } catch (...) {
    {
      std::lock_guard lock(mutex_);
      dead_ = true;
    }
    const auto error = std::current_exception();
    for (auto& pending : batch) fail(*pending, error);
  }
}

void Service::execute_bfs_batch(std::vector<std::unique_ptr<Pending>>& batch) {
  const double popped_s = now_s();
  std::vector<Gid> roots;
  roots.reserve(batch.size());
  for (const auto& pending : batch) roots.push_back(pending->request.roots[0]);

  const auto& relabel = session_.partition().relabel();
  const auto n = static_cast<std::size_t>(session_.n());
  std::vector<std::vector<std::int64_t>> levels(roots.size());
  std::vector<std::int64_t> depth(roots.size(), 0);
  session_.run([&](core::Dist2DGraph& g, comm::Comm& comm) {
    algos::MsBfsOptions mo;
    mo.sparse = options_.sparse;
    const auto result = algos::multi_source_bfs(g, roots, mo);
    for (std::size_t s = 0; s < roots.size(); ++s) {
      auto gathered = algos::gather_row_state(
          g, std::span<const std::int64_t>(result.level[s]));
      if (comm.rank() == 0) {
        auto& out = levels[s];
        out.resize(n);
        for (Gid v = 0; v < static_cast<Gid>(n); ++v) {
          out[static_cast<std::size_t>(v)] =
              gathered[static_cast<std::size_t>(relabel.to_new(v))];
        }
        depth[s] = result.depth[s];
      }
    }
  });
  metrics_->counter("serve.batches").increment();
  metrics_->counter("serve.batched_requests").add(batch.size());

  for (std::size_t s = 0; s < batch.size(); ++s) {
    Response response;
    response.algo = Algo::kBfs;
    response.batch_size = static_cast<int>(batch.size());
    response.levels.push_back(std::move(levels[s]));
    response.depth.push_back(depth[s]);
    complete(*batch[s], std::move(response), popped_s);
  }
}

void Service::execute_single(Pending& pending) {
  const double popped_s = now_s();
  const Request& request = pending.request;
  const auto& relabel = session_.partition().relabel();
  const auto n = static_cast<std::size_t>(session_.n());
  const auto to_original_order = [&](const auto& gathered) {
    std::vector<typename std::decay_t<decltype(gathered)>::value_type> out(n);
    for (Gid v = 0; v < static_cast<Gid>(n); ++v) {
      out[static_cast<std::size_t>(v)] =
          gathered[static_cast<std::size_t>(relabel.to_new(v))];
    }
    return out;
  };

  Response response;
  response.algo = request.algo;

  switch (request.algo) {
    case Algo::kBfs: {
      std::vector<std::int64_t> levels;
      std::int64_t depth = 0;
      session_.run([&](core::Dist2DGraph& g, comm::Comm& comm) {
        algos::BfsOptions bo;
        bo.sparse = options_.sparse;
        const auto result = algos::bfs(g, request.roots[0], bo);
        auto gathered = algos::gather_row_state(
            g, std::span<const std::int64_t>(result.level));
        if (comm.rank() == 0) {
          levels = to_original_order(gathered);
          depth = result.depth;
        }
      });
      response.levels.push_back(std::move(levels));
      response.depth.push_back(depth);
      break;
    }
    case Algo::kMsBfs: {
      std::vector<std::vector<std::int64_t>> levels(request.roots.size());
      std::vector<std::int64_t> depth(request.roots.size(), 0);
      session_.run([&](core::Dist2DGraph& g, comm::Comm& comm) {
        algos::MsBfsOptions mo;
        mo.sparse = options_.sparse;
        const auto result = algos::multi_source_bfs(g, request.roots, mo);
        for (std::size_t s = 0; s < request.roots.size(); ++s) {
          auto gathered = algos::gather_row_state(
              g, std::span<const std::int64_t>(result.level[s]));
          if (comm.rank() == 0) {
            levels[s] = to_original_order(gathered);
            depth[s] = result.depth[s];
          }
        }
      });
      metrics_->counter("serve.batches").increment();
      metrics_->counter("serve.batched_requests").add(request.roots.size());
      response.batch_size = static_cast<int>(request.roots.size());
      response.levels = std::move(levels);
      response.depth = std::move(depth);
      break;
    }
    case Algo::kPageRank: {
      std::vector<double> rank;
      const bool warm = request.warm_start && !pr_state_[0].empty();
      session_.run([&](core::Dist2DGraph& g, comm::Comm& comm) {
        std::vector<double> pr;
        if (warm) {
          pr = algos::pagerank_warm_start(
              g, pr_state_[static_cast<std::size_t>(comm.rank())],
              request.iterations, request.damping, options_.sparse);
        } else {
          pr = algos::pagerank(g, request.iterations, request.damping,
                               options_.sparse);
        }
        auto gathered = algos::gather_row_state(g, std::span<const double>(pr));
        if (comm.rank() == 0) rank = to_original_order(gathered);
        // Each rank parks its LID state for the next warm start.
        pr_state_[static_cast<std::size_t>(comm.rank())] = std::move(pr);
      });
      response.rank = std::move(rank);
      break;
    }
    case Algo::kCc: {
      std::vector<Gid> component;
      std::int64_t n_components = 0;
      session_.run([&](core::Dist2DGraph& g, comm::Comm& comm) {
        const auto result =
            algos::connected_components(g, algos::CcOptions::all_push());
        auto gathered =
            algos::gather_row_state(g, std::span<const Gid>(result.label));
        if (comm.rank() == 0) {
          component.resize(n);
          for (Gid v = 0; v < static_cast<Gid>(n); ++v) {
            // Both the position and the representative label live in
            // striped space; translate each back to original ids.
            component[static_cast<std::size_t>(v)] = relabel.to_original(
                gathered[static_cast<std::size_t>(relabel.to_new(v))]);
          }
          const std::set<Gid> distinct(component.begin(), component.end());
          n_components = static_cast<std::int64_t>(distinct.size());
        }
      });
      response.component = std::move(component);
      response.n_components = n_components;
      break;
    }
  }
  complete(pending, std::move(response), popped_s);
}

}  // namespace hpcg::serve

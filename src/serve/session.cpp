#include "serve/session.hpp"

#include <utility>

#include "serve/request.hpp"

namespace hpcg::serve {

Session::Session(const graph::EdgeList& graph, core::Grid grid,
                 const SessionOptions& options)
    : parts_(core::Partitioned2D::build(graph, grid, options.striped)),
      nranks_(grid.ranks()),
      initial_epoch_(options.initial_epoch),
      keep_metrics_(options.keep_metrics) {
  comm::RunOptions ropts;
  ropts.recorder = options.recorder;
  ropts.faults = options.faults;
  ropts.comm_timeout_s = options.comm_timeout_s;
  ropts.async = options.async;
  ropts.async_chunk = options.async_chunk;
  ropts.kernel = options.kernel;
  ropts.policy = options.policy;
  ropts.keep_metrics = options.keep_metrics;
  const auto topo = comm::Topology::aimos(nranks_);
  host_ = std::thread([this, ropts, topo] {
    try {
      stats_ = comm::Runtime::run(nranks_, topo, comm::CostModel{}, ropts,
                                  [this](comm::Comm& comm) { worker_body(comm); });
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      dead_ = true;
    }
    cv_job_.notify_all();
    cv_done_.notify_all();
  });
}

Session::~Session() { close(); }

void Session::worker_body(comm::Comm& comm) {
  core::Dist2DGraph g(comm, parts_);
  g.set_epoch(initial_epoch_);  // resume pre-fault numbering on rebuilds
  // Sessions bill per request, not construction; a supervised rebuild
  // keeps the shared metrics registry intact.
  comm.reset_clocks(keep_metrics_);
  std::int64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      cv_job_.wait(lock, [&] { return stop_ || dead_ || generation_ > seen; });
      if (stop_ || dead_) return;
      seen = generation_;
    }
    try {
      job_(g, comm);
    } catch (...) {
      // Latch the first failure and wake everyone BEFORE rethrowing: ranks
      // parked on cv_job_ exit via the dead flag, ranks blocked inside a
      // collective are released by the runtime's abort flag once this
      // exception reaches Runtime::run's handler.
      {
        std::lock_guard lock(mutex_);
        if (!error_) error_ = std::current_exception();
        dead_ = true;
      }
      cv_job_.notify_all();
      cv_done_.notify_all();
      throw;
    }
    {
      std::lock_guard lock(mutex_);
      if (++done_count_ == nranks_) cv_done_.notify_all();
    }
  }
}

void Session::run(
    const std::function<void(core::Dist2DGraph&, comm::Comm&)>& job) {
  std::unique_lock lock(mutex_);
  if (stop_ || dead_) throw SessionClosed("session is closed");
  job_ = job;
  done_count_ = 0;
  ++generation_;
  cv_job_.notify_all();
  cv_done_.wait(lock, [&] { return dead_ || done_count_ == nranks_; });
  if (dead_) {
    std::string reason = "session died during request";
    if (error_) {
      try {
        std::rethrow_exception(error_);
      } catch (const std::exception& e) {
        reason = std::string("session died during request: ") + e.what();
      } catch (...) {
      }
    }
    throw SessionClosed(reason);
  }
}

comm::RunStats Session::close() {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return stats_;
    closed_ = true;
    stop_ = true;
  }
  cv_job_.notify_all();
  if (host_.joinable()) host_.join();
  return stats_;
}

bool Session::alive() const {
  std::lock_guard lock(mutex_);
  return !stop_ && !dead_;
}

}  // namespace hpcg::serve

// Two request drivers for the serving layer:
//
//  * run_script — replays a deterministic request script (one command per
//    line) against a manually-pumped Service and returns a reproducible
//    text log of every admission decision and completion. The admission
//    tests and hpcg_serve's --script mode run on this.
//  * run_load — a seeded closed-loop load generator: `clients` driver
//    threads each submit a fixed request count drawn from a weighted
//    algorithm mix, retrying on Overloaded. Powers hpcg_serve's default
//    mode and bench_serve_throughput's offered-load sweeps.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/frontend.hpp"
#include "serve/service.hpp"

namespace hpcg::serve {

struct ScriptResult {
  std::string log;  // one line per submission / completion, deterministic
  int submitted = 0;
  int admitted = 0;
  int rejected = 0;
  int completed = 0;
  int failed = 0;
};

/// Script grammar (one command per line, '#' starts a comment):
///   client NAME        — subsequent requests are attributed to NAME
///   bfs ROOT           — single-source BFS (batchable by the scheduler)
///   msbfs R1,R2,...    — explicit multi-source batch
///   pr ITERS [DAMPING] [warm]
///   cc
///   mutate COUNT [DELPCT] [SEED]
///                      — commit COUNT seeded edge mutations (DELPCT %
///                        deletes, default 30; SEED default 1; the batch
///                        index advances per mutate line)
///   pump               — one scheduling round (requires manual dispatch)
///   drain              — complete everything admitted so far
/// A final implicit drain completes any stragglers. Requires a frontend
/// (Service or Supervisor) with auto_dispatch = false so batching
/// decisions are reproducible.
ScriptResult run_script(Frontend& service, std::istream& script);

struct LoadGenOptions {
  int clients = 4;
  int requests_per_client = 16;
  std::uint64_t seed = 1;
  /// Weighted algorithm mix; weights need not sum to anything particular.
  int bfs_weight = 70;
  int msbfs_weight = 10;
  int pr_weight = 10;
  int cc_weight = 10;
  /// Streaming mutation mix: weight of kMutate requests (0 = query-only
  /// load), ops per committed batch, and the delete share of each batch.
  /// Edge picks are seeded per (client, request index) so the offered
  /// mutation stream is reproducible end to end.
  int mutate_weight = 0;
  int mutate_batch = 8;
  int mutate_delete_pct = 30;
  int msbfs_sources = 8;  // roots per explicit msbfs request
  int pr_iterations = 5;
  /// Per-request completion budget in wall seconds (Request::deadline_s);
  /// 0 = no deadline.
  double deadline_s = 0.0;
};

struct LoadGenStats {
  int submitted = 0;
  int completed = 0;
  int rejected = 0;  // Overloaded throws (retried until accepted)
  int failed = 0;    // = sum of the four typed tallies below
  /// Typed per-error-kind failure tallies: a failure is never a bare
  /// count — the summary says WHICH contract failed.
  int failed_session_closed = 0;
  int failed_deadline = 0;
  int failed_unavailable = 0;
  int failed_other = 0;
  /// Completions that survived at least one session restart
  /// (Response::attempts > 1): recovered, not just retried by the driver.
  int retried_completed = 0;
  /// Degraded-mode sheds (Overloaded kDegraded); also counted in rejected.
  int rejected_degraded = 0;
  std::uint64_t cache_hits = 0;
  double wall_s = 0.0;
  double rps = 0.0;  // completed / wall_s
};

/// Closed-loop driver: each client thread keeps one request outstanding at
/// a time, retrying Overloaded rejections after a short backoff. Root
/// choices are seeded per client, so the submitted request *set* is
/// reproducible (arrival order is not — it depends on thread scheduling).
/// `n` is the vertex-id bound for generated roots. Works against a bare
/// Service or a fault-tolerant Supervisor; a SessionClosed from a bare
/// service stops that client's submissions (nothing will revive the
/// session) but is tallied typed, never swallowed.
LoadGenStats run_load(Frontend& service, Gid n, const LoadGenOptions& options);

}  // namespace hpcg::serve

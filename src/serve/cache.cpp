#include "serve/cache.hpp"

namespace hpcg::serve {

std::shared_ptr<const Response> ResultCache::get(const std::string& key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::put(const std::string& key,
                      std::shared_ptr<const Response> value) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

std::uint64_t ResultCache::evictions() const {
  std::lock_guard lock(mutex_);
  return evictions_;
}

}  // namespace hpcg::serve

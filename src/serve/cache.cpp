#include "serve/cache.hpp"

namespace hpcg::serve {

std::shared_ptr<const Response> ResultCache::get(const std::string& key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void ResultCache::put(const std::string& key,
                      std::shared_ptr<const Response> value,
                      std::uint64_t epoch) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->value = std::move(value);
    it->second->epoch = epoch;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(Entry{key, std::move(value), epoch});
  index_[key] = lru_.begin();
}

std::size_t ResultCache::invalidate_epoch(std::uint64_t stale_epoch) {
  std::lock_guard lock(mutex_);
  std::size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->epoch <= stale_epoch) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
      ++evictions_;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

std::uint64_t ResultCache::evictions() const {
  std::lock_guard lock(mutex_);
  return evictions_;
}

}  // namespace hpcg::serve

// Thread-safe LRU result cache keyed by (graph, algo, params) strings.
//
// Key grammar (produced by Service::cache_key): three length-prefixed
// fields joined by '|' —
//
//   key    := field '|' field '|' field          (graph, algo, params)
//   field  := DECIMAL-LENGTH ':' BYTES           e.g. "9:graph:n64"
//
// The decimal length counts the BYTES section, which is copied verbatim:
// because each field's extent is determined by its prefix and never by
// delimiter scanning, a '|' (or any other byte) inside a field — a
// user-supplied ServiceOptions::graph_key, say — cannot collide with the
// separators of a different (graph, algo, params) triple. The params
// field is algo-specific: "root=R" (bfs), "roots=R1,R2,..." (msbfs),
// "it=N;d=D" with D at max_digits10 precision, plus ";tol=T" for
// tolerance solves (pagerank; warm starts are uncacheable and yield the
// empty key), "" (cc). Under streaming mutations the graph field carries
// an "@e<epoch>" suffix, so a post-commit probe can never match a
// pre-commit entry; see docs/STREAMING.md.
//
// Values are shared pointers to immutable Responses, so a hit costs one
// map lookup plus a list splice and hands back the cached result without
// copying the payload vectors. Each entry is additionally tagged with the
// graph epoch it was computed at; invalidate_epoch() reclaims every entry
// at or below a stale epoch after a mutation commit (the epoch-suffixed
// keys already make them unreachable — eviction frees the capacity).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "serve/request.hpp"

namespace hpcg::serve {

class ResultCache {
 public:
  /// `capacity` = max entries; 0 disables caching (every get misses,
  /// every put is dropped).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached response and bumps its recency, or null on miss.
  std::shared_ptr<const Response> get(const std::string& key);

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// when at capacity. `epoch` tags the entry with the graph epoch the
  /// response was computed at (see invalidate_epoch).
  void put(const std::string& key, std::shared_ptr<const Response> value,
           std::uint64_t epoch = 0);

  /// Evicts every entry tagged with an epoch <= `stale_epoch` and returns
  /// how many were dropped. Called by the service after a mutation commit
  /// with (new epoch - 1): no post-mutation query can ever be answered by
  /// a pre-mutation entry.
  std::size_t invalidate_epoch(std::uint64_t stale_epoch);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Response> value;
    std::uint64_t epoch = 0;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace hpcg::serve

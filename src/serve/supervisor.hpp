// Serve-tier fault tolerance (docs/RECOVERY.md): a Supervisor owns the
// session + service pair and rebuilds both when a job kills the resident
// rank world, instead of letting SessionClosed poison the service forever.
//
// On a session death the supervisor:
//   1. quiesces the failed service and harvests its PARKED requests —
//      admitted, retryable requests whose promises are still the ones the
//      callers' Tickets watch;
//   2. rebuilds the session from the latest committed snapshot in the
//      serve-side CheckpointStore (or the base edge list) and REPLAYS the
//      committed mutation-log suffix, re-reaching the pre-fault epoch
//      bit-identically (commits are transactional, so a faulted commit
//      was never applied and is never in the log);
//   3. builds a fresh Service at the restored epoch and resubmits the
//      parked requests in their original admission order.
//
// Restart budget: at most `max_restarts` restarts per sliding
// `restart_window_s` window, with exponential backoff between attempts.
// Past the budget the supervisor goes UNAVAILABLE — in-flight requests
// fail with the typed Unavailable error and new submissions are rejected,
// instead of crash-looping.
//
// Degraded mode: while recovering (and above the optional queue
// watermark) admission sheds to cacheable-only — mutations and
// history-dependent warm starts are rejected with Overloaded(kDegraded);
// cacheable queries are parked supervisor-side and adopted by the rebuilt
// service. Observability: serve.recovery.* / serve.degraded.* counters
// plus "recovery.restart" spans on the request telemetry track.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/checkpoint.hpp"
#include "serve/frontend.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"

namespace hpcg::serve {

struct SupervisorOptions {
  /// Session construction parameters, reused for every rebuild. The fault
  /// hooks stay wired in: Runtime::run re-arms per-attempt trigger
  /// counters on each rebuild (already-fired one-shot faults stay
  /// consumed), so seeded fault plans behave like run_with_recovery's.
  SessionOptions session;
  /// Service parameters (queue bounds, cache, auto_dispatch, ...). The
  /// supervision fields (park_on_failure, hooks, metrics, id_source,
  /// initial_epoch, wall_epoch_s) are overwritten by the supervisor.
  ServiceOptions service;

  /// Restart budget: restarts allowed per sliding window before the
  /// supervisor reports Unavailable instead of rebuilding again.
  int max_restarts = 3;
  double restart_window_s = 60.0;
  /// Exponential backoff between restart attempts:
  /// base * 2^(consecutive failures), capped. 0 disables sleeping
  /// (deterministic tests).
  double backoff_base_s = 0.0;
  double backoff_max_s = 1.0;
  /// Snapshot the host mirror into the serve-side CheckpointStore every
  /// this many effective commits (bounds replay length); 0 disables
  /// snapshots (every recovery replays from the base graph).
  int snapshot_every = 4;
  /// true: a background thread recovers as soon as a death is flagged
  /// (pairs with service.auto_dispatch). false: recovery runs inline in
  /// the owner's next pump()/drain() call — deterministic for scripts and
  /// the checker's manually-pumped paths.
  bool auto_recover = true;
  /// While serving, shed non-cacheable requests once the inner queue
  /// reaches this depth (0 disables) — overload degradation.
  std::size_t degrade_queue_watermark = 0;
  /// Execution attempts per request across restarts (forwarded to the
  /// service's park/retry accounting).
  int max_attempts = 3;
};

class Supervisor final : public Frontend {
 public:
  enum class State : std::uint8_t { kServing, kRecovering, kUnavailable };

  /// Partitions and spawns the first session; throws what Session throws.
  /// `graph` is copied: it is the rebuild source of last resort.
  Supervisor(const graph::EdgeList& graph, core::Grid grid,
             const SupervisorOptions& options = {});
  ~Supervisor() override;

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Service::submit semantics, plus: throws Unavailable past the restart
  /// budget, Overloaded(kDegraded) for non-cacheable requests while
  /// recovering or above the watermark. Cacheable requests submitted
  /// during a recovery are parked and adopted by the rebuilt service.
  Ticket submit(Request request) override;

  /// One scheduling round; with auto_recover = false this is also where a
  /// flagged session death is repaired (inline, deterministically).
  bool pump() override;

  /// Blocks until every admitted request resolved — across however many
  /// recoveries that takes (returns early when Unavailable: everything
  /// has been failed with the typed error by then).
  void drain() override;

  /// Stops recovery and the inner service; unresolved requests fail with
  /// SessionClosed. Idempotent.
  void stop();

  State state() const;
  /// Total session restarts performed (monotone; survives rebuilds).
  int restarts() const;
  /// Current committed graph epoch (the supervisor's own log, so it is
  /// answerable even mid-recovery).
  std::uint64_t epoch() const;
  Gid n() const override { return base_.n; }
  std::size_t queue_depth() const override;
  telemetry::MetricsRegistry& metrics() { return *metrics_; }
  /// Host mirror of the committed graph (base + committed log), for
  /// final-state checks. Copies under the log lock.
  graph::EdgeList mirror_copy() const;
  /// The serve-side snapshot store (exposed for tests/tools).
  const fault::CheckpointStore& snapshots() const { return snapshots_; }

 private:
  /// A session + its fronting service; destroyed service-first so rank
  /// threads never see a dangling Service callback.
  struct Backend {
    std::unique_ptr<Session> session;
    std::unique_ptr<Service> service;
    ~Backend() {
      service.reset();
      if (session) session->close();
    }
  };

  std::shared_ptr<Backend> build_backend();
  std::unique_ptr<Session> build_session_and_replay();
  void on_session_death();
  void on_commit(const std::vector<stream::EdgeOp>& ops, std::uint64_t epoch);
  /// Full recovery cycle; called with no supervisor locks held, single
  /// flight (recovery thread, or the owner thread in inline mode).
  void recover();
  bool maybe_recover_inline();
  void recovery_loop();
  void go_unavailable(std::vector<std::unique_ptr<Service::Pending>> parked);
  void record_recovery_span(const char* name, double start_s, double end_s,
                            std::int64_t value);
  Ticket park_degraded(Request request);

  const core::Grid grid_;
  const graph::EdgeList base_;
  SupervisorOptions options_;
  std::unique_ptr<telemetry::MetricsRegistry> own_metrics_;
  telemetry::MetricsRegistry* metrics_;
  const int request_track_;  // recorder track for recovery spans, -1 = off
  const double epoch_s_;     // shared wall-clock zero across rebuilds
  std::atomic<std::uint64_t> id_counter_{0};

  // Committed-mutation bookkeeping (log_mutex_): the host mirror, the
  // replayable suffix, and the snapshot store. Written by the executor
  // (on_commit), read by recovery while no executor exists.
  mutable std::mutex log_mutex_;
  graph::EdgeList mirror_;
  struct CommittedBatch {
    std::uint64_t epoch = 0;
    std::vector<stream::EdgeOp> ops;
  };
  std::vector<CommittedBatch> log_;
  std::uint64_t committed_epoch_ = 0;
  int commits_since_snapshot_ = 0;
  fault::CheckpointStore snapshots_;

  // Lifecycle state (mutex_).
  mutable std::mutex mutex_;
  std::condition_variable cv_state_;    // waiters for state != kRecovering
  std::condition_variable cv_recover_;  // wakes the recovery thread
  State state_ = State::kServing;
  std::shared_ptr<Backend> backend_;
  /// Cacheable requests admitted supervisor-side during a recovery
  /// window, awaiting adoption (original admission order).
  std::vector<std::unique_ptr<Service::Pending>> parked_;
  std::deque<double> restart_times_;  // sliding-window budget, wall seconds
  int consecutive_failures_ = 0;      // backoff exponent
  int restarts_ = 0;
  bool exit_ = false;
  bool stopped_ = false;

  std::thread recovery_thread_;
};

}  // namespace hpcg::serve

// Request/response vocabulary of the graph-query service (docs/SERVING.md).
//
// A Request names an algorithm plus its parameters; a Response carries the
// result indexed by ORIGINAL vertex ids (the service undoes the striped
// relabeling before answering, so callers never see distribution detail)
// together with provenance (cache hit? coalesced batch size?) and the
// enqueue->admit->complete latency split.
#pragma once

#include <cstdint>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "stream/mutation_log.hpp"

namespace hpcg::serve {

using graph::Gid;

enum class Algo : std::uint8_t {
  kBfs,       // single-source BFS (batchable: the scheduler coalesces these)
  kMsBfs,     // explicit multi-source batch, 1..64 roots
  kPageRank,  // fixed-iteration PageRank, optionally warm-started
  kCc,        // connected components
  kMutate,    // commit a batch of edge mutations (docs/STREAMING.md)
};

constexpr const char* to_string(Algo algo) {
  switch (algo) {
    case Algo::kBfs: return "bfs";
    case Algo::kMsBfs: return "msbfs";
    case Algo::kPageRank: return "pr";
    case Algo::kCc: return "cc";
    case Algo::kMutate: return "mutate";
  }
  return "?";
}

struct Request {
  Algo algo = Algo::kBfs;
  /// Admission-control identity: per-client in-flight quotas key on this.
  std::string client = "anon";
  /// Original vertex ids. bfs: exactly one; msbfs: 1..64; pr/cc: unused.
  std::vector<Gid> roots;
  int iterations = 20;    // pagerank
  double damping = 0.85;  // pagerank
  /// PageRank only: continue from the session's resident rank vector (the
  /// state left by the previous PageRank request) instead of 1/n. Warm
  /// responses are never cached — they depend on session history.
  bool warm_start = false;
  /// PageRank only: > 0 switches to the tolerance solve — iterate until the
  /// global L1 delta drops below this, with `iterations` as the cap. When
  /// the session holds resident PageRank state this runs delta-PageRank
  /// seeded from it (Response::incremental reports which happened).
  double tolerance = 0.0;
  /// kMutate only: the edge batch to commit, in ORIGINAL vertex ids. The
  /// scheduler applies it at a superstep boundary between queries; every
  /// request submitted afterwards observes the post-commit graph.
  std::vector<stream::EdgeOp> ops;
  /// Wall-second budget from submission to completion; 0 disables. A
  /// request still queued when its deadline passes fails with
  /// DeadlineExceeded instead of executing (checked when the scheduler
  /// would pop it — an executing request is never interrupted).
  double deadline_s = 0.0;
};

/// Safe to re-execute after a session failure without observable
/// double-effect. Queries are pure; kMutate qualifies because commits are
/// transactional (docs/RECOVERY.md): a commit that faulted was never
/// applied, and one that completed is in the supervisor's committed log —
/// never parked for retry. The only exclusion is warm-started PageRank,
/// whose answer depends on resident session history that a rebuilt
/// session no longer holds.
inline bool is_retryable(const Request& request) {
  return !(request.algo == Algo::kPageRank && request.warm_start);
}

/// Admissible while the service runs DEGRADED (recovering from a session
/// failure, or shedding at the overload watermark): cacheable query types
/// only — no mutations (they grow the replay log a recovery is trying to
/// re-reach) and no history-dependent warm starts.
inline bool is_cacheable_type(const Request& request) {
  if (request.algo == Algo::kMutate) return false;
  return !(request.algo == Algo::kPageRank && request.warm_start);
}

struct Response {
  std::uint64_t id = 0;
  Algo algo = Algo::kBfs;
  bool from_cache = false;
  /// Number of requests that shared the superstep loop producing this
  /// answer (1 = ran alone; >1 = coalesced into a multi-source batch).
  int batch_size = 1;

  // Original-vertex-id-indexed results; only the requested algo's
  // vectors are filled.
  static constexpr std::int64_t kUnvisited = std::int64_t{1} << 62;
  std::vector<std::vector<std::int64_t>> levels;  // bfs: [0]; msbfs: per root
  std::vector<std::int64_t> depth;                // per root
  std::vector<double> rank;                       // pagerank
  std::vector<Gid> component;                     // cc labels
  std::int64_t n_components = 0;

  /// Graph epoch this answer reflects: for queries, the epoch of the graph
  /// they executed against; for kMutate, the post-commit epoch.
  std::uint64_t epoch = 0;
  /// kMutate: directed entries applied across the grid (2 per undirected
  /// op that took effect; deletes of absent edges count in neither).
  std::int64_t edges_inserted = 0;
  std::int64_t edges_deleted = 0;
  /// Query answered by incremental maintenance (CC ripple, BFS repair,
  /// seeded delta-PageRank) instead of a from-scratch run.
  bool incremental = false;
  /// Execution attempts this response consumed: 1 for the common case,
  /// +1 per session failure the request survived (parked by the
  /// supervisor, resubmitted into the rebuilt session).
  int attempts = 1;

  // Latency split in wall seconds: submit->pop, pop->complete, and total.
  double queue_s = 0.0;
  double exec_s = 0.0;
  double total_s = 0.0;
};

class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Deterministic admission rejection: the request never entered the queue.
class Overloaded : public ServeError {
 public:
  enum class Reason : std::uint8_t { kQueueFull, kClientQuota, kDegraded };

  Overloaded(Reason reason, const std::string& message)
      : ServeError(message), reason_(reason) {}
  Reason reason() const { return reason_; }

 private:
  Reason reason_;
};

/// The resident session is gone (closed, or a request's job failed and
/// tore down the rank threads); no further requests can be served.
class SessionClosed : public ServeError {
 public:
  using ServeError::ServeError;
};

/// The request's wall-clock deadline passed before it reached the
/// executor. The request was admitted but never ran.
class DeadlineExceeded : public ServeError {
 public:
  using ServeError::ServeError;
};

/// The supervisor exhausted its restart budget (too many session failures
/// inside one window); the service reports itself down instead of
/// crash-looping. Requests in flight at that point fail with this too.
class Unavailable : public ServeError {
 public:
  using ServeError::ServeError;
};

/// Handle to an admitted request. `result` throws the typed ServeError on
/// failure; every admitted request resolves exactly one way (a value or a
/// typed error) — never silently dropped.
struct Ticket {
  std::uint64_t id = 0;
  std::shared_future<Response> result;
};

}  // namespace hpcg::serve

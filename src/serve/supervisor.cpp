#include "serve/supervisor.hpp"

#include <chrono>
#include <cmath>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "stream/commit.hpp"

namespace hpcg::serve {

namespace {

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Supervisor::Supervisor(const graph::EdgeList& graph, core::Grid grid,
                       const SupervisorOptions& options)
    : grid_(grid),
      base_(graph),
      options_(options),
      own_metrics_(options.service.metrics || options.session.recorder
                       ? nullptr
                       : std::make_unique<telemetry::MetricsRegistry>()),
      metrics_(options.service.metrics
                   ? options.service.metrics
                   : (options.session.recorder
                          ? &options.session.recorder->metrics()
                          : own_metrics_.get())),
      request_track_(options.session.recorder &&
                             options.session.recorder->nranks() > grid.ranks()
                         ? grid.ranks()
                         : -1),
      epoch_s_(wall_s()),
      mirror_(graph),
      snapshots_(1) {
  if (options_.max_restarts < 1) {
    throw std::invalid_argument("SupervisorOptions::max_restarts must be >= 1");
  }
  if (options_.restart_window_s <= 0.0) {
    throw std::invalid_argument(
        "SupervisorOptions::restart_window_s must be > 0");
  }
  if (options_.max_attempts < 1) {
    throw std::invalid_argument("SupervisorOptions::max_attempts must be >= 1");
  }
  backend_ = build_backend();
  if (options_.auto_recover) {
    recovery_thread_ = std::thread([this] { recovery_loop(); });
  }
}

Supervisor::~Supervisor() { stop(); }

std::shared_ptr<Supervisor::Backend> Supervisor::build_backend() {
  auto backend = std::make_shared<Backend>();
  backend->session = build_session_and_replay();

  ServiceOptions so = options_.service;
  so.recorder = options_.session.recorder;
  so.park_on_failure = true;
  so.max_attempts = options_.max_attempts;
  so.metrics = metrics_;
  so.id_source = &id_counter_;
  so.wall_epoch_s = epoch_s_;
  {
    std::lock_guard lock(log_mutex_);
    so.initial_epoch = committed_epoch_;
  }
  so.on_session_death = [this] { on_session_death(); };
  so.on_commit = [this](const std::vector<stream::EdgeOp>& ops,
                        std::uint64_t epoch) { on_commit(ops, epoch); };
  backend->service = std::make_unique<Service>(*backend->session, so);
  return backend;
}

std::unique_ptr<Session> Supervisor::build_session_and_replay() {
  graph::EdgeList source;
  std::uint64_t base_epoch = 0;
  std::vector<CommittedBatch> suffix;
  {
    std::lock_guard lock(log_mutex_);
    const auto snap = snapshots_.latest_committed();
    if (snap >= 0) {
      // Restore from the serve-side snapshot: the host mirror as of the
      // snapshot's epoch (streaming graphs are unweighted by contract).
      const auto blob = snapshots_.blob(snap, /*rank=*/0);
      fault::BlobReader reader(blob);
      base_epoch = reader.get<std::uint64_t>();
      source.n = reader.get<Gid>();
      source.edges = reader.get_vec<graph::Edge>();
      metrics_->counter("serve.recovery.snapshot_restored").increment();
    } else {
      source = base_;
    }
    for (const auto& batch : log_) {
      if (batch.epoch > base_epoch) suffix.push_back(batch);
    }
  }

  SessionOptions so = options_.session;
  so.initial_epoch = base_epoch;
  // The metrics registry outlives every backend: rebuilds must extend the
  // counter timeline, not wipe it.
  so.keep_metrics = true;
  auto session = std::make_unique<Session>(source, grid_, so);

  // Replay the committed suffix to re-reach the pre-fault epoch. Commits
  // are transactional and the log holds exactly the batches whose
  // responses resolved, so the rebuilt edge multiset is the same
  // projection of the same global op sequence the dead session held —
  // query results stay bit-identical. A fault during replay throws
  // SessionClosed out of here and counts as a failed restart attempt.
  for (const auto& batch : suffix) {
    session->run([&](core::Dist2DGraph& g, comm::Comm&) {
      stream::commit(g, std::span<const stream::EdgeOp>(batch.ops));
    });
    metrics_->counter("serve.recovery.replayed_batches").increment();
  }
  return session;
}

void Supervisor::on_session_death() {
  {
    std::lock_guard lock(mutex_);
    if (stopped_) return;
    metrics_->counter("serve.recovery.session_deaths").increment();
    if (state_ == State::kServing) state_ = State::kRecovering;
  }
  cv_recover_.notify_all();
}

void Supervisor::on_commit(const std::vector<stream::EdgeOp>& ops,
                           std::uint64_t epoch) {
  std::lock_guard lock(log_mutex_);
  stream::apply_to_edge_list(mirror_, ops);
  log_.push_back({epoch, ops});
  committed_epoch_ = epoch;
  if (options_.snapshot_every > 0 &&
      ++commits_since_snapshot_ >= options_.snapshot_every) {
    fault::BlobWriter writer;
    writer.put(epoch);
    writer.put(mirror_.n);
    writer.put_vec(mirror_.edges);
    snapshots_.write(static_cast<std::int64_t>(epoch), /*rank=*/0,
                     writer.take());
    snapshots_.commit(static_cast<std::int64_t>(epoch));
    metrics_->counter("serve.recovery.snapshot_saved").increment();
    commits_since_snapshot_ = 0;
    // Batches at or before the snapshot can never be replayed again.
    std::erase_if(log_, [&](const CommittedBatch& b) { return b.epoch <= epoch; });
  }
}

Ticket Supervisor::park_degraded(Request request) {
  // mutex_ held by the caller.
  metrics_->counter("serve.requests.submitted").increment();
  if (!is_cacheable_type(request)) {
    metrics_->counter("serve.degraded.shed").increment();
    throw Overloaded(Overloaded::Reason::kDegraded,
                     "service is degraded (recovering); only cacheable "
                     "queries are admitted");
  }
  if (parked_.size() >= options_.service.queue_capacity) {
    metrics_->counter("serve.requests.rejected.queue_full").increment();
    throw Overloaded(Overloaded::Reason::kQueueFull,
                     "recovery parking lot full (" +
                         std::to_string(options_.service.queue_capacity) +
                         " pending)");
  }
  metrics_->counter("serve.requests.admitted").increment();
  metrics_->counter("serve.degraded.parked").increment();
  auto pending = Service::make_pending(std::move(request), ++id_counter_);
  Ticket ticket{pending->id, pending->future};
  parked_.push_back(std::move(pending));
  return ticket;
}

Ticket Supervisor::submit(Request request) {
  validate_request(request, base_.n, base_.weighted());
  std::unique_lock lock(mutex_);
  if (stopped_) throw SessionClosed("supervisor is stopped");
  if (state_ == State::kUnavailable) {
    metrics_->counter("serve.requests.rejected.unavailable").increment();
    throw Unavailable("restart budget exhausted (" +
                      std::to_string(options_.max_restarts) + " restarts in " +
                      std::to_string(options_.restart_window_s) +
                      "s); service unavailable");
  }
  if (state_ == State::kRecovering || !backend_) {
    return park_degraded(std::move(request));
  }
  if (options_.degrade_queue_watermark > 0 && !is_cacheable_type(request) &&
      backend_->service->queue_depth() >= options_.degrade_queue_watermark) {
    metrics_->counter("serve.degraded.shed").increment();
    throw Overloaded(Overloaded::Reason::kDegraded,
                     "degraded: queue depth at watermark (" +
                         std::to_string(options_.degrade_queue_watermark) +
                         "); shedding non-cacheable requests");
  }
  try {
    // Submit a copy: if the session dies mid-admission we fall back to
    // degraded parking with the original request.
    return backend_->service->submit(Request(request));
  } catch (const SessionClosed&) {
    return park_degraded(std::move(request));
  }
}

bool Supervisor::maybe_recover_inline() {
  if (options_.auto_recover) return false;
  {
    std::lock_guard lock(mutex_);
    if (stopped_ || state_ != State::kRecovering) return false;
  }
  recover();
  return true;
}

bool Supervisor::pump() {
  bool recovered = maybe_recover_inline();
  std::shared_ptr<Backend> backend;
  {
    std::lock_guard lock(mutex_);
    backend = backend_;
  }
  const bool did = backend && backend->service && backend->service->pump();
  recovered = maybe_recover_inline() || recovered;
  return did || recovered;
}

void Supervisor::drain() {
  for (;;) {
    if (!options_.auto_recover) maybe_recover_inline();
    std::shared_ptr<Backend> backend;
    {
      std::unique_lock lock(mutex_);
      if (options_.auto_recover) {
        cv_state_.wait(lock, [&] {
          return stopped_ || state_ != State::kRecovering;
        });
      }
      if (stopped_ || state_ == State::kUnavailable) return;
      backend = backend_;
    }
    if (!backend) continue;
    backend->service->drain();
    {
      std::lock_guard lock(mutex_);
      if (state_ == State::kServing && backend == backend_ &&
          parked_.empty() && backend->service->parked_count() == 0 &&
          backend->service->queue_depth() == 0) {
        return;
      }
    }
  }
}

void Supervisor::recover() {
  const double start_s = wall_s();
  std::shared_ptr<Backend> old;
  {
    std::lock_guard lock(mutex_);
    old = std::move(backend_);
  }
  std::vector<std::unique_ptr<Service::Pending>> parked;
  if (old) {
    if (old->service) {
      old->service->stop();  // drains the dead queue into the parking lot
      parked = old->service->take_parked();
    }
    // Join the dead rank world before spawning a new one: blocked peers
    // release via the abort flag or the comm timeout, so this bounds the
    // recovery latency at SessionOptions::comm_timeout_s.
    if (old->session) old->session->close();
    old.reset();
  }
  {
    // Degraded-window admissions join behind the harvested in-flight set,
    // preserving supervisor-side admission order.
    std::lock_guard lock(mutex_);
    for (auto& pending : parked_) parked.push_back(std::move(pending));
    parked_.clear();
  }

  for (;;) {
    const double now = wall_s();
    {
      std::lock_guard lock(mutex_);
      while (!restart_times_.empty() &&
             restart_times_.front() < now - options_.restart_window_s) {
        restart_times_.pop_front();
      }
      if (static_cast<int>(restart_times_.size()) >= options_.max_restarts) {
        break;  // budget exhausted -> unavailable
      }
      restart_times_.push_back(now);
      ++restarts_;
    }
    metrics_->counter("serve.recovery.restarts").increment();
    if (options_.backoff_base_s > 0.0) {
      const double delay =
          std::min(options_.backoff_max_s,
                   options_.backoff_base_s *
                       std::pow(2.0, static_cast<double>(consecutive_failures_)));
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
    try {
      auto backend = build_backend();
      auto resubmitted = parked.size();
      backend->service->adopt(std::move(parked));
      bool alive = false;
      std::vector<std::unique_ptr<Service::Pending>> late;
      {
        std::lock_guard lock(mutex_);
        // A fault can kill the rebuilt session before we publish it (its
        // own dispatcher may already be executing adopted requests); the
        // death callback filtered on kServing, so check liveness here,
        // atomically with the state flip.
        alive = !backend->service->dead();
        if (alive) {
          backend_ = backend;
          state_ = State::kServing;
          consecutive_failures_ = 0;
          // Degraded-window parks that arrived after the harvest above
          // (submitters saw kRecovering until this very flip) — adopt
          // them too, or their tickets would never resolve.
          late = std::move(parked_);
          parked_.clear();
        }
      }
      if (alive) {
        if (!late.empty()) {
          resubmitted += late.size();
          backend->service->adopt(std::move(late));
        }
        cv_state_.notify_all();
        metrics_->counter("serve.recovery.resubmitted")
            .add(static_cast<std::uint64_t>(resubmitted));
        record_recovery_span("recovery.restart", start_s, wall_s(),
                             static_cast<std::int64_t>(restarts()));
        return;
      }
      // The rebuilt session died immediately; reclaim the adopted
      // requests and count a failed attempt.
      backend->service->stop();
      parked = backend->service->take_parked();
      backend->session->close();
      ++consecutive_failures_;
      metrics_->counter("serve.recovery.rebuild_failed").increment();
    } catch (const std::exception&) {
      // Session construction or replay faulted: a failed restart attempt.
      ++consecutive_failures_;
      metrics_->counter("serve.recovery.rebuild_failed").increment();
    }
  }
  go_unavailable(std::move(parked));
  record_recovery_span("recovery.unavailable", start_s, wall_s(),
                       static_cast<std::int64_t>(restarts()));
}

void Supervisor::go_unavailable(
    std::vector<std::unique_ptr<Service::Pending>> parked) {
  metrics_->counter("serve.recovery.unavailable").increment();
  const auto error = std::make_exception_ptr(Unavailable(
      "session restart budget exhausted (" +
      std::to_string(options_.max_restarts) + " restarts in " +
      std::to_string(options_.restart_window_s) + "s window)"));
  {
    std::lock_guard lock(mutex_);
    state_ = State::kUnavailable;
    backend_.reset();
    // Degraded-window parks that arrived after recover()'s harvest fail
    // with everyone else; leaking them would hang their tickets forever.
    for (auto& pending : parked_) parked.push_back(std::move(pending));
    parked_.clear();
  }
  for (auto& pending : parked) {
    metrics_->counter("serve.requests.failed").increment();
    pending->promise.set_exception(error);
  }
  cv_state_.notify_all();
}

void Supervisor::recovery_loop() {
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      cv_recover_.wait(
          lock, [&] { return exit_ || state_ == State::kRecovering; });
      if (exit_) return;
    }
    recover();
  }
}

void Supervisor::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    exit_ = true;
  }
  cv_recover_.notify_all();
  if (recovery_thread_.joinable()) recovery_thread_.join();

  std::shared_ptr<Backend> backend;
  std::vector<std::unique_ptr<Service::Pending>> parked;
  {
    std::lock_guard lock(mutex_);
    backend = std::move(backend_);
    parked = std::move(parked_);
  }
  if (backend && backend->service) {
    backend->service->stop();
    for (auto& pending : backend->service->take_parked()) {
      parked.push_back(std::move(pending));
    }
  }
  for (auto& pending : parked) {
    metrics_->counter("serve.requests.failed").increment();
    pending->promise.set_exception(std::make_exception_ptr(
        SessionClosed("supervisor stopped before the request completed")));
  }
  backend.reset();  // closes the session
  cv_state_.notify_all();
}

Supervisor::State Supervisor::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

int Supervisor::restarts() const {
  std::lock_guard lock(mutex_);
  return restarts_;
}

std::uint64_t Supervisor::epoch() const {
  std::lock_guard lock(log_mutex_);
  return committed_epoch_;
}

std::size_t Supervisor::queue_depth() const {
  std::lock_guard lock(mutex_);
  const auto inner =
      backend_ && backend_->service ? backend_->service->queue_depth() : 0;
  return inner + parked_.size();
}

graph::EdgeList Supervisor::mirror_copy() const {
  std::lock_guard lock(log_mutex_);
  return mirror_;
}

void Supervisor::record_recovery_span(const char* name, double start_s,
                                      double end_s, std::int64_t value) {
  if (request_track_ < 0) return;
  telemetry::SpanRecord span;
  span.start_s = start_s - epoch_s_;
  span.end_s = end_s - epoch_s_;
  span.rank = request_track_;
  span.kind = telemetry::SpanKind::kPhase;
  span.name = name;
  span.value = value;
  options_.session.recorder->record(std::move(span));
}

}  // namespace hpcg::serve

// Resident graph session: the amortization unit of the serving layer.
//
// Construction 2D-partitions the graph ONCE (host side) and spawns the
// rank threads through the ordinary Runtime::run — but instead of running
// one algorithm and joining, each rank builds its Dist2DGraph and then
// parks on a job queue. `run(job)` wakes every rank, executes
// `job(g, comm)` SPMD-style on the resident distribution, and returns when
// all ranks finish — so a request pays only its own supersteps, not graph
// load + partition + thread spawn (the one-shot hpcg_run tax).
//
// Error contract: if a job throws on any rank, the first error is latched,
// every parked or collective-blocked rank is released (the runtime's abort
// flag plus the session's dead flag), the world unwinds, and this and
// every later `run` throws SessionClosed. A session does not survive a
// failed job — admission control upstream should reject, not throw, for
// anticipated overload.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "graph/edge_list.hpp"

namespace hpcg::serve {

struct SessionOptions {
  bool striped = true;
  /// Telemetry for the resident runtime. May have MORE tracks than ranks:
  /// the service records per-request spans on track `grid.ranks()`.
  telemetry::Recorder* recorder = nullptr;
  comm::FaultHooks* faults = nullptr;
  double comm_timeout_s = 0.0;
  bool async = false;
  int async_chunk = 1;
  /// Run-wide kernel execution defaults (worker threads, chunk grain,
  /// async overrides) for the resident runtime; forwarded to
  /// comm::RunOptions::kernel. Results are bit-identical for any setting.
  comm::KernelOptions kernel = {};
  /// Collective selection policy for the resident runtime; forwarded to
  /// comm::RunOptions::policy. Bit-identical results for any policy — only
  /// modeled time changes.
  comm::CollectivePolicy policy = {};
  /// Graph epoch the freshly built Dist2DGraph starts at (default 0). A
  /// supervisor rebuilding a session from a snapshot + committed-log
  /// replay passes the snapshot's epoch so post-recovery commits continue
  /// the pre-fault numbering (docs/RECOVERY.md).
  std::uint64_t initial_epoch = 0;
  /// Preserve the recorder's metrics registry across the session's
  /// construction-time clock reset. The supervisor sets this for every
  /// session it builds so serve.* counters accumulate across restarts
  /// instead of being wiped by each rebuild.
  bool keep_metrics = false;
};

class Session {
 public:
  /// Partitions `graph` over `grid` and spawns the resident rank threads.
  /// `graph` must already be in final (symmetrized) form; it is copied
  /// into the partition, so the caller's edge list may be dropped.
  Session(const graph::EdgeList& graph, core::Grid grid,
          const SessionOptions& options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Runs `job(g, comm)` on every rank against the resident distribution;
  /// returns once all ranks completed it. Jobs run concurrently on all
  /// rank threads: shared captures must be rank-partitioned or guarded.
  /// Callers must serialize run() invocations (the Service's scheduler
  /// does). Throws SessionClosed if the session is dead or the job fails.
  void run(const std::function<void(core::Dist2DGraph&, comm::Comm&)>& job);

  /// Stops the rank threads and returns the run's modeled statistics
  /// (default-constructed if the session died). Idempotent.
  comm::RunStats close();

  bool alive() const;
  int nranks() const { return nranks_; }
  const core::Partitioned2D& partition() const { return parts_; }
  core::Gid n() const { return parts_.n(); }

 private:
  void worker_body(comm::Comm& comm);

  const core::Partitioned2D parts_;
  const int nranks_;
  const std::uint64_t initial_epoch_;
  const bool keep_metrics_;

  mutable std::mutex mutex_;
  std::condition_variable cv_job_;   // workers wait here for a generation
  std::condition_variable cv_done_;  // run() waits here for completion
  std::function<void(core::Dist2DGraph&, comm::Comm&)> job_;
  std::int64_t generation_ = 0;
  int done_count_ = 0;
  bool stop_ = false;
  bool dead_ = false;
  std::exception_ptr error_;
  bool closed_ = false;

  comm::RunStats stats_;
  std::thread host_;  // runs Runtime::run for the whole session lifetime
};

}  // namespace hpcg::serve

// The submission surface shared by the bare Service and the fault-
// tolerant Supervisor, so request drivers (load_gen, scripts, hpcg_serve)
// run unchanged against either. The contract is the Service's: submit is
// synchronous admission (typed ServeError throws), pump is one manual
// scheduling round, drain blocks until every admitted request resolved.
#pragma once

#include <cstddef>

#include "serve/request.hpp"

namespace hpcg::serve {

class Frontend {
 public:
  virtual ~Frontend() = default;

  /// Admission + enqueue; see Service::submit for the error contract.
  virtual Ticket submit(Request request) = 0;

  /// One manual scheduling round; false when there was nothing to do.
  /// Only meaningful with auto dispatch off.
  virtual bool pump() = 0;

  /// Blocks until every admitted request has completed or failed.
  virtual void drain() = 0;

  /// Vertex-id bound of the served graph (for generated requests).
  virtual Gid n() const = 0;

  /// Pending (admitted, not yet resolved) requests.
  virtual std::size_t queue_depth() const = 0;
};

}  // namespace hpcg::serve

// Fundamental graph types. Global vertex identifiers are 64-bit as in the
// paper (inputs reach billions of vertices); this reproduction runs smaller
// instances but keeps the representation.
#pragma once

#include <cstdint>
#include <vector>

namespace hpcg::graph {

using Gid = std::int64_t;  // global vertex identifier, [0, N)
using Lid = std::int64_t;  // rank-local vertex identifier, [0, N_T)

struct Edge {
  Gid u;
  Gid v;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// An edge list plus the vertex-count bound. Edges are directed entries;
/// undirected graphs store both (u,v) and (v,u) after symmetrize().
struct EdgeList {
  Gid n = 0;                   // number of vertices
  std::vector<Edge> edges;     // directed edge entries
  std::vector<double> weights; // optional, parallel to edges (empty if none)

  std::int64_t m() const { return static_cast<std::int64_t>(edges.size()); }
  bool weighted() const { return !weights.empty(); }
};

}  // namespace hpcg::graph

// Synthetic graph generators.
//
// RMAT follows the Graph500 specification (the paper's RMATXX inputs use
// edgefactor 16, A=0.57, B=0.19, C=0.19); RANDXX uses an Erdős–Rényi G(n,m)
// process of the same size and order. The preferential-attachment generator
// provides the skewed, hub-heavy structure used to build miniature analogs
// of the paper's web crawls (ClueWeb09, gsh-2015, WDC12).
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace hpcg::graph {

struct RmatParams {
  int scale = 16;          // N = 2^scale
  int edge_factor = 16;    // M = edge_factor * N directed entries
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;         // d = 1 - a - b - c
  std::uint64_t seed = 1;
};

/// Graph500-style RMAT edge list (directed entries; callers symmetrize).
EdgeList generate_rmat(const RmatParams& params);

/// Erdős–Rényi G(n, m): m uniformly random directed entries over n vertices.
EdgeList generate_erdos_renyi(Gid n, std::int64_t m, std::uint64_t seed);

/// Preferential attachment (Barabási–Albert flavor): each vertex beyond a
/// small seed clique attaches `edges_per_vertex` edges, choosing targets
/// proportionally to current degree with probability `pref_prob` and
/// uniformly otherwise. Produces the heavy-hub web-crawl-like skew.
EdgeList generate_pref_attach(Gid n, int edges_per_vertex, double pref_prob,
                              std::uint64_t seed);

/// Union of two edge lists over max(n) vertices (web-crawl analogs blend a
/// preferential-attachment core with RMAT noise).
EdgeList blend(const EdgeList& a, const EdgeList& b);

/// A forest of rooted trees: `n` vertices, each non-root points to a random
/// earlier vertex within its tree block of size `tree_size`. Used by the
/// pointer-jumping tests and benchmarks.
EdgeList generate_forest(Gid n, Gid tree_size, std::uint64_t seed);

/// Simple path graph 0-1-2-...-(n-1); the worst case for propagation-based
/// algorithms (diameter n-1).
EdgeList generate_path(Gid n);

/// 2D grid graph with r*c vertices (regular degree, high diameter).
EdgeList generate_grid(Gid rows, Gid cols);

}  // namespace hpcg::graph

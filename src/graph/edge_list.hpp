// Edge-list transformations applied during CPU-side graph construction
// (the paper builds graphs on the host with OpenMP/MPI before transferring
// to the GPUs; here the equivalent happens once before ranks are spawned).
#pragma once

#include "graph/types.hpp"

namespace hpcg::graph {

/// Removes self loops in place.
void remove_self_loops(EdgeList& el);

/// Adds the reverse of every edge, making the adjacency matrix symmetric —
/// the paper "considers graphs as undirected for consistency across
/// algorithms, effectively symmetrizing the adjacency matrix". Weights are
/// mirrored. Parallel (multi-)edges are preserved, as in the paper's
/// multi-edge-tolerant representation.
void symmetrize(EdgeList& el);

/// Sorts edges by (u, v) and removes exact duplicates (weights of kept
/// duplicates are summed). Used by tests that need simple graphs.
void sort_and_dedup(EdgeList& el);

/// Attaches deterministic pseudo-random edge weights in (0, 1], mirrored so
/// that (u,v) and (v,u) carry the same weight (required by matching).
void attach_symmetric_weights(EdgeList& el, std::uint64_t seed);

/// Per-vertex degree of the directed entries (out-degree).
std::vector<std::int64_t> out_degrees(const EdgeList& el);

}  // namespace hpcg::graph

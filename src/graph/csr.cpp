#include "graph/csr.hpp"

#include <stdexcept>

namespace hpcg::graph {

Csr::Csr(Lid n_vertices, std::span<const Edge> edges, std::span<const double> weights)
    : n_(n_vertices), offsets_(static_cast<std::size_t>(n_vertices) + 1, 0) {
  if (!weights.empty() && weights.size() != edges.size()) {
    throw std::invalid_argument("csr: weights must parallel edges");
  }
  for (const auto& e : edges) {
    if (e.u < 0 || e.u >= n_vertices) {
      throw std::out_of_range("csr: source vertex outside [0, n)");
    }
    ++offsets_[static_cast<std::size_t>(e.u) + 1];
  }
  for (std::size_t v = 1; v < offsets_.size(); ++v) offsets_[v] += offsets_[v - 1];
  adj_.resize(edges.size());
  if (!weights.empty()) weights_.resize(edges.size());
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto slot = static_cast<std::size_t>(cursor[static_cast<std::size_t>(edges[i].u)]++);
    adj_[slot] = edges[i].v;
    if (!weights.empty()) weights_[slot] = weights[i];
  }
}

}  // namespace hpcg::graph

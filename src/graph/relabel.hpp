// The paper's 'striped' vertex-to-row-group assignment (§3.4, Vertex
// Distribution): original GID 0 goes to the first row group, GID 1 to the
// second, wrapping through all groups. Because the 2D structure addresses
// each row group's vertices as a contiguous global-ID range (Table 1's
// N_Offset_R), we realize striping as a relabeling permutation: vertex v's
// new identifier places it inside its group's contiguous block, preserving
// original order within the block (which keeps "some degree of memory
// locality of the original graph", as the paper notes).
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace hpcg::graph {

/// Applies a pseudo-random permutation (hash-ordered) to all vertex ids in
/// place and returns the permutation (new_id = perm[old_id]). The fully
/// random assignment the paper compares striping against: on inputs whose
/// skew is *not* correlated with id magnitude (e.g. RMAT, where the bias is
/// bit-self-similar and survives striping), randomization is the only
/// distribution that balances blocks.
std::vector<Gid> randomize_ids(EdgeList& el, std::uint64_t seed);

class StripedRelabel {
 public:
  /// Distributes `n` vertices over `groups` row groups round-robin.
  StripedRelabel(Gid n, int groups);

  Gid n() const { return n_; }
  int groups() const { return groups_; }

  /// Original GID -> striped GID (a bijection on [0, n)).
  Gid to_new(Gid original) const {
    const Gid group = original % groups_;
    return group_start(static_cast<int>(group)) + original / groups_;
  }

  /// Striped GID -> original GID.
  Gid to_original(Gid striped) const;

  /// First striped GID of `group`'s contiguous block.
  Gid group_start(int group) const {
    return static_cast<Gid>(group) * base_ + std::min<Gid>(group, remainder_);
  }

  /// Number of vertices assigned to `group`.
  Gid group_count(int group) const { return base_ + (group < remainder_ ? 1 : 0); }

  /// Which row group owns striped GID `striped`.
  int group_of_new(Gid striped) const;

  /// Applies the permutation to both endpoints of every edge.
  void apply(EdgeList& el) const;

 private:
  Gid n_;
  int groups_;
  Gid base_;       // n / groups
  Gid remainder_;  // n % groups
};

}  // namespace hpcg::graph

#include "graph/generators.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/prng.hpp"

namespace hpcg::graph {

EdgeList generate_rmat(const RmatParams& params) {
  if (params.scale < 1 || params.scale > 40) {
    throw std::invalid_argument("rmat scale out of range");
  }
  const double d = 1.0 - params.a - params.b - params.c;
  if (d < 0.0) throw std::invalid_argument("rmat probabilities exceed 1");
  EdgeList el;
  el.n = Gid{1} << params.scale;
  const std::int64_t m = static_cast<std::int64_t>(params.edge_factor) * el.n;
  el.edges.reserve(static_cast<std::size_t>(m));
  util::Xoshiro256 rng(params.seed);
  for (std::int64_t i = 0; i < m; ++i) {
    Gid u = 0;
    Gid v = 0;
    for (int level = 0; level < params.scale; ++level) {
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left quadrant: no bits set
      } else if (r < params.a + params.b) {
        v |= 1;
      } else if (r < params.a + params.b + params.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    el.edges.push_back({u, v});
  }
  return el;
}

EdgeList generate_erdos_renyi(Gid n, std::int64_t m, std::uint64_t seed) {
  EdgeList el;
  el.n = n;
  el.edges.reserve(static_cast<std::size_t>(m));
  util::Xoshiro256 rng(seed);
  for (std::int64_t i = 0; i < m; ++i) {
    const Gid u = static_cast<Gid>(rng.next_below(static_cast<std::uint64_t>(n)));
    const Gid v = static_cast<Gid>(rng.next_below(static_cast<std::uint64_t>(n)));
    el.edges.push_back({u, v});
  }
  return el;
}

EdgeList generate_pref_attach(Gid n, int edges_per_vertex, double pref_prob,
                              std::uint64_t seed) {
  if (n < 2 || edges_per_vertex < 1) {
    throw std::invalid_argument("pref_attach needs n >= 2, k >= 1");
  }
  EdgeList el;
  el.n = n;
  el.edges.reserve(static_cast<std::size_t>(n) * edges_per_vertex);
  util::Xoshiro256 rng(seed);
  // The endpoint pool realizes degree-proportional sampling: every placed
  // edge contributes both endpoints, so drawing a uniform pool element is
  // drawing a vertex with probability proportional to its current degree.
  std::vector<Gid> pool;
  pool.reserve(2 * el.edges.capacity());
  el.edges.push_back({0, 1});
  pool.push_back(0);
  pool.push_back(1);
  for (Gid v = 2; v < n; ++v) {
    for (int k = 0; k < edges_per_vertex; ++k) {
      Gid target;
      if (rng.next_double() < pref_prob) {
        target = pool[rng.next_below(pool.size())];
      } else {
        target = static_cast<Gid>(rng.next_below(static_cast<std::uint64_t>(v)));
      }
      el.edges.push_back({v, target});
      pool.push_back(v);
      pool.push_back(target);
    }
  }
  return el;
}

EdgeList blend(const EdgeList& a, const EdgeList& b) {
  EdgeList out;
  out.n = std::max(a.n, b.n);
  out.edges.reserve(a.edges.size() + b.edges.size());
  out.edges.insert(out.edges.end(), a.edges.begin(), a.edges.end());
  out.edges.insert(out.edges.end(), b.edges.begin(), b.edges.end());
  return out;
}

EdgeList generate_forest(Gid n, Gid tree_size, std::uint64_t seed) {
  if (tree_size < 1) throw std::invalid_argument("tree_size must be >= 1");
  EdgeList el;
  el.n = n;
  util::Xoshiro256 rng(seed);
  for (Gid v = 0; v < n; ++v) {
    const Gid block_start = (v / tree_size) * tree_size;
    if (v == block_start) continue;  // tree root
    const Gid parent =
        block_start + static_cast<Gid>(rng.next_below(
                          static_cast<std::uint64_t>(v - block_start)));
    el.edges.push_back({v, parent});
  }
  return el;
}

EdgeList generate_path(Gid n) {
  EdgeList el;
  el.n = n;
  el.edges.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (Gid v = 0; v + 1 < n; ++v) el.edges.push_back({v, v + 1});
  return el;
}

EdgeList generate_grid(Gid rows, Gid cols) {
  EdgeList el;
  el.n = rows * cols;
  for (Gid r = 0; r < rows; ++r) {
    for (Gid c = 0; c < cols; ++c) {
      const Gid v = r * cols + c;
      if (c + 1 < cols) el.edges.push_back({v, v + 1});
      if (r + 1 < rows) el.edges.push_back({v, v + cols});
    }
  }
  return el;
}

}  // namespace hpcg::graph

#include "graph/edge_list.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/prng.hpp"

namespace hpcg::graph {

void remove_self_loops(EdgeList& el) {
  if (!el.weighted()) {
    std::erase_if(el.edges, [](const Edge& e) { return e.u == e.v; });
    return;
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < el.edges.size(); ++i) {
    if (el.edges[i].u == el.edges[i].v) continue;
    el.edges[out] = el.edges[i];
    el.weights[out] = el.weights[i];
    ++out;
  }
  el.edges.resize(out);
  el.weights.resize(out);
}

void symmetrize(EdgeList& el) {
  const std::size_t m = el.edges.size();
  el.edges.reserve(2 * m);
  if (el.weighted()) el.weights.reserve(2 * m);
  for (std::size_t i = 0; i < m; ++i) {
    el.edges.push_back({el.edges[i].v, el.edges[i].u});
    if (el.weighted()) el.weights.push_back(el.weights[i]);
  }
}

void sort_and_dedup(EdgeList& el) {
  if (!el.weighted()) {
    std::sort(el.edges.begin(), el.edges.end());
    el.edges.erase(std::unique(el.edges.begin(), el.edges.end()), el.edges.end());
    return;
  }
  std::vector<std::size_t> order(el.edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return el.edges[a] < el.edges[b];
  });
  std::vector<Edge> edges;
  std::vector<double> weights;
  edges.reserve(el.edges.size());
  weights.reserve(el.edges.size());
  for (const std::size_t i : order) {
    if (!edges.empty() && edges.back() == el.edges[i]) {
      weights.back() += el.weights[i];
    } else {
      edges.push_back(el.edges[i]);
      weights.push_back(el.weights[i]);
    }
  }
  el.edges = std::move(edges);
  el.weights = std::move(weights);
}

void attach_symmetric_weights(EdgeList& el, std::uint64_t seed) {
  el.weights.resize(el.edges.size());
  for (std::size_t i = 0; i < el.edges.size(); ++i) {
    // Hash the unordered endpoint pair so both directions agree without
    // needing the reverse entry to be present yet.
    const Gid lo = std::min(el.edges[i].u, el.edges[i].v);
    const Gid hi = std::max(el.edges[i].u, el.edges[i].v);
    const std::uint64_t h = util::splitmix64(
        util::splitmix64(static_cast<std::uint64_t>(lo) + seed) ^
        static_cast<std::uint64_t>(hi));
    el.weights[i] = static_cast<double>(h >> 11) * 0x1.0p-53 + 0x1.0p-54;
  }
}

std::vector<std::int64_t> out_degrees(const EdgeList& el) {
  std::vector<std::int64_t> deg(static_cast<std::size_t>(el.n), 0);
  for (const auto& e : el.edges) {
    if (e.u < 0 || e.u >= el.n || e.v < 0 || e.v >= el.n) {
      throw std::out_of_range("edge endpoint outside [0, n)");
    }
    ++deg[static_cast<std::size_t>(e.u)];
  }
  return deg;
}

}  // namespace hpcg::graph

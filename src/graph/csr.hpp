// Compressed sparse row adjacency structure — the local graph format on
// every rank (paper §3.2): adjacencies of v live in
// Adj[Off[v] .. Off[v+1]) and the local degree is Off[v+1] - Off[v].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace hpcg::graph {

class Csr {
 public:
  Csr() = default;

  /// Builds a CSR over `n_vertices` from directed edge entries; adjacency
  /// order within a vertex follows the input edge order (counting sort).
  /// If `weights` is non-empty it must parallel `edges` and is carried into
  /// an adjacency-aligned weight array.
  Csr(Lid n_vertices, std::span<const Edge> edges, std::span<const double> weights = {});

  Lid n() const { return n_; }
  std::int64_t m() const { return static_cast<std::int64_t>(adj_.size()); }
  bool weighted() const { return !weights_.empty(); }

  std::int64_t degree(Lid v) const { return offsets_[v + 1] - offsets_[v]; }

  std::span<const Gid> neighbors(Lid v) const {
    return {adj_.data() + offsets_[v], static_cast<std::size_t>(degree(v))};
  }
  std::span<const double> neighbor_weights(Lid v) const {
    return {weights_.data() + offsets_[v], static_cast<std::size_t>(degree(v))};
  }

  /// Raw arrays (Off and Adj of the paper).
  std::span<const std::int64_t> offsets() const { return offsets_; }
  std::span<const Gid> adjacencies() const { return adj_; }
  std::span<const double> weights() const { return weights_; }

 private:
  Lid n_ = 0;
  std::vector<std::int64_t> offsets_;  // n + 1 entries
  std::vector<Gid> adj_;
  std::vector<double> weights_;
};

}  // namespace hpcg::graph

// Registry of benchmark inputs reproducing the paper's Table 4.
//
// The originals (twitter-2010 through WDC12) are multi-billion-edge crawls
// that cannot be processed on this machine, so each is represented by a
// miniature synthetic analog matching its edge factor and skew class; see
// DESIGN.md §5 for the mapping rationale. RMATXX / RANDXX are generated
// directly at reduced scale with the paper's parameters.
#pragma once

#include <string>
#include <vector>

#include "graph/types.hpp"

namespace hpcg::graph {

struct DatasetInfo {
  std::string name;        // e.g. "tw-mini"
  std::string paper_name;  // e.g. "twitter-2010"
  std::string abbr;        // e.g. "TW"
  Gid paper_vertices;      // Table 4 values
  std::int64_t paper_edges;
};

/// All named analogs of Table 4's real graphs.
std::vector<DatasetInfo> dataset_catalog();

/// Loads a named dataset analog, already symmetrized with self loops
/// removed. Accepted names: tw-mini, fr-mini, cw-mini, gsh-mini, wdc-mini,
/// rmatNN (e.g. rmat16), randNN. `scale_shift` adjusts generated sizes by
/// a power of two (negative shrinks; used by the quick bench presets).
EdgeList load_dataset(const std::string& name, int scale_shift = 0);

}  // namespace hpcg::graph

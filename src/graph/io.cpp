#include "graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hpcg::graph {

namespace {
constexpr std::uint64_t kMagic = 0x48504347'42494E31ULL;  // "HPCGBIN1"
}

EdgeList read_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  EdgeList el;
  Gid declared_n = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ss(line.substr(1));
      std::string key;
      if (ss >> key && key == "n") ss >> declared_n;
      continue;
    }
    std::istringstream ss(line);
    Gid u = 0;
    Gid v = 0;
    if (!(ss >> u >> v)) throw std::runtime_error("bad edge line: " + line);
    double w = 0.0;
    if (ss >> w) {
      if (el.weights.size() != el.edges.size()) {
        throw std::runtime_error("mixed weighted/unweighted lines");
      }
      el.weights.push_back(w);
    } else if (!el.weights.empty()) {
      throw std::runtime_error("mixed weighted/unweighted lines");
    }
    el.edges.push_back({u, v});
    el.n = std::max({el.n, u + 1, v + 1});
  }
  if (declared_n >= 0) {
    if (declared_n < el.n) throw std::runtime_error("declared n too small");
    el.n = declared_n;
  }
  return el;
}

void write_text(const EdgeList& el, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << "# n " << el.n << "\n";
  for (std::size_t i = 0; i < el.edges.size(); ++i) {
    out << el.edges[i].u << " " << el.edges[i].v;
    if (el.weighted()) out << " " << el.weights[i];
    out << "\n";
  }
}

EdgeList read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::uint64_t magic = 0;
  std::int64_t n = 0;
  std::int64_t m = 0;
  std::uint64_t weighted = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&m), sizeof m);
  in.read(reinterpret_cast<char*>(&weighted), sizeof weighted);
  if (!in || magic != kMagic) throw std::runtime_error("bad binary header");
  EdgeList el;
  el.n = n;
  el.edges.resize(static_cast<std::size_t>(m));
  in.read(reinterpret_cast<char*>(el.edges.data()),
          static_cast<std::streamsize>(m * static_cast<std::int64_t>(sizeof(Edge))));
  if (weighted) {
    el.weights.resize(static_cast<std::size_t>(m));
    in.read(reinterpret_cast<char*>(el.weights.data()),
            static_cast<std::streamsize>(m * static_cast<std::int64_t>(sizeof(double))));
  }
  if (!in) throw std::runtime_error("truncated binary edge list");
  return el;
}

void write_binary(const EdgeList& el, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  const std::uint64_t magic = kMagic;
  const std::int64_t n = el.n;
  const std::int64_t m = el.m();
  const std::uint64_t weighted = el.weighted() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&m), sizeof m);
  out.write(reinterpret_cast<const char*>(&weighted), sizeof weighted);
  out.write(reinterpret_cast<const char*>(el.edges.data()),
            static_cast<std::streamsize>(m * static_cast<std::int64_t>(sizeof(Edge))));
  if (el.weighted()) {
    out.write(reinterpret_cast<const char*>(el.weights.data()),
              static_cast<std::streamsize>(m * static_cast<std::int64_t>(sizeof(double))));
  }
}

}  // namespace hpcg::graph

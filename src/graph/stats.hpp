// Degree and structure statistics for edge lists — used by the dataset
// inventory (Table 4 analog auditing) and by tools.
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace hpcg::graph {

struct DegreeStats {
  std::int64_t max_degree = 0;
  double mean_degree = 0.0;
  std::int64_t isolated = 0;     // zero-degree vertices
  double skew = 0.0;             // max / mean
  std::int64_t p99_degree = 0;   // 99th percentile
};

/// Out-degree statistics of the directed entries (for a symmetrized list
/// this equals the undirected degree view).
DegreeStats degree_stats(const EdgeList& el);

/// Number of connected components (host-side union-find; O(M alpha)).
std::int64_t count_components(const EdgeList& el);

/// Approximate effective diameter: BFS from `samples` pseudo-random seeds,
/// returning the maximum observed eccentricity within reached vertices.
/// Lower bound on the true diameter; good enough to classify inputs into
/// the shallow/deep regimes discussed in DESIGN.md.
std::int64_t approx_diameter(const EdgeList& el, int samples = 4,
                             std::uint64_t seed = 1);

}  // namespace hpcg::graph

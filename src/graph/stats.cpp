#include "graph/stats.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "util/prng.hpp"

namespace hpcg::graph {

DegreeStats degree_stats(const EdgeList& el) {
  DegreeStats stats;
  if (el.n == 0) return stats;
  auto degree = out_degrees(el);
  stats.mean_degree = static_cast<double>(el.m()) / static_cast<double>(el.n);
  std::sort(degree.begin(), degree.end());
  stats.max_degree = degree.back();
  stats.p99_degree = degree[static_cast<std::size_t>(
      std::min<double>(static_cast<double>(degree.size()) - 1,
                       0.99 * static_cast<double>(degree.size())))];
  stats.isolated = static_cast<std::int64_t>(
      std::lower_bound(degree.begin(), degree.end(), 1) - degree.begin());
  stats.skew = stats.mean_degree > 0
                   ? static_cast<double>(stats.max_degree) / stats.mean_degree
                   : 0.0;
  return stats;
}

std::int64_t count_components(const EdgeList& el) {
  std::vector<Gid> parent(static_cast<std::size_t>(el.n));
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](Gid v) {
    Gid root = v;
    while (parent[static_cast<std::size_t>(root)] != root) {
      root = parent[static_cast<std::size_t>(root)];
    }
    while (parent[static_cast<std::size_t>(v)] != root) {
      const Gid next = parent[static_cast<std::size_t>(v)];
      parent[static_cast<std::size_t>(v)] = root;
      v = next;
    }
    return root;
  };
  std::int64_t merges = 0;
  for (const auto& e : el.edges) {
    const Gid a = find(e.u);
    const Gid b = find(e.v);
    if (a != b) {
      parent[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
      ++merges;
    }
  }
  return el.n - merges;
}

std::int64_t approx_diameter(const EdgeList& el, int samples, std::uint64_t seed) {
  if (el.n == 0) return 0;
  Csr csr(el.n, el.edges);
  util::Xoshiro256 rng(seed);
  std::int64_t best = 0;
  std::vector<std::int64_t> level(static_cast<std::size_t>(el.n));
  for (int s = 0; s < samples; ++s) {
    const Gid root = static_cast<Gid>(rng.next_below(static_cast<std::uint64_t>(el.n)));
    std::fill(level.begin(), level.end(), -1);
    std::deque<Gid> frontier{root};
    level[static_cast<std::size_t>(root)] = 0;
    while (!frontier.empty()) {
      const Gid v = frontier.front();
      frontier.pop_front();
      best = std::max(best, level[static_cast<std::size_t>(v)]);
      for (const Gid u : csr.neighbors(v)) {
        if (level[static_cast<std::size_t>(u)] < 0) {
          level[static_cast<std::size_t>(u)] = level[static_cast<std::size_t>(v)] + 1;
          frontier.push_back(u);
        }
      }
    }
  }
  return best;
}

}  // namespace hpcg::graph

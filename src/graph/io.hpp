// Edge-list I/O: whitespace-separated text ("u v" or "u v w" per line, '#'
// comments) and a packed binary format for faster reload of generated
// inputs. Mirrors the host-side loaders real deployments use.
#pragma once

#include <string>

#include "graph/types.hpp"

namespace hpcg::graph {

/// Reads a text edge list; `n` is max endpoint + 1 unless a leading
/// "# n <count>" comment declares it.
EdgeList read_text(const std::string& path);

void write_text(const EdgeList& el, const std::string& path);

/// Packed little-endian binary: header (magic, n, m, weighted flag), then
/// edges, then weights if present.
EdgeList read_binary(const std::string& path);

void write_binary(const EdgeList& el, const std::string& path);

}  // namespace hpcg::graph

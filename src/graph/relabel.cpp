#include "graph/relabel.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/prng.hpp"

namespace hpcg::graph {

std::vector<Gid> randomize_ids(EdgeList& el, std::uint64_t seed) {
  std::vector<Gid> order(static_cast<std::size_t>(el.n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [seed](Gid a, Gid b) {
    const auto ha = util::splitmix64(static_cast<std::uint64_t>(a) + seed);
    const auto hb = util::splitmix64(static_cast<std::uint64_t>(b) + seed);
    return ha < hb || (ha == hb && a < b);
  });
  std::vector<Gid> perm(static_cast<std::size_t>(el.n));
  for (Gid position = 0; position < el.n; ++position) {
    perm[static_cast<std::size_t>(order[static_cast<std::size_t>(position)])] = position;
  }
  for (auto& e : el.edges) {
    e.u = perm[static_cast<std::size_t>(e.u)];
    e.v = perm[static_cast<std::size_t>(e.v)];
  }
  return perm;
}

StripedRelabel::StripedRelabel(Gid n, int groups)
    : n_(n), groups_(groups), base_(n / groups), remainder_(n % groups) {
  if (n < 0 || groups < 1) throw std::invalid_argument("bad striping arguments");
}

Gid StripedRelabel::to_original(Gid striped) const {
  const int group = group_of_new(striped);
  const Gid within = striped - group_start(group);
  return within * groups_ + group;
}

int StripedRelabel::group_of_new(Gid striped) const {
  if (striped < 0 || striped >= n_) throw std::out_of_range("striped gid out of range");
  // Blocks of size base_+1 come first (remainder_ of them), then base_.
  const Gid big_block = base_ + 1;
  const Gid big_total = remainder_ * big_block;
  if (striped < big_total) return static_cast<int>(striped / big_block);
  if (base_ == 0) throw std::out_of_range("striped gid out of range");
  return static_cast<int>(remainder_ + (striped - big_total) / base_);
}

void StripedRelabel::apply(EdgeList& el) const {
  for (auto& e : el.edges) {
    e.u = to_new(e.u);
    e.v = to_new(e.v);
  }
}

}  // namespace hpcg::graph

#include "graph/datasets.hpp"

#include <stdexcept>

#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "util/parse.hpp"
#include "util/prng.hpp"

namespace hpcg::graph {

namespace {

EdgeList finish(EdgeList el) {
  remove_self_loops(el);
  symmetrize(el);
  return el;
}

int clamp_scale(int scale) {
  if (scale < 4) return 4;
  if (scale > 24) return 24;
  return scale;
}

/// Shallow web-crawl analog: preferential-attachment core (hubs) blended
/// with localized RMAT noise — low diameter, fat frontiers. Used by the
/// scaling figures, where the paper's results are bandwidth/volume shapes.
EdgeList web_shallow(int scale, int edge_factor, std::uint64_t seed) {
  const Gid n = Gid{1} << scale;
  auto core = generate_pref_attach(n, std::max(1, edge_factor / 2),
                                   /*pref_prob=*/0.7, seed);
  RmatParams noise;
  noise.scale = scale;
  noise.edge_factor = edge_factor - std::max(1, edge_factor / 2);
  noise.a = 0.50;
  noise.b = 0.22;
  noise.c = 0.22;
  noise.seed = seed + 1;
  return blend(core, generate_rmat(noise));
}

/// Deep web-crawl analog. Real crawls combine heavy-hub host-local structure
/// (preferential attachment inside a host/community) with crawl-frontier
/// links that mostly connect "nearby" hosts, giving web graphs their
/// characteristic moderate-to-large effective diameter — the long
/// convergence tail that the paper's sparse/queue optimizations (Fig. 6)
/// exploit. The analog realizes this as a chain of communities: each block
/// is a preferential-attachment subgraph; a fraction of vertices also link
/// into the next block along the chain.
EdgeList web_deep(int scale, int edge_factor, std::uint64_t seed) {
  const Gid n = Gid{1} << scale;
  constexpr int kBlocks = 32;  // 2^5 communities along the crawl chain
  constexpr int kBlockBits = 5;
  // Bow-tie tendrils: a small population of long path appendages. They are
  // what gives real web graphs their long, *low-update-count* convergence
  // tail (most mass converges in a few rounds; the tendrils trail on with
  // a handful of updates per round — the regime the sparse/queue
  // optimizations of Fig. 6 are built for).
  constexpr Gid kTendrils = 48;
  constexpr Gid kTendrilLen = 96;
  const Gid tendril_total = kTendrils * kTendrilLen;
  const Gid core_n = n - tendril_total;
  const Gid block_size = core_n / kBlocks;
  EdgeList el;
  el.n = n;
  const int intra_k = std::max(1, edge_factor * 3 / 4);
  const int inter_k = std::max(1, edge_factor - intra_k);
  util::Xoshiro256 rng(seed);
  // Chain position -> id-space block via bit reversal, so the crawl chain
  // does not align with vertex-id order (in a real crawl, discovery order
  // and host-id order are uncorrelated; without this, a single ascending
  // kernel sweep would cascade colors down the whole chain and erase the
  // propagation tail that real web graphs exhibit).
  const auto chain_block = [](int position) {
    int reversed = 0;
    for (int bit = 0; bit < kBlockBits; ++bit) {
      reversed = (reversed << 1) | ((position >> bit) & 1);
    }
    return reversed;
  };
  for (int b = 0; b < kBlocks; ++b) {
    const Gid base = b * block_size;
    auto block = generate_pref_attach(block_size, intra_k, /*pref_prob=*/0.7,
                                      seed + static_cast<std::uint64_t>(b));
    for (const auto& e : block.edges) {
      el.edges.push_back({base + e.u, base + e.v});
    }
  }
  for (int position = 0; position + 1 < kBlocks; ++position) {
    // Crawl-frontier edges between chain-adjacent communities.
    const Gid base = chain_block(position) * block_size;
    const Gid next_base = chain_block(position + 1) * block_size;
    for (Gid i = 0; i < block_size; ++i) {
      for (int k = 0; k < inter_k; ++k) {
        // Bias toward low-offset (hub-adjacent) targets in the next block.
        const Gid target = static_cast<Gid>(
            rng.next_below(static_cast<std::uint64_t>(block_size)) *
            rng.next_double());
        el.edges.push_back({base + i, next_base + target});
      }
    }
  }
  // Tendril paths over the tail id range [core_n, n), with vertex ids
  // shuffled so path adjacency never aligns with id (and therefore kernel
  // scan) order — one real propagation hop per BSP round, as on hardware.
  std::vector<Gid> shuffled(static_cast<std::size_t>(tendril_total));
  for (Gid i = 0; i < tendril_total; ++i) {
    shuffled[static_cast<std::size_t>(i)] = core_n + i;
  }
  for (Gid i = tendril_total - 1; i > 0; --i) {
    std::swap(shuffled[static_cast<std::size_t>(i)],
              shuffled[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
  }
  for (Gid t = 0; t < kTendrils; ++t) {
    const auto vertex = [&](Gid step) {
      return shuffled[static_cast<std::size_t>(step * kTendrils + t)];
    };
    // Anchor the tendril on a random core vertex.
    el.edges.push_back(
        {static_cast<Gid>(rng.next_below(static_cast<std::uint64_t>(core_n))),
         vertex(0)});
    for (Gid step = 0; step + 1 < kTendrilLen; ++step) {
      el.edges.push_back({vertex(step), vertex(step + 1)});
    }
  }
  return el;
}

}  // namespace

std::vector<DatasetInfo> dataset_catalog() {
  return {
      {"tw-mini", "twitter-2010", "TW", 41000000, 1400000000},
      {"fr-mini", "com-friendster", "FR", 65000000, 1800000000},
      {"cw-mini", "web-ClueWeb09", "CW", 1700000000, 7900000000},
      {"gsh-mini", "gsh-2015", "GSH", 988000000, 33000000000},
      {"wdc-mini", "WDC12", "WDC", 3500000000, 128000000000},
  };
}

EdgeList load_dataset(const std::string& name, int scale_shift) {
  if (name == "tw-mini") {
    // Twitter: extreme skew, edge factor ~34.
    RmatParams p;
    p.scale = clamp_scale(15 + scale_shift);
    p.edge_factor = 17;  // 34 after symmetrization
    p.a = 0.57;
    p.b = 0.19;
    p.c = 0.19;
    p.seed = 42;
    return finish(generate_rmat(p));
  }
  if (name == "fr-mini") {
    // Friendster: milder skew social graph, edge factor ~28 symmetric.
    RmatParams p;
    p.scale = clamp_scale(15 + scale_shift);
    p.edge_factor = 14;
    p.a = 0.45;
    p.b = 0.22;
    p.c = 0.22;
    p.seed = 43;
    return finish(generate_rmat(p));
  }
  if (name == "cw-mini") {
    // ClueWeb09: large N relative to M (edge factor ~4.6 directed).
    return finish(web_shallow(clamp_scale(17 + scale_shift), 5, 44));
  }
  if (name == "gsh-mini") {
    // gsh-2015: dense web crawl, edge factor ~33.
    return finish(web_shallow(clamp_scale(15 + scale_shift), 17, 45));
  }
  if (name == "wdc-mini") {
    // WDC12: the largest input, edge factor ~36.
    return finish(web_shallow(clamp_scale(17 + scale_shift), 18, 46));
  }
  if (name == "cw-deep") {
    // ClueWeb09 with its crawl-chain/tendril depth structure intact: the
    // Figure 6 ablation input (convergence-tail regime).
    return finish(web_deep(clamp_scale(17 + scale_shift), 5, 44));
  }
  if (name == "wdc-deep") {
    return finish(web_deep(clamp_scale(17 + scale_shift), 18, 46));
  }
  // A malformed scale suffix ("rmatXL", "rand1e4") is an unknown dataset,
  // not a crash: checked parse, then fall through to the throw below.
  if (name.rfind("rmat", 0) == 0) {
    if (const auto scale = util::parse_int32(name.substr(4))) {
      RmatParams p;
      p.scale = clamp_scale(*scale + scale_shift);
      p.edge_factor = 16;
      p.seed = 47;
      return finish(generate_rmat(p));
    }
  }
  if (name.rfind("rand", 0) == 0) {
    if (const auto parsed = util::parse_int32(name.substr(4))) {
      const int scale = clamp_scale(*parsed + scale_shift);
      const Gid n = Gid{1} << scale;
      return finish(generate_erdos_renyi(n, 16 * n, 48));
    }
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

}  // namespace hpcg::graph

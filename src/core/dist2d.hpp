// The 2D-distributed graph structure (paper §3.2) and its host-side
// construction.
//
// Construction happens in two stages, mirroring the paper's CPU-side
// build + transfer:
//   1. `Partitioned2D::build` (call once, before spawning ranks): applies
//      the striped relabeling and buckets every edge into its owning block
//      (row group of the source x column group of the destination).
//   2. `Dist2DGraph` (per rank, inside the rank body): converts the rank's
//      bucket to a local CSR in LID space, sets up the LID map and the
//      row/column communicators.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "core/grid.hpp"
#include "core/lid_map.hpp"
#include "graph/csr.hpp"
#include "graph/relabel.hpp"
#include "graph/types.hpp"

namespace hpcg::core {

class WorkerPool;

/// Host-side 2D partition of a global edge list. Immutable once built;
/// shared read-only by all rank threads.
class Partitioned2D {
 public:
  /// `global` must already be symmetrized (if undirected semantics are
  /// wanted). Endpoints are relabeled by the striped permutation over
  /// `grid.row_groups()` groups before blocking; pass `striped = false` to
  /// keep original ids (contiguous blocks — the naive distribution the
  /// paper's §3.4 striping improves on; used by the distribution ablation).
  static Partitioned2D build(const graph::EdgeList& global, Grid grid,
                             bool striped = true);

  const Grid& grid() const { return grid_; }
  Gid n() const { return n_; }
  std::int64_t m_global() const { return m_global_; }
  /// Whether the global input carried edge weights (a rank whose block is
  /// empty cannot tell from its local CSR alone).
  bool weighted() const { return weighted_; }
  const graph::StripedRelabel& relabel() const { return relabel_; }
  const BlockPartition& row_partition() const { return row_part_; }
  const BlockPartition& col_partition() const { return col_part_; }

  const std::vector<graph::Edge>& edges_of(int rank) const { return edges_[rank]; }
  const std::vector<double>& weights_of(int rank) const { return weights_[rank]; }

 private:
  Partitioned2D(Grid grid, Gid n, const graph::StripedRelabel& relabel);

  Grid grid_;
  Gid n_;
  std::int64_t m_global_ = 0;
  bool weighted_ = false;
  graph::StripedRelabel relabel_;
  BlockPartition row_part_;
  BlockPartition col_part_;
  std::vector<std::vector<graph::Edge>> edges_;
  std::vector<std::vector<double>> weights_;
};

/// Rank-local view of the 2D distribution: Table 1's variables plus the
/// local CSR (sources are row LIDs, adjacency entries are column LIDs) and
/// the row/column group communicators.
class Dist2DGraph {
 public:
  Dist2DGraph(comm::Comm& world, const Partitioned2D& parts);
  ~Dist2DGraph();

  // --- Table 1 accessors -------------------------------------------------
  Gid n() const { return parts_->n(); }                       // N
  /// Live directed-entry count: starts at the partition's M and tracks
  /// streaming commits (each directed entry is owned by exactly one rank,
  /// so the commit's global delta is exact).
  std::int64_t m_global() const { return m_global_; }          // M
  std::int64_t m_local() const { return csr_.m(); }
  int id_r() const { return id_r_; }        // row group ID
  int id_c() const { return id_c_; }        // column group ID
  int rank_r() const { return rank_r_; }    // rank within row group
  int rank_c() const { return rank_c_; }    // rank within column group
  const LidMap& lids() const { return lid_map_; }
  const graph::Csr& csr() const { return csr_; }
  const Grid& grid() const { return parts_->grid(); }
  const Partitioned2D& partition() const { return *parts_; }

  comm::Comm& world() { return *world_; }
  comm::Comm& row_comm() { return row_comm_; }
  comm::Comm& col_comm() { return col_comm_; }

  /// Local degree of a row vertex (not the true degree; paper §3.2 notes
  /// true degree is the sum of local degrees across the row group).
  std::int64_t local_degree(Lid v) const { return csr_.degree(v); }

  /// True (global) degrees of this rank's row vertices, summed across the
  /// row group with one dense AllReduce. Cached after the first call; all
  /// row-group members must make the first call together.
  const std::vector<std::int64_t>& global_row_degrees();

  /// Iterates this rank's row vertices as LIDs: [row_lid_begin, row_lid_end).
  Lid row_lid_begin() const { return lid_map_.c_offset_r(); }
  Lid row_lid_end() const { return lid_map_.c_offset_r() + lid_map_.n_row(); }

  /// This rank's lazily constructed worker pool for the local CSR kernels
  /// (see core/worker_pool.hpp): created on first call, rebuilt when a
  /// later call asks for a different width. Returns null for threads <= 1
  /// so serial call sites pay nothing. Rank-local, like everything else on
  /// this object — not safe to call from two threads at once.
  WorkerPool* worker_pool(int threads) const;

  // --- Streaming mutation support (docs/STREAMING.md) --------------------
  // The graph is mutable in its EDGE set only: the vertex count, the 2D
  // partition, the LID maps and the communicators are all fixed, so a
  // commit rebuilds nothing but this rank's CSR. The two primitives below
  // are rank-local; the collective orchestration (routing ops to owners,
  // agreeing on the global delta and epoch) lives in stream::commit.

  /// Epoch counter: 0 for the freshly built graph, +1 per commit that
  /// applied at least one directed entry anywhere in the grid. The serving
  /// layer threads this through ResultCache keys.
  std::uint64_t epoch() const { return epoch_; }

  /// One directed entry to apply locally: `u` is a row LID, `v` a col LID
  /// (i.e. this rank owns the entry). `insert == false` deletes one
  /// parallel copy, or is a no-op when absent.
  struct LocalEdgeOp {
    bool insert = true;
    Lid u = 0;
    Lid v = 0;
  };
  struct LocalApplyResult {
    std::int64_t inserted = 0;
    std::int64_t deleted = 0;
    std::int64_t noop_deletes = 0;
    /// A delete removed the LAST parallel copy of its directed pair:
    /// connectivity may have changed (see the incremental kernels'
    /// fallback rule).
    bool structural_delete = false;
  };

  /// Stages `ops` in order against a COPY of this rank's edge multiset (no
  /// communication, no CSR rebuild, live graph untouched). The staged set
  /// only becomes live in finish_commit; abort_commit discards it — so a
  /// commit that faults mid-protocol leaves the old epoch's CSR intact and
  /// a recovered session can replay the whole batch (docs/RECOVERY.md).
  LocalApplyResult stage_local_edge_ops(std::span<const LocalEdgeOp> ops);

  /// Seals a commit: swaps the staged edge multiset in, rebuilds the CSR
  /// from it when `csr_dirty`, applies the globally agreed directed-entry
  /// delta to m_global(), bumps the epoch, and invalidates the cached
  /// global degrees (recomputed collectively on next use — safe because
  /// every row-group member commits together).
  void finish_commit(std::int64_t m_global_delta, bool csr_dirty);

  /// Aborts a staged commit: drops the staged multiset, leaving the graph
  /// bit-identical to its pre-commit state (old epoch, old CSR). Idempotent
  /// and a no-op when nothing is staged.
  void abort_commit();

  /// Recovery restore only (serve::Supervisor): pins the epoch counter
  /// after a rebuild from a snapshot + committed-log replay, so
  /// post-recovery commits continue the pre-fault numbering.
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }

 private:
  const Partitioned2D* parts_;
  comm::Comm* world_;
  int id_r_;
  int id_c_;
  int rank_r_;
  int rank_c_;
  LidMap lid_map_;
  // The rank's live edge multiset in LID space (row LID -> col LID). The
  // CSR is always a materialization of exactly this vector; commits stage
  // a mutated copy and swap it in (then rebuild the CSR) at finish_commit.
  std::vector<graph::Edge> local_edges_;
  std::vector<graph::Edge> staged_edges_;  // in-flight commit, see staging_
  bool staging_ = false;
  graph::Csr csr_;
  comm::Comm row_comm_;
  comm::Comm col_comm_;
  std::int64_t m_global_;
  std::uint64_t epoch_ = 0;
  std::vector<std::int64_t> global_degrees_;  // lazily filled
  mutable std::unique_ptr<WorkerPool> pool_;  // lazily built, see worker_pool()
};

}  // namespace hpcg::core

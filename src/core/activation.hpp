// Pull-side vertex activation (paper §3.4.1).
//
// For pull updates the next iteration's active vertices are not the ones
// that changed but their *neighbors*. Each rank expands the local
// adjacencies of the changed row vertices, marking candidate column
// vertices; the marks are then "shared in a push-style sparse communication
// across the column groups and then the row groups" so that every rank
// finishes with a consistent row-group active queue.
#pragma once

#include <vector>

#include "core/dist2d.hpp"
#include "core/manhattan.hpp"
#include "core/queue.hpp"
#include "core/work.hpp"

namespace hpcg::core {

/// Builds the next pull-iteration active queue (row LIDs) from the row
/// vertices whose state changed this iteration. Collective over both group
/// communicators.
inline VertexQueue pull_activation(Dist2DGraph& g, const VertexQueue& changed_rows) {
  const LidMap& lids = g.lids();

  // Expand local adjacencies of the changed vertices; marks land on column
  // LIDs.
  VertexQueue col_marks(lids.n_total());
  std::int64_t edges_expanded = 0;
  manhattan_for_each_edge(g.csr(), std::span<const Lid>(changed_rows.items()),
                          [&](Lid, Lid u, std::int64_t) {
                            col_marks.try_push(u);
                            ++edges_expanded;
                          });
  charge_kernel(g.world(), static_cast<std::int64_t>(changed_rows.size()),
                edges_expanded);

  // Column phase: union the marks over the column group; marks whose
  // vertex this rank also owns as a row vertex cross over to the row phase.
  std::vector<Gid> sbuf;
  sbuf.reserve(col_marks.size());
  for (const Lid v : col_marks.items()) sbuf.push_back(lids.to_gid(v));
  col_marks.clear();

  VertexQueue crossover(lids.n_total());
  const auto col_gathered = g.col_comm().allgatherv(std::span<const Gid>(sbuf));
  charge_kernel(g.world(), static_cast<std::int64_t>(col_gathered.size()), 0);
  for (const Gid gid : col_gathered) {
    const Lid l = lids.col_lid(gid);
    if (lids.lid_is_row(l)) crossover.try_push(l);
  }

  // Row phase: spread the activation to every member of the row group.
  sbuf.clear();
  sbuf.reserve(crossover.size());
  for (const Lid v : crossover.items()) sbuf.push_back(lids.to_gid(v));
  crossover.clear();

  VertexQueue active(lids.n_total());
  const auto row_gathered = g.row_comm().allgatherv(std::span<const Gid>(sbuf));
  charge_kernel(g.world(), static_cast<std::int64_t>(row_gathered.size()), 0);
  for (const Gid gid : row_gathered) active.try_push(lids.row_lid(gid));
  return active;
}

}  // namespace hpcg::core

// Packet swapping (paper §3.3.3).
//
// Some applications (pointer jumping, least-common-ancestor traversals)
// propagate information that does not follow graph edges: an update must
// reach the owners of an arbitrary vertex. A packet carries its destination
// vertex plus application data and is delivered with one row-group and one
// column-group personalized exchange — "communicated across row and column
// groups ... via a single set of row and column group communications":
//
//   hop 1 (row group):    to the member whose column range contains the
//                         destination vertex;
//   hop 2 (column group): to the member whose row range contains it.
//
// After the swap, each packet resides on exactly one rank that owns the
// destination as a row vertex (the rank of the destination's row group
// sitting in this rank's original column path).
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/dist2d.hpp"

namespace hpcg::core {

/// General form: routes each packet to the rank owning block
/// (row_group(row_key), col_group(col_key)) — hop 1 along the row group to
/// the member at the destination column, hop 2 along the column group to
/// the destination row group. `keys(p)` returns {row_key, col_key} as
/// GIDs. Vertex-addressed delivery is the special case row_key == col_key
/// (landing on the diagonal-path owner of the vertex); block-addressed
/// delivery (e.g. triangle counting's edge-existence queries, which must
/// reach the unique block owning edge (a, b)) uses distinct keys.
template <class P, class F>
std::vector<P> packet_swap_blocks(Dist2DGraph& g, std::span<const P> packets,
                                  F&& keys) {
  const BlockPartition& cols = g.partition().col_partition();
  const BlockPartition& rows = g.partition().row_partition();

  // Hop 1: bucket by the destination's column group, exchange along the
  // row group (member index within a row group == column group index).
  const int row_members = g.row_comm().size();
  std::vector<std::size_t> send_counts(static_cast<std::size_t>(row_members), 0);
  for (const P& p : packets) {
    ++send_counts[static_cast<std::size_t>(cols.part_of(keys(p).second))];
  }
  std::vector<std::size_t> cursor(send_counts.size(), 0);
  for (std::size_t d = 1; d < cursor.size(); ++d) {
    cursor[d] = cursor[d - 1] + send_counts[d - 1];
  }
  std::vector<P> send(packets.size());
  for (const P& p : packets) {
    send[cursor[static_cast<std::size_t>(cols.part_of(keys(p).second))]++] = p;
  }
  auto mid = g.row_comm().alltoallv(std::span<const P>(send),
                                    std::span<const std::size_t>(send_counts));

  // Hop 2: bucket by the destination's row group, exchange along the
  // column group (member index within a column group == row group index).
  const int col_members = g.col_comm().size();
  send_counts.assign(static_cast<std::size_t>(col_members), 0);
  for (const P& p : mid) {
    ++send_counts[static_cast<std::size_t>(rows.part_of(keys(p).first))];
  }
  cursor.assign(send_counts.size(), 0);
  for (std::size_t d = 1; d < cursor.size(); ++d) {
    cursor[d] = cursor[d - 1] + send_counts[d - 1];
  }
  send.resize(mid.size());
  for (const P& p : mid) {
    send[cursor[static_cast<std::size_t>(rows.part_of(keys(p).first))]++] = p;
  }
  return g.col_comm().alltoallv(std::span<const P>(send),
                                std::span<const std::size_t>(send_counts));
}

/// Routes packets to the owners of their destination vertices. `dest_of`
/// maps a packet to its destination GID. Collective over both of the
/// graph's group communicators.
template <class P, class F>
std::vector<P> packet_swap(Dist2DGraph& g, std::span<const P> packets, F&& dest_of) {
  return packet_swap_blocks(g, packets, [&](const P& p) {
    const Gid dest = dest_of(p);
    return std::pair<Gid, Gid>(dest, dest);
  });
}

}  // namespace hpcg::core

// SIMD lane helpers for the worker-pool kernels (docs/KERNELS.md).
//
// The contract that makes SIMD safe here is the same one that makes
// threading safe: the computation must be a pure function of the row, with
// a FIXED lane decomposition. lane_gather_sum defines the eight-lane
// strided row sum — lane k takes edge k of each 8-block, the tail folds
// into lane 0, lanes combine as ((s0+s1)+(s2+s3))+((s4+s5)+(s6+s7)) — and
// provides three implementations with identical IEEE semantics: scalar
// (eight independent add chains), AVX2 (a pair of vgatherqpd+vaddpd
// covering lanes 0-3 and 4-7), and AVX-512 (one vgatherqpd+vaddpd over all
// eight), selected at runtime via cpuid. Lane-wise vector adds ARE the
// eight scalar chains, so results are bit-identical across every path and
// every machine; callers never need to know which one ran.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "graph/types.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define HPCG_SIMD_X86 1
#else
#define HPCG_SIMD_X86 0
#endif

namespace hpcg::core {

/// Scalar reference: eight independent accumulator chains over
/// contrib[adj[e]] for e in [begin, end), combined pairwise in lane order.
inline double lane_gather_sum_scalar(const double* contrib,
                                     const graph::Gid* adj,
                                     std::int64_t begin, std::int64_t end) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  std::int64_t e = begin;
  for (; e + 8 <= end; e += 8) {
    s0 += contrib[adj[e]];
    s1 += contrib[adj[e + 1]];
    s2 += contrib[adj[e + 2]];
    s3 += contrib[adj[e + 3]];
    s4 += contrib[adj[e + 4]];
    s5 += contrib[adj[e + 5]];
    s6 += contrib[adj[e + 6]];
    s7 += contrib[adj[e + 7]];
  }
  for (; e < end; ++e) {
    s0 += contrib[adj[e]];
  }
  return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7));
}

#if HPCG_SIMD_X86
/// AVX2 path: two independent vgatherqpd+vaddpd pipelines per 8-block,
/// lanes 0-3 and 4-7. Each vector lane is exactly one scalar chain.
/// Compiled with a function-level target attribute so the rest of the
/// build needs no -mavx2.
__attribute__((target("avx2"))) inline double lane_gather_sum_avx2(
    const double* contrib, const graph::Gid* adj, std::int64_t begin,
    std::int64_t end) {
  __m256d lo = _mm256_setzero_pd();
  __m256d hi = _mm256_setzero_pd();
  std::int64_t e = begin;
  for (; e + 8 <= end; e += 8) {
    const __m256i idx_lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&adj[e]));
    const __m256i idx_hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&adj[e + 4]));
    lo = _mm256_add_pd(lo, _mm256_i64gather_pd(contrib, idx_lo, 8));
    hi = _mm256_add_pd(hi, _mm256_i64gather_pd(contrib, idx_hi, 8));
  }
  alignas(32) double lane[8];
  _mm256_store_pd(lane, lo);
  _mm256_store_pd(lane + 4, hi);
  double s0 = lane[0];
  for (; e < end; ++e) {
    s0 += contrib[adj[e]];
  }
  return ((s0 + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

/// AVX-512 path: one 8-lane vgatherqpd+vaddpd per 8-block; lane k is
/// scalar chain k, identical bits again.
__attribute__((target("avx512f"))) inline double lane_gather_sum_avx512(
    const double* contrib, const graph::Gid* adj, std::int64_t begin,
    std::int64_t end) {
  __m512d acc = _mm512_setzero_pd();
  std::int64_t e = begin;
  for (; e + 8 <= end; e += 8) {
    const __m512i idx =
        _mm512_loadu_si512(reinterpret_cast<const void*>(&adj[e]));
    acc = _mm512_add_pd(acc, _mm512_i64gather_pd(idx, contrib, 8));
  }
  alignas(64) double lane[8];
  _mm512_store_pd(lane, acc);
  double s0 = lane[0];
  for (; e < end; ++e) {
    s0 += contrib[adj[e]];
  }
  return ((s0 + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}
#endif

#if HPCG_SIMD_X86
namespace detail {
/// Widest supported path, capped by HPCG_SIMD=scalar|avx2|avx512 when set
/// (a debugging/tuning knob — every path returns the same bits, so the
/// override can never change results, only speed).
inline int simd_path() {
  int path = __builtin_cpu_supports("avx512f") ? 2
             : __builtin_cpu_supports("avx2")  ? 1
                                               : 0;
  if (const char* cap = std::getenv("HPCG_SIMD")) {
    const std::string_view want(cap);
    if (want == "scalar") path = 0;
    if (want == "avx2" && path > 1) path = 1;
  }
  return path;
}
}  // namespace detail
#endif

/// Eight-lane strided row sum of contrib[adj[e]], e in [begin, end).
/// Dispatches to the widest SIMD the CPU has; bit-identical on every path.
inline double lane_gather_sum(const double* contrib, const graph::Gid* adj,
                              std::int64_t begin, std::int64_t end) {
#if HPCG_SIMD_X86
  static const int kPath = detail::simd_path();
  if (kPath == 2) return lane_gather_sum_avx512(contrib, adj, begin, end);
  if (kPath == 1) return lane_gather_sum_avx2(contrib, adj, begin, end);
#endif
  return lane_gather_sum_scalar(contrib, adj, begin, end);
}

}  // namespace hpcg::core

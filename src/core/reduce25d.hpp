// 2.5D processing (paper §3.3.3).
//
// For reductions too expensive to replicate on every rank (Label
// Propagation's neighborhood mode), each row-group member is made the
// *hierarchical owner* of an equal block of the row group's vertices.
// Partial per-vertex aggregates are exchanged to the owner with one
// row-group Alltoallv; the owner finishes the reduction over the full
// neighborhood and the finalized values are broadcast back out to the row
// group (the subsequent column broadcast is the standard dense/sparse
// pattern). The buffer communicated is the set of group-wise *local*
// aggregates rather than a possibly larger all-gather buffer — the paper's
// stated tradeoff.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/dist2d.hpp"

namespace hpcg::core {

/// One partial-aggregate record: a (key, count) contribution toward the
/// reduction of row vertex `vertex` (a GID). Label Propagation uses
/// key=label, weight=multiplicity; other complex reductions can reuse it.
struct PartialAggregate {
  Gid vertex;
  std::uint64_t key;
  std::uint64_t weight;
};

/// Partition of a row group's vertices among its members for hierarchical
/// ownership: member k owns the k-th block of the group's N_R vertices.
inline BlockPartition hierarchical_ownership(const Dist2DGraph& g) {
  // Note: const_cast-free — built from immutable metadata only.
  return BlockPartition(g.lids().n_row(), g.grid().ranks_per_row_group());
}

/// Exchanges partial aggregates to their hierarchical owners along the row
/// group. `partials` may be in any order; entries whose vertex this rank
/// owns are included in the returned buffer as well (self-segment is kept,
/// unlike sparse_exchange, because partials are *contributions*, not
/// already-applied state). The returned records are grouped by sender.
std::vector<PartialAggregate> exchange_to_owners(
    Dist2DGraph& g, std::span<const PartialAggregate> partials);

/// In-flight owner exchange: the staging buffers plus the nonblocking
/// Alltoallv request over them. The object must stay at a stable address
/// until `request.wait()` returns (the request holds pointers into the
/// vectors) — keep a fixed-slot array, do not move it.
struct OwnerExchange {
  comm::Request request;
  std::vector<PartialAggregate> send;
  std::vector<PartialAggregate> recv;
  std::vector<std::size_t> send_counts;
};

/// Nonblocking exchange_to_owners: packs `partials` by owner into
/// `ex.send` and issues the row-group ialltoallv into `ex.recv`. The
/// received records (grouped by sender) are valid after
/// `ex.request.wait()`. Reuses ex's buffers across calls.
void exchange_to_owners_issue(Dist2DGraph& g,
                              std::span<const PartialAggregate> partials,
                              OwnerExchange& ex);

}  // namespace hpcg::core

// Intra-rank worker pool with edge-balanced chunking (ROADMAP item 1).
//
// The 2D distribution balances edges ACROSS ranks (paper §3.4); this pool
// recovers the same Manhattan-collapse balance INSIDE a rank: a kernel's
// vertex work (a contiguous LID range or a frontier queue) is cut into
// chunks of ~grain edges by prefix-summing degrees — exactly Algorithm 6's
// block decomposition at chunk granularity — and the chunks execute across
// `threads` persistent workers.
//
// Determinism contract (docs/KERNELS.md): chunk boundaries are a pure
// function of (offsets, queue, grain) — never of the thread count or of
// timing — and every kernel merges per-chunk outputs in ascending chunk
// order after run() returns. Workers claim chunks dynamically (atomic
// counter), which only permutes WHO computes a chunk, not what it computes
// or where its output lands, so results are bit-identical threads on/off.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "comm/comm.hpp"
#include "graph/types.hpp"

namespace hpcg::core {

using graph::Lid;

/// One unit of kernel work: a half-open range [begin, end) over either a
/// vertex LID interval or a queue's index space, plus its edge weight
/// (sum of degrees) for telemetry/imbalance accounting.
struct Chunk {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::int64_t edges = 0;
};

/// Cuts the contiguous vertex range [v_begin, v_end) into chunks of about
/// `grain` edges each (degree prefix sums are already materialized in the
/// CSR `offsets` array, so boundaries come from binary searches on evenly
/// spaced edge targets). A vertex is never split: a hub vertex with more
/// than `grain` incident edges occupies a chunk of its own, and long
/// zero-degree runs collapse into their neighbouring chunk. Always returns
/// at least one chunk for a non-empty range.
std::vector<Chunk> edge_balanced_chunks(std::span<const std::int64_t> offsets,
                                        std::size_t v_begin, std::size_t v_end,
                                        std::int64_t grain);

/// Queue flavour: chunks are index ranges into `queue` (degrees are
/// gathered per item, so this is one linear walk accumulating until the
/// grain is reached). Chunk boundaries depend only on queue order + grain.
std::vector<Chunk> edge_balanced_chunks(std::span<const std::int64_t> offsets,
                                        std::span<const Lid> queue,
                                        std::int64_t grain);

/// Persistent pool of `threads - 1` worker threads; the caller participates
/// as worker 0, so `threads == 1` degrades to a plain inline loop with no
/// thread traffic at all. run() hands out job indices [0, njobs) via an
/// atomic counter and blocks until every index has executed. The first
/// exception thrown by a job is rethrown from run() (remaining claims are
/// cancelled). run() establishes happens-before between all job effects
/// and the caller's continuation.
class WorkerPool {
 public:
  explicit WorkerPool(int threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return nthreads_; }

  /// Runs fn(job_index, worker_index) for every job index in [0, njobs).
  /// worker_index is in [0, threads()); worker 0 is the calling thread.
  void run(std::size_t njobs,
           const std::function<void(std::size_t, int)>& fn);

  /// Per-worker busy seconds (steady clock) of the most recent run();
  /// telemetry only — wall-clock, not modeled time.
  std::span<const double> last_busy_s() const { return busy_s_; }

 private:
  void worker_main(int index);
  void drain(int worker);

  int nthreads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::size_t njobs_ = 0;
  const std::function<void(std::size_t, int)>* job_ = nullptr;
  std::atomic<std::size_t> next_{0};
  int running_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  std::vector<double> busy_s_;
};

/// Executes fn(chunk, chunk_index, worker) over `chunks` — serially in
/// ascending chunk order when `pool` is null, across the pool otherwise.
/// Callers that accumulate must stage per-chunk outputs and merge them in
/// chunk order afterwards (the determinism contract above).
template <class Fn>
void for_each_chunk(WorkerPool* pool, std::span<const Chunk> chunks, Fn&& fn) {
  if (!pool || pool->threads() <= 1) {
    for (std::size_t i = 0; i < chunks.size(); ++i) fn(chunks[i], i, 0);
    return;
  }
  pool->run(chunks.size(),
            [&](std::size_t i, int worker) { fn(chunks[i], i, worker); });
}

/// Records the kernel.chunk.* imbalance counters and per-worker busy
/// histograms for one kernel invocation (inert when telemetry is off).
/// Imbalance is max-chunk-edges * nchunks / total-edges, the same
/// max/mean statistic the Manhattan-span bench reports across blocks.
void record_chunk_telemetry(comm::Comm& c, std::span<const Chunk> chunks,
                            const WorkerPool* pool);

}  // namespace hpcg::core

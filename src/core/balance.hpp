// Load-balance statistics for a 2D partition (paper §3.4.2): per-rank edge
// and vertex counts and the imbalance factor max/mean. The paper's striped
// vertex distribution exists to keep these near 1 on skewed inputs; the
// distribution ablation benchmark quantifies that claim.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/dist2d.hpp"

namespace hpcg::core {

struct BalanceStats {
  std::int64_t max_edges = 0;
  double mean_edges = 0.0;
  std::int64_t max_row_vertices = 0;
  double mean_row_vertices = 0.0;

  /// max/mean edge imbalance: 1.0 is perfect.
  double edge_imbalance() const {
    return mean_edges > 0 ? static_cast<double>(max_edges) / mean_edges : 1.0;
  }
};

/// Host-side: computed directly from the partition (no ranks needed).
inline BalanceStats partition_balance(const Partitioned2D& parts) {
  BalanceStats stats;
  std::int64_t total_edges = 0;
  for (int r = 0; r < parts.grid().ranks(); ++r) {
    const auto edges = static_cast<std::int64_t>(parts.edges_of(r).size());
    stats.max_edges = std::max(stats.max_edges, edges);
    total_edges += edges;
  }
  stats.mean_edges =
      static_cast<double>(total_edges) / static_cast<double>(parts.grid().ranks());
  for (int g = 0; g < parts.grid().row_groups(); ++g) {
    stats.max_row_vertices =
        std::max(stats.max_row_vertices, parts.row_partition().count(g));
  }
  stats.mean_row_vertices = static_cast<double>(parts.n()) /
                            static_cast<double>(parts.grid().row_groups());
  return stats;
}

}  // namespace hpcg::core

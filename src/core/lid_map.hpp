// Global->local vertex ID mapping (paper §3.2, Tables 1 and 2).
//
// A rank's row vertices occupy the contiguous global range
// [N_Offset_R, N_Offset_R + N_R) and its column (ghost) vertices
// [N_Offset_C, N_Offset_C + N_C). Depending on how the two ranges relate,
// local IDs are laid out per one of three Types so that (a) global<->local
// conversion is plain arithmetic (no hash table), and (b) row and column
// vertices each form a dense LID interval, letting dense communications
// address a group's whole state with just an offset and a count.
#pragma once

#include <algorithm>
#include <stdexcept>

#include "graph/types.hpp"

namespace hpcg::core {

using graph::Gid;
using graph::Lid;

class LidMap {
 public:
  LidMap() = default;

  LidMap(Gid row_offset, Gid n_row, Gid col_offset, Gid n_col)
      : row_offset_(row_offset), n_row_(n_row), col_offset_(col_offset), n_col_(n_col) {
    const bool overlap =
        row_offset < col_offset + n_col && col_offset < row_offset + n_row &&
        n_row > 0 && n_col > 0;
    if (!overlap) {
      type_ = 0;
      c_offset_r_ = 0;
      c_offset_c_ = n_row_;
      n_total_ = n_row_ + n_col_;
    } else if (row_offset <= col_offset) {
      type_ = 1;
      const Gid diff = col_offset - row_offset;
      c_offset_r_ = 0;
      c_offset_c_ = diff;
      n_total_ = std::max(n_row_, diff + n_col_);
    } else {
      type_ = 2;
      const Gid diff = row_offset - col_offset;
      c_offset_r_ = diff;
      c_offset_c_ = 0;
      n_total_ = std::max(diff + n_row_, n_col_);
    }
  }

  int type() const { return type_; }
  Gid row_offset() const { return row_offset_; }   // N_Offset_R
  Gid col_offset() const { return col_offset_; }   // N_Offset_C
  Gid n_row() const { return n_row_; }             // N_R
  Gid n_col() const { return n_col_; }             // N_C
  Lid n_total() const { return n_total_; }         // N_T
  Lid c_offset_r() const { return c_offset_r_; }   // first row LID
  Lid c_offset_c() const { return c_offset_c_; }   // first col LID

  bool owns_row_gid(Gid g) const {
    return g >= row_offset_ && g < row_offset_ + n_row_;
  }
  bool has_col_gid(Gid g) const {
    return g >= col_offset_ && g < col_offset_ + n_col_;
  }

  Lid row_lid(Gid g) const { return c_offset_r_ + (g - row_offset_); }
  Lid col_lid(Gid g) const { return c_offset_c_ + (g - col_offset_); }

  /// GID -> LID for any vertex in the row or column range. For overlapping
  /// ranges both mappings agree, so either is taken.
  Lid to_lid(Gid g) const {
    if (owns_row_gid(g)) return row_lid(g);
    if (has_col_gid(g)) return col_lid(g);
    throw std::out_of_range("gid not local to this rank");
  }

  /// LID -> GID (inverse of to_lid over [0, n_total)).
  Gid to_gid(Lid l) const {
    if (l >= c_offset_r_ && l < c_offset_r_ + n_row_) return row_offset_ + (l - c_offset_r_);
    if (l >= c_offset_c_ && l < c_offset_c_ + n_col_) return col_offset_ + (l - c_offset_c_);
    throw std::out_of_range("lid out of range");
  }

  bool lid_is_row(Lid l) const {
    return l >= c_offset_r_ && l < c_offset_r_ + n_row_;
  }
  bool lid_is_col(Lid l) const {
    return l >= c_offset_c_ && l < c_offset_c_ + n_col_;
  }

 private:
  Gid row_offset_ = 0;
  Gid n_row_ = 0;
  Gid col_offset_ = 0;
  Gid n_col_ = 0;
  int type_ = 0;
  Lid c_offset_r_ = 0;
  Lid c_offset_c_ = 0;
  Lid n_total_ = 0;
};

}  // namespace hpcg::core

// Sparse communications (paper §3.3.2, Algorithms 3-5).
//
// Only updated {vertex GID, state value} pairs travel. For a push:
//   1. the local update kernel has already applied updates to column-vertex
//      state slots and recorded the touched LIDs in `updated` (Algorithm 6
//      lines 12-14);
//   2. BuildQueue serializes {GID, value} pairs (Algorithm 4);
//   3. an AllGatherv along the column group distributes them;
//   4. ReduceQueue (Algorithm 5) folds received values into local state
//      with the algorithm's reduction, collecting row-owned vertices whose
//      value changed into the row-phase queue;
//   5. the row phase repeats build/exchange/reduce along the row group so
//      every owner of a vertex agrees on its final value.
// A pull mirrors this with the row exchange first.
//
// The reduction functor has signature `bool(T& current, const T& incoming)`
// returning whether `current` changed — MIN/MAX/assign-if-better style ops
// (Algorithm 5's AtomicOp) or arbitrarily complex routines, as the paper's
// "complex reductions" (e.g. matching) require.
#pragma once

#include <span>
#include <vector>

#include "core/dist2d.hpp"
#include "core/queue.hpp"
#include "core/work.hpp"

namespace hpcg::core {

/// Wire format of sparse exchanges: (global ID, state value).
template <class T>
struct GidValue {
  Gid gid;
  T value;
};

enum class SparseDirection { kPush, kPull };

struct SparseTraffic {
  std::size_t first_phase_sent = 0;   // pairs this rank contributed
  std::size_t second_phase_sent = 0;
};

/// Sparse state exchange. `updated` holds the LIDs the local update kernel
/// modified: column LIDs for a push, row LIDs for a pull. It is drained
/// (flags cleared) by the call. If `changed_rows` is non-null, every row
/// vertex of this rank whose state changed this iteration — locally or via
/// a received update — is pushed into it (the paper's active-vertex
/// tracking for push frontiers and the seed set for pull activation).
template <class T, class Reduce>
SparseTraffic sparse_exchange(Dist2DGraph& g, std::span<T> state,
                              VertexQueue& updated, Reduce&& reduce,
                              SparseDirection dir,
                              VertexQueue* changed_rows = nullptr) {
  const LidMap& lids = g.lids();
  SparseTraffic traffic;

  comm::Comm& first_comm = dir == SparseDirection::kPush ? g.col_comm() : g.row_comm();
  comm::Comm& second_comm = dir == SparseDirection::kPush ? g.row_comm() : g.col_comm();

  // Seed the second-phase queue with locally updated vertices that also
  // belong to the second phase's index space (the row/column overlap);
  // their own updates do not come back from the first exchange because a
  // rank skips its own segment when reducing.
  VertexQueue second_queue(lids.n_total());
  for (const Lid v : updated.items()) {
    if (dir == SparseDirection::kPush) {
      if (lids.lid_is_row(v)) {
        second_queue.try_push(v);
        if (changed_rows) changed_rows->try_push(v);
      }
    } else {
      if (changed_rows) changed_rows->try_push(v);
      if (lids.lid_is_col(v)) second_queue.try_push(v);
    }
  }

  // BuildQueue (Algorithm 4): serialize {GID, finalized state value}.
  std::vector<GidValue<T>> sbuf;
  sbuf.reserve(updated.size());
  for (const Lid v : updated.items()) {
    sbuf.push_back({lids.to_gid(v), state[static_cast<std::size_t>(v)]});
  }
  updated.clear();  // q_in[v] = false
  traffic.first_phase_sent = sbuf.size();
  charge_kernel(g.world(), static_cast<std::int64_t>(sbuf.size()), 0);  // BuildQueue

  // First exchange + ReduceQueue (Algorithm 5).
  std::vector<std::size_t> counts;
  auto rbuf = first_comm.allgatherv(std::span<const GidValue<T>>(sbuf), &counts);
  charge_kernel(g.world(), static_cast<std::int64_t>(rbuf.size()), 0);  // ReduceQueue
  {
    std::size_t offset = 0;
    for (int member = 0; member < first_comm.size(); ++member) {
      const std::size_t count = counts[static_cast<std::size_t>(member)];
      if (member == first_comm.rank()) {
        offset += count;
        continue;  // own updates already applied locally
      }
      for (std::size_t i = 0; i < count; ++i) {
        const auto& item = rbuf[offset + i];
        const Lid l = dir == SparseDirection::kPush ? lids.col_lid(item.gid)
                                                    : lids.row_lid(item.gid);
        if (!reduce(state[static_cast<std::size_t>(l)], item.value)) continue;
        if (dir == SparseDirection::kPush) {
          if (lids.lid_is_row(l)) {
            second_queue.try_push(l);
            if (changed_rows) changed_rows->try_push(l);
          }
        } else {
          if (changed_rows) changed_rows->try_push(l);
          if (lids.lid_is_col(l)) second_queue.try_push(l);
        }
      }
      offset += count;
    }
  }

  // Second phase: redistribute the now-final values of the overlap
  // vertices across the other group.
  sbuf.clear();
  sbuf.reserve(second_queue.size());
  for (const Lid v : second_queue.items()) {
    sbuf.push_back({lids.to_gid(v), state[static_cast<std::size_t>(v)]});
  }
  second_queue.clear();
  traffic.second_phase_sent = sbuf.size();
  charge_kernel(g.world(), static_cast<std::int64_t>(sbuf.size()), 0);

  auto rbuf2 = second_comm.allgatherv(std::span<const GidValue<T>>(sbuf), &counts);
  charge_kernel(g.world(), static_cast<std::int64_t>(rbuf2.size()), 0);
  {
    std::size_t offset = 0;
    for (int member = 0; member < second_comm.size(); ++member) {
      const std::size_t count = counts[static_cast<std::size_t>(member)];
      if (member == second_comm.rank()) {
        offset += count;
        continue;
      }
      for (std::size_t i = 0; i < count; ++i) {
        const auto& item = rbuf2[offset + i];
        const Lid l = dir == SparseDirection::kPush ? lids.row_lid(item.gid)
                                                    : lids.col_lid(item.gid);
        if (!reduce(state[static_cast<std::size_t>(l)], item.value)) continue;
        if (dir == SparseDirection::kPush && changed_rows) {
          changed_rows->try_push(l);  // Algorithm 5's re-included tail
        }
      }
      offset += count;
    }
  }
  return traffic;
}

/// Standard reducers for Algorithm 5's AtomicOp.
template <class T>
struct MinReduce {
  bool operator()(T& current, const T& incoming) const {
    if (incoming < current) {
      current = incoming;
      return true;
    }
    return false;
  }
};

template <class T>
struct MaxReduce {
  bool operator()(T& current, const T& incoming) const {
    if (incoming > current) {
      current = incoming;
      return true;
    }
    return false;
  }
};

}  // namespace hpcg::core

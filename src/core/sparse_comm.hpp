// Sparse communications (paper §3.3.2, Algorithms 3-5).
//
// Only updated {vertex GID, state value} pairs travel. For a push:
//   1. the local update kernel has already applied updates to column-vertex
//      state slots and recorded the touched LIDs in `updated` (Algorithm 6
//      lines 12-14);
//   2. BuildQueue serializes {GID, value} pairs (Algorithm 4);
//   3. an AllGatherv along the column group distributes them;
//   4. ReduceQueue (Algorithm 5) folds received values into local state
//      with the algorithm's reduction, collecting row-owned vertices whose
//      value changed into the row-phase queue;
//   5. the row phase repeats build/exchange/reduce along the row group so
//      every owner of a vertex agrees on its final value.
// A pull mirrors this with the row exchange first.
//
// The reduction functor has signature `bool(T& current, const T& incoming)`
// returning whether `current` changed — MIN/MAX/assign-if-better style ops
// (Algorithm 5's AtomicOp) or arbitrarily complex routines, as the paper's
// "complex reductions" (e.g. matching) require.
#pragma once

#include <span>
#include <vector>

#include "comm/kernel_options.hpp"
#include "core/dist2d.hpp"
#include "core/queue.hpp"
#include "core/work.hpp"

namespace hpcg::core {

/// Wire format of sparse exchanges: (global ID, state value).
template <class T>
struct GidValue {
  Gid gid;
  T value;
};

enum class SparseDirection { kPush, kPull };

struct SparseTraffic {
  std::size_t first_phase_sent = 0;   // pairs this rank contributed
  std::size_t second_phase_sent = 0;
};

/// DEPRECATED alias kept for one release: the async opt-in knobs folded
/// into the unified comm::KernelOptions (which also carries the worker-pool
/// threading/chunking fields). The member names (`async`, `chunk`) and the
/// on()/off()/enabled()/segments() helpers are unchanged, so existing call
/// sites keep compiling. See docs/ARCHITECTURE.md §15.
using SparseOptions = comm::KernelOptions;

/// Reusable scratch for sparse_exchange: send/receive staging and the
/// per-member count vectors, double-buffered for the async pipeline. Hoist
/// one of these out of an iteration loop to stop paying one heap
/// allocation per rank per phase per superstep.
template <class T>
struct SparseBuffers {
  std::vector<GidValue<T>> send[2];
  std::vector<GidValue<T>> recv[2];
  std::vector<std::size_t> counts[2];
};

namespace detail {

/// One async sparse phase: slice `items` into `nseg` chunks and pipeline
/// build(k+1) under the in-flight allgatherv of chunk k (at most two
/// requests outstanding, double-buffered). `apply` folds one received
/// {gid, value} pair into local state. `drain` (may be null) is cleared
/// right after the last chunk is built — used for the `updated` queue whose
/// items are being walked. Bit-identical final state relies on `reduce`
/// being an order-insensitive selection (min/max-style): a chunk built
/// after an earlier chunk's reduce may carry an already-improved value, but
/// every receiver also gets the improving value directly.
template <class T, class Apply>
void sparse_phase_async(comm::Comm& c, comm::Comm& world,
                        std::span<const Lid> items, const LidMap& lids,
                        std::span<T> state, int nseg, SparseBuffers<T>& bufs,
                        VertexQueue* drain, Apply&& apply) {
  const std::size_t total = items.size();
  comm::Request reqs[2];
  auto build_and_issue = [&](int k) {
    auto& sb = bufs.send[k & 1];
    const std::size_t lo = total * static_cast<std::size_t>(k) /
                           static_cast<std::size_t>(nseg);
    const std::size_t hi = total * static_cast<std::size_t>(k + 1) /
                           static_cast<std::size_t>(nseg);
    sb.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      const Lid v = items[i];
      sb.push_back({lids.to_gid(v), state[static_cast<std::size_t>(v)]});
    }
    if (drain && k == nseg - 1) drain->clear();
    charge_kernel(world, static_cast<std::int64_t>(sb.size()), 0);
    reqs[k & 1] = c.iallgatherv(std::span<const GidValue<T>>(sb),
                                bufs.recv[k & 1], &bufs.counts[k & 1]);
  };
  build_and_issue(0);
  for (int k = 0; k < nseg; ++k) {
    if (k + 1 < nseg) build_and_issue(k + 1);
    reqs[k & 1].wait();
    const auto& rb = bufs.recv[k & 1];
    const auto& counts = bufs.counts[k & 1];
    charge_kernel(world, static_cast<std::int64_t>(rb.size()), 0);
    std::size_t offset = 0;
    for (int member = 0; member < c.size(); ++member) {
      const std::size_t count = counts[static_cast<std::size_t>(member)];
      if (member == c.rank()) {
        offset += count;
        continue;  // own updates already applied locally
      }
      for (std::size_t i = 0; i < count; ++i) apply(rb[offset + i]);
      offset += count;
    }
  }
}

}  // namespace detail

/// Sparse state exchange. `updated` holds the LIDs the local update kernel
/// modified: column LIDs for a push, row LIDs for a pull. It is drained
/// (flags cleared) by the call. If `changed_rows` is non-null, every row
/// vertex of this rank whose state changed this iteration — locally or via
/// a received update — is pushed into it (the paper's active-vertex
/// tracking for push frontiers and the seed set for pull activation).
///
/// With `opts` async-enabled, each phase runs the chunked nonblocking
/// pipeline (see detail::sparse_phase_async); final state is bit-identical
/// to the blocking path for min/max-style reductions, while the modeled
/// clock overlaps queue building with the in-flight transfers. `buffers`
/// (optional) supplies reusable scratch; pass one hoisted out of the
/// iteration loop to avoid per-call allocation in either mode.
template <class T, class Reduce>
SparseTraffic sparse_exchange(Dist2DGraph& g, std::span<T> state,
                              VertexQueue& updated, Reduce&& reduce,
                              SparseDirection dir,
                              VertexQueue* changed_rows = nullptr,
                              const SparseOptions& opts = {},
                              SparseBuffers<T>* buffers = nullptr) {
  const LidMap& lids = g.lids();
  SparseTraffic traffic;
  SparseBuffers<T> local_buffers;
  SparseBuffers<T>& bufs = buffers ? *buffers : local_buffers;

  comm::Comm& first_comm = dir == SparseDirection::kPush ? g.col_comm() : g.row_comm();
  comm::Comm& second_comm = dir == SparseDirection::kPush ? g.row_comm() : g.col_comm();

  // Seed the second-phase queue with locally updated vertices that also
  // belong to the second phase's index space (the row/column overlap);
  // their own updates do not come back from the first exchange because a
  // rank skips its own segment when reducing.
  VertexQueue second_queue(lids.n_total());
  for (const Lid v : updated.items()) {
    if (dir == SparseDirection::kPush) {
      if (lids.lid_is_row(v)) {
        second_queue.try_push(v);
        if (changed_rows) changed_rows->try_push(v);
      }
    } else {
      if (changed_rows) changed_rows->try_push(v);
      if (lids.lid_is_col(v)) second_queue.try_push(v);
    }
  }

  // ReduceQueue (Algorithm 5) fold for one received first-phase pair.
  auto apply_first = [&](const GidValue<T>& item) {
    const Lid l = dir == SparseDirection::kPush ? lids.col_lid(item.gid)
                                                : lids.row_lid(item.gid);
    if (!reduce(state[static_cast<std::size_t>(l)], item.value)) return;
    if (dir == SparseDirection::kPush) {
      if (lids.lid_is_row(l)) {
        second_queue.try_push(l);
        if (changed_rows) changed_rows->try_push(l);
      }
    } else {
      if (changed_rows) changed_rows->try_push(l);
      if (lids.lid_is_col(l)) second_queue.try_push(l);
    }
  };
  // ... and for one second-phase pair.
  auto apply_second = [&](const GidValue<T>& item) {
    const Lid l = dir == SparseDirection::kPush ? lids.row_lid(item.gid)
                                                : lids.col_lid(item.gid);
    if (!reduce(state[static_cast<std::size_t>(l)], item.value)) return;
    if (dir == SparseDirection::kPush && changed_rows) {
      changed_rows->try_push(l);  // Algorithm 5's re-included tail
    }
  };

  if (opts.enabled(g.world())) {
    // Segment-count estimate for the adaptive auto-chunker. It must be
    // identical on every group member (divergent counts deadlock the
    // pipeline), so use the graph's global vertex count — a worst-case
    // "every vertex updated" payload — rather than this rank's queue size.
    const std::size_t phase_bytes_estimate =
        static_cast<std::size_t>(g.n()) * sizeof(GidValue<T>);
    traffic.first_phase_sent = updated.size();
    detail::sparse_phase_async(first_comm, g.world(),
                               std::span<const Lid>(updated.items()), lids,
                               state,
                               opts.segments_for(first_comm, phase_bytes_estimate),
                               bufs, &updated, apply_first);
    traffic.second_phase_sent = second_queue.size();
    detail::sparse_phase_async(second_comm, g.world(),
                               std::span<const Lid>(second_queue.items()), lids,
                               state,
                               opts.segments_for(second_comm, phase_bytes_estimate),
                               bufs, nullptr, apply_second);
    second_queue.clear();
    return traffic;
  }

  // BuildQueue (Algorithm 4): serialize {GID, finalized state value}.
  auto& sbuf = bufs.send[0];
  sbuf.clear();
  sbuf.reserve(updated.size());
  for (const Lid v : updated.items()) {
    sbuf.push_back({lids.to_gid(v), state[static_cast<std::size_t>(v)]});
  }
  updated.clear();  // q_in[v] = false
  traffic.first_phase_sent = sbuf.size();
  charge_kernel(g.world(), static_cast<std::int64_t>(sbuf.size()), 0);  // BuildQueue

  // First exchange + ReduceQueue (Algorithm 5).
  auto& counts = bufs.counts[0];
  auto& rbuf = bufs.recv[0];
  first_comm.allgatherv(std::span<const GidValue<T>>(sbuf), rbuf, &counts);
  charge_kernel(g.world(), static_cast<std::int64_t>(rbuf.size()), 0);  // ReduceQueue
  {
    std::size_t offset = 0;
    for (int member = 0; member < first_comm.size(); ++member) {
      const std::size_t count = counts[static_cast<std::size_t>(member)];
      if (member == first_comm.rank()) {
        offset += count;
        continue;  // own updates already applied locally
      }
      for (std::size_t i = 0; i < count; ++i) apply_first(rbuf[offset + i]);
      offset += count;
    }
  }

  // Second phase: redistribute the now-final values of the overlap
  // vertices across the other group.
  auto& sbuf2 = bufs.send[1];
  sbuf2.clear();
  sbuf2.reserve(second_queue.size());
  for (const Lid v : second_queue.items()) {
    sbuf2.push_back({lids.to_gid(v), state[static_cast<std::size_t>(v)]});
  }
  second_queue.clear();
  traffic.second_phase_sent = sbuf2.size();
  charge_kernel(g.world(), static_cast<std::int64_t>(sbuf2.size()), 0);

  auto& counts2 = bufs.counts[1];
  auto& rbuf2 = bufs.recv[1];
  second_comm.allgatherv(std::span<const GidValue<T>>(sbuf2), rbuf2, &counts2);
  charge_kernel(g.world(), static_cast<std::int64_t>(rbuf2.size()), 0);
  {
    std::size_t offset = 0;
    for (int member = 0; member < second_comm.size(); ++member) {
      const std::size_t count = counts2[static_cast<std::size_t>(member)];
      if (member == second_comm.rank()) {
        offset += count;
        continue;
      }
      for (std::size_t i = 0; i < count; ++i) apply_second(rbuf2[offset + i]);
      offset += count;
    }
  }
  return traffic;
}

/// Standard reducers for Algorithm 5's AtomicOp.
template <class T>
struct MinReduce {
  bool operator()(T& current, const T& incoming) const {
    if (incoming < current) {
      current = incoming;
      return true;
    }
    return false;
  }
};

template <class T>
struct MaxReduce {
  bool operator()(T& current, const T& incoming) const {
    if (incoming > current) {
      current = incoming;
      return true;
    }
    return false;
  }
};

}  // namespace hpcg::core

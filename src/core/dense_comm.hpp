// Dense communications (paper §3.3.1, Algorithm 2, Figure 2).
//
// All vertex state values along the group are exchanged regardless of
// whether they changed: a push is an AllReduce of the column-group state
// slice followed by a row-group broadcast of the row slice; a pull is the
// mirror image. When the grid is square the broadcast has a single root
// (the diagonal rank, whose row and column ranges coincide); otherwise the
// row range spans several column ranges and the values are re-distributed
// with a batch of grouped broadcasts, one rooted at each rank whose column
// range covers a piece — the paper's "multiple grouped broadcasts via
// aggregated Group Calls in NCCL".
#pragma once

#include <span>
#include <vector>

#include "core/dist2d.hpp"

namespace hpcg::core {

enum class Direction { kPush, kPull };

namespace detail {

/// Broadcast segment list for the redistribution phase: the member of
/// `bcast_comm` at index p owns the reduced values for partition p's
/// overlap with `dest_gid_range` (this rank's row range for push, column
/// range for pull). `src_parts` partitions the GID space on the other grid
/// axis.
template <class T>
std::vector<comm::BcastSeg<T>> build_bcast_segments(
    const BlockPartition& src_parts, const LidMap& lids, Gid dest_start,
    Gid dest_count, bool dest_is_row, std::span<T> state) {
  std::vector<comm::BcastSeg<T>> segments;
  for (int p = 0; p < src_parts.parts(); ++p) {
    const Gid lo = std::max(dest_start, src_parts.start(p));
    const Gid hi = std::min(dest_start + dest_count, src_parts.end(p));
    if (lo >= hi) continue;
    const Lid lid = dest_is_row ? lids.row_lid(lo) : lids.col_lid(lo);
    segments.push_back({p, state.data() + lid, static_cast<std::size_t>(hi - lo)});
  }
  return segments;
}

/// After the reduction phase, re-distributes the fully reduced values
/// across `bcast_comm` (blocking form).
template <class T>
void redistribute(comm::Comm& bcast_comm, const BlockPartition& src_parts,
                  const LidMap& lids, Gid dest_start, Gid dest_count,
                  bool dest_is_row, std::span<T> state) {
  auto segments = build_bcast_segments(src_parts, lids, dest_start, dest_count,
                                       dest_is_row, state);
  if (segments.size() == 1) {
    bcast_comm.broadcast(std::span<T>(segments[0].data, segments[0].count),
                         segments[0].root);
  } else if (!segments.empty()) {
    bcast_comm.multi_broadcast(std::span<const comm::BcastSeg<T>>(segments));
  }
}

}  // namespace detail

/// Algorithm 2: dense exchange of `state` (LID-indexed, n_total entries)
/// with a builtin reduction. After the call, every rank holds globally
/// consistent values for all of its row and column vertices.
template <class T>
void dense_exchange(Dist2DGraph& g, std::span<T> state, comm::ReduceOp op,
                    Direction dir) {
  const LidMap& lids = g.lids();
  if (dir == Direction::kPush) {
    // AllReduce(S[C_offset_C], N_C, COL_GROUP_COMM)
    g.col_comm().allreduce(
        state.subspan(static_cast<std::size_t>(lids.c_offset_c()),
                      static_cast<std::size_t>(lids.n_col())),
        op);
    // Broadcast(S[C_offset_R], N_R, ROW_GROUP_COMM) — grouped when R != C.
    detail::redistribute(g.row_comm(), g.partition().col_partition(), lids,
                         lids.row_offset(), lids.n_row(), /*dest_is_row=*/true,
                         state);
  } else {
    g.row_comm().allreduce(
        state.subspan(static_cast<std::size_t>(lids.c_offset_r()),
                      static_cast<std::size_t>(lids.n_row())),
        op);
    detail::redistribute(g.col_comm(), g.partition().row_partition(), lids,
                         lids.col_offset(), lids.n_col(), /*dest_is_row=*/false,
                         state);
  }
}

/// Nonblocking Algorithm 2: issues the reduction nonblocking, builds the
/// grouped-broadcast segment list while the AllReduce is in flight (that
/// construction is the overlapped work inside this call), then issues the
/// redistribution broadcast and returns its Request. The caller may run
/// compute that only touches the *reduce-axis* slots (row slots for pull,
/// column slots for push — final after the internal wait) before waiting
/// the returned request; ghost slots are filled at wait(). `state` must
/// stay alive and unmodified (except those reduce-axis reads) until then.
template <class T>
comm::Request dense_exchange_async(Dist2DGraph& g, std::span<T> state,
                                   comm::ReduceOp op, Direction dir) {
  const LidMap& lids = g.lids();
  comm::Comm& reduce_comm = dir == Direction::kPush ? g.col_comm() : g.row_comm();
  comm::Comm& bcast_comm = dir == Direction::kPush ? g.row_comm() : g.col_comm();
  const auto slice =
      dir == Direction::kPush
          ? state.subspan(static_cast<std::size_t>(lids.c_offset_c()),
                          static_cast<std::size_t>(lids.n_col()))
          : state.subspan(static_cast<std::size_t>(lids.c_offset_r()),
                          static_cast<std::size_t>(lids.n_row()));
  comm::Request reduction = reduce_comm.iallreduce(slice, op);
  auto segments =
      dir == Direction::kPush
          ? detail::build_bcast_segments(g.partition().col_partition(), lids,
                                         lids.row_offset(), lids.n_row(),
                                         /*dest_is_row=*/true, state)
          : detail::build_bcast_segments(g.partition().row_partition(), lids,
                                         lids.col_offset(), lids.n_col(),
                                         /*dest_is_row=*/false, state);
  reduction.wait();
  if (segments.size() == 1) {
    return bcast_comm.ibroadcast(
        std::span<T>(segments[0].data, segments[0].count), segments[0].root);
  }
  if (!segments.empty()) {
    return bcast_comm.imulti_broadcast(std::move(segments));
  }
  return {};
}

/// Dense exchange with a user combiner (for reductions NCCL does not have
/// natively; the paper notes such cases fall back to more complex schemes —
/// this overload supports the simple ones that remain element-wise).
template <class T, class F>
void dense_exchange(Dist2DGraph& g, std::span<T> state, F&& combine, Direction dir) {
  const LidMap& lids = g.lids();
  if (dir == Direction::kPush) {
    g.col_comm().allreduce(
        state.subspan(static_cast<std::size_t>(lids.c_offset_c()),
                      static_cast<std::size_t>(lids.n_col())),
        combine);
    detail::redistribute(g.row_comm(), g.partition().col_partition(), lids,
                         lids.row_offset(), lids.n_row(), true, state);
  } else {
    g.row_comm().allreduce(
        state.subspan(static_cast<std::size_t>(lids.c_offset_r()),
                      static_cast<std::size_t>(lids.n_row())),
        combine);
    detail::redistribute(g.col_comm(), g.partition().row_partition(), lids,
                         lids.col_offset(), lids.n_col(), false, state);
  }
}

}  // namespace hpcg::core

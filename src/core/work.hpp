// Device-kernel work accounting. Each kernel invocation charges its launch
// plus per-vertex/per-edge costs to the rank's virtual clock (active only
// when the cost model's work-proportional rates are set; see
// CostParams::per_edge_s). Kernels pass the work they actually performed —
// queue length and edges expanded — so queue-based execution is charged
// for exactly what it touched (the Figure 6 vertex-queue effect).
#pragma once

#include <cstdint>

#include "comm/comm.hpp"

namespace hpcg::core {

inline void charge_kernel(comm::Comm& comm, std::int64_t vertices,
                          std::int64_t edges) {
  const auto& params = comm.cost_model().params();
  comm.charge_compute(params.kernel_launch_s +
                      static_cast<double>(vertices) * params.per_vertex_s +
                      static_cast<double>(edges) * params.per_edge_s);
}

}  // namespace hpcg::core

// Work/communication queues (paper §3.3.2, Algorithm 4's q_in flags).
//
// On the GPU, queue membership is guarded with atomicExch on a boolean
// array indexed by LID, so a vertex whose state is updated many times in an
// iteration enters the communication queue exactly once. The sequential
// emulation keeps the flag-array + compact-list structure (and the same
// "test-and-set then append" protocol) so queue sizes, communication
// volumes and iteration order match the paper's kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace hpcg::core {

using graph::Lid;

class VertexQueue {
 public:
  VertexQueue() = default;
  explicit VertexQueue(Lid n_total) : in_queue_(static_cast<std::size_t>(n_total), 0) {}

  void resize(Lid n_total) {
    in_queue_.assign(static_cast<std::size_t>(n_total), 0);
    items_.clear();
  }

  /// atomicExch(q_in[v], true): enqueues v unless already present.
  /// Returns true if the vertex was newly enqueued.
  bool try_push(Lid v) {
    auto& flag = in_queue_[static_cast<std::size_t>(v)];
    if (flag) return false;
    flag = 1;
    items_.push_back(v);
    return true;
  }

  bool contains(Lid v) const { return in_queue_[static_cast<std::size_t>(v)] != 0; }
  const std::vector<Lid>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Resets flags for exactly the queued vertices (Algorithm 4 clears
  /// q_in[v] while draining the queue; clearing the whole array would be
  /// O(N_T) per iteration).
  void clear() {
    for (const Lid v : items_) in_queue_[static_cast<std::size_t>(v)] = 0;
    items_.clear();
  }

  void swap(VertexQueue& other) {
    in_queue_.swap(other.in_queue_);
    items_.swap(other.items_);
  }

 private:
  std::vector<std::uint8_t> in_queue_;  // q_in of Algorithm 4
  std::vector<Lid> items_;              // Q of Algorithm 4
};

}  // namespace hpcg::core

#include "core/reduce25d.hpp"

namespace hpcg::core {

std::vector<PartialAggregate> exchange_to_owners(
    Dist2DGraph& g, std::span<const PartialAggregate> partials) {
  const BlockPartition owners = hierarchical_ownership(g);
  const Gid row_offset = g.lids().row_offset();
  const int members = g.row_comm().size();

  std::vector<std::size_t> send_counts(static_cast<std::size_t>(members), 0);
  for (const auto& p : partials) {
    ++send_counts[static_cast<std::size_t>(owners.part_of(p.vertex - row_offset))];
  }
  std::vector<std::size_t> cursor(send_counts.size(), 0);
  for (std::size_t d = 1; d < cursor.size(); ++d) {
    cursor[d] = cursor[d - 1] + send_counts[d - 1];
  }
  std::vector<PartialAggregate> send(partials.size());
  for (const auto& p : partials) {
    send[cursor[static_cast<std::size_t>(owners.part_of(p.vertex - row_offset))]++] = p;
  }
  return g.row_comm().alltoallv(std::span<const PartialAggregate>(send),
                                std::span<const std::size_t>(send_counts));
}

void exchange_to_owners_issue(Dist2DGraph& g,
                              std::span<const PartialAggregate> partials,
                              OwnerExchange& ex) {
  const BlockPartition owners = hierarchical_ownership(g);
  const Gid row_offset = g.lids().row_offset();
  const int members = g.row_comm().size();

  ex.send_counts.assign(static_cast<std::size_t>(members), 0);
  for (const auto& p : partials) {
    ++ex.send_counts[static_cast<std::size_t>(owners.part_of(p.vertex - row_offset))];
  }
  std::vector<std::size_t> cursor(ex.send_counts.size(), 0);
  for (std::size_t d = 1; d < cursor.size(); ++d) {
    cursor[d] = cursor[d - 1] + ex.send_counts[d - 1];
  }
  ex.send.resize(partials.size());
  for (const auto& p : partials) {
    ex.send[cursor[static_cast<std::size_t>(owners.part_of(p.vertex - row_offset))]++] = p;
  }
  ex.request = g.row_comm().ialltoallv(
      std::span<const PartialAggregate>(ex.send),
      std::span<const std::size_t>(ex.send_counts), ex.recv);
}

}  // namespace hpcg::core

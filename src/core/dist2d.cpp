#include "core/dist2d.hpp"

#include <algorithm>

#include "core/worker_pool.hpp"

namespace hpcg::core {

Partitioned2D::Partitioned2D(Grid grid, Gid n, const graph::StripedRelabel& relabel)
    : grid_(grid),
      n_(n),
      relabel_(relabel),
      row_part_(n, grid.row_groups()),
      col_part_(n, grid.col_groups()),
      edges_(static_cast<std::size_t>(grid.ranks())),
      weights_(static_cast<std::size_t>(grid.ranks())) {}

Partitioned2D Partitioned2D::build(const graph::EdgeList& global, Grid grid,
                                   bool striped) {
  // A one-group striping is the identity permutation (contiguous blocks).
  graph::StripedRelabel relabel(global.n, striped ? grid.row_groups() : 1);
  Partitioned2D parts(grid, global.n, relabel);
  parts.m_global_ = global.m();
  parts.weighted_ = global.weighted();

  // First pass: count per block for exact allocation.
  std::vector<std::size_t> counts(static_cast<std::size_t>(grid.ranks()), 0);
  std::vector<int> owner(global.edges.size());
  for (std::size_t i = 0; i < global.edges.size(); ++i) {
    const Gid u = relabel.to_new(global.edges[i].u);
    const Gid v = relabel.to_new(global.edges[i].v);
    const int rank = grid.rank_at(parts.row_part_.part_of(u), parts.col_part_.part_of(v));
    owner[i] = rank;
    ++counts[static_cast<std::size_t>(rank)];
  }
  for (int r = 0; r < grid.ranks(); ++r) {
    parts.edges_[r].reserve(counts[static_cast<std::size_t>(r)]);
    if (global.weighted()) parts.weights_[r].reserve(counts[static_cast<std::size_t>(r)]);
  }
  for (std::size_t i = 0; i < global.edges.size(); ++i) {
    const Gid u = relabel.to_new(global.edges[i].u);
    const Gid v = relabel.to_new(global.edges[i].v);
    parts.edges_[owner[i]].push_back({u, v});
    if (global.weighted()) parts.weights_[owner[i]].push_back(global.weights[i]);
  }
  return parts;
}

namespace {

/// Validates the communicator/grid match before any member uses the rank
/// to index partition data (must run first in the initializer list).
int checked_row_group(const comm::Comm& world, const Partitioned2D& parts) {
  if (world.size() != parts.grid().ranks()) {
    throw std::invalid_argument("communicator size != grid size");
  }
  return parts.grid().row_group_of(world.rank());
}

LidMap make_lid_map(const Partitioned2D& parts, int id_r, int id_c) {
  return LidMap(parts.row_partition().start(id_r), parts.row_partition().count(id_r),
                parts.col_partition().start(id_c), parts.col_partition().count(id_c));
}

/// Splits under a telemetry phase span so communicator construction shows
/// up on the per-rank tracks (the span closes after the split returns).
comm::Comm split_with_span(comm::Comm& world, int color, int key,
                           const char* phase) {
  auto span = world.phase_span(phase);
  return world.split(color, key);
}

std::vector<graph::Edge> make_local_edges(const Partitioned2D& parts,
                                          const LidMap& lids, int rank) {
  const auto& edges = parts.edges_of(rank);
  std::vector<graph::Edge> local;
  local.reserve(edges.size());
  for (const auto& e : edges) {
    local.push_back({lids.row_lid(e.u), lids.col_lid(e.v)});
  }
  return local;
}

}  // namespace

Dist2DGraph::Dist2DGraph(comm::Comm& world, const Partitioned2D& parts)
    : parts_(&parts),
      world_(&world),
      id_r_(checked_row_group(world, parts)),
      id_c_(parts.grid().col_group_of(world.rank())),
      rank_r_(id_c_),  // position within the row group == column index
      rank_c_(id_r_),  // position within the column group == row index
      lid_map_(make_lid_map(parts, id_r_, id_c_)),
      local_edges_(make_local_edges(parts, lid_map_, world.rank())),
      csr_(lid_map_.n_total(), local_edges_,
           std::span<const double>(parts.weights_of(world.rank()).data(),
                                   parts.weights_of(world.rank()).size())),
      row_comm_(split_with_span(world, /*color=*/id_r_, /*key=*/id_c_,
                                "dist2d.split_row")),
      col_comm_(split_with_span(world, /*color=*/id_c_, /*key=*/id_r_,
                                "dist2d.split_col")),
      m_global_(parts.m_global()) {}

Dist2DGraph::~Dist2DGraph() = default;

WorkerPool* Dist2DGraph::worker_pool(int threads) const {
  if (threads <= 1) return nullptr;
  if (!pool_ || pool_->threads() != threads) {
    pool_ = std::make_unique<WorkerPool>(threads);
  }
  return pool_.get();
}

Dist2DGraph::LocalApplyResult Dist2DGraph::stage_local_edge_ops(
    std::span<const LocalEdgeOp> ops) {
  staged_edges_ = local_edges_;
  staging_ = true;
  LocalApplyResult out;
  for (const auto& op : ops) {
    if (op.insert) {
      staged_edges_.push_back({op.u, op.v});
      ++out.inserted;
      continue;
    }
    const graph::Edge target{op.u, op.v};
    const auto it = std::find(staged_edges_.begin(), staged_edges_.end(), target);
    if (it == staged_edges_.end()) {
      ++out.noop_deletes;
      continue;
    }
    staged_edges_.erase(it);  // order-preserving, matching the host mirror
    ++out.deleted;
    if (std::find(staged_edges_.begin(), staged_edges_.end(), target) ==
        staged_edges_.end()) {
      out.structural_delete = true;
    }
  }
  return out;
}

void Dist2DGraph::finish_commit(std::int64_t m_global_delta, bool csr_dirty) {
  if (staging_) {
    local_edges_.swap(staged_edges_);
    staged_edges_.clear();
    staged_edges_.shrink_to_fit();
    staging_ = false;
  }
  if (csr_dirty) {
    // Streaming commits reject weighted graphs upstream, so the rebuilt
    // CSR carries no weights.
    csr_ = graph::Csr(lid_map_.n_total(), local_edges_);
  }
  m_global_ += m_global_delta;
  ++epoch_;
  // A row-group mate's mutation changes true degrees even when this rank's
  // block is untouched; every row-group member commits collectively, so
  // clearing here keeps the next lazy recompute consistent.
  global_degrees_.clear();
}

void Dist2DGraph::abort_commit() {
  staged_edges_.clear();
  staged_edges_.shrink_to_fit();
  staging_ = false;
}

const std::vector<std::int64_t>& Dist2DGraph::global_row_degrees() {
  if (!global_degrees_.empty() || lid_map_.n_row() == 0) return global_degrees_;
  auto span = world_->phase_span("dist2d.global_degrees");
  global_degrees_.resize(static_cast<std::size_t>(lid_map_.n_row()));
  for (Lid v = 0; v < lid_map_.n_row(); ++v) {
    global_degrees_[static_cast<std::size_t>(v)] =
        csr_.degree(lid_map_.c_offset_r() + v);
  }
  row_comm_.allreduce(std::span(global_degrees_), comm::ReduceOp::kSum);
  return global_degrees_;
}

}  // namespace hpcg::core

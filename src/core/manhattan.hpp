// Local Manhattan Collapse (paper §3.4.2, Algorithm 6).
//
// Queue-based iteration breaks degree-sorted load-balancing tricks, so the
// paper collapses the nested vertex/edge loops: each thread block takes
// BlockSize queued vertices, prefix-sums their degrees in shared memory,
// then strides over the flat work range assigning each edge to a thread via
// binary search on the degree offsets. We execute the identical schedule —
// per-block prefix sums, flat edge index, binary search back to the owning
// vertex — sequentially, which preserves the work decomposition and lets
// the micro-benchmarks measure its (small) overhead against the naive
// nested loop exactly as §3.4.2 discusses.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/scan.hpp"

namespace hpcg::core {

using graph::Csr;
using graph::Gid;
using graph::Lid;

/// Iterates every incident edge of every vertex in `queue`, invoking
/// `fn(v, u, edge_index)` where v is the queued vertex (LID), u the
/// adjacency entry (column LID) and edge_index its CSR position (for
/// weight lookup). `block_size` mirrors the GPU thread-block size.
template <class Fn>
void manhattan_for_each_edge(const Csr& csr, std::span<const Lid> queue, Fn&& fn,
                             int block_size = 256) {
  const auto offsets = csr.offsets();
  const auto adj = csr.adjacencies();
  std::vector<std::int64_t> work(static_cast<std::size_t>(block_size) + 1);
  for (std::size_t block_start = 0; block_start < queue.size();
       block_start += static_cast<std::size_t>(block_size)) {
    const std::size_t block_n =
        std::min(queue.size() - block_start, static_cast<std::size_t>(block_size));
    // work[t + 1] = degree of the t-th vertex in the block; block_scan.
    work[0] = 0;
    for (std::size_t t = 0; t < block_n; ++t) {
      const Lid v = queue[block_start + t];
      work[t + 1] = offsets[v + 1] - offsets[v];
    }
    util::inclusive_scan_inplace(std::span(work.data() + 1, block_n));
    const std::int64_t total = work[block_n];
    const std::span<const std::int64_t> work_view(work.data(), block_n + 1);
    // Flat edge loop: on the GPU, threads stride by BlockSize; sequentially
    // the same indices are visited in ascending order.
    for (std::int64_t i = 0; i < total; ++i) {
      const std::size_t j = util::owner_of(work_view.subspan(0, block_n), i);
      const Lid v = queue[block_start + j];
      const std::int64_t edge = offsets[v] + (i - work_view[j]);
      fn(v, adj[edge], edge);
    }
  }
}

/// The naive nested loop over the same queue, used as the ablation baseline
/// for the Manhattan collapse micro-benchmark.
template <class Fn>
void nested_for_each_edge(const Csr& csr, std::span<const Lid> queue, Fn&& fn) {
  const auto offsets = csr.offsets();
  const auto adj = csr.adjacencies();
  for (const Lid v : queue) {
    for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      fn(v, adj[e], e);
    }
  }
}

/// Modeled SIMT span of one Manhattan-collapsed pass: the number of
/// block-synchronous edge strides, max over blocks of ceil(work/BlockSize).
/// Used by load-balance statistics in the benches.
std::int64_t manhattan_span(const Csr& csr, std::span<const Lid> queue,
                            int block_size = 256);

}  // namespace hpcg::core

#include "core/manhattan.hpp"

namespace hpcg::core {

std::int64_t manhattan_span(const Csr& csr, std::span<const Lid> queue,
                            int block_size) {
  const auto offsets = csr.offsets();
  std::int64_t span = 0;
  for (std::size_t block_start = 0; block_start < queue.size();
       block_start += static_cast<std::size_t>(block_size)) {
    const std::size_t block_n =
        std::min(queue.size() - block_start, static_cast<std::size_t>(block_size));
    std::int64_t total = 0;
    for (std::size_t t = 0; t < block_n; ++t) {
      const Lid v = queue[block_start + t];
      total += offsets[v + 1] - offsets[v];
    }
    span += (total + block_size - 1) / block_size;
  }
  return span;
}

}  // namespace hpcg::core

// 2D process grid (Figure 1 of the paper). The adjacency matrix is split
// into row_groups x col_groups blocks; a rank owns exactly one block.
//
// Terminology bridge to the paper's Table 1:
//   * a "row group" is the set of ranks sharing a block-row (they own the
//     same vertices); there are `row_groups()` of them, each containing
//     `ranks_per_row_group()` ranks — the paper's R;
//   * a "column group" is the set of ranks sharing a block-column (same
//     ghosts); each contains `ranks_per_col_group()` ranks — the paper's C.
#pragma once

#include <stdexcept>

#include "graph/types.hpp"

namespace hpcg::core {

using graph::Gid;

/// How grid coordinates map onto physical (world) ranks. World-rank
/// neighbors are physically close (NVLink triplet, then node), so the
/// placement decides which group's communication runs on fast links:
/// row-major packs row groups onto nodes (cheap row communication),
/// column-major packs column groups (cheap column communication — the
/// reduction direction of push algorithms). This is the knob the paper's
/// future work points at ("communication-optimizing methods based on
/// hardware network topology"); bench_ablation_placement quantifies it.
enum class Placement { kRowMajor, kColMajor };

class Grid {
 public:
  Grid(int row_groups, int col_groups, Placement placement = Placement::kRowMajor)
      : row_groups_(row_groups), col_groups_(col_groups), placement_(placement) {
    if (row_groups < 1 || col_groups < 1) {
      throw std::invalid_argument("grid dimensions must be positive");
    }
  }

  /// The most-square factorization of p (rows <= cols), the configuration
  /// the paper uses for all primary experiments.
  static Grid squarest(int p) {
    int rows = 1;
    for (int r = 1; static_cast<long long>(r) * r <= p; ++r) {
      if (p % r == 0) rows = r;
    }
    return Grid(rows, p / rows);
  }

  int row_groups() const { return row_groups_; }
  int col_groups() const { return col_groups_; }
  int ranks() const { return row_groups_ * col_groups_; }

  /// Paper's R: ranks in each row group.
  int ranks_per_row_group() const { return col_groups_; }
  /// Paper's C: ranks in each column group.
  int ranks_per_col_group() const { return row_groups_; }

  Placement placement() const { return placement_; }

  int row_group_of(int rank) const {
    return placement_ == Placement::kRowMajor ? rank / col_groups_
                                              : rank % row_groups_;
  }
  int col_group_of(int rank) const {
    return placement_ == Placement::kRowMajor ? rank % col_groups_
                                              : rank / row_groups_;
  }
  int rank_at(int row_group, int col_group) const {
    return placement_ == Placement::kRowMajor
               ? row_group * col_groups_ + col_group
               : col_group * row_groups_ + row_group;
  }

 private:
  int row_groups_;
  int col_groups_;
  Placement placement_;
};

/// Contiguous partition of [0, n) into `parts` nearly equal ranges (the
/// remainder spread over the leading parts, matching StripedRelabel's
/// block layout so striped row groups line up with partition ranges).
class BlockPartition {
 public:
  BlockPartition(Gid n, int parts)
      : n_(n), parts_(parts), base_(n / parts), remainder_(n % parts) {
    if (n < 0 || parts < 1) throw std::invalid_argument("bad partition");
  }

  Gid n() const { return n_; }
  int parts() const { return parts_; }

  Gid start(int part) const {
    return static_cast<Gid>(part) * base_ + std::min<Gid>(part, remainder_);
  }
  Gid count(int part) const { return base_ + (part < remainder_ ? 1 : 0); }
  Gid end(int part) const { return start(part) + count(part); }

  int part_of(Gid v) const {
    if (v < 0 || v >= n_) throw std::out_of_range("vertex outside partition");
    const Gid big_block = base_ + 1;
    const Gid big_total = remainder_ * big_block;
    if (v < big_total) return static_cast<int>(v / big_block);
    return static_cast<int>(remainder_ + (v - big_total) / base_);
  }

 private:
  Gid n_;
  int parts_;
  Gid base_;
  Gid remainder_;
};

}  // namespace hpcg::core

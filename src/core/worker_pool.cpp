#include "core/worker_pool.hpp"

#include <algorithm>
#include <chrono>

#include "telemetry/telemetry.hpp"

namespace hpcg::core {

std::vector<Chunk> edge_balanced_chunks(std::span<const std::int64_t> offsets,
                                        std::size_t v_begin, std::size_t v_end,
                                        std::int64_t grain) {
  std::vector<Chunk> chunks;
  if (v_begin >= v_end) return chunks;
  if (grain < 1) grain = 1;
  const std::int64_t base = offsets[v_begin];
  const std::int64_t total = offsets[v_end] - base;
  const std::int64_t nchunks =
      std::max<std::int64_t>(1, (total + grain - 1) / grain);
  std::size_t prev = v_begin;
  for (std::int64_t k = 1; k <= nchunks && prev < v_end; ++k) {
    std::size_t cut;
    if (k == nchunks) {
      cut = v_end;
    } else {
      // First vertex whose edge-prefix reaches the k-th evenly spaced
      // target. A hub vertex straddling several targets yields cut == prev
      // for the later targets; those empty chunks are skipped below, so
      // the hub simply owns one oversized chunk.
      const std::int64_t target = base + total * k / nchunks;
      const auto it = std::lower_bound(offsets.begin() + v_begin + 1,
                                       offsets.begin() + v_end, target);
      cut = static_cast<std::size_t>(it - offsets.begin());
      if (cut <= prev) continue;
      if (cut > v_end) cut = v_end;
    }
    chunks.push_back({prev, cut, offsets[cut] - offsets[prev]});
    prev = cut;
  }
  return chunks;
}

std::vector<Chunk> edge_balanced_chunks(std::span<const std::int64_t> offsets,
                                        std::span<const Lid> queue,
                                        std::int64_t grain) {
  std::vector<Chunk> chunks;
  if (queue.empty()) return chunks;
  if (grain < 1) grain = 1;
  std::size_t begin = 0;
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const Lid v = queue[i];
    acc += offsets[v + 1] - offsets[v];
    if (acc >= grain) {
      chunks.push_back({begin, i + 1, acc});
      begin = i + 1;
      acc = 0;
    }
  }
  // Tail of zero-degree (or sub-grain) items still needs visiting.
  if (begin < queue.size()) chunks.push_back({begin, queue.size(), acc});
  return chunks;
}

WorkerPool::WorkerPool(int threads)
    : nthreads_(threads < 1 ? 1 : threads),
      busy_s_(static_cast<std::size_t>(nthreads_), 0.0) {
  workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
  for (int i = 1; i < nthreads_; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::drain(int worker) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
         i < njobs_; i = next_.fetch_add(1, std::memory_order_relaxed)) {
      (*job_)(i, worker);
    }
  } catch (...) {
    std::lock_guard lock(mutex_);
    if (!error_) error_ = std::current_exception();
    // Cancel remaining claims; in-flight jobs on other workers finish.
    next_.store(njobs_, std::memory_order_relaxed);
  }
  busy_s_[static_cast<std::size_t>(worker)] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

void WorkerPool::run(std::size_t njobs,
                     const std::function<void(std::size_t, int)>& fn) {
  if (njobs == 0) return;
  if (nthreads_ == 1) {
    // Inline fast path: no locks, no signalling.
    njobs_ = njobs;
    job_ = &fn;
    next_.store(0, std::memory_order_relaxed);
    drain(0);
    job_ = nullptr;
    if (error_) {
      auto e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
    return;
  }
  {
    std::lock_guard lock(mutex_);
    njobs_ = njobs;
    job_ = &fn;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    std::fill(busy_s_.begin(), busy_s_.end(), 0.0);
    running_ = nthreads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  drain(0);
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return running_ == 0; });
  job_ = nullptr;
  if (error_) {
    auto e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void WorkerPool::worker_main(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    drain(index);
    {
      std::lock_guard lock(mutex_);
      --running_;
    }
    done_cv_.notify_all();
  }
}

void record_chunk_telemetry(comm::Comm& c, std::span<const Chunk> chunks,
                            const WorkerPool* pool) {
  telemetry::Recorder* rec = c.recorder();
  if (!rec || chunks.empty()) return;
  auto& metrics = rec->metrics();
  std::int64_t total = 0;
  std::int64_t max_edges = 0;
  for (const Chunk& ch : chunks) {
    total += ch.edges;
    max_edges = std::max(max_edges, ch.edges);
  }
  metrics.counter("kernel.chunk.count")
      .add(static_cast<std::int64_t>(chunks.size()));
  metrics.counter("kernel.chunk.edges").add(total);
  if (total > 0) {
    // max/mean in percent (100 = perfectly balanced), matching the
    // integer power-of-two histogram buckets.
    metrics.histogram("kernel.chunk.imbalance_pct")
        .observe(static_cast<std::uint64_t>(
            max_edges * 100 * static_cast<std::int64_t>(chunks.size()) /
            total));
  }
  if (pool) {
    auto& busy = metrics.histogram("kernel.worker.busy_us");
    for (const double s : pool->last_busy_s()) {
      busy.observe(static_cast<std::uint64_t>(s * 1e6));
    }
  }
}

}  // namespace hpcg::core

// Least-squares alpha-beta fitter: turns sweep samples (sweep.hpp) into
// per-topology-level link constants and per-collective crossover points.
//
// Every sample is one linear equation in x = [alpha, software_alpha,
// 1/beta]: the cost formulas of comm/policy.cpp are linear in those three
// once (pattern, group size, bytes) are fixed, so the design-matrix row of
// a sample is just the formula's coefficient triple. Per level we solve the
// 3x3 normal equations (column-scaled, partial pivoting); degenerate sweeps
// fail loudly with FitError instead of shipping NaN into a policy:
//   - a level with fewer than two distinct message sizes cannot separate
//     latency from bandwidth,
//   - a constant-latency level fits 1/beta ~ 0, i.e. infinite bandwidth,
//   - a pattern mix whose rows are collinear leaves the normal matrix
//     singular.
// See docs/TUNING.md for the row table and the crossover derivations.
#pragma once

#include <array>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/policy.hpp"
#include "comm/stats.hpp"
#include "comm/topology.hpp"
#include "tune/sweep.hpp"

namespace hpcg::tune {

/// Typed failure of fit_sweep: degenerate or insufficient sweep data. The
/// message names the level and the degeneracy.
class FitError : public std::runtime_error {
 public:
  explicit FitError(const std::string& what) : std::runtime_error(what) {}
};

/// Fitted constants of one topology level plus fit diagnostics.
struct LevelFit {
  bool valid = false;
  double alpha_s = 0.0;
  double beta_bytes_s = 0.0;     // effective (bw_derate absorbed)
  double software_alpha_s = 0.0;
  int samples = 0;
  double max_rel_error = 0.0;    // worst |prediction - sample| / sample
};

/// Message size at which the policy's argmin switches algorithms for one
/// (collective, level) at the level's largest observed group size. Purely
/// descriptive — selection always re-evaluates the argmin — but it is what
/// `hpcg_tune print` reports and docs/TUNING.md derives in closed form.
struct Crossover {
  comm::CollectiveOp op = comm::CollectiveOp::kAllReduce;
  comm::LinkClass level = comm::LinkClass::kNvlink;
  int group_size = 0;
  std::size_t bytes = 0;            // first size preferring `above`
  comm::CollectiveAlgo below = comm::CollectiveAlgo::kDefault;
  comm::CollectiveAlgo above = comm::CollectiveAlgo::kDefault;
};

struct FitResult {
  std::array<LevelFit, comm::kNumLinkClasses> level{};
  std::vector<Crossover> crossovers;
};

/// Fits every level present in the sweep; levels with no samples stay
/// invalid. Throws FitError on an empty sweep or any degenerate level.
FitResult fit_sweep(const std::vector<SweepPoint>& sweep);

/// Crossover scan shared by fit_sweep and reference calibrations:
/// evaluates CollectivePolicy::select over a fine geometric byte ladder per
/// valid level (at `group_size_of[level]`) and records every algorithm
/// switch.
std::vector<Crossover> compute_crossovers(
    const std::array<LevelFit, comm::kNumLinkClasses>& level,
    const std::array<int, comm::kNumLinkClasses>& group_size_of);

/// The fitted levels as a runtime policy (mode = kAdaptive).
comm::CollectivePolicy to_policy(
    const std::array<LevelFit, comm::kNumLinkClasses>& level);

}  // namespace hpcg::tune

#include "tune/fit.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <set>
#include <utility>

namespace hpcg::tune {

namespace {

/// Design-matrix row of one sample: cost = row[0]*alpha + row[1]*s +
/// row[2]*(1/beta), matching the kDefault formulas of comm/policy.cpp
/// (levels(g) = bit_width(g-1)).
std::array<double, 3> row_of(const SweepPoint& p) {
  const double g = p.group_size;
  const double b = static_cast<double>(p.bytes);
  const double lv = std::bit_width(static_cast<unsigned>(p.group_size - 1));
  switch (p.pattern) {
    case Pattern::kP2p:
      return {1.0, 1.0, b};
    case Pattern::kAllReduce:
      return {2.0 * lv, 1.0, 2.0 * b * (g - 1.0) / g};
    case Pattern::kBroadcast:
      return {lv, 1.0, b};
    case Pattern::kAllGatherV:
      return {lv, 1.0, b * (g - 1.0) / g};
    case Pattern::kAllToAllV:
      return {g - 1.0, g - 1.0, b};
  }
  return {0.0, 0.0, 0.0};
}

/// Solves the 3x3 normal equations M x = v (column-scaled Gaussian
/// elimination with partial pivoting). Returns false when singular.
bool solve3(std::array<std::array<double, 3>, 3> m, std::array<double, 3> v,
            std::array<double, 3>& x) {
  // Scale columns to comparable magnitude (the 1/beta column's byte
  // coefficients dwarf the latency columns by ~6 orders of magnitude).
  std::array<double, 3> scale{};
  for (int j = 0; j < 3; ++j) {
    double mx = 0.0;
    for (int i = 0; i < 3; ++i) mx = std::max(mx, std::abs(m[i][j]));
    if (mx <= 0.0) return false;  // column absent: underdetermined
    scale[j] = 1.0 / mx;
    for (int i = 0; i < 3; ++i) m[i][j] *= scale[j];
  }
  std::array<int, 3> perm = {0, 1, 2};
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int i = col + 1; i < 3; ++i) {
      if (std::abs(m[i][col]) > std::abs(m[pivot][col])) pivot = i;
    }
    if (std::abs(m[pivot][col]) < 1e-14) return false;
    std::swap(m[col], m[pivot]);
    std::swap(v[col], v[pivot]);
    std::swap(perm[col], perm[pivot]);
    for (int i = col + 1; i < 3; ++i) {
      const double f = m[i][col] / m[col][col];
      for (int j = col; j < 3; ++j) m[i][j] -= f * m[col][j];
      v[i] -= f * v[col];
    }
  }
  for (int i = 2; i >= 0; --i) {
    double s = v[i];
    for (int j = i + 1; j < 3; ++j) s -= m[i][j] * x[j];
    x[i] = s / m[i][i];
  }
  for (int j = 0; j < 3; ++j) x[j] *= scale[j];
  return true;
}

}  // namespace

FitResult fit_sweep(const std::vector<SweepPoint>& sweep) {
  if (sweep.empty()) {
    throw FitError("fit: empty sweep (no samples to fit)");
  }
  FitResult result;
  std::array<int, comm::kNumLinkClasses> max_group{};
  for (int cls_i = 0; cls_i < comm::kNumLinkClasses; ++cls_i) {
    const auto cls = static_cast<comm::LinkClass>(cls_i);
    std::vector<const SweepPoint*> samples;
    std::set<std::size_t> distinct_bytes;
    for (const SweepPoint& p : sweep) {
      if (p.level != cls) continue;
      samples.push_back(&p);
      distinct_bytes.insert(p.bytes);
      max_group[static_cast<std::size_t>(cls_i)] =
          std::max(max_group[static_cast<std::size_t>(cls_i)], p.group_size);
    }
    if (samples.empty()) continue;  // level not swept: stays invalid
    const std::string name = comm::to_string(cls);
    if (distinct_bytes.size() < 2) {
      throw FitError("fit: level '" + name +
                     "' was swept at a single message size — cannot "
                     "separate latency from bandwidth (need >= 2 sizes)");
    }
    // Accumulate the normal equations sum(r^T r) x = sum(r^T y).
    std::array<std::array<double, 3>, 3> m{};
    std::array<double, 3> v{};
    for (const SweepPoint* p : samples) {
      const auto r = row_of(*p);
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) m[i][j] += r[i] * r[j];
        v[i] += r[i] * p->seconds;
      }
    }
    std::array<double, 3> x{};
    if (!solve3(m, v, x)) {
      throw FitError("fit: level '" + name +
                     "' has a singular design matrix — the pattern mix "
                     "cannot identify (alpha, software_alpha, 1/beta)");
    }
    // Tiny negative latencies are least-squares roundoff; clamp.
    double alpha = std::max(0.0, x[0]);
    double soft = std::max(0.0, x[1]);
    const double inv_beta = x[2];
    // A constant-latency level fits 1/beta ~ 0, i.e. infinite bandwidth:
    // reject instead of shipping a nonsensical model. The relative test
    // asks whether the bandwidth term explains any cost at the largest
    // observed message.
    double max_bw_term = 0.0;
    double max_y = 0.0;
    for (const SweepPoint* p : samples) {
      max_bw_term = std::max(max_bw_term,
                             row_of(*p)[2] * std::max(0.0, inv_beta));
      max_y = std::max(max_y, p->seconds);
    }
    if (!std::isfinite(inv_beta) || inv_beta <= 0.0 ||
        max_bw_term <= 1e-9 * max_y) {
      throw FitError("fit: level '" + name +
                     "' shows no bandwidth dependence (constant latency "
                     "across sizes) — beta is unrecoverable");
    }
    const double beta = 1.0 / inv_beta;
    if (!std::isfinite(beta) || beta <= 0.0) {
      throw FitError("fit: level '" + name +
                     "' produced a non-finite or non-positive beta");
    }
    LevelFit& fit = result.level[static_cast<std::size_t>(cls_i)];
    fit.valid = true;
    fit.alpha_s = alpha;
    fit.software_alpha_s = soft;
    fit.beta_bytes_s = beta;
    fit.samples = static_cast<int>(samples.size());
    for (const SweepPoint* p : samples) {
      const auto r = row_of(*p);
      const double pred = r[0] * alpha + r[1] * soft + r[2] * inv_beta;
      const double denom = std::max(p->seconds, 1e-300);
      fit.max_rel_error =
          std::max(fit.max_rel_error, std::abs(pred - p->seconds) / denom);
    }
  }
  result.crossovers = compute_crossovers(result.level, max_group);
  return result;
}

comm::CollectivePolicy to_policy(
    const std::array<LevelFit, comm::kNumLinkClasses>& level) {
  comm::CollectivePolicy policy;
  policy.mode = comm::CollectivePolicy::Mode::kAdaptive;
  for (int i = 0; i < comm::kNumLinkClasses; ++i) {
    const LevelFit& f = level[static_cast<std::size_t>(i)];
    auto& dst = policy.level[static_cast<std::size_t>(i)];
    dst.valid = f.valid;
    dst.alpha_s = f.alpha_s;
    dst.beta_bytes_s = f.beta_bytes_s;
    dst.software_alpha_s = f.software_alpha_s;
  }
  return policy;
}

std::vector<Crossover> compute_crossovers(
    const std::array<LevelFit, comm::kNumLinkClasses>& level,
    const std::array<int, comm::kNumLinkClasses>& group_size_of) {
  const comm::CollectivePolicy policy = to_policy(level);
  static constexpr comm::CollectiveOp kOps[] = {
      comm::CollectiveOp::kAllReduce, comm::CollectiveOp::kBroadcast,
      comm::CollectiveOp::kAllGather, comm::CollectiveOp::kAllToAllV};
  std::vector<Crossover> crossovers;
  for (int cls_i = 1; cls_i < comm::kNumLinkClasses; ++cls_i) {
    if (!level[static_cast<std::size_t>(cls_i)].valid) continue;
    const auto cls = static_cast<comm::LinkClass>(cls_i);
    const int g = group_size_of[static_cast<std::size_t>(cls_i)];
    if (g < 2) continue;
    for (const comm::CollectiveOp op : kOps) {
      comm::CollectiveAlgo prev = policy.select(op, cls, g, 1);
      for (std::size_t b = 2; b <= (std::size_t{64} << 20); b *= 2) {
        const comm::CollectiveAlgo cur = policy.select(op, cls, g, b);
        if (cur != prev) {
          crossovers.push_back({op, cls, g, b, prev, cur});
          prev = cur;
        }
      }
    }
  }
  return crossovers;
}

}  // namespace hpcg::tune

#include "tune/sweep.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <istream>
#include <map>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "comm/comm.hpp"
#include "comm/runtime.hpp"
#include "comm/transport/thread_gang.hpp"
#include "util/parse.hpp"

namespace hpcg::tune {

const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::kP2p: return "p2p";
    case Pattern::kAllReduce: return "allreduce";
    case Pattern::kBroadcast: return "broadcast";
    case Pattern::kAllGatherV: return "allgatherv";
    case Pattern::kAllToAllV: return "alltoallv";
  }
  return "?";
}

Pattern pattern_from_string(const std::string& name) {
  if (name == "p2p") return Pattern::kP2p;
  if (name == "allreduce") return Pattern::kAllReduce;
  if (name == "broadcast") return Pattern::kBroadcast;
  if (name == "allgatherv") return Pattern::kAllGatherV;
  if (name == "alltoallv") return Pattern::kAllToAllV;
  throw std::invalid_argument("unknown sweep pattern: " + name);
}

std::vector<std::size_t> geometric_sizes(std::size_t min_bytes,
                                         std::size_t max_bytes,
                                         std::size_t factor) {
  if (min_bytes < 1 || factor < 2 || max_bytes < min_bytes) {
    throw std::invalid_argument("geometric_sizes: need min >= 1, factor >= 2, max >= min");
  }
  std::vector<std::size_t> sizes;
  for (std::size_t b = min_bytes; b <= max_bytes; b *= factor) {
    sizes.push_back(b);
  }
  if (sizes.back() != max_bytes) sizes.push_back(max_bytes);
  return sizes;
}

namespace {

/// One scheduled measurement. `elems` is the per-unit element count the
/// body uses (message bytes for p2p, payload doubles for allreduce /
/// broadcast, per-member doubles for allgatherv, per-destination doubles
/// for alltoallv); `record_bytes` is the resulting cost-formula argument.
struct PlanEntry {
  Pattern pattern;
  comm::LinkClass level;
  int group_size;   // 2 for p2p
  int partner;      // p2p peer world rank (0 otherwise)
  std::size_t elems;
  std::size_t record_bytes;
};

bool wants(const std::vector<Pattern>& patterns, Pattern p) {
  return patterns.empty() ||
         std::find(patterns.begin(), patterns.end(), p) != patterns.end();
}

}  // namespace

std::vector<SweepPoint> run_sweep(const SweepOptions& options) {
  using comm::LinkClass;
  const comm::Topology& topo = options.topo;
  const int nranks = topo.nranks();
  if (nranks < 2) {
    throw std::invalid_argument("run_sweep: need at least 2 ranks, got " +
                                std::to_string(nranks));
  }
  if (options.reps < 1) {
    throw std::invalid_argument("run_sweep: reps must be >= 1, got " +
                                std::to_string(options.reps));
  }
  const int reps = options.reps;
  const std::vector<std::size_t> sizes =
      options.sizes.empty() ? geometric_sizes() : options.sizes;

  // Communication-only measurement: with compute_scale = 0 (and no traced
  // kernels in the body), every virtual-clock advance is a CostModel
  // charge, so clock deltas are exact modeled durations.
  comm::CostParams cost = options.cost;
  cost.compute_scale = 0.0;
  cost.trace = false;

  std::vector<PlanEntry> plan;

  // Ping-pong pairs: rank 0 against the nearest rank of each link class.
  if (wants(options.patterns, Pattern::kP2p)) {
    std::array<bool, comm::kNumLinkClasses> seen{};
    for (const int b : {1, topo.clique_size(), topo.gpus_per_node()}) {
      if (b < 1 || b >= nranks) continue;
      const LinkClass cls = topo.link_class(0, b);
      auto& taken = seen[static_cast<std::size_t>(cls)];
      if (cls == LinkClass::kSelf || taken) continue;
      taken = true;
      for (const std::size_t bytes : sizes) {
        plan.push_back({Pattern::kP2p, cls, 2, b, bytes, bytes});
      }
    }
  }

  // Consecutive-prefix groups {0..k-1}, one per topology level present.
  std::vector<int> group_sizes;
  for (const int k : {topo.clique_size(), topo.gpus_per_node(), nranks}) {
    if (k < 2 || k > nranks) continue;
    if (std::find(group_sizes.begin(), group_sizes.end(), k) ==
        group_sizes.end()) {
      group_sizes.push_back(k);
    }
  }
  for (const int k : group_sizes) {
    // Worst link of a consecutive prefix is between its endpoints.
    const LinkClass level = topo.link_class(0, k - 1);
    const double g = k;
    for (const std::size_t bytes : sizes) {
      if (wants(options.patterns, Pattern::kAllReduce)) {
        const std::size_t el = std::max<std::size_t>(1, bytes / sizeof(double));
        plan.push_back(
            {Pattern::kAllReduce, level, k, 0, el, el * sizeof(double)});
      }
      if (wants(options.patterns, Pattern::kBroadcast)) {
        const std::size_t el = std::max<std::size_t>(1, bytes / sizeof(double));
        plan.push_back(
            {Pattern::kBroadcast, level, k, 0, el, el * sizeof(double)});
      }
      if (wants(options.patterns, Pattern::kAllGatherV)) {
        const std::size_t el = std::max<std::size_t>(
            1, bytes / (static_cast<std::size_t>(g) * sizeof(double)));
        plan.push_back({Pattern::kAllGatherV, level, k, 0, el,
                        static_cast<std::size_t>(g) * el * sizeof(double)});
      }
      if (wants(options.patterns, Pattern::kAllToAllV) && k >= 2) {
        const std::size_t el = std::max<std::size_t>(
            1, bytes / (static_cast<std::size_t>(k - 1) * sizeof(double)));
        // Uniform exchange, nothing to self: max per-rank traffic is the
        // common send total (g-1) * el doubles.
        plan.push_back({Pattern::kAllToAllV, level, k, 0, el,
                        static_cast<std::size_t>(k - 1) * el * sizeof(double)});
      }
    }
  }

  std::vector<double> measured(plan.size(), 0.0);
  const auto body =
      [&](comm::Comm& world) {
        std::map<int, comm::Comm> groups;
        for (const int k : group_sizes) {
          groups.emplace(k, world.split(world.rank() < k ? 0 : 1, world.rank()));
        }
        std::vector<std::byte> pbuf, prec;
        std::vector<double> dbuf, drec;
        std::vector<std::size_t> counts;
        for (std::size_t i = 0; i < plan.size(); ++i) {
          const PlanEntry& e = plan[i];
          const int tag = 7000 + static_cast<int>(i);
          if (e.pattern == Pattern::kP2p) {
            world.barrier();  // synchronize the pair's clocks
            if (world.rank() == 0) {
              pbuf.assign(e.elems, std::byte{0});
              const double t0 = world.vclock();
              for (int r = 0; r < reps; ++r) {
                world.send(std::span<const std::byte>(pbuf), e.partner, tag);
                world.recv(e.partner, tag, prec);
              }
              // One half of a round trip = one message's modeled cost.
              measured[i] = (world.vclock() - t0) / (2.0 * reps);
            } else if (world.rank() == e.partner) {
              for (int r = 0; r < reps; ++r) {
                world.recv(0, tag, prec);
                world.send(std::span<const std::byte>(prec), 0, tag);
              }
            }
            continue;
          }
          if (world.rank() >= e.group_size) continue;
          comm::Comm& c = groups.at(e.group_size);
          c.barrier();  // align member clocks so deltas are pure op cost
          const double t0 = c.vclock();
          for (int r = 0; r < reps; ++r) {
            switch (e.pattern) {
              case Pattern::kAllReduce:
                dbuf.assign(e.elems, 1.0);
                c.allreduce(std::span<double>(dbuf), comm::ReduceOp::kSum);
                break;
              case Pattern::kBroadcast:
                dbuf.assign(e.elems, 1.0);
                c.broadcast(std::span<double>(dbuf), 0);
                break;
              case Pattern::kAllGatherV:
                dbuf.assign(e.elems, 1.0);
                c.allgatherv(std::span<const double>(dbuf), drec, &counts);
                break;
              case Pattern::kAllToAllV: {
                dbuf.assign(
                    static_cast<std::size_t>(e.group_size - 1) * e.elems, 1.0);
                counts.assign(static_cast<std::size_t>(e.group_size), e.elems);
                counts[static_cast<std::size_t>(c.rank())] = 0;
                c.alltoallv(std::span<const double>(dbuf),
                            std::span<const std::size_t>(counts), drec);
                break;
              }
              case Pattern::kP2p: break;  // handled above
            }
          }
          if (c.rank() == 0) measured[i] = (c.vclock() - t0) / reps;
        }
      };
  // Leader-only writes into `measured` (world rank 0 owns every index, and
  // prefix-group rank 0 IS world rank 0), so the same body is race-free on
  // both substrates.
  if (options.socket_transport) {
    comm::transport::run_socket_threads(nranks, topo, comm::CostModel(cost),
                                        comm::RunOptions{}, body);
  } else {
    comm::Runtime::run(nranks, topo, comm::CostModel(cost),
                       comm::RunOptions{}, body);
  }

  std::vector<SweepPoint> points;
  points.reserve(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const PlanEntry& e = plan[i];
    points.push_back(
        {e.pattern, e.level, e.group_size, e.record_bytes, measured[i], reps});
  }
  return points;
}

void write_sweep_csv(std::ostream& out, const std::vector<SweepPoint>& sweep) {
  out << "pattern,level,group_size,bytes,seconds,reps\n";
  out.precision(17);
  for (const SweepPoint& p : sweep) {
    out << to_string(p.pattern) << ',' << comm::to_string(p.level) << ','
        << p.group_size << ',' << p.bytes << ',' << p.seconds << ',' << p.reps
        << '\n';
  }
}

std::vector<SweepPoint> read_sweep_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) ||
      line != "pattern,level,group_size,bytes,seconds,reps") {
    throw std::invalid_argument(
        "sweep CSV: missing or unknown header (expected "
        "'pattern,level,group_size,bytes,seconds,reps')");
  }
  std::vector<SweepPoint> sweep;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string field;
    std::array<std::string, 6> fields;
    std::size_t n = 0;
    while (std::getline(row, field, ',')) {
      if (n >= fields.size()) break;
      fields[n++] = field;
    }
    if (n != fields.size()) {
      throw std::invalid_argument("sweep CSV line " + std::to_string(lineno) +
                                  ": expected 6 fields, got " +
                                  std::to_string(n));
    }
    const auto bad = [lineno](const std::string& what) {
      return std::invalid_argument("sweep CSV line " + std::to_string(lineno) +
                                   ": " + what);
    };
    SweepPoint p;
    try {
      p.pattern = pattern_from_string(fields[0]);
      p.level = comm::link_class_from_string(fields[1]);
    } catch (const std::exception& e) {
      throw bad(e.what());
    }
    // Strict numeric parsing (util/parse.hpp): trailing garbage, overflow
    // and empty fields are malformed rows, not silently truncated values.
    const auto group_size = util::parse_int32(fields[2]);
    if (!group_size) throw bad("malformed group_size '" + fields[2] + "'");
    const auto bytes = util::parse_uint64(fields[3]);
    if (!bytes) throw bad("malformed bytes '" + fields[3] + "'");
    const auto seconds = util::parse_double(fields[4]);
    if (!seconds) throw bad("malformed seconds '" + fields[4] + "'");
    const auto reps_field = util::parse_int32(fields[5]);
    if (!reps_field) throw bad("malformed reps '" + fields[5] + "'");
    p.group_size = *group_size;
    p.bytes = static_cast<std::size_t>(*bytes);
    p.seconds = *seconds;
    p.reps = *reps_field;
    sweep.push_back(p);
  }
  return sweep;
}

}  // namespace hpcg::tune

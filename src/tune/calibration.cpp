#include "tune/calibration.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <utility>

namespace hpcg::tune {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the calibration schema (objects,
// arrays, strings, numbers, bools, null), with positioned error messages.
// Kept local on purpose: the repo takes no external dependencies.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw CalibrationError("calibration JSON, offset " +
                           std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" +
                          text_[pos_] + "'");
    ++pos_;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.string = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      literal("null");
      return {};
    }
    return number();
  }

  void literal(const std::string& word) {
    skip_ws();
    if (text_.compare(pos_, word.size(), word) != 0) {
      fail("expected '" + word + "'");
    }
    pos_ += word.size();
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) fail("expected a number");
    if (!std::isfinite(d)) fail("non-finite number");
    pos_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: fail(std::string("unsupported escape '\\") + e + "'");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      const char c = peek();
      if (c == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      const std::string key = string();
      expect(':');
      v.object.emplace(key, value());
      const char c = peek();
      if (c == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Type type, const char* type_name) {
  if (obj.type != JsonValue::Type::kObject) {
    throw CalibrationError("calibration JSON: expected an object around '" +
                           key + "'");
  }
  const auto it = obj.object.find(key);
  if (it == obj.object.end()) {
    throw CalibrationError("calibration JSON: missing key '" + key + "'");
  }
  if (it->second.type != type) {
    throw CalibrationError("calibration JSON: key '" + key + "' must be " +
                           type_name);
  }
  return it->second;
}

double require_number(const JsonValue& obj, const std::string& key) {
  return require(obj, key, JsonValue::Type::kNumber, "a number").number;
}

std::string require_string(const JsonValue& obj, const std::string& key) {
  return require(obj, key, JsonValue::Type::kString, "a string").string;
}

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

comm::CollectiveOp op_from_name(const std::string& name) {
  if (name == "allreduce") return comm::CollectiveOp::kAllReduce;
  if (name == "broadcast") return comm::CollectiveOp::kBroadcast;
  if (name == "allgather") return comm::CollectiveOp::kAllGather;
  if (name == "allgatherv") return comm::CollectiveOp::kAllGatherV;
  if (name == "alltoallv") return comm::CollectiveOp::kAllToAllV;
  throw CalibrationError("calibration JSON: unknown collective op '" + name +
                         "'");
}

comm::CollectiveAlgo algo_from_name(const std::string& name) {
  if (name == "default") return comm::CollectiveAlgo::kDefault;
  if (name == "ring") return comm::CollectiveAlgo::kRing;
  if (name == "tree") return comm::CollectiveAlgo::kTree;
  if (name == "direct") return comm::CollectiveAlgo::kDirect;
  throw CalibrationError("calibration JSON: unknown algorithm '" + name +
                         "'");
}

comm::LinkClass level_from_name(const std::string& name) {
  try {
    return comm::link_class_from_string(name);
  } catch (const std::invalid_argument& e) {
    throw CalibrationError(std::string("calibration JSON: ") + e.what());
  }
}

}  // namespace

std::string Calibration::to_json() const {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "{\n";
  out << "  \"version\": " << version << ",\n";
  out << "  \"topology\": ";
  write_escaped(out, topology);
  out << ",\n";
  out << "  \"nranks\": " << nranks << ",\n";
  out << "  \"levels\": {";
  bool first = true;
  for (int i = 0; i < comm::kNumLinkClasses; ++i) {
    const LevelFit& f = level[static_cast<std::size_t>(i)];
    if (!f.valid) continue;
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << comm::to_string(static_cast<comm::LinkClass>(i))
        << "\": {\"alpha_s\": " << f.alpha_s
        << ", \"beta_bytes_s\": " << f.beta_bytes_s
        << ", \"software_alpha_s\": " << f.software_alpha_s
        << ", \"samples\": " << f.samples
        << ", \"max_rel_error\": " << f.max_rel_error << "}";
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"crossovers\": [";
  for (std::size_t i = 0; i < crossovers.size(); ++i) {
    const Crossover& c = crossovers[i];
    if (i) out << ",";
    out << "\n    {\"op\": \"" << comm::to_string(c.op) << "\", \"level\": \""
        << comm::to_string(c.level) << "\", \"group_size\": " << c.group_size
        << ", \"bytes\": " << c.bytes << ", \"below\": \""
        << comm::to_string(c.below) << "\", \"above\": \""
        << comm::to_string(c.above) << "\"}";
  }
  out << (crossovers.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

Calibration Calibration::from_json(const std::string& text) {
  const JsonValue root = JsonParser(text).parse();
  if (root.type != JsonValue::Type::kObject) {
    throw CalibrationError("calibration JSON: document must be an object");
  }
  Calibration cal;
  const double version = require_number(root, "version");
  cal.version = static_cast<int>(version);
  if (cal.version != kVersion) {
    throw CalibrationError(
        "unsupported calibration version " + std::to_string(cal.version) +
        " (this build reads version " + std::to_string(kVersion) +
        "); re-run 'hpcg_tune sweep' + 'hpcg_tune fit'");
  }
  cal.topology = require_string(root, "topology");
  cal.nranks = static_cast<int>(require_number(root, "nranks"));
  if (cal.nranks < 0) {
    throw CalibrationError("calibration JSON: nranks must be >= 0");
  }
  const JsonValue& levels =
      require(root, "levels", JsonValue::Type::kObject, "an object");
  for (const auto& [name, entry] : levels.object) {
    const comm::LinkClass cls = level_from_name(name);
    if (cls == comm::LinkClass::kSelf) {
      throw CalibrationError(
          "calibration JSON: the 'self' level cannot carry a fit");
    }
    LevelFit& f = cal.level[static_cast<std::size_t>(cls)];
    f.valid = true;
    f.alpha_s = require_number(entry, "alpha_s");
    f.beta_bytes_s = require_number(entry, "beta_bytes_s");
    f.software_alpha_s = require_number(entry, "software_alpha_s");
    f.samples = static_cast<int>(require_number(entry, "samples"));
    f.max_rel_error = require_number(entry, "max_rel_error");
    if (f.alpha_s < 0.0 || f.software_alpha_s < 0.0 ||
        !(f.beta_bytes_s > 0.0)) {
      throw CalibrationError("calibration JSON: level '" + name +
                             "' has out-of-range constants (need alpha >= 0, "
                             "software_alpha >= 0, beta > 0)");
    }
  }
  const JsonValue& crossovers =
      require(root, "crossovers", JsonValue::Type::kArray, "an array");
  for (const JsonValue& entry : crossovers.array) {
    Crossover c;
    c.op = op_from_name(require_string(entry, "op"));
    c.level = level_from_name(require_string(entry, "level"));
    c.group_size = static_cast<int>(require_number(entry, "group_size"));
    c.bytes = static_cast<std::size_t>(require_number(entry, "bytes"));
    c.below = algo_from_name(require_string(entry, "below"));
    c.above = algo_from_name(require_string(entry, "above"));
    cal.crossovers.push_back(c);
  }
  return cal;
}

void Calibration::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw CalibrationError("cannot open calibration file for writing: " +
                           path);
  }
  out << to_json();
  if (!out) {
    throw CalibrationError("failed writing calibration file: " + path);
  }
}

Calibration Calibration::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw CalibrationError("cannot open calibration file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return from_json(buf.str());
  } catch (const CalibrationError& e) {
    throw CalibrationError(path + ": " + e.what());
  }
}

Calibration make_calibration(const comm::Topology& topo,
                             const FitResult& fit) {
  Calibration cal;
  cal.topology = topo.describe();
  cal.nranks = topo.nranks();
  cal.level = fit.level;
  cal.crossovers = fit.crossovers;
  return cal;
}

Calibration reference_calibration(const comm::Topology& topo,
                                  const comm::CostParams& cost) {
  Calibration cal;
  cal.topology = topo.describe();
  cal.nranks = topo.nranks();
  std::array<int, comm::kNumLinkClasses> group_size_of{};
  for (int i = 1; i < comm::kNumLinkClasses; ++i) {
    const auto cls = static_cast<comm::LinkClass>(i);
    const comm::LinkParams& p = topo.params(cls);
    LevelFit& f = cal.level[static_cast<std::size_t>(i)];
    f.valid = true;
    f.alpha_s = p.alpha_s;
    f.beta_bytes_s = p.beta_bytes_s * cost.bw_derate;
    f.software_alpha_s = cost.software_alpha_s;
    f.samples = 0;  // derived, not measured
    f.max_rel_error = 0.0;
  }
  // Natural group span of each level: the clique, the node, the world.
  group_size_of[static_cast<std::size_t>(comm::LinkClass::kNvlink)] =
      std::min(topo.clique_size(), topo.nranks());
  group_size_of[static_cast<std::size_t>(comm::LinkClass::kIntraNode)] =
      std::min(topo.gpus_per_node(), topo.nranks());
  group_size_of[static_cast<std::size_t>(comm::LinkClass::kNetwork)] =
      topo.nranks();
  cal.crossovers = compute_crossovers(cal.level, group_size_of);
  return cal;
}

}  // namespace hpcg::tune

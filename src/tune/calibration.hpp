// Versioned calibration artifact: the serialized product of a sweep + fit,
// loadable into a runtime CollectivePolicy.
//
// calibration.json is the hand-off point between `hpcg_tune` (offline
// sweep/fit) and the tools' `--calibration=` flag (online adaptive
// selection). The file is plain JSON, written and parsed here without any
// external dependency; schema in docs/TUNING.md. Loading is strict:
// missing files, malformed JSON, unknown versions, and out-of-range values
// all raise the typed CalibrationError so CLIs can print usage instead of
// crashing.
#pragma once

#include <array>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/policy.hpp"
#include "comm/topology.hpp"
#include "tune/fit.hpp"

namespace hpcg::tune {

/// Typed failure of calibration (de)serialization: missing file, malformed
/// JSON, unsupported version, out-of-range values.
class CalibrationError : public std::runtime_error {
 public:
  explicit CalibrationError(const std::string& what)
      : std::runtime_error(what) {}
};

struct Calibration {
  static constexpr int kVersion = 1;

  int version = kVersion;
  /// Human-readable provenance (Topology::describe of the swept machine).
  std::string topology;
  int nranks = 0;
  std::array<LevelFit, comm::kNumLinkClasses> level{};
  std::vector<Crossover> crossovers;

  /// The calibration as a runtime policy (mode = kAdaptive; unfitted
  /// levels stay invalid and fall back to default selection).
  comm::CollectivePolicy to_policy() const { return tune::to_policy(level); }

  std::string to_json() const;
  /// Throws CalibrationError on malformed input or version mismatch.
  static Calibration from_json(const std::string& text);

  /// File round-trip; load() wraps open/parse failures in CalibrationError
  /// messages that name the path.
  void save(const std::string& path) const;
  static Calibration load(const std::string& path);
};

/// Stamps a fit with the swept machine's identity.
Calibration make_calibration(const comm::Topology& topo,
                             const FitResult& fit);

/// The calibration a perfect sweep of (topo, cost) would produce: fitted
/// constants copied straight from the configured link parameters (beta
/// pre-multiplied by bw_derate, software_alpha from the cost params), with
/// crossovers computed at each level's natural group size. This is what
/// hpcg_check's `pol=adaptive` runs and the fitter round-trip tests compare
/// against, and the reference side of `hpcg_tune diff`.
Calibration reference_calibration(const comm::Topology& topo,
                                  const comm::CostParams& cost = {});

}  // namespace hpcg::tune

// Deterministic communication microbench suite (the measurement half of the
// autotuner, paper §5 "communication was likely our largest bottleneck").
//
// run_sweep drives the *real* comm::Comm collective and p2p paths — the
// same templates every algorithm uses, through Runtime::run's rank threads
// — across pattern x message-size x topology-level, and reads the modeled
// durations off the virtual clocks. compute_scale is forced to zero for the
// sweep, so virtual-clock deltas are exactly the CostModel's charges: the
// sweep is bit-deterministic and the least-squares fitter (fit.hpp) can
// recover the substrate's (alpha, beta, software_alpha) to within roundoff.
// Sweeping the simulator instead of hardware is the point: the fitted
// calibration must agree with the configured Topology, which is what
// tests/test_tune.cpp asserts and `hpcg_tune diff` inspects.
//
// Topology levels are exercised with consecutive-prefix groups {0..k-1}:
// k = clique size stays on NVLink (leaf), k = GPUs per node spans cliques
// through the host (intermediate), k = nranks spans the interconnect
// (root). Ping-pong pairs (0,1), (0,clique), (0,gpus_per_node) cover the
// same levels for p2p.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/topology.hpp"

namespace hpcg::tune {

/// Communication patterns the sweep can exercise.
enum class Pattern : int {
  kP2p,        // blocking send/recv ping-pong (half round trip recorded)
  kAllReduce,  // Comm::allreduce, double sum
  kBroadcast,  // Comm::broadcast from group rank 0
  kAllGatherV, // Comm::allgatherv, equal contributions
  kAllToAllV,  // Comm::alltoallv, uniform personalized exchange
};

inline constexpr int kNumPatterns = 5;

const char* to_string(Pattern p);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
Pattern pattern_from_string(const std::string& name);

/// One measured sample. `bytes` is the exact argument the cost formula saw
/// (payload for allreduce/broadcast and p2p, aggregated total for
/// allgatherv, max per-rank traffic for alltoallv), so the fitter's design
/// matrix lines up with the model without re-deriving conventions.
struct SweepPoint {
  Pattern pattern = Pattern::kP2p;
  comm::LinkClass level = comm::LinkClass::kNvlink;
  int group_size = 2;
  std::size_t bytes = 0;
  double seconds = 0.0;  // modeled duration of one operation
  int reps = 1;
};

/// Geometric message-size ladder: `factor`-spaced from min_bytes, with
/// max_bytes always included as the final rung.
std::vector<std::size_t> geometric_sizes(std::size_t min_bytes = 8,
                                         std::size_t max_bytes = 1 << 20,
                                         std::size_t factor = 4);

struct SweepOptions {
  comm::Topology topo = comm::Topology::aimos(12);
  /// Cost parameters of the substrate under calibration. compute_scale is
  /// ignored (forced to 0 — the sweep measures communication only).
  comm::CostParams cost = {};
  /// Patterns to exercise; empty = all of them.
  std::vector<Pattern> patterns = {};
  /// Message-size ladder; empty = geometric_sizes().
  std::vector<std::size_t> sizes = {};
  /// Repetitions averaged per sample (the model is deterministic, so this
  /// only guards against future cost-model stochasticity).
  int reps = 3;
  /// Run the sweep over the socket transport (one endpoint per rank
  /// thread, real framed messages) instead of the modeled shm substrate.
  /// Durations are then wall-clock: the resulting calibration describes
  /// this machine's socket stack, not the configured Topology, and is
  /// meant for `hpcg_tune diff` against the modeled one (docs/TUNING.md).
  bool socket_transport = false;
};

/// Runs the sweep and returns one point per (pattern, level, size). Throws
/// std::invalid_argument for unusable options (< 2 ranks, reps < 1).
std::vector<SweepPoint> run_sweep(const SweepOptions& options);

/// CSV round-trip: header `pattern,level,group_size,bytes,seconds,reps`.
void write_sweep_csv(std::ostream& out, const std::vector<SweepPoint>& sweep);
/// Throws std::invalid_argument on malformed rows or an unknown header.
std::vector<SweepPoint> read_sweep_csv(std::istream& in);

}  // namespace hpcg::tune

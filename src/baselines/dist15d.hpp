// 1.5D (hybrid) distribution baseline.
//
// The intermediate point in the paper's lineage (§1): a 1D base
// distribution in which "selected large degree vertices are shared among
// multiple ranks, vastly improving load balance for irregular graphs"
// (PowerGraph-style vertex cuts are the general form). Here:
//
//   * vertices with degree above `threshold x average` are *heavy*; their
//     adjacency lists are dealt round-robin across all ranks and their
//     state is replicated everywhere, reduced with one world AllReduce
//     per exchange (the heavy set is small, so the volume is bounded);
//   * all other vertices follow the 1D row distribution with a
//     subscription-based ghost layer.
//
// Completes the 1D / 1.5D / 2D comparison of the distribution-model
// extension benchmark: 1.5D fixes 1D's load imbalance but keeps its
// O(p^2) light-ghost message scaling, which the 2D method removes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "comm/comm.hpp"
#include "core/grid.hpp"
#include "graph/csr.hpp"
#include "graph/relabel.hpp"
#include "graph/types.hpp"

namespace hpcg::baselines {

using graph::Gid;
using graph::Lid;

class Partitioned15D {
 public:
  /// Vertices with (symmetrized) degree > `heavy_multiple` x average are
  /// shared. `global` must be in final (symmetrized) form.
  static Partitioned15D build(const graph::EdgeList& global, int nranks,
                              double heavy_multiple = 8.0);

  int nranks() const { return nranks_; }
  Gid n() const { return n_; }
  std::int64_t m_global() const { return m_global_; }
  const graph::StripedRelabel& relabel() const { return relabel_; }
  const core::BlockPartition& partition() const { return part_; }
  /// Heavy vertices by striped GID, sorted; identical on every rank.
  const std::vector<Gid>& heavy() const { return heavy_; }
  bool is_heavy(Gid striped) const {
    return heavy_lookup_.contains(striped);
  }
  /// Dense index of a heavy vertex within heavy() (for state addressing).
  std::int64_t heavy_index(Gid striped) const { return heavy_lookup_.at(striped); }

  const std::vector<graph::Edge>& edges_of(int rank) const { return edges_[rank]; }

 private:
  Partitioned15D(int nranks, Gid n, const graph::StripedRelabel& relabel)
      : nranks_(nranks), n_(n), relabel_(relabel), part_(n, nranks) {}

  int nranks_;
  Gid n_;
  std::int64_t m_global_ = 0;
  graph::StripedRelabel relabel_;
  core::BlockPartition part_;
  std::vector<Gid> heavy_;
  std::unordered_map<Gid, std::int64_t> heavy_lookup_;
  std::vector<std::vector<graph::Edge>> edges_{};
};

/// Rank-local 1.5D view. LID layout: owned light vertices first
/// ([0, n_owned_light)), then the replicated heavy set, then light ghosts.
class Dist15DGraph {
 public:
  Dist15DGraph(comm::Comm& world, const Partitioned15D& parts);

  Gid n() const { return parts_->n(); }
  std::int64_t m_global() const { return parts_->m_global(); }
  Lid n_owned_light() const { return n_owned_light_; }
  Lid heavy_begin() const { return n_owned_light_; }
  Lid heavy_count() const { return static_cast<Lid>(parts_->heavy().size()); }
  Lid n_total() const {
    return n_owned_light_ + heavy_count() + static_cast<Lid>(ghosts_.size());
  }
  const graph::Csr& csr() const { return csr_; }
  comm::Comm& world() { return *world_; }
  const Partitioned15D& partition() const { return *parts_; }

  Gid to_gid(Lid l) const;
  Lid to_lid(Gid striped) const;  // owned light, heavy, or known ghost
  bool owns_light(Gid striped) const {
    return !parts_->is_heavy(striped) && striped >= owned_offset_ &&
           striped < owned_offset_ + owned_count_;
  }

  /// Whether this rank is the *designated owner* of a vertex for result
  /// reporting (light: the 1D owner; heavy: rank 0).
  bool reports(Gid striped) const {
    if (parts_->is_heavy(striped)) return world_->rank() == 0;
    return striped >= owned_offset_ && striped < owned_offset_ + owned_count_;
  }

  /// Exchange: heavy slots are reduced over the world with `op`; changed
  /// light owned values are pushed to subscribed ghosts. `changed_light`
  /// lists owned light LIDs modified since the last exchange.
  template <class T>
  void exchange(std::span<T> state, std::span<const Lid> changed_light,
                comm::ReduceOp op);

  /// Gathers reported state into a striped-GID-indexed global vector.
  template <class T>
  std::vector<T> gather(std::span<const T> state);

 private:
  const Partitioned15D* parts_;
  comm::Comm* world_;
  Gid owned_offset_ = 0;
  Gid owned_count_ = 0;   // 1D range size (including heavies in range)
  Lid n_owned_light_ = 0;
  graph::Csr csr_;
  std::vector<Gid> owned_light_;  // LID -> striped GID
  std::unordered_map<Gid, Lid> light_lid_;  // striped GID -> owned light LID
  std::vector<Gid> ghosts_;
  std::unordered_map<Gid, Lid> ghost_lookup_;
  std::vector<std::vector<Lid>> subscriptions_;   // per rank: owned light LIDs
  std::vector<std::vector<std::uint8_t>> subscription_flags_;
  std::vector<std::vector<Lid>> ghost_by_owner_;
};

/// Baseline algorithms (same semantics as the 1D/2D versions).
std::vector<Gid> connected_components_15d(Dist15DGraph& g);
std::vector<std::int64_t> bfs_15d(Dist15DGraph& g, Gid root_original);

// ---------------------------------------------------------------------------

template <class T>
void Dist15DGraph::exchange(std::span<T> state, std::span<const Lid> changed_light,
                            comm::ReduceOp op) {
  // Heavy phase: one world AllReduce over the replicated heavy slice.
  if (heavy_count() > 0) {
    world_->allreduce(state.subspan(static_cast<std::size_t>(heavy_begin()),
                                    static_cast<std::size_t>(heavy_count())),
                      op);
  }
  // Light phase: subscription pushes, as in the 1D engine.
  struct Pair {
    Gid gid;
    T value;
  };
  std::vector<std::size_t> send_counts(static_cast<std::size_t>(world_->size()), 0);
  std::vector<std::vector<Pair>> outgoing(static_cast<std::size_t>(world_->size()));
  for (const Lid l : changed_light) {
    for (int r = 0; r < world_->size(); ++r) {
      if (subscription_flags_[static_cast<std::size_t>(r)][static_cast<std::size_t>(l)]) {
        outgoing[static_cast<std::size_t>(r)].push_back(
            {to_gid(l), state[static_cast<std::size_t>(l)]});
      }
    }
  }
  std::vector<Pair> send;
  for (int r = 0; r < world_->size(); ++r) {
    send_counts[static_cast<std::size_t>(r)] = outgoing[static_cast<std::size_t>(r)].size();
    send.insert(send.end(), outgoing[static_cast<std::size_t>(r)].begin(),
                outgoing[static_cast<std::size_t>(r)].end());
  }
  auto recv = world_->alltoallv(std::span<const Pair>(send),
                                std::span<const std::size_t>(send_counts));
  for (const auto& p : recv) {
    state[static_cast<std::size_t>(ghost_lookup_.at(p.gid))] = p.value;
  }
}

template <class T>
std::vector<T> Dist15DGraph::gather(std::span<const T> state) {
  struct Pair {
    Gid gid;
    T value;
  };
  std::vector<Pair> mine;
  for (Lid l = 0; l < n_owned_light_; ++l) {
    mine.push_back({to_gid(l), state[static_cast<std::size_t>(l)]});
  }
  if (world_->rank() == 0) {
    for (Lid h = 0; h < heavy_count(); ++h) {
      mine.push_back({parts_->heavy()[static_cast<std::size_t>(h)],
                      state[static_cast<std::size_t>(heavy_begin() + h)]});
    }
  }
  auto all = world_->allgatherv(std::span<const Pair>(mine));
  std::vector<T> out(static_cast<std::size_t>(n()));
  for (const auto& p : all) out[static_cast<std::size_t>(p.gid)] = p.value;
  return out;
}

}  // namespace hpcg::baselines

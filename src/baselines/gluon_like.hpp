// Gluon-like comparator (paper §5.7, Figure 9).
//
// Gluon-GPU runs a 2D Cartesian vertex cut (CVC) *on top of a
// general-purpose communication substrate*: updates travel as per-host
// {vertex, value} update lists assembled and sent point-to-point, rather
// than through communication patterns specialized for the 2D structure.
// The paper attributes Gluon's scaling collapse past ~64 ranks to exactly
// this substrate overhead ("'Gluon', the communication layer, was built
// for general-purpose communications ... this adds overhead relative to
// our optimized 2D communication methods").
//
// This baseline reproduces that mechanism: the same Dist2DGraph block
// partition and kernels, but every group exchange is a personalized
// all-to-all in which each rank ships its full update list to every other
// group member — (g-1)x payload duplication and O(g^2) messages per
// exchange instead of ring collectives. Benchmarks additionally run it
// under a CostModel with non-zero per-message software overhead and a
// serialization bandwidth derate (see CostParams), mirroring the generic
// payload format.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dist2d.hpp"

namespace hpcg::baselines {

using core::Gid;

/// Cost-model parameters the Figure 9 benchmark applies to Gluon-like runs.
comm::CostParams gluon_cost_params();

/// Pull PageRank over the CVC partition with generic update-list exchange.
std::vector<double> gluon_pagerank(core::Dist2DGraph& g, int iterations,
                                   double damping = 0.85);

/// Push color-propagation CC with generic update-list exchange.
std::vector<Gid> gluon_connected_components(core::Dist2DGraph& g);

/// Push (top-down) BFS with generic update-list exchange.
std::vector<std::int64_t> gluon_bfs(core::Dist2DGraph& g, Gid root_original);

}  // namespace hpcg::baselines

#include "baselines/dist15d.hpp"

#include <algorithm>

#include "core/work.hpp"

namespace hpcg::baselines {

Partitioned15D Partitioned15D::build(const graph::EdgeList& global, int nranks,
                                     double heavy_multiple) {
  graph::StripedRelabel relabel(global.n, nranks);
  Partitioned15D parts(nranks, global.n, relabel);
  parts.m_global_ = global.m();
  parts.edges_.resize(static_cast<std::size_t>(nranks));

  // Degrees in striped space; heavy = degree above the multiple of average.
  std::vector<std::int64_t> degree(static_cast<std::size_t>(global.n), 0);
  for (const auto& e : global.edges) {
    ++degree[static_cast<std::size_t>(relabel.to_new(e.u))];
  }
  const double average =
      static_cast<double>(global.m()) / static_cast<double>(std::max<Gid>(global.n, 1));
  const auto cutoff = static_cast<std::int64_t>(heavy_multiple * average);
  for (Gid v = 0; v < global.n; ++v) {
    if (degree[static_cast<std::size_t>(v)] > cutoff) {
      parts.heavy_lookup_.emplace(v, static_cast<std::int64_t>(parts.heavy_.size()));
      parts.heavy_.push_back(v);
    }
  }

  // Light edges go to the source's 1D owner; heavy-source adjacency is
  // dealt round-robin over all ranks (the 1.5D sharing).
  std::size_t deal = 0;
  for (const auto& e : global.edges) {
    const Gid u = relabel.to_new(e.u);
    const Gid v = relabel.to_new(e.v);
    const int owner = parts.heavy_lookup_.contains(u)
                          ? static_cast<int>(deal++ % static_cast<std::size_t>(nranks))
                          : parts.part_.part_of(u);
    parts.edges_[static_cast<std::size_t>(owner)].push_back({u, v});
  }
  return parts;
}

Gid Dist15DGraph::to_gid(Lid l) const {
  if (l < n_owned_light_) return owned_light_[static_cast<std::size_t>(l)];
  if (l < n_owned_light_ + heavy_count()) {
    return parts_->heavy()[static_cast<std::size_t>(l - n_owned_light_)];
  }
  return ghosts_[static_cast<std::size_t>(l - n_owned_light_ - heavy_count())];
}

Lid Dist15DGraph::to_lid(Gid striped) const {
  if (parts_->is_heavy(striped)) {
    return heavy_begin() + static_cast<Lid>(parts_->heavy_index(striped));
  }
  if (const auto it = light_lid_.find(striped); it != light_lid_.end()) {
    return it->second;
  }
  return ghost_lookup_.at(striped);
}

Dist15DGraph::Dist15DGraph(comm::Comm& world, const Partitioned15D& parts)
    : parts_(&parts),
      world_(&world),
      owned_offset_(parts.partition().start(world.rank())),
      owned_count_(parts.partition().count(world.rank())) {
  // Owned light vertices, in ascending striped order.
  for (Gid g = owned_offset_; g < owned_offset_ + owned_count_; ++g) {
    if (parts.is_heavy(g)) continue;
    light_lid_.emplace(g, static_cast<Lid>(owned_light_.size()));
    owned_light_.push_back(g);
  }
  n_owned_light_ = static_cast<Lid>(owned_light_.size());

  // Local CSR; discover light ghosts on the fly.
  const auto ghost_lid = [&](Gid g) {
    auto [it, inserted] = ghost_lookup_.try_emplace(
        g, n_owned_light_ + heavy_count() + static_cast<Lid>(ghosts_.size()));
    if (inserted) ghosts_.push_back(g);
    return it->second;
  };
  std::vector<graph::Edge> local;
  const auto& edges = parts.edges_of(world.rank());
  local.reserve(edges.size());
  for (const auto& e : edges) {
    const Lid u = parts.is_heavy(e.u)
                      ? heavy_begin() + static_cast<Lid>(parts.heavy_index(e.u))
                      : light_lid_.at(e.u);
    Lid v;
    if (parts.is_heavy(e.v)) {
      v = heavy_begin() + static_cast<Lid>(parts.heavy_index(e.v));
    } else if (const auto it = light_lid_.find(e.v); it != light_lid_.end()) {
      v = it->second;
    } else {
      v = ghost_lid(e.v);
    }
    local.push_back({u, v});
  }
  csr_ = graph::Csr(n_total(), local);

  // Subscription registration for light ghosts (as in the 1D engine).
  std::vector<std::vector<Gid>> requests(static_cast<std::size_t>(world.size()));
  ghost_by_owner_.resize(static_cast<std::size_t>(world.size()));
  for (std::size_t i = 0; i < ghosts_.size(); ++i) {
    const int owner = parts.partition().part_of(ghosts_[i]);
    requests[static_cast<std::size_t>(owner)].push_back(ghosts_[i]);
    ghost_by_owner_[static_cast<std::size_t>(owner)].push_back(
        n_owned_light_ + heavy_count() + static_cast<Lid>(i));
  }
  std::vector<std::size_t> send_counts(static_cast<std::size_t>(world.size()));
  std::vector<Gid> send;
  for (int r = 0; r < world.size(); ++r) {
    send_counts[static_cast<std::size_t>(r)] = requests[static_cast<std::size_t>(r)].size();
    send.insert(send.end(), requests[static_cast<std::size_t>(r)].begin(),
                requests[static_cast<std::size_t>(r)].end());
  }
  std::vector<std::size_t> recv_counts;
  auto received = world.alltoallv(std::span<const Gid>(send),
                                  std::span<const std::size_t>(send_counts),
                                  &recv_counts);
  subscriptions_.resize(static_cast<std::size_t>(world.size()));
  subscription_flags_.resize(static_cast<std::size_t>(world.size()));
  std::size_t offset = 0;
  for (int r = 0; r < world.size(); ++r) {
    auto& flags = subscription_flags_[static_cast<std::size_t>(r)];
    flags.assign(static_cast<std::size_t>(n_owned_light_), 0);
    for (std::size_t i = 0; i < recv_counts[static_cast<std::size_t>(r)]; ++i) {
      const Lid l = light_lid_.at(received[offset + i]);
      subscriptions_[static_cast<std::size_t>(r)].push_back(l);
      flags[static_cast<std::size_t>(l)] = 1;
    }
    offset += recv_counts[static_cast<std::size_t>(r)];
  }
}

std::vector<Gid> connected_components_15d(Dist15DGraph& g) {
  const auto n_total = static_cast<std::size_t>(g.n_total());
  std::vector<Gid> label(n_total);
  for (Lid l = 0; l < g.n_total(); ++l) label[static_cast<std::size_t>(l)] = g.to_gid(l);

  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  const Lid scan_end = g.heavy_begin() + g.heavy_count();  // light + heavy
  for (;;) {
    core::charge_kernel(g.world(), scan_end, g.csr().m());
    std::vector<Lid> changed_light;
    std::int64_t writes = 0;
    for (Lid v = 0; v < scan_end; ++v) {
      Gid best = label[static_cast<std::size_t>(v)];
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        best = std::min(best, label[static_cast<std::size_t>(adj[e])]);
      }
      if (best < label[static_cast<std::size_t>(v)]) {
        label[static_cast<std::size_t>(v)] = best;
        ++writes;
        if (v < g.n_owned_light()) changed_light.push_back(v);
      }
    }
    const auto global_writes =
        g.world().allreduce_one(writes, comm::ReduceOp::kSum);
    g.exchange(std::span(label), std::span<const Lid>(changed_light),
               comm::ReduceOp::kMin);
    if (global_writes == 0) break;
  }
  return label;
}

std::vector<std::int64_t> bfs_15d(Dist15DGraph& g, Gid root_original) {
  constexpr std::int64_t kUnvisited = std::int64_t{1} << 62;
  const Gid root = g.partition().relabel().to_new(root_original);
  std::vector<std::int64_t> level(static_cast<std::size_t>(g.n_total()), kUnvisited);

  std::vector<Lid> frontier;
  if (g.partition().is_heavy(root)) {
    // Replicated: every rank sets it and expands its adjacency slice.
    const Lid l = g.to_lid(root);
    level[static_cast<std::size_t>(l)] = 0;
    frontier.push_back(l);
  } else if (g.owns_light(root)) {
    const Lid l = g.to_lid(root);
    level[static_cast<std::size_t>(l)] = 0;
    frontier.push_back(l);
  }

  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  struct Claim {
    Gid gid;
    std::int64_t level;
  };
  for (std::int64_t cur = 0;; ++cur) {
    const auto global_frontier = g.world().allreduce_one(
        static_cast<std::int64_t>(frontier.size()), comm::ReduceOp::kSum);
    if (global_frontier == 0) break;

    std::vector<Lid> next;
    std::vector<std::vector<Claim>> outgoing(static_cast<std::size_t>(g.world().size()));
    std::int64_t edges_expanded = 0;
    for (const Lid v : frontier) {
      edges_expanded += offsets[v + 1] - offsets[v];
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        const Lid u = adj[e];
        if (level[static_cast<std::size_t>(u)] != kUnvisited) continue;
        level[static_cast<std::size_t>(u)] = cur + 1;
        if (u < g.n_owned_light()) {
          next.push_back(u);
        } else if (u < g.heavy_begin() + g.heavy_count()) {
          // Heavy claim: resolved by the AllReduce below; queued there.
        } else {
          const Gid gid = g.to_gid(u);
          outgoing[static_cast<std::size_t>(g.partition().partition().part_of(gid))]
              .push_back({gid, cur + 1});
        }
      }
    }
    core::charge_kernel(g.world(), static_cast<std::int64_t>(frontier.size()),
                        edges_expanded);
    // Heavy phase: replicated levels converge with one MIN AllReduce; a
    // heavy vertex visited anywhere this round joins every rank's frontier
    // (each rank expands only its slice of the heavy adjacency).
    if (g.heavy_count() > 0) {
      std::vector<std::int64_t> before(
          level.begin() + g.heavy_begin(),
          level.begin() + g.heavy_begin() + g.heavy_count());
      g.world().allreduce(
          std::span<std::int64_t>(level.data() + g.heavy_begin(),
                                  static_cast<std::size_t>(g.heavy_count())),
          comm::ReduceOp::kMin);
      for (Lid h = 0; h < g.heavy_count(); ++h) {
        const auto now = level[static_cast<std::size_t>(g.heavy_begin() + h)];
        if (now == cur + 1 &&
            (before[static_cast<std::size_t>(h)] == kUnvisited ||
             before[static_cast<std::size_t>(h)] == cur + 1)) {
          next.push_back(g.heavy_begin() + h);
        }
      }
    }
    // Light claims to owners.
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(g.world().size()));
    std::vector<Claim> send;
    for (int r = 0; r < g.world().size(); ++r) {
      send_counts[static_cast<std::size_t>(r)] = outgoing[static_cast<std::size_t>(r)].size();
      send.insert(send.end(), outgoing[static_cast<std::size_t>(r)].begin(),
                  outgoing[static_cast<std::size_t>(r)].end());
    }
    auto received = g.world().alltoallv(std::span<const Claim>(send),
                                        std::span<const std::size_t>(send_counts));
    for (const auto& c : received) {
      const Lid l = g.to_lid(c.gid);
      if (level[static_cast<std::size_t>(l)] > c.level) {
        level[static_cast<std::size_t>(l)] = c.level;
        next.push_back(l);
      }
    }
    frontier.swap(next);
  }
  return level;
}

}  // namespace hpcg::baselines

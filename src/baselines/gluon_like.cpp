#include "baselines/gluon_like.hpp"

#include <algorithm>

#include "core/queue.hpp"
#include "core/sparse_comm.hpp"
#include "core/work.hpp"

namespace hpcg::baselines {

using core::Lid;
using core::VertexQueue;

namespace {

template <class T>
struct Update {
  Gid gid;
  T value;
};

/// The generic substrate's group exchange: every member sends its whole
/// update list to every other member point-to-point ((g-1)x duplication),
/// instead of a ring AllGatherv.
template <class T>
std::vector<Update<T>> generic_exchange(comm::Comm& group,
                                        const std::vector<Update<T>>& items) {
  const int g = group.size();
  std::vector<std::size_t> counts(static_cast<std::size_t>(g), items.size());
  counts[static_cast<std::size_t>(group.rank())] = 0;
  std::vector<Update<T>> send;
  send.reserve(items.size() * static_cast<std::size_t>(g > 0 ? g - 1 : 0));
  for (int r = 0; r < g; ++r) {
    if (r == group.rank()) continue;
    send.insert(send.end(), items.begin(), items.end());
  }
  return group.alltoallv(std::span<const Update<T>>(send),
                         std::span<const std::size_t>(counts));
}

/// Sparse-style two-phase exchange through the generic substrate; mirrors
/// core::sparse_exchange's semantics (reduce returns whether state moved).
template <class T, class Reduce>
void gluon_exchange_push(core::Dist2DGraph& g, std::span<T> state,
                         VertexQueue& updated, Reduce&& reduce,
                         VertexQueue* changed_rows) {
  const auto& lids = g.lids();
  // Update-list build/apply kernels cost the same as the tuned path; the
  // generic substrate's penalty is in the exchange itself.
  core::charge_kernel(g.world(), static_cast<std::int64_t>(updated.size()), 0);
  VertexQueue second(lids.n_total());
  std::vector<Update<T>> out;
  out.reserve(updated.size());
  for (const Lid v : updated.items()) {
    if (lids.lid_is_row(v)) {
      second.try_push(v);
      if (changed_rows) changed_rows->try_push(v);
    }
    out.push_back({lids.to_gid(v), state[static_cast<std::size_t>(v)]});
  }
  updated.clear();

  {
    const auto received = generic_exchange(g.col_comm(), out);
    core::charge_kernel(g.world(), static_cast<std::int64_t>(received.size()), 0);
    for (const auto& u : received) {
      const Lid l = lids.col_lid(u.gid);
      if (!reduce(state[static_cast<std::size_t>(l)], u.value)) continue;
      if (lids.lid_is_row(l)) {
        second.try_push(l);
        if (changed_rows) changed_rows->try_push(l);
      }
    }
  }

  out.clear();
  for (const Lid v : second.items()) {
    out.push_back({lids.to_gid(v), state[static_cast<std::size_t>(v)]});
  }
  second.clear();
  const auto received = generic_exchange(g.row_comm(), out);
  core::charge_kernel(g.world(), static_cast<std::int64_t>(received.size()), 0);
  for (const auto& u : received) {
    const Lid l = lids.row_lid(u.gid);
    if (reduce(state[static_cast<std::size_t>(l)], u.value) && changed_rows) {
      changed_rows->try_push(l);
    }
  }
}

}  // namespace

comm::CostParams gluon_cost_params() {
  comm::CostParams params;
  params.software_alpha_s = 8e-6;  // generic runtime per-message overhead
  params.bw_derate = 0.6;          // serialization of the generic format
  return params;
}

std::vector<double> gluon_pagerank(core::Dist2DGraph& g, int iterations,
                                   double damping) {
  const auto& lids = g.lids();
  const auto n_total = static_cast<std::size_t>(lids.n_total());
  const double n_global = static_cast<double>(g.n());
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();

  // Degrees through the same generic path: partial degrees as update lists.
  std::vector<double> degree(n_total, 0.0);
  {
    std::vector<Update<double>> out;
    for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      degree[static_cast<std::size_t>(v)] = static_cast<double>(g.csr().degree(v));
      out.push_back({lids.to_gid(v), degree[static_cast<std::size_t>(v)]});
    }
    for (const auto& u : generic_exchange(g.row_comm(), out)) {
      degree[static_cast<std::size_t>(lids.row_lid(u.gid))] += u.value;
    }
    out.clear();
    for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      if (lids.lid_is_col(v)) {
        out.push_back({lids.to_gid(v), degree[static_cast<std::size_t>(v)]});
      }
    }
    for (const auto& u : generic_exchange(g.col_comm(), out)) {
      degree[static_cast<std::size_t>(lids.col_lid(u.gid))] = u.value;
    }
  }

  std::vector<double> pr(n_total, 1.0 / n_global);
  std::vector<double> acc(n_total);
  for (int it = 0; it < iterations; ++it) {
    core::charge_kernel(g.world(), lids.n_total(), g.m_local());
    std::fill(acc.begin(), acc.end(), 0.0);
    for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      double sum = 0.0;
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        const Lid u = adj[e];
        sum += pr[static_cast<std::size_t>(u)] /
               std::max(degree[static_cast<std::size_t>(u)], 1.0);
      }
      acc[static_cast<std::size_t>(v)] = sum;
    }
    // Reduce partials across the row group as a full update list, then
    // redistribute finalized values to the column ghosts the same way.
    std::vector<Update<double>> out;
    out.reserve(static_cast<std::size_t>(lids.n_row()));
    for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      out.push_back({lids.to_gid(v), acc[static_cast<std::size_t>(v)]});
    }
    for (const auto& u : generic_exchange(g.row_comm(), out)) {
      acc[static_cast<std::size_t>(lids.row_lid(u.gid))] += u.value;
    }
    out.clear();
    for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      if (lids.lid_is_col(v)) {
        out.push_back({lids.to_gid(v), acc[static_cast<std::size_t>(v)]});
      }
    }
    for (const auto& u : generic_exchange(g.col_comm(), out)) {
      acc[static_cast<std::size_t>(lids.col_lid(u.gid))] = u.value;
    }
    for (std::size_t l = 0; l < n_total; ++l) {
      pr[l] = (1.0 - damping) / n_global + damping * acc[l];
    }
  }
  return pr;
}

std::vector<Gid> gluon_connected_components(core::Dist2DGraph& g) {
  const auto& lids = g.lids();
  std::vector<Gid> label(static_cast<std::size_t>(lids.n_total()));
  for (Lid l = 0; l < lids.n_total(); ++l) {
    label[static_cast<std::size_t>(l)] = lids.to_gid(l);
  }
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  core::MinReduce<Gid> min_reduce;
  // Galois executes CC data-driven: a worklist of changed vertices, like
  // our push frontier. The generic substrate is what differs.
  VertexQueue frontier(lids.n_total());
  for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) frontier.try_push(v);
  for (;;) {
    VertexQueue updated(lids.n_total());
    std::int64_t writes = 0;
    std::int64_t edges_expanded = 0;
    for (const Lid v : frontier.items()) {
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        ++edges_expanded;
        const Lid u = adj[e];
        if (label[static_cast<std::size_t>(v)] < label[static_cast<std::size_t>(u)]) {
          label[static_cast<std::size_t>(u)] = label[static_cast<std::size_t>(v)];
          updated.try_push(u);
          ++writes;
        }
      }
    }
    core::charge_kernel(g.world(), static_cast<std::int64_t>(frontier.size()),
                        edges_expanded);
    VertexQueue next(lids.n_total());
    gluon_exchange_push(g, std::span(label), updated, min_reduce, &next);
    if (g.world().allreduce_one(writes, comm::ReduceOp::kSum) == 0) break;
    frontier.swap(next);
  }
  return label;
}

std::vector<std::int64_t> gluon_bfs(core::Dist2DGraph& g, Gid root_original) {
  constexpr std::int64_t kUnvisited = std::int64_t{1} << 62;
  const auto& lids = g.lids();
  const Gid root = g.partition().relabel().to_new(root_original);
  std::vector<std::int64_t> level(static_cast<std::size_t>(lids.n_total()), kUnvisited);

  VertexQueue frontier(lids.n_total());
  if (lids.owns_row_gid(root)) {
    level[static_cast<std::size_t>(lids.row_lid(root))] = 0;
    frontier.try_push(lids.row_lid(root));
  }
  if (lids.has_col_gid(root)) {
    level[static_cast<std::size_t>(lids.col_lid(root))] = 0;
  }
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  core::MinReduce<std::int64_t> min_reduce;
  for (std::int64_t cur = 0;; ++cur) {
    const auto global_frontier = g.world().allreduce_one(
        g.rank_r() == 0 ? static_cast<std::int64_t>(frontier.size()) : 0,
        comm::ReduceOp::kSum);
    if (global_frontier == 0) break;
    VertexQueue updated(lids.n_total());
    std::int64_t edges_expanded = 0;
    for (const Lid v : frontier.items()) {
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        ++edges_expanded;
        const Lid u = adj[e];
        if (level[static_cast<std::size_t>(u)] > cur + 1) {
          level[static_cast<std::size_t>(u)] = cur + 1;
          updated.try_push(u);
        }
      }
    }
    core::charge_kernel(g.world(), static_cast<std::int64_t>(frontier.size()),
                        edges_expanded);
    VertexQueue next(lids.n_total());
    gluon_exchange_push(g, std::span(level), updated, min_reduce, &next);
    frontier.swap(next);
  }
  return level;
}

}  // namespace hpcg::baselines

#include "baselines/dist1d.hpp"

#include <algorithm>
#include <numeric>

#include "core/work.hpp"

namespace hpcg::baselines {

Partitioned1D Partitioned1D::build(const graph::EdgeList& global, int nranks) {
  graph::StripedRelabel relabel(global.n, nranks);
  Partitioned1D parts(nranks, global.n, relabel);
  parts.m_global_ = global.m();
  parts.weighted_ = global.weighted();
  parts.edges_.resize(static_cast<std::size_t>(nranks));
  parts.weights_.resize(static_cast<std::size_t>(nranks));
  for (std::size_t i = 0; i < global.edges.size(); ++i) {
    const Gid u = relabel.to_new(global.edges[i].u);
    const Gid v = relabel.to_new(global.edges[i].v);
    const int owner = parts.part_.part_of(u);
    parts.edges_[static_cast<std::size_t>(owner)].push_back({u, v});
    if (global.weighted()) {
      parts.weights_[static_cast<std::size_t>(owner)].push_back(global.weights[i]);
    }
  }
  return parts;
}

Dist1DGraph::Dist1DGraph(comm::Comm& world, const Partitioned1D& parts)
    : parts_(&parts),
      world_(&world),
      owned_offset_(parts.partition().start(world.rank())),
      n_owned_(parts.partition().count(world.rank())) {
  const auto& edges = parts.edges_of(world.rank());
  const auto& weights = parts.weights_of(world.rank());

  // Discover ghosts (hash lookup — the overhead 2D's Type mapping avoids).
  std::vector<graph::Edge> local;
  local.reserve(edges.size());
  for (const auto& e : edges) {
    Lid v_lid;
    if (owns(e.v)) {
      v_lid = owned_lid(e.v);
    } else {
      auto [it, inserted] = ghost_lookup_.try_emplace(
          e.v, n_owned_ + static_cast<Lid>(ghosts_.size()));
      if (inserted) ghosts_.push_back(e.v);
      v_lid = it->second;
    }
    local.push_back({owned_lid(e.u), v_lid});
  }
  csr_ = graph::Csr(n_total(), local,
                    std::span<const double>(weights.data(), weights.size()));

  // Register subscriptions: tell each owner which of its vertices we
  // ghost. (One startup all-to-all, standard for 1D ghost layers.)
  const auto& part = parts.partition();
  std::vector<std::vector<Gid>> requests(static_cast<std::size_t>(world.size()));
  ghost_by_owner_.resize(static_cast<std::size_t>(world.size()));
  for (std::size_t i = 0; i < ghosts_.size(); ++i) {
    const int owner = part.part_of(ghosts_[i]);
    requests[static_cast<std::size_t>(owner)].push_back(ghosts_[i]);
    ghost_by_owner_[static_cast<std::size_t>(owner)].push_back(
        n_owned_ + static_cast<Lid>(i));
  }
  std::vector<std::size_t> send_counts(static_cast<std::size_t>(world.size()));
  std::vector<Gid> send;
  for (int r = 0; r < world.size(); ++r) {
    send_counts[static_cast<std::size_t>(r)] = requests[static_cast<std::size_t>(r)].size();
    send.insert(send.end(), requests[static_cast<std::size_t>(r)].begin(),
                requests[static_cast<std::size_t>(r)].end());
  }
  std::vector<std::size_t> recv_counts;
  auto received = world.alltoallv(std::span<const Gid>(send),
                                  std::span<const std::size_t>(send_counts),
                                  &recv_counts);
  subscriptions_.resize(static_cast<std::size_t>(world.size()));
  subscription_flags_.resize(static_cast<std::size_t>(world.size()));
  std::size_t offset = 0;
  for (int r = 0; r < world.size(); ++r) {
    auto& subs = subscriptions_[static_cast<std::size_t>(r)];
    auto& flags = subscription_flags_[static_cast<std::size_t>(r)];
    flags.assign(static_cast<std::size_t>(n_owned_), 0);
    for (std::size_t i = 0; i < recv_counts[static_cast<std::size_t>(r)]; ++i) {
      const Lid l = owned_lid(received[offset + i]);
      subs.push_back(l);
      flags[static_cast<std::size_t>(l)] = 1;
    }
    offset += recv_counts[static_cast<std::size_t>(r)];
  }
}

std::vector<double> Dist1DGraph::degree_state() const {
  std::vector<double> deg(static_cast<std::size_t>(n_total()), 0.0);
  for (Lid v = 0; v < n_owned_; ++v) {
    deg[static_cast<std::size_t>(v)] = static_cast<double>(csr_.degree(v));
  }
  return deg;
}

std::vector<double> pagerank_1d(Dist1DGraph& g, int iterations, double damping) {
  const auto n_total = static_cast<std::size_t>(g.n_total());
  const double n_global = static_cast<double>(g.n());
  auto degree = g.degree_state();
  g.ghost_exchange_dense(std::span(degree));  // ghost degrees

  std::vector<double> pr(n_total, 1.0 / n_global);
  std::vector<double> next(n_total);
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  for (int it = 0; it < iterations; ++it) {
    core::charge_kernel(g.world(), g.n_total(), g.csr().m());
    for (Lid v = 0; v < g.n_owned(); ++v) {
      double sum = 0.0;
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        const Lid u = adj[e];
        sum += pr[static_cast<std::size_t>(u)] /
               std::max(degree[static_cast<std::size_t>(u)], 1.0);
      }
      next[static_cast<std::size_t>(v)] = (1.0 - damping) / n_global + damping * sum;
    }
    std::copy(next.begin(), next.begin() + g.n_owned(), pr.begin());
    g.ghost_exchange_dense(std::span(pr));
  }
  return pr;
}

std::vector<Gid> connected_components_1d(Dist1DGraph& g) {
  const auto n_total = static_cast<std::size_t>(g.n_total());
  std::vector<Gid> label(n_total);
  for (Lid l = 0; l < g.n_total(); ++l) label[static_cast<std::size_t>(l)] = g.to_gid(l);

  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  for (;;) {
    core::charge_kernel(g.world(), g.n_owned(), g.csr().m());
    std::vector<Lid> changed;
    for (Lid v = 0; v < g.n_owned(); ++v) {
      Gid best = label[static_cast<std::size_t>(v)];
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        best = std::min(best, label[static_cast<std::size_t>(adj[e])]);
      }
      if (best < label[static_cast<std::size_t>(v)]) {
        label[static_cast<std::size_t>(v)] = best;
        changed.push_back(v);
      }
    }
    const auto global_changed = g.world().allreduce_one(
        static_cast<std::int64_t>(changed.size()), comm::ReduceOp::kSum);
    if (global_changed == 0) break;
    g.ghost_exchange_sparse(std::span(label), std::span<const Lid>(changed));
  }
  return label;
}

namespace {

/// Materializes the rank's local COO edge array in LID space — generic
/// dataframe-style engines execute propagation as full gather/scatter
/// passes over edge tuples rather than early-exit CSR walks.
std::vector<graph::Edge> local_coo(const Dist1DGraph& g) {
  std::vector<graph::Edge> coo;
  coo.reserve(static_cast<std::size_t>(g.csr().m()));
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  for (Lid v = 0; v < g.n_owned(); ++v) {
    for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      coo.push_back({v, adj[e]});
    }
  }
  return coo;
}

}  // namespace

std::vector<Gid> connected_components_1d_dense(Dist1DGraph& g) {
  const auto n_total = static_cast<std::size_t>(g.n_total());
  std::vector<Gid> label(n_total);
  for (Lid l = 0; l < g.n_total(); ++l) label[static_cast<std::size_t>(l)] = g.to_gid(l);

  // COO min-scatter every round over every edge, no per-vertex early exit:
  // the generic engine's execution strategy.
  const auto coo = local_coo(g);
  for (;;) {
    core::charge_kernel(g.world(), g.n_owned(),
                        static_cast<std::int64_t>(coo.size()));
    std::int64_t writes = 0;
    for (const auto& e : coo) {
      const Gid lu = label[static_cast<std::size_t>(e.u)];
      const Gid lv = label[static_cast<std::size_t>(e.v)];
      if (lv < lu) {
        label[static_cast<std::size_t>(e.u)] = lv;
        ++writes;
      } else if (lu < lv) {
        // atomic-min scatter on the other endpoint (ghost copies converge
        // through the dense exchange; owners reduce below).
        label[static_cast<std::size_t>(e.v)] = lu;
      }
    }
    // Full ghost layer shipped every round regardless of what changed;
    // the engine then re-reduces owner copies from scratch next round.
    g.ghost_exchange_dense(std::span(label));
    if (g.world().allreduce_one(writes, comm::ReduceOp::kSum) == 0) break;
  }
  return label;
}

std::vector<std::int64_t> bfs_1d_dense(Dist1DGraph& g, Gid root_original) {
  constexpr std::int64_t kUnvisited = std::int64_t{1} << 62;
  const Gid root = g.partition().relabel().to_new(root_original);
  std::vector<std::int64_t> level(static_cast<std::size_t>(g.n_total()), kUnvisited);
  if (g.owns(root)) level[static_cast<std::size_t>(g.owned_lid(root))] = 0;
  g.ghost_exchange_dense(std::span(level));

  // Level-synchronous COO pass over every edge each round (generic-engine
  // strategy: no frontier compaction, no direction optimization).
  const auto coo = local_coo(g);
  for (std::int64_t cur = 0;; ++cur) {
    core::charge_kernel(g.world(), g.n_owned(),
                        static_cast<std::int64_t>(coo.size()));
    std::int64_t writes = 0;
    for (const auto& e : coo) {
      if (level[static_cast<std::size_t>(e.v)] == cur &&
          level[static_cast<std::size_t>(e.u)] == kUnvisited) {
        level[static_cast<std::size_t>(e.u)] = cur + 1;
        ++writes;
      }
    }
    g.ghost_exchange_dense(std::span(level));
    if (g.world().allreduce_one(writes, comm::ReduceOp::kSum) == 0) break;
  }
  return level;
}

std::vector<std::int64_t> bfs_1d(Dist1DGraph& g, Gid root_original) {
  constexpr std::int64_t kUnvisited = std::int64_t{1} << 62;
  const Gid root = g.partition().relabel().to_new(root_original);
  std::vector<std::int64_t> level(static_cast<std::size_t>(g.n_total()), kUnvisited);
  std::vector<Lid> frontier;
  if (g.owns(root)) {
    level[static_cast<std::size_t>(g.owned_lid(root))] = 0;
    frontier.push_back(g.owned_lid(root));
  }
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();
  for (std::int64_t cur = 0;; ++cur) {
    const auto global_frontier = g.world().allreduce_one(
        static_cast<std::int64_t>(frontier.size()), comm::ReduceOp::kSum);
    if (global_frontier == 0) break;
    // Expand: owned frontier vertices claim unvisited neighbors. Updates
    // to ghosts must reach their owners: in 1D that is another
    // personalized exchange keyed by ghost owner.
    struct Claim {
      Gid gid;
      std::int64_t level;
    };
    std::vector<std::vector<Claim>> outgoing(static_cast<std::size_t>(g.world().size()));
    std::vector<Lid> next;
    std::int64_t edges_expanded = 0;
    for (const Lid v : frontier) {
      edges_expanded += offsets[v + 1] - offsets[v];
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        const Lid u = adj[e];
        if (level[static_cast<std::size_t>(u)] != kUnvisited) continue;
        level[static_cast<std::size_t>(u)] = cur + 1;
        if (u < g.n_owned()) {
          next.push_back(u);
        } else {
          const Gid gid = g.to_gid(u);
          outgoing[static_cast<std::size_t>(g.partition().partition().part_of(gid))]
              .push_back({gid, cur + 1});
        }
      }
    }
    core::charge_kernel(g.world(), static_cast<std::int64_t>(frontier.size()),
                        edges_expanded);
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(g.world().size()));
    std::vector<Claim> send;
    for (int r = 0; r < g.world().size(); ++r) {
      send_counts[static_cast<std::size_t>(r)] = outgoing[static_cast<std::size_t>(r)].size();
      send.insert(send.end(), outgoing[static_cast<std::size_t>(r)].begin(),
                  outgoing[static_cast<std::size_t>(r)].end());
    }
    auto received = g.world().alltoallv(std::span<const Claim>(send),
                                        std::span<const std::size_t>(send_counts));
    for (const auto& c : received) {
      const Lid l = g.owned_lid(c.gid);
      if (level[static_cast<std::size_t>(l)] > c.level) {
        level[static_cast<std::size_t>(l)] = c.level;
        next.push_back(l);
      }
    }
    frontier.swap(next);
  }
  return level;
}

}  // namespace hpcg::baselines

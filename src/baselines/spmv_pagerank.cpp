#include "baselines/spmv_pagerank.hpp"

#include <algorithm>

#include "algos/pagerank.hpp"
#include "core/dense_comm.hpp"

namespace hpcg::baselines {

using core::Direction;
using core::Lid;

std::vector<double> spmv_pagerank(core::Dist2DGraph& g, int iterations,
                                  double damping) {
  const auto& lids = g.lids();
  const auto n_total = static_cast<std::size_t>(lids.n_total());
  const double n_global = static_cast<double>(g.n());

  std::vector<double> inv_degree = hpcg::algos::global_degrees_state(g);
  for (auto& d : inv_degree) d = 1.0 / std::max(d, 1.0);

  std::vector<double> pr(n_total, 1.0 / n_global);
  std::vector<double> x(n_total);
  std::vector<double> y(n_total);
  const auto offsets = g.csr().offsets();
  const auto adj = g.csr().adjacencies();

  for (int it = 0; it < iterations; ++it) {
    // x = pr (*) 1/deg, precomputed once per iteration so the SpMV loop is
    // a pure gather-add.
    for (std::size_t l = 0; l < n_total; ++l) x[l] = pr[l] * inv_degree[l];
    std::fill(y.begin(), y.end(), 0.0);
    for (Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      double sum = 0.0;
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        sum += x[static_cast<std::size_t>(adj[e])];
      }
      y[static_cast<std::size_t>(v)] = sum;
    }
    core::dense_exchange(g, std::span(y), comm::ReduceOp::kSum, Direction::kPull);
    for (std::size_t l = 0; l < n_total; ++l) {
      pr[l] = (1.0 - damping) / n_global + damping * y[l];
    }
  }
  return pr;
}

}  // namespace hpcg::baselines

// cuGraph-like PageRank comparator (paper §5.7, Figure 10).
//
// cuGraph computes PageRank with optimized linear-algebra (SpMV) routines
// over a 2D distribution rather than a general-purpose graph computational
// model; the paper measures it ~1.47x faster than HPCGraph-GPU's PR at
// single-node scale where computation dominates. This baseline captures
// that compute advantage honestly: the same 2D distribution and dense
// exchanges, but the per-iteration kernel is a tight y = A*x SpMV with the
// 1/degree scaling folded into a precomputed x vector — no per-edge
// divide, no queue/branch machinery.
#pragma once

#include <vector>

#include "core/dist2d.hpp"

namespace hpcg::baselines {

std::vector<double> spmv_pagerank(core::Dist2DGraph& g, int iterations,
                                  double damping = 0.85);

}  // namespace hpcg::baselines

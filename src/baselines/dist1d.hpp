// 1D (row) distribution baseline.
//
// The classical distribution the paper contrasts against (§1, §2.1): each
// rank owns a contiguous block of vertices *and all of their adjacency
// information*; non-owned endpoints are ghosts. Ghost updates are
// exchanged with a personalized all-to-all, which needs O(p^2) messages —
// the scaling wall the 2D method removes. Used by the Figure 9/10
// comparison benchmarks and by tests as an independent implementation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "comm/comm.hpp"
#include "core/grid.hpp"
#include "graph/csr.hpp"
#include "graph/relabel.hpp"
#include "graph/types.hpp"

namespace hpcg::baselines {

using graph::Gid;
using graph::Lid;

/// Host-side 1D partition: edges bucketed by the (striped) owner of their
/// source endpoint.
class Partitioned1D {
 public:
  static Partitioned1D build(const graph::EdgeList& global, int nranks);

  int nranks() const { return nranks_; }
  Gid n() const { return n_; }
  std::int64_t m_global() const { return m_global_; }
  bool weighted() const { return weighted_; }
  const graph::StripedRelabel& relabel() const { return relabel_; }
  const core::BlockPartition& partition() const { return part_; }
  const std::vector<graph::Edge>& edges_of(int rank) const { return edges_[rank]; }
  const std::vector<double>& weights_of(int rank) const { return weights_[rank]; }

 private:
  Partitioned1D(int nranks, Gid n, const graph::StripedRelabel& relabel)
      : nranks_(nranks), n_(n), relabel_(relabel), part_(n, nranks) {}

  int nranks_;
  Gid n_;
  std::int64_t m_global_ = 0;
  bool weighted_ = false;
  graph::StripedRelabel relabel_;
  core::BlockPartition part_;
  std::vector<std::vector<graph::Edge>> edges_{};
  std::vector<std::vector<double>> weights_{};
};

/// Rank-local 1D graph: owned vertices are LIDs [0, n_owned), ghosts are
/// appended after. Unlike the 2D structure's arithmetic mapping, a 1D
/// ghost map needs an explicit hash lookup at build time (exactly the
/// overhead the paper's Type mapping avoids).
class Dist1DGraph {
 public:
  Dist1DGraph(comm::Comm& world, const Partitioned1D& parts);

  Gid n() const { return parts_->n(); }
  std::int64_t m_global() const { return parts_->m_global(); }
  Lid n_owned() const { return n_owned_; }
  Lid n_total() const { return n_owned_ + static_cast<Lid>(ghosts_.size()); }
  Gid owned_offset() const { return owned_offset_; }
  const graph::Csr& csr() const { return csr_; }
  comm::Comm& world() { return *world_; }
  const Partitioned1D& partition() const { return *parts_; }

  Gid to_gid(Lid l) const {
    return l < n_owned_ ? owned_offset_ + l
                        : ghosts_[static_cast<std::size_t>(l - n_owned_)];
  }
  bool owns(Gid g) const { return g >= owned_offset_ && g < owned_offset_ + n_owned_; }
  Lid owned_lid(Gid g) const { return g - owned_offset_; }

  /// Exchanges the values of every owned vertex that some rank ghosts
  /// (dense policy), or only the listed changed owned LIDs (sparse
  /// policy). `state` is LID-indexed over n_total(). One all-to-all.
  template <class T>
  void ghost_exchange_dense(std::span<T> state);
  template <class T>
  void ghost_exchange_sparse(std::span<T> state, std::span<const Lid> changed_owned);

  /// True degrees of owned + ghost slots (sum of CSR degrees is already
  /// exact in 1D — a rank owns all of a vertex's edges).
  std::vector<double> degree_state() const;

 private:
  const Partitioned1D* parts_;
  comm::Comm* world_;
  Gid owned_offset_ = 0;
  Lid n_owned_ = 0;
  graph::Csr csr_;
  std::vector<Gid> ghosts_;  // ghost LID -> GID
  std::unordered_map<Gid, Lid> ghost_lookup_;
  // subscriptions_[r] = owned LIDs whose values rank r ghosts.
  std::vector<std::vector<Lid>> subscriptions_;
  // incoming ghost order per source rank (parallel to what they send
  // dense); ghost LIDs grouped by owner.
  std::vector<std::vector<Lid>> ghost_by_owner_;
  // subscription_flags_[r][owned LID] != 0 iff rank r ghosts that vertex.
  std::vector<std::vector<std::uint8_t>> subscription_flags_;
};

/// Baseline algorithms on the 1D distribution (matching the 2D versions'
/// semantics so results are comparable).
std::vector<double> pagerank_1d(Dist1DGraph& g, int iterations, double damping = 0.85);
std::vector<Gid> connected_components_1d(Dist1DGraph& g);
std::vector<std::int64_t> bfs_1d(Dist1DGraph& g, Gid root_original);

/// "Generic framework" variants: full vertex scans and dense ghost layers
/// every round, no frontier/queue/sparse machinery — how general-purpose
/// engines (the paper's cuGraph CC/BFS comparison points) execute these
/// computations. Results are identical; only the execution strategy (and
/// therefore cost) differs.
std::vector<Gid> connected_components_1d_dense(Dist1DGraph& g);
std::vector<std::int64_t> bfs_1d_dense(Dist1DGraph& g, Gid root_original);

/// Gathers owned state into a full striped-GID-indexed vector (test use).
template <class T>
std::vector<T> gather_state_1d(Dist1DGraph& g, std::span<const T> state) {
  struct Pair {
    Gid gid;
    T value;
  };
  std::vector<Pair> mine;
  mine.reserve(static_cast<std::size_t>(g.n_owned()));
  for (Lid l = 0; l < g.n_owned(); ++l) {
    mine.push_back({g.to_gid(l), state[static_cast<std::size_t>(l)]});
  }
  auto all = g.world().allgatherv(std::span<const Pair>(mine));
  std::vector<T> out(static_cast<std::size_t>(g.n()));
  for (const auto& p : all) out[static_cast<std::size_t>(p.gid)] = p.value;
  return out;
}

// ---------------------------------------------------------------------------

template <class T>
void Dist1DGraph::ghost_exchange_dense(std::span<T> state) {
  // Serialize per-subscriber values in subscription order; the receiver
  // knows the matching ghost order (ghost_by_owner_).
  std::vector<std::size_t> send_counts(static_cast<std::size_t>(world_->size()));
  std::vector<T> send;
  for (int r = 0; r < world_->size(); ++r) {
    const auto& subs = subscriptions_[static_cast<std::size_t>(r)];
    send_counts[static_cast<std::size_t>(r)] = subs.size();
    for (const Lid l : subs) send.push_back(state[static_cast<std::size_t>(l)]);
  }
  std::vector<std::size_t> recv_counts;
  auto recv = world_->alltoallv(std::span<const T>(send),
                                std::span<const std::size_t>(send_counts),
                                &recv_counts);
  std::size_t offset = 0;
  for (int r = 0; r < world_->size(); ++r) {
    const auto& ghosts = ghost_by_owner_[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < ghosts.size(); ++i) {
      state[static_cast<std::size_t>(ghosts[i])] = recv[offset + i];
    }
    offset += ghosts.size();
  }
}

template <class T>
void Dist1DGraph::ghost_exchange_sparse(std::span<T> state,
                                        std::span<const Lid> changed_owned) {
  struct Pair {
    Gid gid;
    T value;
  };
  // A rank does not track *which* subscribers need which update cheaply in
  // the generic 1D scheme; it sends each changed owned vertex to every
  // rank that subscribes to it.
  std::vector<std::vector<Pair>> outgoing(static_cast<std::size_t>(world_->size()));
  for (const Lid l : changed_owned) {
    for (int r = 0; r < world_->size(); ++r) {
      if (subscription_flags_[static_cast<std::size_t>(r)][static_cast<std::size_t>(l)]) {
        outgoing[static_cast<std::size_t>(r)].push_back(
            {to_gid(l), state[static_cast<std::size_t>(l)]});
      }
    }
  }
  std::vector<std::size_t> send_counts(static_cast<std::size_t>(world_->size()));
  std::vector<Pair> send;
  for (int r = 0; r < world_->size(); ++r) {
    send_counts[static_cast<std::size_t>(r)] = outgoing[static_cast<std::size_t>(r)].size();
    send.insert(send.end(), outgoing[static_cast<std::size_t>(r)].begin(),
                outgoing[static_cast<std::size_t>(r)].end());
  }
  auto recv = world_->alltoallv(std::span<const Pair>(send),
                                std::span<const std::size_t>(send_counts));
  for (const auto& p : recv) {
    state[static_cast<std::size_t>(ghost_lookup_.at(p.gid))] = p.value;
  }
}

}  // namespace hpcg::baselines

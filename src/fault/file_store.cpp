#include "fault/file_store.hpp"

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "util/parse.hpp"

namespace hpcg::fault {
namespace fs = std::filesystem;

FileCheckpointStore::FileCheckpointStore(const fs::path& dir, int nranks)
    : CheckpointStore(nranks), dir_(dir) {
  fs::create_directories(dir_);
}

fs::path FileCheckpointStore::blob_path(std::int64_t epoch, int rank) const {
  return dir_ / ("epoch" + std::to_string(epoch) + ".rank" +
                 std::to_string(rank) + ".ckpt");
}

void FileCheckpointStore::atomic_write(const fs::path& target,
                                       const void* data,
                                       std::size_t size) const {
  // Unique temp name per writer: concurrent rank processes share dir_.
  const fs::path tmp = target.string() + ".tmp" + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("FileCheckpointStore: cannot open " +
                               tmp.string());
    }
    if (size > 0) {
      out.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(size));
    }
    out.flush();
    if (!out) {
      throw std::runtime_error("FileCheckpointStore: short write to " +
                               tmp.string());
    }
  }
  fs::rename(tmp, target);
}

std::int64_t FileCheckpointStore::latest_committed() const {
  std::ifstream in(dir_ / "COMMITTED");
  if (!in) return -1;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  const auto epoch = util::parse_int64(text);
  if (!epoch) {
    throw std::runtime_error("FileCheckpointStore: corrupt COMMITTED marker '" +
                             text + "' in " + dir_.string());
  }
  return *epoch;
}

void FileCheckpointStore::write(std::int64_t epoch, int rank,
                                std::vector<std::byte> blob) {
  if (rank < 0 || rank >= nranks()) {
    throw std::invalid_argument("FileCheckpointStore::write: bad rank " +
                                std::to_string(rank));
  }
  const std::int64_t committed = latest_committed();
  if (epoch <= committed) {
    throw std::logic_error("FileCheckpointStore::write: epoch " +
                           std::to_string(epoch) +
                           " not past the latest commit " +
                           std::to_string(committed));
  }
  atomic_write(blob_path(epoch, rank), blob.data(), blob.size());
  std::lock_guard lock(file_mutex_);
  bytes_written_ += blob.size();
}

void FileCheckpointStore::commit(std::int64_t epoch) {
  // The caller barriers before commit, so every rank's rename is visible.
  for (int r = 0; r < nranks(); ++r) {
    if (!fs::exists(blob_path(epoch, r))) {
      throw std::logic_error("FileCheckpointStore::commit: epoch " +
                             std::to_string(epoch) + " missing rank " +
                             std::to_string(r) + " blob");
    }
  }
  const std::string text = std::to_string(epoch) + "\n";
  atomic_write(dir_ / "COMMITTED", text.data(), text.size());
  // Older epochs can never be a recovery point again; keep disk bounded.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("epoch", 0) != 0) continue;
    const auto dot = name.find('.');
    if (dot == std::string::npos) continue;
    const auto e = util::parse_int64(name.substr(5, dot - 5));
    if (e && *e < epoch) {
      std::error_code ec;
      fs::remove(entry.path(), ec);  // best effort; races with peers are fine
    }
  }
  std::lock_guard lock(file_mutex_);
  ++commits_;
}

std::vector<std::byte> FileCheckpointStore::blob(std::int64_t epoch,
                                                 int rank) const {
  if (epoch > latest_committed()) {
    throw std::logic_error("FileCheckpointStore::blob: epoch " +
                           std::to_string(epoch) + " is not committed");
  }
  std::ifstream in(blob_path(epoch, rank), std::ios::binary);
  if (!in) {
    throw std::runtime_error("FileCheckpointStore::blob: cannot open " +
                             blob_path(epoch, rank).string());
  }
  std::vector<std::byte> out;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  out.resize(data.size());
  if (!data.empty()) std::memcpy(out.data(), data.data(), data.size());
  return out;
}

std::int64_t FileCheckpointStore::commits() const {
  std::lock_guard lock(file_mutex_);
  return commits_;
}

std::uint64_t FileCheckpointStore::bytes_written() const {
  std::lock_guard lock(file_mutex_);
  return bytes_written_;
}

}  // namespace hpcg::fault

// Checkpoint/restart driver: turns a mid-run rank failure into a bounded
// replay instead of a lost job.
//
// run_with_recovery wraps comm::Runtime::run in a retry loop. Each attempt
// hands the body a rank-local Checkpointer bound to a store that outlives
// attempts; when the run unwinds with a CommError (RankFailure from an
// injected crash, Timeout from a silent death, CorruptPayload), the driver
// restarts the body, which restores from the last globally consistent
// checkpoint and replays forward. Because algorithm state, collectives and
// the fault schedule are all deterministic in virtual time, the recovered
// result is bit-identical to the fault-free run (asserted by
// tests/test_fault.cpp for BFS, PageRank and CC).
//
// Non-CommError exceptions (logic errors, bad arguments) propagate
// immediately — restarting cannot fix a programming error.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "comm/runtime.hpp"
#include "fault/checkpoint.hpp"
#include "fault/injector.hpp"

namespace hpcg::fault {

struct RecoveryOptions {
  telemetry::Recorder* recorder = nullptr;
  /// Fault injector shared by all attempts (fired faults stay consumed,
  /// so a replayed superstep does not re-fire its crash). May be null.
  FaultInjector* injector = nullptr;
  /// Checkpoint interval in supersteps; <= 0 disables checkpointing
  /// (recovery then replays from the start).
  std::int64_t checkpoint_every = 1;
  /// Wall-clock deadline for blocking waits; 0 = default handling
  /// (comm::RunOptions applies kDefaultFaultTimeoutS when the plan
  /// contains silent faults).
  double comm_timeout_s = 0.0;
  /// Restarts allowed before the error propagates to the caller.
  int max_restarts = 3;
  /// Forwarded to comm::RunOptions: run-wide default for algorithm async
  /// (nonblocking-collective) opt-in and its pipeline chunk count.
  bool async = false;
  int async_chunk = 1;
  /// Forwarded to comm::RunOptions::kernel: run-wide kernel execution
  /// defaults (worker threads, chunk grain, async overrides). Recovery
  /// replays are bit-identical for any thread count — the worker pool's
  /// chunk boundaries and commit order do not depend on it.
  comm::KernelOptions kernel = {};
  /// Forwarded to comm::RunOptions::policy: collective selection policy.
  /// Like the kernel knobs, it changes modeled time only, so recovery's
  /// bit-identity guarantee holds under any policy.
  comm::CollectivePolicy policy = {};
};

struct RecoveryResult {
  comm::RunStats stats;       // of the final (successful) attempt
  int restarts = 0;           // failed attempts before success
  std::int64_t checkpoints_committed = 0;
  std::uint64_t checkpoint_bytes = 0;
  /// Epoch each restart resumed from (-1 = replayed from the start).
  std::vector<std::int64_t> resume_epochs;
  /// Supersteps re-executed across restarts (failure superstep minus
  /// resume epoch, when the failing fault's superstep is known).
  std::int64_t replayed_supersteps = 0;
};

class Runtime {
 public:
  /// Runs `body(comm, ckpt)` under the fault plan, restarting from the
  /// last committed checkpoint on CommError until it succeeds or
  /// `max_restarts` is exhausted (then the last error is rethrown).
  static RecoveryResult run_with_recovery(
      int nranks, const comm::Topology& topo, const comm::CostModel& cost,
      const RecoveryOptions& options,
      const std::function<void(comm::Comm&, Checkpointer&)>& body);
};

}  // namespace hpcg::fault

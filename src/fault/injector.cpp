#include "fault/injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/prng.hpp"

namespace hpcg::fault {

FaultInjector::FaultInjector(FaultPlan plan, int nranks)
    : plan_(std::move(plan)),
      specs_(plan_.specs),
      consumed_(specs_.size(), 0),
      states_(static_cast<std::size_t>(nranks)) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    auto& spec = specs_[i];
    if (spec.rank < 0) {
      // 'r?': a seeded, deterministic choice — same (plan, seed, nranks)
      // always targets the same rank.
      spec.rank = static_cast<int>(
          util::splitmix64(plan_.seed ^ util::splitmix64(i + 1)) %
          static_cast<std::uint64_t>(nranks));
    }
    if (spec.rank >= nranks) {
      throw std::invalid_argument("fault plan: spec '" + spec.describe() +
                                  "' targets rank " + std::to_string(spec.rank) +
                                  " but the run has " + std::to_string(nranks) +
                                  " ranks");
    }
  }
}

void FaultInjector::begin_run() {
  // Single-threaded: Runtime::run calls this before spawning rank threads.
  ++runs_;
  std::fill(states_.begin(), states_.end(), RankState{});
}

void FaultInjector::resume_superstep(int rank, std::int64_t next_superstep) {
  // The rank's next on_superstep call increments first, so park one below.
  states_[static_cast<std::size_t>(rank)].superstep = next_superstep - 1;
}

bool FaultInjector::wants_deadline() const {
  for (const auto& spec : specs_) {
    if (spec.kind == FaultKind::kSilent) return true;
  }
  return false;
}

bool FaultInjector::matches(const FaultSpec& spec, const RankState& state,
                            double vtime) const {
  if (spec.superstep >= 0) return spec.superstep == state.superstep;
  if (spec.collective >= 0) return spec.collective == state.collective_seq;
  if (spec.vtime >= 0) return vtime >= spec.vtime;
  return false;  // 'p'-triggered specs fire in p2p_corrupt_bit
}

void FaultInjector::record_event(FaultKind kind, int rank,
                                 const RankState& state, double vtime,
                                 std::int64_t p2p_seq) {
  fired_[static_cast<std::size_t>(kind)].fetch_add(1,
                                                   std::memory_order_relaxed);
  FaultEvent event;
  event.kind = kind;
  event.rank = rank;
  event.collective_seq = p2p_seq >= 0 ? -1 : state.collective_seq;
  event.p2p_seq = p2p_seq;
  event.superstep = state.superstep;
  event.vtime = vtime;
  std::lock_guard lock(events_mutex_);
  events_.push_back(event);
}

comm::FaultDecision FaultInjector::on_collective(int rank,
                                                 comm::CollectiveOp /*op*/,
                                                 double vtime) {
  auto& state = states_[static_cast<std::size_t>(rank)];
  comm::FaultDecision decision;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const auto& spec = specs_[i];
    if (spec.rank != rank || consumed_[i]) continue;
    if (spec.kind == FaultKind::kCorrupt) continue;
    if (!matches(spec, state, vtime)) continue;
    consumed_[i] = 1;
    record_event(spec.kind, rank, state, vtime, -1);
    switch (spec.kind) {
      case FaultKind::kCrash:
        decision.action = comm::FaultDecision::Action::kCrash;
        break;
      case FaultKind::kSilent:
        decision.action = comm::FaultDecision::Action::kSilent;
        break;
      case FaultKind::kTransient:
        // Bounded retry: a transient demanding more attempts than the
        // budget escalates to a rank crash after charging the budget.
        if (spec.count > kMaxTransientRetries) {
          decision.transient_failures = kMaxTransientRetries;
          decision.backoff_s = spec.backoff_s;
          decision.action = comm::FaultDecision::Action::kCrash;
        } else {
          decision.transient_failures = spec.count;
          decision.backoff_s = spec.backoff_s;
        }
        break;
      case FaultKind::kDegrade:
        state.degrade_factor = spec.factor;
        state.degrade_until = state.collective_seq + spec.count;
        break;
      case FaultKind::kCorrupt:
        break;  // unreachable
    }
    if (decision.action != comm::FaultDecision::Action::kNone) {
      // A fatal fault ends this rank's run; leave later specs (e.g. a
      // stacked duplicate crash) unconsumed so they fire on the replay.
      break;
    }
  }
  ++state.collective_seq;
  return decision;
}

comm::FaultDecision FaultInjector::on_superstep(int rank, double vtime) {
  auto& state = states_[static_cast<std::size_t>(rank)];
  ++state.superstep;
  comm::FaultDecision decision;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const auto& spec = specs_[i];
    if (spec.rank != rank || consumed_[i]) continue;
    if (spec.kind != FaultKind::kCrash && spec.kind != FaultKind::kSilent) {
      continue;  // transient/degrade act on collectives, corrupt on p2p
    }
    if (!matches(spec, state, vtime)) continue;
    consumed_[i] = 1;
    record_event(spec.kind, rank, state, vtime, -1);
    decision.action = spec.kind == FaultKind::kCrash
                          ? comm::FaultDecision::Action::kCrash
                          : comm::FaultDecision::Action::kSilent;
    break;  // fatal: later duplicates stay pending for the replay
  }
  return decision;
}

double FaultInjector::collective_cost_multiplier(const int* members,
                                                 int count) {
  double mult = 1.0;
  for (int i = 0; i < count; ++i) {
    const auto& state = states_[static_cast<std::size_t>(members[i])];
    // The op in flight has index collective_seq - 1 (on_collective already
    // advanced the counter); the window is [activation, activation+count).
    if (state.degrade_until >= 0 &&
        state.collective_seq - 1 < state.degrade_until) {
      mult = std::max(mult, state.degrade_factor);
    }
  }
  return mult;
}

double FaultInjector::p2p_cost_multiplier(int src, double /*vtime*/) {
  const auto& state = states_[static_cast<std::size_t>(src)];
  if (state.degrade_until >= 0 &&
      state.collective_seq - 1 < state.degrade_until) {
    return state.degrade_factor;
  }
  return 1.0;
}

std::int64_t FaultInjector::p2p_corrupt_bit(int src,
                                            std::size_t payload_bytes,
                                            double vtime) {
  auto& state = states_[static_cast<std::size_t>(src)];
  const std::int64_t cur = state.p2p_seq++;
  std::int64_t bit = -1;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const auto& spec = specs_[i];
    if (spec.rank != src || consumed_[i]) continue;
    if (spec.kind != FaultKind::kCorrupt) continue;
    const bool hit = spec.message >= 0 ? spec.message == cur
                                       : (spec.vtime >= 0 && vtime >= spec.vtime);
    if (!hit) continue;
    consumed_[i] = 1;
    record_event(spec.kind, src, state, vtime, cur);
    if (payload_bytes > 0) {
      // Seeded bit choice: deterministic in (seed, rank, send index).
      const std::uint64_t h = util::splitmix64(
          plan_.seed ^
          util::splitmix64((static_cast<std::uint64_t>(src) << 40) ^
                           static_cast<std::uint64_t>(cur + 1)));
      bit = static_cast<std::int64_t>(h % (payload_bytes * 8));
    }
  }
  return bit;
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::lock_guard lock(events_mutex_);
  std::vector<FaultEvent> out = events_;
  // Appends interleave across rank threads; per-rank order is program
  // order. Stable-sort by rank for a deterministic view.
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.rank < b.rank;
                   });
  return out;
}

std::uint64_t FaultInjector::fired(FaultKind kind) const {
  return fired_[static_cast<std::size_t>(kind)].load(
      std::memory_order_relaxed);
}

}  // namespace hpcg::fault

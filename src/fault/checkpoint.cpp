#include "fault/checkpoint.hpp"

#include <string>

namespace hpcg::fault {

CheckpointStore::CheckpointStore(int nranks) : nranks_(nranks) {
  if (nranks <= 0) {
    throw std::invalid_argument("CheckpointStore: nranks must be positive");
  }
}

std::int64_t CheckpointStore::latest_committed() const {
  std::lock_guard lock(mutex_);
  return latest_committed_;
}

void CheckpointStore::write(std::int64_t epoch, int rank,
                            std::vector<std::byte> blob) {
  if (rank < 0 || rank >= nranks_) {
    throw std::invalid_argument("CheckpointStore::write: bad rank " +
                                std::to_string(rank));
  }
  std::lock_guard lock(mutex_);
  if (epoch <= latest_committed_) {
    throw std::logic_error("CheckpointStore::write: epoch " +
                           std::to_string(epoch) +
                           " not past the latest commit " +
                           std::to_string(latest_committed_));
  }
  auto& e = epochs_[epoch];
  if (e.blobs.empty()) {
    e.blobs.resize(static_cast<std::size_t>(nranks_));
    e.present.assign(static_cast<std::size_t>(nranks_), 0);
  }
  if (!e.present[static_cast<std::size_t>(rank)]) {
    e.present[static_cast<std::size_t>(rank)] = 1;
    ++e.written;
  }
  bytes_written_ += blob.size();
  e.blobs[static_cast<std::size_t>(rank)] = std::move(blob);
}

void CheckpointStore::commit(std::int64_t epoch) {
  std::lock_guard lock(mutex_);
  const auto it = epochs_.find(epoch);
  if (it == epochs_.end()) {
    throw std::logic_error("CheckpointStore::commit: unknown epoch " +
                           std::to_string(epoch));
  }
  if (it->second.written != nranks_) {
    throw std::logic_error("CheckpointStore::commit: epoch " +
                           std::to_string(epoch) + " has " +
                           std::to_string(it->second.written) + "/" +
                           std::to_string(nranks_) + " rank blobs");
  }
  it->second.committed = true;
  latest_committed_ = std::max(latest_committed_, epoch);
  ++commits_;
  // Older epochs can never be a recovery point again; keep memory bounded.
  for (auto e = epochs_.begin(); e != epochs_.end();) {
    e = e->first < latest_committed_ ? epochs_.erase(e) : std::next(e);
  }
}

std::vector<std::byte> CheckpointStore::blob(std::int64_t epoch,
                                             int rank) const {
  std::lock_guard lock(mutex_);
  const auto it = epochs_.find(epoch);
  if (it == epochs_.end() || !it->second.committed) {
    throw std::logic_error("CheckpointStore::blob: epoch " +
                           std::to_string(epoch) + " is not committed");
  }
  return it->second.blobs[static_cast<std::size_t>(rank)];
}

std::int64_t CheckpointStore::commits() const {
  std::lock_guard lock(mutex_);
  return commits_;
}

std::uint64_t CheckpointStore::bytes_written() const {
  std::lock_guard lock(mutex_);
  return bytes_written_;
}

Checkpointer::Checkpointer(CheckpointStore* store, std::int64_t every)
    : store_(store), every_(every) {
  // Pin the resume point now: the previous attempt fully unwound before
  // this one started, so the store is quiescent and every rank of the
  // attempt observes the same committed epoch.
  if (store_) resume_ = store_->latest_committed();
}

void Checkpointer::save(comm::Comm& comm, std::int64_t superstep,
                        const std::function<void(BlobWriter&)>& serialize) {
  if (!store_) return;
  auto span = comm.phase_span("checkpoint.save");
  BlobWriter writer;
  serialize(writer);
  auto blob = writer.take();
  const std::uint64_t bytes = blob.size();
  store_->write(superstep, comm.world_rank(), std::move(blob));
  if (auto* rec = comm.recorder()) {
    rec->metrics().counter("checkpoint.bytes").add(bytes);
  }
  // Commit protocol: every rank's write happens-before the commit, and
  // the commit happens-before any rank continues into the next superstep.
  comm.barrier();
  if (comm.rank() == 0) {
    store_->commit(superstep);
    if (auto* rec = comm.recorder()) {
      rec->metrics().counter("checkpoint.saves").increment();
    }
  }
  comm.barrier();
  ++saves_;
}

void Checkpointer::restore(comm::Comm& comm,
                           const std::function<void(BlobReader&)>& deserialize) {
  if (!store_ || resume_ < 0) {
    throw std::logic_error("Checkpointer::restore: no committed checkpoint");
  }
  auto span = comm.phase_span("checkpoint.restore");
  const auto blob = store_->blob(resume_, comm.world_rank());
  BlobReader reader(blob);
  deserialize(reader);
  if (auto* hooks = comm.fault_hooks()) {
    hooks->resume_superstep(comm.world_rank(), resume_);
  }
  if (auto* rec = comm.recorder()) {
    telemetry::SpanRecord instant;
    instant.start_s = comm.vclock();
    instant.end_s = instant.start_s;
    instant.rank = comm.world_rank();
    instant.kind = telemetry::SpanKind::kInstant;
    instant.name = "recovery.restore";
    instant.value = resume_;
    rec->record(std::move(instant));
    rec->metrics().counter("faults.recovery.restore").increment();
  }
}

}  // namespace hpcg::fault

// Concrete fault injector: matches a FaultPlan against per-rank progress
// counters and tells the comm layer what to break.
//
// Threading contract (mirrors the runtime's clock discipline):
//   * each RankState is written only by its owner rank thread
//     (on_collective / on_superstep / p2p_corrupt_bit run on the rank);
//   * collective_cost_multiplier reads peers' degradation windows from the
//     collective leader in phase B — ordered after every member's
//     on_collective by the collective's first barrier, so no data race;
//   * the event log is mutex-guarded (appends from any rank thread);
//   * fired-fault counters are atomics.
//
// Faults are consumed exactly once across the whole injector lifetime:
// when run_with_recovery replays from a checkpoint, a crash that already
// fired does not fire again. begin_run() resets the per-rank progress
// counters for each (re)start; Checkpointer::restore realigns the
// superstep counter via resume_superstep so superstep-keyed triggers
// stay meaningful on the replay path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "comm/fault_hooks.hpp"
#include "fault/plan.hpp"

namespace hpcg::fault {

/// One fired fault, for determinism tests and run summaries.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  int rank = -1;
  std::int64_t collective_seq = -1;  // rank's collective index (ops), -1 n/a
  std::int64_t p2p_seq = -1;         // rank's p2p send index, -1 n/a
  std::int64_t superstep = -1;       // rank's superstep at fire time
  double vtime = 0.0;                // rank's virtual clock at fire time
};

/// Number of modeled attempts a transient fault may demand before the
/// injector escalates it to a rank crash (bounded retry).
inline constexpr int kMaxTransientRetries = 6;

class FaultInjector final : public comm::FaultHooks {
 public:
  /// Resolves the plan against `nranks`: seeds random targets ('r?') and
  /// validates rank indices. Throws std::invalid_argument on a spec whose
  /// rank is out of range.
  FaultInjector(FaultPlan plan, int nranks);

  // comm::FaultHooks -------------------------------------------------------
  comm::FaultDecision on_collective(int rank, comm::CollectiveOp op,
                                    double vtime) override;
  comm::FaultDecision on_superstep(int rank, double vtime) override;
  double collective_cost_multiplier(const int* members, int count) override;
  double p2p_cost_multiplier(int src, double vtime) override;
  std::int64_t p2p_corrupt_bit(int src, std::size_t payload_bytes,
                               double vtime) override;
  void begin_run() override;
  void resume_superstep(int rank, std::int64_t next_superstep) override;
  bool wants_deadline() const override;

  // Inspection (only valid once rank threads have joined) ------------------
  const FaultPlan& plan() const { return plan_; }
  const std::vector<FaultSpec>& resolved_specs() const { return specs_; }
  /// Every fired fault, in per-rank program order (sorted by rank, then
  /// fire order on that rank).
  std::vector<FaultEvent> events() const;
  /// Total faults fired of one kind, across all runs/attempts.
  std::uint64_t fired(FaultKind kind) const;
  /// Number of begin_run() calls (1 + restarts under run_with_recovery).
  int runs_started() const { return runs_; }

 private:
  struct alignas(64) RankState {
    std::int64_t collective_seq = 0;  // next collective's index
    std::int64_t p2p_seq = 0;         // next p2p send's index
    std::int64_t superstep = -1;      // current superstep, -1 before first
    // Active link-degradation window, in collective-seq coordinates.
    double degrade_factor = 1.0;
    std::int64_t degrade_until = -1;  // exclusive end; -1 = no window
  };

  /// True when `spec` (an unconsumed spec of `rank`) triggers now.
  bool matches(const FaultSpec& spec, const RankState& state,
               double vtime) const;
  void record_event(FaultKind kind, int rank, const RankState& state,
                    double vtime, std::int64_t p2p_seq);

  FaultPlan plan_;
  std::vector<FaultSpec> specs_;  // rank-resolved copy of plan_.specs
  std::vector<char> consumed_;    // parallel to specs_
  std::vector<RankState> states_;
  mutable std::mutex events_mutex_;
  std::vector<FaultEvent> events_;
  std::array<std::atomic<std::uint64_t>, 5> fired_{};
  int runs_ = 0;
};

}  // namespace hpcg::fault

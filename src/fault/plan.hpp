// Deterministic fault schedule: what fails, where, and when.
//
// A FaultPlan is parsed from a compact spec string (the hpcg_run
// `--faults=` grammar, documented in docs/FAULTS.md):
//
//   plan    := spec (',' spec)*
//   spec    := kind '@' target ':' trigger (':' param)*
//   kind    := 'crash' | 'silent' | 'transient' | 'corrupt' | 'degrade'
//   target  := 'r' INT        a world rank
//            | 'r?'           a seeded random rank (resolved per plan seed)
//   trigger := 's' INT        at the start of that superstep on the rank
//            | 'n' INT        on the rank's nth collective (0-based, counted
//                             from rank start, setup collectives included)
//            | 'p' INT        on the rank's nth p2p send (corrupt only)
//            | 't' FLOAT      at the first operation at/after that virtual
//                             time (seconds)
//   param   := 'x' INT        transient: failed attempts before success;
//                             degrade: window length in collectives
//            | 'b' FLOAT      transient: base backoff seconds (virtual)
//            | 'f' FLOAT      degrade: cost multiplier
//
// Examples: "crash@r2:s3", "silent@r?:s2", "transient@r1:n5:x2:b1e-4",
//           "corrupt@r0:p1", "degrade@r3:n4:x10:f8".
//
// Determinism guarantee: the same (plan string, seed, nranks) resolves to
// the same schedule, and — because triggers are keyed on per-rank virtual
// time / sequence counters, not wall clocks — the same run produces the
// same fault sequence every time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hpcg::fault {

enum class FaultKind : std::uint8_t {
  kCrash,      // rank throws RankFailure
  kSilent,     // rank unwinds quietly; peers surface Timeout
  kTransient,  // collective fails `count` times, retried with backoff
  kCorrupt,    // bit-flip in a p2p payload; recv raises CorruptPayload
  kDegrade,    // cost multiplier window on the rank's links
};

const char* to_string(FaultKind kind);

/// One scheduled fault. Exactly one trigger field is set (>= 0).
struct FaultSpec {
  FaultKind kind = FaultKind::kCrash;
  int rank = -1;                 // world rank; -1 = seeded random ('r?')
  std::int64_t superstep = -1;   // 's' trigger
  std::int64_t collective = -1;  // 'n' trigger
  std::int64_t message = -1;     // 'p' trigger
  double vtime = -1.0;           // 't' trigger
  int count = 1;                 // 'x': transient attempts / degrade window
  double backoff_s = 50e-6;      // 'b': transient base backoff (virtual s)
  double factor = 8.0;           // 'f': degrade cost multiplier

  std::string describe() const;
};

/// A parsed, seeded schedule of faults.
struct FaultPlan {
  std::vector<FaultSpec> specs;
  std::uint64_t seed = 0;

  bool empty() const { return specs.empty(); }

  /// Parses the grammar above. Empty/whitespace text yields an empty plan.
  /// Throws std::invalid_argument with the offending spec on bad input.
  static FaultPlan parse(const std::string& text, std::uint64_t seed = 0);
};

}  // namespace hpcg::fault

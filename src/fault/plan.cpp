#include "fault/plan.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace hpcg::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kSilent: return "silent";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDegrade: return "degrade";
  }
  return "?";
}

std::string FaultSpec::describe() const {
  std::ostringstream out;
  out << to_string(kind) << "@r" << rank;
  if (superstep >= 0) out << ":s" << superstep;
  if (collective >= 0) out << ":n" << collective;
  if (message >= 0) out << ":p" << message;
  if (vtime >= 0) out << ":t" << vtime;
  if (kind == FaultKind::kTransient) {
    out << ":x" << count << ":b" << backoff_s;
  } else if (kind == FaultKind::kDegrade) {
    out << ":x" << count << ":f" << factor;
  }
  return out.str();
}

namespace {

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("fault plan: bad spec '" + spec + "': " + why);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string strip(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

std::int64_t parse_int(const std::string& spec, const std::string& text) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(text, &used);
    if (used != text.size()) fail(spec, "trailing characters in '" + text + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(spec, "expected an integer, got '" + text + "'");
  } catch (const std::out_of_range&) {
    fail(spec, "integer out of range: '" + text + "'");
  }
}

double parse_double(const std::string& spec, const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) fail(spec, "trailing characters in '" + text + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(spec, "expected a number, got '" + text + "'");
  } catch (const std::out_of_range&) {
    fail(spec, "number out of range: '" + text + "'");
  }
}

FaultSpec parse_spec(const std::string& raw) {
  const auto segments = split(raw, ':');
  const std::string& head = segments[0];
  const std::size_t at = head.find('@');
  if (at == std::string::npos) fail(raw, "missing '@rank'");

  FaultSpec spec;
  const std::string kind = head.substr(0, at);
  if (kind == "crash") {
    spec.kind = FaultKind::kCrash;
  } else if (kind == "silent") {
    spec.kind = FaultKind::kSilent;
  } else if (kind == "transient") {
    spec.kind = FaultKind::kTransient;
  } else if (kind == "corrupt") {
    spec.kind = FaultKind::kCorrupt;
  } else if (kind == "degrade") {
    spec.kind = FaultKind::kDegrade;
  } else {
    fail(raw, "unknown fault kind '" + kind + "'");
  }

  const std::string target = head.substr(at + 1);
  if (target.empty() || target[0] != 'r') fail(raw, "target must be rN or r?");
  if (target == "r?") {
    spec.rank = -1;  // resolved from the plan seed by the injector
  } else {
    spec.rank = static_cast<int>(parse_int(raw, target.substr(1)));
    if (spec.rank < 0) fail(raw, "negative rank");
  }

  if (segments.size() < 2) fail(raw, "missing trigger (s/n/p/t)");
  for (std::size_t i = 1; i < segments.size(); ++i) {
    const std::string& seg = segments[i];
    if (seg.empty()) fail(raw, "empty segment");
    const char key = seg[0];
    const std::string value = seg.substr(1);
    switch (key) {
      case 's': spec.superstep = parse_int(raw, value); break;
      case 'n': spec.collective = parse_int(raw, value); break;
      case 'p': spec.message = parse_int(raw, value); break;
      case 't': spec.vtime = parse_double(raw, value); break;
      case 'x': spec.count = static_cast<int>(parse_int(raw, value)); break;
      case 'b': spec.backoff_s = parse_double(raw, value); break;
      case 'f': spec.factor = parse_double(raw, value); break;
      default: fail(raw, std::string("unknown segment key '") + key + "'");
    }
  }

  const int triggers = (spec.superstep >= 0) + (spec.collective >= 0) +
                       (spec.message >= 0) + (spec.vtime >= 0);
  if (triggers != 1) fail(raw, "exactly one trigger (s/n/p/t) required");
  if (spec.kind == FaultKind::kCorrupt) {
    if (spec.message < 0 && spec.vtime < 0) {
      fail(raw, "corrupt fires on p2p sends; use a p or t trigger");
    }
  } else if (spec.message >= 0) {
    fail(raw, "p trigger is only valid for corrupt");
  }
  if (spec.count < 1) fail(raw, "x must be >= 1");
  if (spec.backoff_s <= 0) fail(raw, "b must be > 0");
  if (spec.factor <= 0) fail(raw, "f must be > 0");
  return spec;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (strip(text).empty()) return plan;
  for (const auto& part : split(text, ',')) {
    const std::string raw = strip(part);
    if (raw.empty()) continue;
    plan.specs.push_back(parse_spec(raw));
  }
  return plan;
}

}  // namespace hpcg::fault

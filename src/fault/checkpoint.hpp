// Superstep checkpointing: per-rank state snapshots with a globally
// consistent commit protocol.
//
// Algorithms snapshot their rank-local state (frontier/queue contents,
// labels, distances, PageRank vectors) into an in-memory CheckpointStore
// at superstep boundaries through a rank-local Checkpointer handle:
//
//   if (ckpt && ckpt->due(step)) {
//     ckpt->save(comm, step, [&](BlobWriter& w) { w.put(step); ... });
//   }
//
// Commit protocol (what makes a checkpoint *globally consistent*): every
// rank writes its blob for epoch E, then a barrier, then rank 0 marks E
// committed, then a second barrier. A rank that crashes mid-save leaves E
// uncommitted, so recovery resumes from the previous committed epoch —
// the recovery point is a deterministic function of where the fault
// fired, never of thread scheduling.
//
// The store outlives run attempts (it belongs to run_with_recovery); the
// Checkpointer handle is per rank per attempt and pins the resume epoch
// at construction, so every rank of an attempt restores the same epoch.
//
// One checkpointed loop per store: epochs are the loop's superstep
// indices and must grow monotonically, so a recovery run checkpoints a
// single algorithm invocation (exactly what tools/hpcg_run does). Passing
// the same handle to a second algorithm whose superstep count restarts at
// zero is rejected loudly by CheckpointStore::write.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "comm/comm.hpp"

namespace hpcg::fault {

/// Appends trivially-copyable values / vectors into a byte blob.
class BlobWriter {
 public:
  template <class T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    blob_.insert(blob_.end(), p, p + sizeof(T));
  }

  template <class T>
  void put_vec(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(values.size());
    const auto* p = reinterpret_cast<const std::byte*>(values.data());
    blob_.insert(blob_.end(), p, p + values.size() * sizeof(T));
  }

  std::vector<std::byte> take() { return std::move(blob_); }

 private:
  std::vector<std::byte> blob_;
};

/// Reads values back in `put` order; throws std::out_of_range on a
/// truncated or misread blob.
class BlobReader {
 public:
  explicit BlobReader(std::span<const std::byte> blob) : blob_(blob) {}

  template <class T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    std::memcpy(&value, take(sizeof(T)), sizeof(T));
    return value;
  }

  template <class T>
  std::vector<T> get_vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    std::vector<T> values(static_cast<std::size_t>(n));
    if (n > 0) std::memcpy(values.data(), take(n * sizeof(T)), n * sizeof(T));
    return values;
  }

  std::size_t remaining() const { return blob_.size() - offset_; }

 private:
  const std::byte* take(std::size_t n) {
    if (offset_ + n > blob_.size()) {
      throw std::out_of_range("checkpoint blob truncated: need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(blob_.size() - offset_));
    }
    const std::byte* p = blob_.data() + offset_;
    offset_ += n;
    return p;
  }

  std::span<const std::byte> blob_;
  std::size_t offset_ = 0;
};

/// Mutex-guarded epoch -> per-rank blob storage shared by all ranks and
/// all run attempts. Epochs older than the latest committed one are
/// pruned on commit, so memory stays bounded at ~2 epochs.
///
/// This base class keeps blobs in memory, which works when all ranks
/// share one address space (the shm backend). FileCheckpointStore
/// (fault/file_store.hpp) overrides the storage to a directory so ranks
/// in separate processes — the socket transport — share a store too.
class CheckpointStore {
 public:
  explicit CheckpointStore(int nranks);
  virtual ~CheckpointStore() = default;

  int nranks() const { return nranks_; }

  /// Latest committed (globally consistent) epoch, or -1.
  virtual std::int64_t latest_committed() const;

  /// Stores rank `rank`'s blob for `epoch` (overwrites a previous write
  /// of the same attempt; epochs at or below the latest commit are
  /// rejected as a logic error).
  virtual void write(std::int64_t epoch, int rank, std::vector<std::byte> blob);

  /// Marks `epoch` committed; requires every rank to have written it.
  virtual void commit(std::int64_t epoch);

  /// Rank `rank`'s blob of a committed epoch.
  virtual std::vector<std::byte> blob(std::int64_t epoch, int rank) const;

  virtual std::int64_t commits() const;
  virtual std::uint64_t bytes_written() const;

 private:
  struct Epoch {
    std::vector<std::vector<std::byte>> blobs;
    std::vector<char> present;  // which ranks have written (blob may be empty)
    int written = 0;
    bool committed = false;
  };

  const int nranks_;
  mutable std::mutex mutex_;
  std::map<std::int64_t, Epoch> epochs_;
  std::int64_t latest_committed_ = -1;
  std::int64_t commits_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Rank-local checkpointing handle handed to algorithms. A
/// default-constructed (or null) Checkpointer is inert: `due` is always
/// false and `resume_epoch` is -1, so algorithms run unchanged.
class Checkpointer {
 public:
  Checkpointer() = default;

  /// `every` <= 0 disables saving (restore still works if the store has a
  /// committed epoch — used when recovering without further checkpoints).
  Checkpointer(CheckpointStore* store, std::int64_t every);

  bool enabled() const { return store_ != nullptr; }
  std::int64_t interval() const { return every_; }

  /// The committed epoch this attempt resumes from, or -1 for a fresh
  /// start. Pinned at construction: identical on every rank of an attempt.
  std::int64_t resume_epoch() const { return resume_; }

  /// True when the algorithm should checkpoint at superstep boundary
  /// `superstep` (a multiple of the interval, past the resume point).
  bool due(std::int64_t superstep) const {
    return store_ != nullptr && every_ > 0 && superstep > resume_ &&
           superstep % every_ == 0;
  }

  /// Collective: serializes this rank's state for epoch `superstep`, then
  /// runs the commit protocol (barrier; rank 0 commits; barrier).
  void save(comm::Comm& comm, std::int64_t superstep,
            const std::function<void(BlobWriter&)>& serialize);

  /// Restores this rank's state from the resume epoch (requires
  /// resume_epoch() >= 0) and realigns the fault injector's superstep
  /// counter so superstep-keyed triggers stay meaningful on replay.
  void restore(comm::Comm& comm,
               const std::function<void(BlobReader&)>& deserialize);

  /// Checkpoints saved through this handle (this rank, this attempt).
  std::int64_t saves() const { return saves_; }

 private:
  CheckpointStore* store_ = nullptr;
  std::int64_t every_ = 0;
  std::int64_t resume_ = -1;
  std::int64_t saves_ = 0;
};

}  // namespace hpcg::fault

#pragma once

// Directory-backed CheckpointStore for multi-process (socket transport)
// runs. Every rank process opens its own FileCheckpointStore on the same
// directory; coherence comes from the filesystem:
//
//   epoch<E>.rank<R>.ckpt   one blob per rank per epoch
//   COMMITTED               decimal epoch of the latest commit
//
// All writes go through a temp file + rename, so a file either exists
// complete or not at all — a rank killed mid-write can never produce a
// torn blob, and a crash between blob writes and the COMMITTED rename
// simply leaves the previous epoch as the recovery point. This is the
// same commit protocol as the in-memory store (write all, barrier,
// rank 0 commits, barrier), with rename(2) as the atomicity primitive.

#include <filesystem>
#include <string>

#include "fault/checkpoint.hpp"

namespace hpcg::fault {

class FileCheckpointStore final : public CheckpointStore {
 public:
  /// Creates `dir` (and parents) if needed. The directory may already
  /// hold a committed checkpoint from a previous gang attempt — that is
  /// the whole point — so nothing is cleared on construction.
  FileCheckpointStore(const std::filesystem::path& dir, int nranks);

  const std::filesystem::path& dir() const { return dir_; }

  std::int64_t latest_committed() const override;
  void write(std::int64_t epoch, int rank, std::vector<std::byte> blob) override;
  void commit(std::int64_t epoch) override;
  std::vector<std::byte> blob(std::int64_t epoch, int rank) const override;
  std::int64_t commits() const override;
  std::uint64_t bytes_written() const override;

 private:
  std::filesystem::path blob_path(std::int64_t epoch, int rank) const;
  void atomic_write(const std::filesystem::path& target,
                    const void* data, std::size_t size) const;

  std::filesystem::path dir_;
  // Local-process counters only (telemetry); authoritative state is disk.
  mutable std::mutex file_mutex_;
  std::int64_t commits_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace hpcg::fault

#include "fault/recovery.hpp"

#include <algorithm>
#include <string>

namespace hpcg::fault {

RecoveryResult Runtime::run_with_recovery(
    int nranks, const comm::Topology& topo, const comm::CostModel& cost,
    const RecoveryOptions& options,
    const std::function<void(comm::Comm&, Checkpointer&)>& body) {
  CheckpointStore store(nranks);
  RecoveryResult result;

  comm::RunOptions run_options;
  run_options.recorder = options.recorder;
  run_options.faults = options.injector;
  run_options.comm_timeout_s = options.comm_timeout_s;
  run_options.async = options.async;
  run_options.async_chunk = options.async_chunk;
  run_options.kernel = options.kernel;
  run_options.policy = options.policy;

  // Fault instants recorded during failed attempts are wiped when the next
  // attempt resets the telemetry tracks; stash them at failure time and
  // replay them into the recorder after the final attempt, so the exported
  // trace still shows what failed and when.
  std::vector<telemetry::SpanRecord> stashed_instants;

  for (int attempt = 0;; ++attempt) {
    try {
      result.stats = comm::Runtime::run(
          nranks, topo, cost, run_options, [&](comm::Comm& comm) {
            Checkpointer ckpt(options.checkpoint_every > 0 ? &store : nullptr,
                              options.checkpoint_every);
            body(comm, ckpt);
          });
      break;
    } catch (const comm::CommError&) {
      ++result.restarts;
      const std::int64_t resume = store.latest_committed();
      result.resume_epochs.push_back(resume);
      if (options.recorder) {
        for (const auto& span : options.recorder->spans()) {
          if (span.kind == telemetry::SpanKind::kInstant) {
            stashed_instants.push_back(span);
          }
        }
      }
      if (options.injector) {
        // Replay accounting: the failure superstep is the deepest superstep
        // any fired fault reports; the replay re-runs everything from the
        // resume epoch up to it.
        std::int64_t failure_superstep = -1;
        for (const auto& event : options.injector->events()) {
          failure_superstep = std::max(failure_superstep, event.superstep);
        }
        if (failure_superstep >= 0) {
          result.replayed_supersteps += std::max<std::int64_t>(
              0, failure_superstep - std::max<std::int64_t>(resume, 0));
        }
      }
      if (attempt >= options.max_restarts) throw;
    }
  }

  result.checkpoints_committed = store.commits();
  result.checkpoint_bytes = store.bytes_written();

  if (auto* rec = options.recorder) {
    for (auto& span : stashed_instants) rec->record(std::move(span));
    auto& metrics = rec->metrics();
    if (result.restarts > 0) {
      metrics.counter("faults.recovery.restarts").add(result.restarts);
      metrics.counter("faults.recovery.replayed_supersteps")
          .add(result.replayed_supersteps);
    }
    metrics.counter("checkpoint.commits").add(result.checkpoints_committed);
    if (options.injector) {
      // Per-kind totals across all attempts (the live per-site counters
      // only survive for the final attempt — reset_clocks wipes earlier
      // ones along with the clocks).
      for (const FaultKind kind :
           {FaultKind::kCrash, FaultKind::kSilent, FaultKind::kTransient,
            FaultKind::kCorrupt, FaultKind::kDegrade}) {
        const std::uint64_t n = options.injector->fired(kind);
        if (n > 0) {
          metrics.counter(std::string("faults.injected.") + to_string(kind))
              .add(n);
        }
      }
    }
  }
  return result;
}

}  // namespace hpcg::fault

// The collective epoch commit (docs/STREAMING.md): takes one batch of
// EdgeOps (original ids, identical on every rank) and applies it to a live
// Dist2DGraph at a superstep boundary.
//
// Routing reuses the 2D machinery that built the graph: each op expands to
// its two directed entries, each directed entry is owned by exactly one
// rank (row group of the striped source x column group of the striped
// destination), and a single world AllToAllv delivers every entry to its
// owner. Receivers replay their entries in global op order, so the
// distributed edge multiset evolves exactly like the checker's sequential
// host mirror. A commit that applied at least one directed entry anywhere
// bumps the graph epoch on EVERY rank (the epoch is grid-global state);
// empty or all-no-op batches leave the epoch — and therefore every cache
// key — untouched.
//
// Commits are TRANSACTIONAL (docs/RECOVERY.md): entries are staged against
// a copy of the rank's edge multiset and only swapped live inside
// finish_commit, after the count AllReduce has succeeded on every rank. A
// fault anywhere in the protocol aborts the stage, leaving the graph
// bit-identical at the old epoch with the old CSR — a recovered session
// replays the whole batch rather than serving a half-applied graph.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/dist2d.hpp"
#include "stream/mutation_log.hpp"

namespace hpcg::stream {

/// Outcome of one collective commit. Counts are GLOBAL directed-entry
/// totals (agreed by AllReduce, identical on every rank), except
/// `local_inserts` which is this rank's share — the seed set the
/// incremental kernels ripple from.
struct CommitResult {
  /// Graph epoch after the commit (unchanged when `mutated` is false).
  std::uint64_t epoch = 0;
  /// Did any rank apply a directed insert or delete?
  bool mutated = false;
  /// Did any rank remove the last parallel copy of a directed pair?
  /// Incremental CC/BFS must fall back to a full recompute when set.
  bool structural_delete = false;
  std::int64_t inserted = 0;
  std::int64_t deleted = 0;
  std::int64_t noop_deletes = 0;
  /// Directed entries this rank inserted, as (row LID, col LID) pairs.
  std::vector<std::pair<core::Lid, core::Lid>> local_inserts;
};

/// Collective over g.world(): every rank passes the SAME ops batch.
/// Validates endpoints, routes each directed entry to its owning rank,
/// applies, agrees on global counts, and seals the graph epoch. Throws
/// std::invalid_argument on malformed ops or a weighted graph (streaming
/// commits do not carry weights) — deterministically, before any
/// communication, so all ranks throw together.
CommitResult commit(core::Dist2DGraph& g, std::span<const EdgeOp> ops);

}  // namespace hpcg::stream

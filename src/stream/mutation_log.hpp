// Streaming graph mutations (docs/STREAMING.md): the host-side vocabulary.
//
// An EdgeOp names one undirected mutation in ORIGINAL vertex ids — the
// same id space clients of the serving layer speak. Inserts always apply
// (the engine is multi-edge tolerant: inserting an edge that already
// exists adds a parallel copy); a delete removes ONE parallel copy of the
// pair, or is a no-op when the pair is absent. The vertex set is fixed:
// endpoints must lie in [0, n), so the 2D partition, LID maps and
// communicators stay valid across every commit.
//
// The MutationLog is the thread-safe staging buffer in front of the
// collective stream::commit (commit.hpp): producers append ops, the
// committer drains a batch. apply_to_edge_list() is the sequential mirror
// of the distributed application — hpcg_check's stream oracle replays the
// same ops on a host EdgeList and demands the engine agree — and
// generate_ops() is the seeded deterministic op source the load
// generator, checker, and bench share.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace hpcg::stream {

using graph::Gid;

enum class EdgeOpKind : std::uint8_t { kInsert, kDelete };

/// One undirected mutation in original vertex ids. The engine (and the
/// host mirror) expand it into both directed entries (u,v) and (v,u).
struct EdgeOp {
  EdgeOpKind kind = EdgeOpKind::kInsert;
  Gid u = 0;
  Gid v = 0;

  bool operator==(const EdgeOp&) const = default;
};

/// Throws std::invalid_argument (naming the offending index) when an op
/// has an endpoint outside [0, n) or is a self loop.
void validate_ops(std::span<const EdgeOp> ops, Gid n);

/// Thread-safe FIFO staging buffer for mutation batches.
class MutationLog {
 public:
  void append(EdgeOp op);
  void append(std::span<const EdgeOp> ops);

  /// Removes and returns up to `max_ops` ops, oldest first.
  std::vector<EdgeOp> drain(std::size_t max_ops = static_cast<std::size_t>(-1));

  std::size_t size() const;
  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::deque<EdgeOp> log_;
};

/// Counts of one batch application; directed entries (every EdgeOp is two).
struct HostApplyResult {
  std::int64_t inserted = 0;
  std::int64_t deleted = 0;
  std::int64_t noop_deletes = 0;
  /// Some delete removed the LAST parallel copy of its directed pair —
  /// connectivity (and distances) may have changed, so the incremental
  /// CC/BFS kernels must fall back to a full recompute.
  bool structural_delete = false;
};

/// Sequential mirror of stream::commit on a host edge list: ops apply in
/// order; an insert appends (u,v) and (v,u); a delete erases the first
/// occurrence of each direction (order-preserving), no-op when absent.
/// The checker's stream oracle replays batches through this to obtain the
/// post-mutation reference graph.
HostApplyResult apply_to_edge_list(graph::EdgeList& el, std::span<const EdgeOp> ops);

/// Seeded deterministic op batch: pure in (seed, batch_index, count,
/// delete_percent, n, current-edge-list contents). Deletes draw a random
/// existing edge from `current` when provided (so they usually hit);
/// with `current == nullptr` they draw a random pair (usually a no-op —
/// still a legitimate load shape). Returns empty when n < 2.
std::vector<EdgeOp> generate_ops(std::uint64_t seed, std::uint64_t batch_index,
                                 int count, int delete_percent, Gid n,
                                 const graph::EdgeList* current = nullptr);

}  // namespace hpcg::stream

#include "stream/mutation_log.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/prng.hpp"

namespace hpcg::stream {

void validate_ops(std::span<const EdgeOp> ops, Gid n) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto& op = ops[i];
    if (op.u < 0 || op.u >= n || op.v < 0 || op.v >= n) {
      throw std::invalid_argument("mutation op " + std::to_string(i) +
                                  ": endpoint outside [0, n)");
    }
    if (op.u == op.v) {
      throw std::invalid_argument("mutation op " + std::to_string(i) +
                                  ": self loops are not allowed");
    }
  }
}

void MutationLog::append(EdgeOp op) {
  std::lock_guard lock(mutex_);
  log_.push_back(op);
}

void MutationLog::append(std::span<const EdgeOp> ops) {
  std::lock_guard lock(mutex_);
  log_.insert(log_.end(), ops.begin(), ops.end());
}

std::vector<EdgeOp> MutationLog::drain(std::size_t max_ops) {
  std::lock_guard lock(mutex_);
  const auto take = std::min(max_ops, log_.size());
  std::vector<EdgeOp> out(log_.begin(),
                          log_.begin() + static_cast<std::ptrdiff_t>(take));
  log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(take));
  return out;
}

std::size_t MutationLog::size() const {
  std::lock_guard lock(mutex_);
  return log_.size();
}

namespace {

/// Erases the first occurrence of the directed entry (u, v), preserving
/// the order of everything else. Returns {found, another copy remains}.
std::pair<bool, bool> erase_one_directed(graph::EdgeList& el, Gid u, Gid v) {
  const graph::Edge target{u, v};
  const auto it = std::find(el.edges.begin(), el.edges.end(), target);
  if (it == el.edges.end()) return {false, false};
  el.edges.erase(it);
  const bool remains =
      std::find(el.edges.begin(), el.edges.end(), target) != el.edges.end();
  return {true, remains};
}

}  // namespace

HostApplyResult apply_to_edge_list(graph::EdgeList& el,
                                   std::span<const EdgeOp> ops) {
  validate_ops(ops, el.n);
  HostApplyResult out;
  for (const auto& op : ops) {
    if (op.kind == EdgeOpKind::kInsert) {
      el.edges.push_back({op.u, op.v});
      el.edges.push_back({op.v, op.u});
      out.inserted += 2;
      continue;
    }
    // Each direction is tracked independently, exactly like the directed
    // entries the distributed commit routes to (possibly different) ranks.
    for (const auto& [a, b] : {std::pair{op.u, op.v}, std::pair{op.v, op.u}}) {
      const auto [found, remains] = erase_one_directed(el, a, b);
      if (!found) {
        ++out.noop_deletes;
      } else {
        ++out.deleted;
        if (!remains) out.structural_delete = true;
      }
    }
  }
  return out;
}

std::vector<EdgeOp> generate_ops(std::uint64_t seed, std::uint64_t batch_index,
                                 int count, int delete_percent, Gid n,
                                 const graph::EdgeList* current) {
  std::vector<EdgeOp> out;
  if (n < 2) return out;
  // Same per-stream splitting idiom as the load generator's per-client
  // seeding: batch k of seed s is the same everywhere, every time.
  util::Xoshiro256 rng(util::splitmix64(seed) +
                       batch_index * 0x9e3779b97f4a7c15ull);
  out.reserve(static_cast<std::size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) {
    const bool del =
        static_cast<int>(rng.next_below(100)) < delete_percent;
    if (del && current && !current->edges.empty()) {
      const auto& e = current->edges[static_cast<std::size_t>(
          rng.next_below(current->edges.size()))];
      // The mirror may hold (u,v) with u == v filtered out upstream, but
      // guard anyway: a self loop is not a legal op.
      if (e.u != e.v) {
        out.push_back({EdgeOpKind::kDelete, e.u, e.v});
        continue;
      }
    }
    Gid u = static_cast<Gid>(rng.next_below(static_cast<std::uint64_t>(n)));
    Gid v = static_cast<Gid>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) v = (v + 1) % n;
    out.push_back({del ? EdgeOpKind::kDelete : EdgeOpKind::kInsert, u, v});
  }
  return out;
}

}  // namespace hpcg::stream

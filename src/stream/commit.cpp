#include "stream/commit.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "core/work.hpp"

namespace hpcg::stream {

namespace {

/// One directed entry in flight: `seq` is the op's index in the batch, so
/// the owner can replay its entries in global op order (entries of the
/// same directed pair always land on the same rank, making the replay
/// order-equivalent to the sequential host mirror). Endpoints are striped
/// GIDs — already relabeled by the sender.
struct DirectedOp {
  std::int64_t seq = 0;
  graph::Gid u = 0;
  graph::Gid v = 0;
  std::int32_t insert = 0;
};

}  // namespace

CommitResult commit(core::Dist2DGraph& g, std::span<const EdgeOp> ops) {
  // Both checks are deterministic on identical inputs, so every rank
  // throws (or proceeds) together — no rank is left stranded in a
  // collective.
  if (g.partition().weighted()) {
    throw std::invalid_argument(
        "stream::commit: weighted graphs do not accept streaming mutations");
  }
  validate_ops(ops, g.n());

  auto& world = g.world();
  const auto& parts = g.partition();
  const auto& grid = g.grid();
  const int nranks = world.size();
  auto span = world.phase_span("stream.commit");

  CommitResult out;
  out.epoch = g.epoch();
  if (ops.empty()) return out;
  // One commit is one superstep; its value is the applied directed-entry
  // count (set before the span closes at function exit).
  auto superstep = world.superstep_span("stream.commit");

  // Expansion: a deterministic 1/P slice of the batch per rank, each op
  // becoming its two directed entries, bucketed by owning rank.
  std::vector<std::vector<DirectedOp>> buckets(
      static_cast<std::size_t>(nranks));
  const auto route = [&](std::int64_t seq, Gid a, Gid b, bool insert) {
    const int dest = grid.rank_at(parts.row_partition().part_of(a),
                                  parts.col_partition().part_of(b));
    buckets[static_cast<std::size_t>(dest)].push_back(
        {seq, a, b, insert ? 1 : 0});
  };
  for (std::size_t i = static_cast<std::size_t>(world.rank()); i < ops.size();
       i += static_cast<std::size_t>(nranks)) {
    const auto& op = ops[i];
    const Gid u = parts.relabel().to_new(op.u);
    const Gid v = parts.relabel().to_new(op.v);
    const bool insert = op.kind == EdgeOpKind::kInsert;
    route(static_cast<std::int64_t>(i), u, v, insert);
    route(static_cast<std::int64_t>(i), v, u, insert);
  }

  std::vector<DirectedOp> send;
  std::vector<std::size_t> send_counts(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    send_counts[static_cast<std::size_t>(r)] = buckets[r].size();
    send.insert(send.end(), buckets[r].begin(), buckets[r].end());
  }
  std::vector<DirectedOp> received;
  world.alltoallv(std::span<const DirectedOp>(send), send_counts, received);

  // Replay in global op order. The (u, v) tiebreak only orders the two
  // directions of one op — distinct directed pairs, so any order gives
  // the same multiset.
  std::sort(received.begin(), received.end(),
            [](const DirectedOp& a, const DirectedOp& b) {
              return std::tie(a.seq, a.u, a.v) < std::tie(b.seq, b.u, b.v);
            });
  const auto& lids = g.lids();
  std::vector<core::Dist2DGraph::LocalEdgeOp> local_ops;
  local_ops.reserve(received.size());
  for (const auto& d : received) {
    local_ops.push_back({d.insert != 0, lids.row_lid(d.u), lids.col_lid(d.v)});
  }
  const auto applied = g.stage_local_edge_ops(local_ops);
  core::charge_kernel(world, /*vertices=*/0,
                      static_cast<std::int64_t>(ops.size() + received.size()));

  // Agree on the global outcome so every rank branches identically on
  // `mutated` and `structural_delete`.
  std::int64_t counts[4] = {applied.inserted, applied.deleted,
                            applied.noop_deletes,
                            applied.structural_delete ? 1 : 0};
  try {
    world.allreduce(std::span<std::int64_t>(counts), comm::ReduceOp::kSum);
  } catch (...) {
    // Abort path: drop the staged multiset so the live CSR and epoch are
    // exactly pre-commit — a recovered session replays the whole batch
    // instead of serving a half-applied graph. Rethrowing lets the
    // runtime's abort flag release every rank still blocked in the
    // collective.
    g.abort_commit();
    throw;
  }
  out.inserted = counts[0];
  out.deleted = counts[1];
  out.noop_deletes = counts[2];
  out.structural_delete = counts[3] > 0;
  out.mutated = (out.inserted + out.deleted) > 0;

  for (const auto& op : local_ops) {
    if (op.insert) out.local_inserts.emplace_back(op.u, op.v);
  }

  if (out.mutated) {
    const bool local_dirty = (applied.inserted + applied.deleted) > 0;
    g.finish_commit(out.inserted - out.deleted, local_dirty);
  } else {
    g.abort_commit();  // all-no-op batch: nothing to swap in
  }
  out.epoch = g.epoch();
  superstep.set_value(out.inserted + out.deleted);
  return out;
}

}  // namespace hpcg::stream

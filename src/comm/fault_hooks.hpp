// Fault-injection hook interface consulted by the communicator.
//
// Mirrors the telemetry design: a `FaultHooks*` attached to the World is
// null by default, so every injection site in the fault-free path reduces
// to a single pointer test and the modeled timing/traffic is bit-identical
// to a build without the subsystem. The concrete implementation
// (`fault::FaultInjector`) lives in src/fault/ and is handed to
// `Runtime::run` via `RunOptions::faults`; keeping only this abstract
// interface in the comm layer avoids a comm -> fault library cycle
// (hpcg_fault links hpcg_comm for the checkpoint/recovery machinery).
#pragma once

#include <cstddef>
#include <cstdint>

#include "comm/stats.hpp"

namespace hpcg::comm {

/// What the comm layer should do about one communication operation on one
/// rank. Produced by FaultHooks; applied inside Comm at the injection site.
struct FaultDecision {
  enum class Action : std::uint8_t {
    kNone,    // proceed normally
    kCrash,   // throw RankFailure out of the call site
    kSilent,  // unwind the rank quietly; peers surface Timeout
  };
  Action action = Action::kNone;
  /// Transient collective failure: number of failed attempts to model
  /// before the operation succeeds. Each attempt a charges
  /// backoff_s * 2^a of virtual comm time to the faulted rank.
  int transient_failures = 0;
  double backoff_s = 0.0;
};

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  /// Called by rank `rank` on entry to every collective (before the
  /// protocol's first barrier). Advances the rank's collective sequence
  /// counter; the decision is applied at the call site.
  virtual FaultDecision on_collective(int rank, CollectiveOp op,
                                      double vtime) = 0;

  /// Called when a rank opens a superstep span (once per superstep).
  /// Advances the rank's superstep counter.
  virtual FaultDecision on_superstep(int rank, double vtime) = 0;

  /// Called by the collective leader in phase B: the cost multiplier to
  /// apply to this collective (max over members' active degradation
  /// windows; 1.0 when none). Reading peers' window state is safe because
  /// phase B is ordered after every member's on_collective by barrier 1.
  virtual double collective_cost_multiplier(const int* members,
                                            int count) = 0;

  /// Cost multiplier for a p2p message sent by `src` (sender's active
  /// degradation window only — peers' state is not touched off-thread).
  virtual double p2p_cost_multiplier(int src, double vtime) = 0;

  /// Called by the sender for every p2p message. Advances the rank's p2p
  /// sequence counter. Returns the bit index to flip in the payload (a
  /// seeded, deterministic choice) or -1 to leave it intact.
  virtual std::int64_t p2p_corrupt_bit(int src, std::size_t payload_bytes,
                                       double vtime) = 0;

  /// Reset per-rank sequence counters at the start of a (re)run attempt.
  /// Fired faults stay consumed across attempts, so a crash replayed from
  /// a checkpoint does not re-fire.
  virtual void begin_run() = 0;

  /// Realign `rank`'s superstep counter after a checkpoint restore so that
  /// the next on_superstep call reports `next_superstep`.
  virtual void resume_superstep(int rank, std::int64_t next_superstep) = 0;

  /// True when the plan contains faults (silent death) that require a
  /// wall-clock deadline to surface; Runtime::run applies a default
  /// comm timeout when the caller did not configure one.
  virtual bool wants_deadline() const = 0;
};

}  // namespace hpcg::comm

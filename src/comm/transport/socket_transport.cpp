#include "comm/transport/socket_transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>

#include "comm/errors.hpp"

namespace hpcg::comm::transport {
namespace {

constexpr std::uint32_t kMagic = 0x47435048u;  // "HPCG" little-endian

struct WireHeader {
  std::uint32_t magic;
  std::int32_t src;
  std::uint64_t channel;
  std::int64_t tag;
  std::uint64_t length;
  std::uint64_t checksum;
};
static_assert(sizeof(WireHeader) == 40, "wire header is 40 bytes");

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("fcntl(O_NONBLOCK) failed: " +
                             std::string(std::strerror(errno)));
  }
}

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t fnv1a_bytes(const std::byte* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

SocketMesh::SocketMesh(int nranks) : nranks_(nranks) {
  if (nranks < 1) throw std::invalid_argument("SocketMesh: nranks must be >= 1");
  fds_.assign(static_cast<std::size_t>(nranks) * nranks, -1);
  for (int a = 0; a < nranks; ++a) {
    for (int b = a + 1; b < nranks; ++b) {
      int pair[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
        throw std::runtime_error("socketpair failed: " +
                                 std::string(std::strerror(errno)));
      }
      fds_[static_cast<std::size_t>(a) * nranks + b] = pair[0];
      fds_[static_cast<std::size_t>(b) * nranks + a] = pair[1];
    }
  }
}

SocketMesh::~SocketMesh() { close_all(); }

std::vector<int> SocketMesh::claim(int rank) {
  std::vector<int> out(static_cast<std::size_t>(nranks_), -1);
  for (int b = 0; b < nranks_; ++b) {
    if (b == rank) continue;
    auto& slot = fds_[static_cast<std::size_t>(rank) * nranks_ + b];
    out[static_cast<std::size_t>(b)] = slot;
    slot = -1;
  }
  return out;
}

void SocketMesh::close_all() {
  for (auto& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

SocketTransport::SocketTransport(int rank, int nranks,
                                 std::vector<int> peer_fds)
    : rank_(rank), nranks_(nranks) {
  peers_.resize(static_cast<std::size_t>(nranks));
  for (int p = 0; p < nranks; ++p) {
    if (p == rank) continue;
    const int fd = p < static_cast<int>(peer_fds.size()) ? peer_fds[p] : -1;
    if (fd < 0) throw std::invalid_argument("SocketTransport: missing peer fd");
    set_nonblocking(fd);
    peers_[static_cast<std::size_t>(p)].fd = fd;
  }
}

SocketTransport::~SocketTransport() {
  // Graceful goodbye: peers distinguish "finished" (EOF after goodbye) from
  // "died" (raw EOF). A transport destructing during exception unwind is a
  // failing rank, not a finishing one — it must look dead to its peers so
  // their blocked receives throw RankFailure (retryable gang restart)
  // instead of treating the EOF as graceful and waiting forever. Best-effort
  // either way — a closing rank must never throw.
  if (std::uncaught_exceptions() == 0) {
    const WireHeader h{kMagic, rank_, kCtrlChannel, 0, 0,
                       fnv1a_bytes(nullptr, 0)};
    for (auto& peer : peers_) {
      if (peer.fd < 0 || peer.eof) continue;
      (void)::send(peer.fd, &h, sizeof(h), MSG_NOSIGNAL | MSG_DONTWAIT);
    }
  }
  for (auto& peer : peers_) {
    if (peer.fd < 0) continue;
    ::close(peer.fd);
    peer.fd = -1;
  }
}

void SocketTransport::send(int dest, std::uint64_t channel, std::int64_t tag,
                           std::span<const std::byte> payload) {
  if (dest < 0 || dest >= nranks_) {
    throw std::invalid_argument("SocketTransport::send: bad destination " +
                                std::to_string(dest));
  }
  if (payload.size() > kMaxFrameBytes) {
    throw std::length_error("SocketTransport::send: payload of " +
                            std::to_string(payload.size()) +
                            " bytes exceeds the frame limit of " +
                            std::to_string(kMaxFrameBytes));
  }
  if (kill_after_ >= 0 && sends_++ >= kill_after_) {
    std::raise(SIGKILL);
  }
  if (dest == rank_) {
    // Self-send loops back through the inbox without touching the wire —
    // the shm mailbox supports self-send, and backends must agree.
    Frame f;
    f.src = rank_;
    f.channel = channel;
    f.tag = tag;
    f.payload.assign(payload.begin(), payload.end());
    inbox_.push_back(std::move(f));
    return;
  }
  const WireHeader h{kMagic,         rank_, channel, tag, payload.size(),
                     fnv1a_bytes(payload.data(), payload.size())};
  write_all(dest, std::span<const std::byte>(
                      reinterpret_cast<const std::byte*>(&h), sizeof(h)));
  write_all(dest, payload);
}

void SocketTransport::write_all(int dest, std::span<const std::byte> bytes) {
  auto& peer = peers_[static_cast<std::size_t>(dest)];
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(peer.fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The peer's socket buffer is full; keep draining our inbound sides
      // so the mesh can make progress (everyone may be mid-send), and wait
      // for writability.
      progress(50, peer.fd);
      continue;
    }
    peer.eof = true;  // EPIPE / ECONNRESET: peer is gone
    throw RankFailure("transport: send to rank " + std::to_string(dest) +
                      " failed (" + std::string(std::strerror(errno)) + ")");
  }
}

void SocketTransport::progress(int timeout_ms, int write_fd) {
  std::vector<pollfd> pfds;
  std::vector<int> owners;
  pfds.reserve(peers_.size() + 1);
  for (int p = 0; p < nranks_; ++p) {
    auto& peer = peers_[static_cast<std::size_t>(p)];
    if (peer.fd < 0 || peer.eof) continue;
    pfds.push_back(pollfd{peer.fd, POLLIN, 0});
    owners.push_back(p);
  }
  if (write_fd >= 0) pfds.push_back(pollfd{write_fd, POLLOUT, 0});
  if (pfds.empty()) {
    // Every peer is at EOF: nothing to poll, but callers expect this to
    // block for timeout_ms rather than return immediately and hot-spin.
    if (timeout_ms > 0) ::poll(nullptr, 0, timeout_ms);
    return;
  }

  const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (ready < 0 && errno != EINTR) {
    throw std::runtime_error("transport poll failed: " +
                             std::string(std::strerror(errno)));
  }
  if (ready <= 0) return;

  for (std::size_t i = 0; i < owners.size(); ++i) {
    if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
    auto& peer = peers_[static_cast<std::size_t>(owners[i])];
    for (;;) {
      std::byte buf[65536];
      const ssize_t n = ::recv(peer.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        peer.rx.insert(peer.rx.end(), buf, buf + n);
        continue;
      }
      if (n == 0) {
        peer.eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      peer.eof = true;  // ECONNRESET and friends: hard death
      break;
    }
    parse_frames(owners[i]);
  }
}

void SocketTransport::parse_frames(int p) {
  auto& peer = peers_[static_cast<std::size_t>(p)];
  for (;;) {
    const std::size_t avail = peer.rx.size() - peer.rx_off;
    if (avail < sizeof(WireHeader)) break;
    WireHeader h;
    std::memcpy(&h, peer.rx.data() + peer.rx_off, sizeof(h));
    if (h.magic != kMagic || h.src != p) {
      peer.eof = true;
      throw RankFailure("transport: corrupted frame header from rank " +
                        std::to_string(p));
    }
    // Reject an implausible length before trusting it: a corrupted length
    // near UINT64_MAX would wrap a `header + length` sum (out-of-bounds
    // payload copy), and a merely huge one would buffer forever instead of
    // surfacing the corruption the checksum exists to catch.
    if (h.length > kMaxFrameBytes) {
      peer.eof = true;
      throw RankFailure("transport: frame length " + std::to_string(h.length) +
                        " from rank " + std::to_string(p) +
                        " exceeds the frame limit of " +
                        std::to_string(kMaxFrameBytes));
    }
    if (avail - sizeof(WireHeader) < h.length) break;
    Frame f;
    f.src = p;
    f.channel = h.channel;
    f.tag = h.tag;
    const std::byte* body = peer.rx.data() + peer.rx_off + sizeof(WireHeader);
    f.payload.assign(body, body + h.length);
    if (fnv1a_bytes(f.payload.data(), f.payload.size()) != h.checksum) {
      peer.eof = true;
      throw RankFailure("transport: frame checksum mismatch from rank " +
                        std::to_string(p));
    }
    peer.rx_off += sizeof(WireHeader) + h.length;
    if (f.channel == kCtrlChannel) {
      peer.goodbye = true;
    } else {
      inbox_.push_back(std::move(f));
    }
  }
  // Compact the consumed prefix occasionally instead of erasing per frame.
  if (peer.rx_off > (1u << 20) || peer.rx_off == peer.rx.size()) {
    peer.rx.erase(peer.rx.begin(),
                  peer.rx.begin() + static_cast<std::ptrdiff_t>(peer.rx_off));
    peer.rx_off = 0;
  }
}

void SocketTransport::check_liveness() {
  for (int p = 0; p < nranks_; ++p) {
    const auto& peer = peers_[static_cast<std::size_t>(p)];
    if (peer.fd < 0) continue;
    if (peer.eof && !peer.goodbye) {
      throw RankFailure("transport: rank " + std::to_string(p) +
                        " connection closed without shutdown (process died)");
    }
  }
}

Frame SocketTransport::recv_impl(int src, std::uint64_t channel,
                                 std::int64_t tag, double timeout_s) {
  const double deadline = timeout_s > 0 ? now_s() + timeout_s : 0.0;
  for (;;) {
    for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
      if (it->channel != channel || it->tag != tag) continue;
      if (src >= 0 && it->src != src) continue;
      Frame f = std::move(*it);
      inbox_.erase(it);
      return f;
    }
    // No match buffered: a peer that died mid-protocol means the gang can
    // never complete this operation.
    check_liveness();
    // Same when every candidate source has closed its stream — even
    // gracefully: drained connections deliver nothing further and self-sent
    // frames loop back synchronously, so the awaited frame can never arrive
    // and blocking would hang the gang instead of triggering recovery.
    bool can_arrive = false;
    if (src < 0) {
      for (const auto& peer : peers_) {
        if (peer.fd >= 0 && !peer.eof) {
          can_arrive = true;
          break;
        }
      }
    } else if (src != rank_) {
      const auto& peer = peers_[static_cast<std::size_t>(src)];
      can_arrive = peer.fd >= 0 && !peer.eof;
    }
    if (!can_arrive) {
      throw RankFailure(
          "transport: awaited frame (channel " + std::to_string(channel) +
          ", tag " + std::to_string(tag) +
          ") can never arrive: every candidate source has closed");
    }
    int wait_ms = 50;
    if (deadline > 0) {
      const double remain = deadline - now_s();
      if (remain <= 0) {
        throw Timeout("transport: recv deadline exceeded (channel " +
                      std::to_string(channel) + ", tag " + std::to_string(tag) +
                      ")");
      }
      // min() first: a large remain would overflow the int cast.
      wait_ms = static_cast<int>(std::min<double>(wait_ms, remain * 1000 + 1));
    }
    progress(wait_ms);
  }
}

Frame SocketTransport::recv_any(std::uint64_t channel, std::int64_t tag,
                                double timeout_s) {
  return recv_impl(-1, channel, tag, timeout_s);
}

Frame SocketTransport::recv_from(int src, std::uint64_t channel,
                                 std::int64_t tag, double timeout_s) {
  // src == rank_ is legal: self-sends loop back through the inbox.
  if (src < 0 || src >= nranks_) {
    throw std::invalid_argument("SocketTransport::recv_from: bad source " +
                                std::to_string(src));
  }
  return recv_impl(src, channel, tag, timeout_s);
}

bool SocketTransport::try_recv(std::uint64_t channel, std::int64_t tag,
                               Frame* out) {
  progress(0);
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    if (it->channel != channel || it->tag != tag) continue;
    *out = std::move(*it);
    inbox_.erase(it);
    return true;
  }
  return false;
}

}  // namespace hpcg::comm::transport

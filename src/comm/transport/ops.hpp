#pragma once

// Byte-level collectives over a Transport endpoint. One Ops instance wraps
// one Comm and implements every collective with explicit frames, following
// the SAME combine orders and data-movement rules as the shared-memory
// leader protocol so results stay bit-identical across backends:
//   - reductions fold member buffers in member order 1..n-1 into member 0's
//     data (member 0 a.k.a. the group leader is always the relay root);
//   - concatenations (gather/allgather/alltoallv outputs) are laid out in
//     member order;
//   - split re-runs the leader's (color -> sorted (key, world_rank))
//     bucketing identically on every member.
//
// Tag scheme: frames carry (channel = group's transport channel id,
// tag = per-group op sequence number). Every member advances the sequence
// in lockstep because collectives are program-ordered within a group;
// multi-phase ops draw one sequence number per phase so frames from
// different phases can never be confused under any-source matching.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "comm/stats.hpp"
#include "comm/transport/transport.hpp"

namespace hpcg::comm {
class Comm;

namespace transport {

/// Byte-level combiner: fold `from` into `into` (`bytes` bytes each).
using ByteCombine =
    std::function<void(std::byte* into, const std::byte* from,
                       std::size_t bytes)>;

/// One segment of a grouped multi-broadcast, type-erased to bytes.
struct ByteSeg {
  int root = 0;
  std::byte* data = nullptr;
  std::size_t bytes = 0;
};

/// Derives a child group's transport channel id from its parent's. The
/// high bit is forced so derived channels never collide with the reserved
/// p2p/world/ctrl ids.
std::uint64_t derive_child_channel(std::uint64_t parent,
                                   std::uint64_t split_seq, int color);

class Ops {
 public:
  explicit Ops(Comm& comm) : comm_(comm) {}

  void barrier();
  void broadcast(std::span<std::byte> data, int root);
  void multi_broadcast(std::span<const ByteSeg> segments);
  void allreduce(std::span<std::byte> data, const ByteCombine& combine);
  void reduce(std::span<std::byte> data, int root, const ByteCombine& combine);
  void reduce_scatter(std::span<const std::byte> send,
                      std::span<std::byte> recv, const ByteCombine& combine);
  void gather(std::span<const std::byte> send, std::span<std::byte> recv,
              int root);
  void scatter(std::span<const std::byte> send, std::span<std::byte> recv,
               int root);
  void allgather(std::span<const std::byte> send, std::span<std::byte> recv);
  void allgatherv(std::span<const std::byte> send, std::vector<std::byte>& out,
                  std::vector<std::size_t>* counts_bytes);
  void alltoallv(std::span<const std::byte> send,
                 std::span<const std::size_t> send_counts_bytes,
                 std::vector<std::byte>& out,
                 std::vector<std::size_t>* recv_counts_bytes);

  /// Exchanges (color, key) across the group and re-runs the shm leader's
  /// bucketing locally; returns the caller's child members (world ranks in
  /// group order) and the child group's transport channel id.
  std::vector<int> split_members(int color, int key,
                                 std::uint64_t* child_channel);

  /// The wire exchange of barrier() without clock/metric accounting —
  /// reset_clocks aligns the gang with it while zeroing the very counters
  /// barrier() would bump.
  void barrier_norecord();

 private:
  /// Scoped enter/finish around one collective: enter_collective at
  /// construction, transport_finish(op, bytes, msgs) on finish(); a plain
  /// exit on unwind if the wire exchange threw.
  struct Scope {
    Scope(Comm& c, CollectiveOp op);
    ~Scope();
    void finish(std::uint64_t bytes, std::uint64_t msgs);
    Comm& c;
    CollectiveOp op;
    bool done = false;
  };

  int n() const;
  int me() const;
  int world_of(int member) const;
  int member_of_world(int world_rank) const;
  std::uint64_t chan() const;
  std::uint64_t next_seq();
  double deadline() const;
  Transport& tp();
  void send_to(int member, std::uint64_t seq,
               std::span<const std::byte> payload);
  Frame recv_from_member(int member, std::uint64_t seq);
  Frame recv_any_member(std::uint64_t seq);
  void wire_barrier();

  Comm& comm_;
};

}  // namespace transport
}  // namespace hpcg::comm

#include "comm/transport/launcher.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <vector>

#include "comm/errors.hpp"

namespace hpcg::comm::transport {
namespace {

[[noreturn]] void child_main(SocketMesh& mesh, int rank, int nranks,
                             int attempt, const GangOptions& options,
                             const std::function<int(SocketTransport&, int)>& child) {
  int code = 1;
  try {
    SocketTransport transport(rank, nranks, mesh.claim(rank));
    mesh.close_all();  // drop every descriptor that is not ours
    if (attempt == 0 && rank == options.kill_rank) {
      transport.kill_after_sends(options.kill_after_sends);
    }
    code = child(transport, attempt);
    // transport destructs here: goodbye frames tell peers this is a
    // graceful finish, not a death.
  } catch (const CommError& e) {
    std::fprintf(stderr, "[rank %d] %s\n", rank, e.what());
    code = kRetryableExit;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[rank %d] error: %s\n", rank, e.what());
    code = 1;
  }
  std::fflush(stdout);
  std::fflush(stderr);
  // _Exit: never run the parent's atexit handlers / static destructors in
  // a forked child.
  std::_Exit(code);
}

}  // namespace

GangResult run_gang(const GangOptions& options,
                    const std::function<int(SocketTransport&, int)>& child) {
  if (options.procs < 1) {
    throw std::invalid_argument("run_gang: procs must be >= 1");
  }
  GangResult result;
  for (int attempt = 0;; ++attempt) {
    // Children inherit stdio buffers; flush so buffered parent output is
    // not replayed once per child at exit.
    std::fflush(stdout);
    std::fflush(stderr);
    SocketMesh mesh(options.procs);
    std::vector<pid_t> pids(static_cast<std::size_t>(options.procs), -1);
    for (int r = 0; r < options.procs; ++r) {
      const pid_t pid = ::fork();
      if (pid < 0) {
        // Fork failed mid-gang: reap what we started and give up.
        mesh.close_all();
        for (const pid_t p : pids) {
          if (p > 0) ::waitpid(p, nullptr, 0);
        }
        throw std::runtime_error("run_gang: fork failed");
      }
      if (pid == 0) {
        child_main(mesh, r, options.procs, attempt, options, child);
      }
      pids[static_cast<std::size_t>(r)] = pid;
    }
    mesh.close_all();  // children own their rows now; EOF works only if the
                       // parent is not holding duplicate descriptors

    bool retryable = false;
    int hard_exit = 0;
    for (const pid_t pid : pids) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      if (WIFSIGNALED(status)) {
        retryable = true;
      } else if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        if (code == kRetryableExit) {
          retryable = true;
        } else if (code != 0 && hard_exit == 0) {
          hard_exit = code;
        }
      }
    }
    if (hard_exit != 0) {
      result.exit_code = hard_exit;
      return result;
    }
    if (!retryable) {
      result.exit_code = 0;
      return result;
    }
    if (attempt >= options.max_restarts) {
      result.exit_code = 1;
      return result;
    }
    ++result.restarts;
  }
}

}  // namespace hpcg::comm::transport

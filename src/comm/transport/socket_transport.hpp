#pragma once

// Unix-domain-socket Transport. A gang of N endpoints is wired as a full
// mesh of socketpair()s created before fork (SocketMesh); each rank claims
// its row of descriptors and talks to every peer directly. Frames are
// length-prefixed with an FNV-1a payload checksum; liveness is detected by
// EOF (a peer that closes without sending a goodbye control frame is dead),
// so blocking receives do not need a deadline unless the caller asks for
// one. The goodbye is sent only on clean destruction — a transport torn
// down by exception unwind looks dead to its peers — and a receive whose
// awaited frame can never arrive (every candidate source closed, goodbye or
// not) throws RankFailure instead of blocking forever. Self-sends loop back
// through the local inbox, matching the shm mailbox semantics.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "comm/transport/transport.hpp"

namespace hpcg::comm::transport {

/// Hard cap on one frame's payload. Sends above it throw length_error; a
/// received header claiming more is corruption (RankFailure) — lengths are
/// validated against this before any allocation, so a wild 64-bit value can
/// neither wrap the availability arithmetic nor buffer unboundedly.
inline constexpr std::uint64_t kMaxFrameBytes = 1ull << 31;

/// Full mesh of AF_UNIX stream socketpairs for an n-rank gang. Built in
/// the parent before fork so every process inherits the descriptors; each
/// child claims its own row and closes the rest.
class SocketMesh {
 public:
  explicit SocketMesh(int nranks);
  ~SocketMesh();
  SocketMesh(const SocketMesh&) = delete;
  SocketMesh& operator=(const SocketMesh&) = delete;

  int nranks() const { return nranks_; }

  /// Returns rank's peer descriptors (index = peer rank, own slot -1) and
  /// transfers their ownership to the caller.
  std::vector<int> claim(int rank);

  /// Closes every descriptor not yet claimed (call in each child after
  /// claim, and in the parent after all forks).
  void close_all();

 private:
  int nranks_ = 0;
  std::vector<int> fds_;  // fds_[a * nranks_ + b] = a's endpoint toward b
};

/// One rank's endpoint over a claimed set of peer descriptors.
class SocketTransport final : public Transport {
 public:
  SocketTransport(int rank, int nranks, std::vector<int> peer_fds);
  ~SocketTransport() override;

  int rank() const override { return rank_; }
  int nranks() const override { return nranks_; }
  const char* name() const override { return "socket"; }

  void send(int dest, std::uint64_t channel, std::int64_t tag,
            std::span<const std::byte> payload) override;
  Frame recv_any(std::uint64_t channel, std::int64_t tag,
                 double timeout_s) override;
  Frame recv_from(int src, std::uint64_t channel, std::int64_t tag,
                  double timeout_s) override;
  bool try_recv(std::uint64_t channel, std::int64_t tag, Frame* out) override;

  /// Socket liveness comes from EOF, not deadlines: the implicit fault-work
  /// default would misreport a slow-but-alive peer as Timeout, so only an
  /// explicit user request installs a deadline.
  double resolve_timeout(double requested_s,
                         bool explicit_request) const override {
    return explicit_request ? requested_s : 0.0;
  }

  /// Crash-test hook: raise(SIGKILL) just before the (n+1)-th frame send.
  /// Mimics a hard process death mid-protocol (no goodbye, torn stream).
  void kill_after_sends(std::int64_t n) { kill_after_ = n; }

 private:
  struct Peer {
    int fd = -1;
    std::vector<std::byte> rx;  // unparsed inbound bytes
    std::size_t rx_off = 0;     // consumed prefix of rx
    bool eof = false;
    bool goodbye = false;  // peer announced a graceful shutdown
  };

  /// Polls all live peers (plus optionally one fd for writability), drains
  /// readable data, and parses complete frames into inbox_.
  void progress(int timeout_ms, int write_fd = -1);
  void parse_frames(int peer);
  void write_all(int dest, std::span<const std::byte> bytes);
  Frame recv_impl(int src /* -1 = any */, std::uint64_t channel,
                  std::int64_t tag, double timeout_s);
  void check_liveness();

  int rank_ = 0;
  int nranks_ = 1;
  std::vector<Peer> peers_;
  std::deque<Frame> inbox_;
  std::int64_t kill_after_ = -1;
  std::int64_t sends_ = 0;
};

/// FNV-1a over a byte span (matches the offset/prime pair the shm backend
/// uses for p2p payload checksums).
std::uint64_t fnv1a_bytes(const std::byte* data, std::size_t size);

}  // namespace hpcg::comm::transport

#include "comm/transport/thread_gang.hpp"

#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "comm/transport/socket_transport.hpp"

namespace hpcg::comm::transport {

std::vector<RunStats> run_socket_threads(
    int nranks, const Topology& topo, const CostModel& cost,
    const RunOptions& base, const std::function<void(Comm&)>& body) {
  SocketMesh mesh(nranks);
  std::vector<std::optional<RunStats>> stats(
      static_cast<std::size_t>(nranks));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        SocketTransport transport(r, nranks, mesh.claim(r));
        RunOptions options = base;
        options.transport = &transport;
        stats[static_cast<std::size_t>(r)] =
            Runtime::run(nranks, topo, cost, options, body);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // The transport destructed during unwind: peers see EOF without a
        // goodbye and throw RankFailure out of their next blocked receive,
        // so the whole gang unwinds without an abort flag.
      }
    });
  }
  for (auto& t : threads) t.join();
  mesh.close_all();
  if (first_error) std::rethrow_exception(first_error);
  std::vector<RunStats> out;
  out.reserve(static_cast<std::size_t>(nranks));
  for (auto& s : stats) out.push_back(std::move(*s));
  return out;
}

}  // namespace hpcg::comm::transport

#pragma once

// Process gang launcher: forks one child per rank over a pre-built
// SocketMesh and supervises them. Recovery is whole-gang restart — when a
// rank dies (signal, or a CommError mapped to kRetryableExit), the
// surviving ranks observe EOF, throw RankFailure, and exit retryable too;
// the parent reaps everyone and re-forks the gang. Combined with a
// checkpoint store on disk the restarted gang resumes from the last
// committed superstep: the process-level analog of
// fault::Runtime::run_with_recovery.

#include <cstdint>
#include <functional>

#include "comm/transport/socket_transport.hpp"

namespace hpcg::comm::transport {

/// Child exit code meaning "I failed because a peer (or I) died mid-run;
/// restarting the gang can succeed" — chosen to match sysexits EX_TEMPFAIL.
inline constexpr int kRetryableExit = 75;

struct GangOptions {
  int procs = 1;
  /// Whole-gang restarts allowed before giving up.
  int max_restarts = 3;
  /// Crash-test hook: on the FIRST attempt only, rank `kill_rank` raises
  /// SIGKILL before its (kill_after_sends+1)-th frame send. -1 disables.
  int kill_rank = -1;
  std::int64_t kill_after_sends = 0;
};

struct GangResult {
  int restarts = 0;
  /// 0 on success; the first non-retryable child exit code, or 1 when the
  /// restart budget is exhausted.
  int exit_code = 0;
};

/// Forks `procs` children, each running `child(transport, attempt)` and
/// exiting with its return value. A child that throws CommError exits
/// kRetryableExit; any other exception exits 1. Returns once a gang run
/// finishes without a retryable failure.
GangResult run_gang(const GangOptions& options,
                    const std::function<int(SocketTransport&, int attempt)>& child);

}  // namespace hpcg::comm::transport

#pragma once

// Transport: the byte-level substrate a Comm endpoint runs over.
//
// The default backend is the in-process shared-memory one (threads, slot
// publication, modeled virtual clocks) — it does NOT implement this
// interface; it is the World fast path and stays bit-identical. A Transport
// is the alternative: every rank is its own endpoint (usually its own
// process), frames move over real descriptors, and time is wall-clock.
// Comm routes every collective and p2p call through transport::Ops when
// World::transport_ is set.
//
// Matching contract: a frame is addressed by (dest, channel, tag). Frames
// between one (src, dest) pair are FIFO per channel+tag order of sending.
// recv_any matches any source; recv_from pins the source (needed when two
// roots may be mid-flight on the same channel). dest == own rank is legal
// (self-send delivers locally, like the shm mailbox). timeout_s <= 0 means
// wait forever; a positive deadline that expires throws comm::Timeout. A
// peer that disappears without a graceful goodbye throws comm::RankFailure
// from any blocked receive — as does a receive whose awaited frame can
// never arrive because every candidate source has shut down.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hpcg::comm::transport {

/// Channel ids scope tag matching. 0/1/2 are reserved; subgroup channels
/// are derived with the high bit set so they can never collide.
inline constexpr std::uint64_t kP2pChannel = 0;    ///< user send/recv tags
inline constexpr std::uint64_t kWorldChannel = 1;  ///< world-group collectives
inline constexpr std::uint64_t kCtrlChannel = 2;   ///< goodbye / control frames

struct Frame {
  int src = -1;
  std::uint64_t channel = 0;
  std::int64_t tag = 0;
  std::vector<std::byte> payload;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int rank() const = 0;
  virtual int nranks() const = 0;
  virtual const char* name() const = 0;

  virtual void send(int dest, std::uint64_t channel, std::int64_t tag,
                    std::span<const std::byte> payload) = 0;
  virtual Frame recv_any(std::uint64_t channel, std::int64_t tag,
                         double timeout_s) = 0;
  virtual Frame recv_from(int src, std::uint64_t channel, std::int64_t tag,
                          double timeout_s) = 0;
  /// Nonblocking probe; fills *out and returns true when a frame matches.
  virtual bool try_recv(std::uint64_t channel, std::int64_t tag, Frame* out) = 0;

  /// Timeout policy hook (satellite: transport-aware deadlines). The shm
  /// backend detects death via modeled deadlines, so RunOptions'
  /// comm_timeout_s maps straight onto waits there. A real transport may
  /// have a better liveness signal (socket EOF) and can decline the
  /// implicit default while honoring an explicit user request.
  virtual double resolve_timeout(double requested_s,
                                 bool explicit_request) const = 0;
};

}  // namespace hpcg::comm::transport

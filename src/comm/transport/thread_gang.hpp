#pragma once

// In-process socket gang: one thread per rank, each with its OWN World and
// its own SocketTransport endpoint over a shared SocketMesh. Exercises the
// full wire protocol (framing, checksums, EOF liveness) without fork, so
// tests and `hpcg_tune sweep --transport=socket` can run the socket backend
// under one address space. Nothing is shared between the rank Worlds —
// exactly the process model, minus the processes.

#include <functional>
#include <vector>

#include "comm/runtime.hpp"

namespace hpcg::comm::transport {

/// Runs `body` once per rank over socket transports and returns each rank's
/// (per-endpoint) RunStats, indexed by rank. `base` is copied per rank with
/// its transport field replaced; faults must be null (rejected by
/// Runtime::run). Rethrows the first rank's exception after all threads
/// join (a failing endpoint's destructor EOFs its peers, so the gang always
/// unwinds — no abort flag needed).
std::vector<RunStats> run_socket_threads(
    int nranks, const Topology& topo, const CostModel& cost,
    const RunOptions& base, const std::function<void(Comm&)>& body);

}  // namespace hpcg::comm::transport

#include "comm/transport/ops.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "comm/comm.hpp"

namespace hpcg::comm::transport {
namespace {

void check_size(std::size_t got, std::size_t want, const char* op) {
  if (got != want) {
    throw std::logic_error(std::string("transport ") + op +
                           ": frame size mismatch (got " +
                           std::to_string(got) + ", want " +
                           std::to_string(want) + ")");
  }
}

}  // namespace

std::uint64_t derive_child_channel(std::uint64_t parent,
                                   std::uint64_t split_seq, int color) {
  // FNV-1a style mix over (parent, split_seq, color); deterministic on every
  // member, so all members of one child derive the same channel id. The high
  // bit keeps derived ids clear of the reserved constants.
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t word :
       {parent, split_seq, static_cast<std::uint64_t>(color)}) {
    for (int b = 0; b < 8; ++b) {
      h ^= (word >> (b * 8)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h | 0x8000000000000000ull;
}

Ops::Scope::Scope(Comm& comm, CollectiveOp o) : c(comm), op(o) {
  c.enter_collective();
}

Ops::Scope::~Scope() {
  if (!done) c.exit_collective();
}

void Ops::Scope::finish(std::uint64_t bytes, std::uint64_t msgs) {
  c.transport_finish(op, bytes, msgs);  // ends with exit_collective
  done = true;
}

int Ops::n() const { return comm_.group_->size(); }
int Ops::me() const { return comm_.group_rank_; }

int Ops::world_of(int member) const {
  return comm_.group_->members()[static_cast<std::size_t>(member)];
}

int Ops::member_of_world(int world_rank) const {
  const auto& members = comm_.group_->members();
  for (std::size_t m = 0; m < members.size(); ++m) {
    if (members[m] == world_rank) return static_cast<int>(m);
  }
  throw std::logic_error("transport: frame from a rank outside this group");
}

std::uint64_t Ops::chan() const { return comm_.group_->tid_; }
std::uint64_t Ops::next_seq() { return comm_.group_->t_op_seq_++; }
double Ops::deadline() const { return comm_.world_->comm_timeout_s_; }
Transport& Ops::tp() { return *comm_.world_->transport_; }

void Ops::send_to(int member, std::uint64_t seq,
                  std::span<const std::byte> payload) {
  tp().send(world_of(member), chan(), static_cast<std::int64_t>(seq), payload);
}

Frame Ops::recv_from_member(int member, std::uint64_t seq) {
  return tp().recv_from(world_of(member), chan(),
                        static_cast<std::int64_t>(seq), deadline());
}

Frame Ops::recv_any_member(std::uint64_t seq) {
  return tp().recv_any(chan(), static_cast<std::int64_t>(seq), deadline());
}

void Ops::wire_barrier() {
  // Leader-relay barrier: notify up, release down.
  const std::uint64_t seq = next_seq();
  if (me() == 0) {
    for (int i = 1; i < n(); ++i) recv_any_member(seq);
    for (int m = 1; m < n(); ++m) send_to(m, seq, {});
  } else {
    send_to(0, seq, {});
    recv_from_member(0, seq);
  }
}

void Ops::barrier() {
  Scope s(comm_, CollectiveOp::kBarrier);
  wire_barrier();
  s.finish(0, static_cast<std::uint64_t>(2 * (n() - 1)));
}

void Ops::barrier_norecord() { wire_barrier(); }

void Ops::broadcast(std::span<std::byte> data, int root) {
  Scope s(comm_, CollectiveOp::kBroadcast);
  const std::uint64_t seq = next_seq();
  if (me() == root) {
    for (int m = 0; m < n(); ++m) {
      if (m != root) send_to(m, seq, data);
    }
  } else {
    const Frame f = recv_from_member(root, seq);
    check_size(f.payload.size(), data.size(), "broadcast");
    std::memcpy(data.data(), f.payload.data(), data.size());
  }
  s.finish(static_cast<std::uint64_t>(data.size()) * (n() - 1),
           static_cast<std::uint64_t>(n() - 1));
}

void Ops::multi_broadcast(std::span<const ByteSeg> segments) {
  Scope s(comm_, CollectiveOp::kMultiBroadcast);
  const std::uint64_t seq = next_seq();
  // All sends before any receive so every root can drain; per-(src, dst)
  // FIFO keeps one root's segments in segment order on the wire.
  for (const auto& seg : segments) {
    if (seg.root != me()) continue;
    for (int m = 0; m < n(); ++m) {
      if (m != me()) send_to(m, seq, {seg.data, seg.bytes});
    }
  }
  for (const auto& seg : segments) {
    if (seg.root == me()) continue;
    const Frame f = recv_from_member(seg.root, seq);
    check_size(f.payload.size(), seg.bytes, "multi_broadcast");
    std::memcpy(seg.data, f.payload.data(), seg.bytes);
  }
  std::uint64_t bytes = 0;
  for (const auto& seg : segments) bytes += seg.bytes * (n() - 1);
  s.finish(bytes, static_cast<std::uint64_t>(segments.size()) * (n() - 1));
}

void Ops::allreduce(std::span<std::byte> data, const ByteCombine& combine) {
  Scope s(comm_, CollectiveOp::kAllReduce);
  const std::uint64_t sg = next_seq();
  const std::uint64_t sb = next_seq();
  if (me() == 0) {
    // Gather member buffers, fold them into the leader's own data in member
    // order 1..n-1 (the shm bit-identity rule), broadcast the result.
    std::vector<std::vector<std::byte>> from(static_cast<std::size_t>(n()));
    for (int i = 1; i < n(); ++i) {
      Frame f = recv_any_member(sg);
      from[static_cast<std::size_t>(member_of_world(f.src))] =
          std::move(f.payload);
    }
    for (int m = 1; m < n(); ++m) {
      const auto& buf = from[static_cast<std::size_t>(m)];
      check_size(buf.size(), data.size(), "allreduce");
      combine(data.data(), buf.data(), data.size());
    }
    for (int m = 1; m < n(); ++m) send_to(m, sb, data);
  } else {
    send_to(0, sg, data);
    const Frame f = recv_from_member(0, sb);
    check_size(f.payload.size(), data.size(), "allreduce");
    std::memcpy(data.data(), f.payload.data(), data.size());
  }
  s.finish(static_cast<std::uint64_t>(data.size()) * 2 * (n() - 1) / n(),
           static_cast<std::uint64_t>(2 * (n() - 1)));
}

void Ops::reduce(std::span<std::byte> data, int root,
                 const ByteCombine& combine) {
  Scope s(comm_, CollectiveOp::kReduce);
  const std::uint64_t sg = next_seq();
  const std::uint64_t sb = next_seq();
  if (me() == 0) {
    // Fold into a scratch copy so the leader's own buffer stays unchanged
    // unless it is the root (shm contract: non-root buffers untouched).
    std::vector<std::byte> acc(data.begin(), data.end());
    std::vector<std::vector<std::byte>> from(static_cast<std::size_t>(n()));
    for (int i = 1; i < n(); ++i) {
      Frame f = recv_any_member(sg);
      from[static_cast<std::size_t>(member_of_world(f.src))] =
          std::move(f.payload);
    }
    for (int m = 1; m < n(); ++m) {
      const auto& buf = from[static_cast<std::size_t>(m)];
      check_size(buf.size(), data.size(), "reduce");
      combine(acc.data(), buf.data(), acc.size());
    }
    if (root == 0) {
      std::memcpy(data.data(), acc.data(), data.size());
    } else {
      send_to(root, sb, acc);
    }
  } else {
    send_to(0, sg, data);
    if (me() == root) {
      const Frame f = recv_from_member(0, sb);
      check_size(f.payload.size(), data.size(), "reduce");
      std::memcpy(data.data(), f.payload.data(), data.size());
    }
  }
  s.finish(static_cast<std::uint64_t>(data.size()) * (n() - 1) / n(),
           static_cast<std::uint64_t>(n() - 1));
}

void Ops::reduce_scatter(std::span<const std::byte> send,
                         std::span<std::byte> recv,
                         const ByteCombine& combine) {
  Scope s(comm_, CollectiveOp::kReduceScatter);
  const std::uint64_t seq = next_seq();
  const std::size_t block = recv.size();
  for (int d = 0; d < n(); ++d) {
    if (d != me()) {
      send_to(d, seq, send.subspan(static_cast<std::size_t>(d) * block, block));
    }
  }
  std::vector<std::vector<std::byte>> blocks(static_cast<std::size_t>(n()));
  for (int i = 1; i < n(); ++i) {
    Frame f = recv_any_member(seq);
    blocks[static_cast<std::size_t>(member_of_world(f.src))] =
        std::move(f.payload);
  }
  // Initialize from member 0's block, fold 1..n-1 in member order — the
  // exact shm reduction order.
  const std::span<const std::byte> own =
      send.subspan(static_cast<std::size_t>(me()) * block, block);
  if (me() == 0) {
    std::memcpy(recv.data(), own.data(), block);
  } else {
    check_size(blocks[0].size(), block, "reduce_scatter");
    std::memcpy(recv.data(), blocks[0].data(), block);
  }
  for (int m = 1; m < n(); ++m) {
    if (m == me()) {
      combine(recv.data(), own.data(), block);
    } else {
      const auto& buf = blocks[static_cast<std::size_t>(m)];
      check_size(buf.size(), block, "reduce_scatter");
      combine(recv.data(), buf.data(), block);
    }
  }
  s.finish(static_cast<std::uint64_t>(send.size()) * (n() - 1) / n(),
           static_cast<std::uint64_t>(n() - 1));
}

void Ops::gather(std::span<const std::byte> send, std::span<std::byte> recv,
                 int root) {
  Scope s(comm_, CollectiveOp::kGather);
  const std::uint64_t seq = next_seq();
  const std::size_t block = send.size();
  if (me() == root) {
    std::memcpy(recv.data() + static_cast<std::size_t>(me()) * block,
                send.data(), block);
    for (int i = 1; i < n(); ++i) {
      Frame f = recv_any_member(seq);
      check_size(f.payload.size(), block, "gather");
      const int m = member_of_world(f.src);
      std::memcpy(recv.data() + static_cast<std::size_t>(m) * block,
                  f.payload.data(), block);
    }
  } else {
    send_to(root, seq, send);
  }
  const std::uint64_t total = static_cast<std::uint64_t>(block) * n();
  s.finish(total * (n() - 1) / n(), static_cast<std::uint64_t>(n() - 1));
}

void Ops::scatter(std::span<const std::byte> send, std::span<std::byte> recv,
                  int root) {
  Scope s(comm_, CollectiveOp::kScatter);
  const std::uint64_t seq = next_seq();
  const std::size_t block = recv.size();
  if (me() == root) {
    for (int m = 0; m < n(); ++m) {
      if (m == me()) continue;
      send_to(m, seq,
              send.subspan(static_cast<std::size_t>(m) * block, block));
    }
    std::memcpy(recv.data(),
                send.data() + static_cast<std::size_t>(me()) * block, block);
  } else {
    const Frame f = recv_from_member(root, seq);
    check_size(f.payload.size(), block, "scatter");
    std::memcpy(recv.data(), f.payload.data(), block);
  }
  const std::uint64_t total = static_cast<std::uint64_t>(block) * n();
  s.finish(total * (n() - 1) / n(), static_cast<std::uint64_t>(n() - 1));
}

void Ops::allgather(std::span<const std::byte> send,
                    std::span<std::byte> recv) {
  Scope s(comm_, CollectiveOp::kAllGather);
  const std::uint64_t sg = next_seq();
  const std::uint64_t sb = next_seq();
  const std::size_t block = send.size();
  if (me() == 0) {
    std::memcpy(recv.data(), send.data(), block);
    for (int i = 1; i < n(); ++i) {
      Frame f = recv_any_member(sg);
      check_size(f.payload.size(), block, "allgather");
      const int m = member_of_world(f.src);
      std::memcpy(recv.data() + static_cast<std::size_t>(m) * block,
                  f.payload.data(), block);
    }
    for (int m = 1; m < n(); ++m) send_to(m, sb, recv);
  } else {
    send_to(0, sg, send);
    const Frame f = recv_from_member(0, sb);
    check_size(f.payload.size(), recv.size(), "allgather");
    std::memcpy(recv.data(), f.payload.data(), recv.size());
  }
  const std::uint64_t total = static_cast<std::uint64_t>(block) * n();
  s.finish(total * (n() - 1) / n(), static_cast<std::uint64_t>(n() - 1));
}

void Ops::allgatherv(std::span<const std::byte> send,
                     std::vector<std::byte>& out,
                     std::vector<std::size_t>* counts_bytes) {
  Scope s(comm_, CollectiveOp::kAllGatherV);
  const std::uint64_t sg = next_seq();
  const std::uint64_t sb = next_seq();
  std::vector<std::size_t> counts(static_cast<std::size_t>(n()), 0);
  if (me() == 0) {
    std::vector<std::vector<std::byte>> from(static_cast<std::size_t>(n()));
    from[0].assign(send.begin(), send.end());
    for (int i = 1; i < n(); ++i) {
      Frame f = recv_any_member(sg);
      from[static_cast<std::size_t>(member_of_world(f.src))] =
          std::move(f.payload);
    }
    std::size_t total = 0;
    for (int m = 0; m < n(); ++m) {
      counts[static_cast<std::size_t>(m)] =
          from[static_cast<std::size_t>(m)].size();
      total += counts[static_cast<std::size_t>(m)];
    }
    // One packed reply frame: [u64 count per member][concatenated data].
    std::vector<std::byte> packet(static_cast<std::size_t>(n()) * 8 + total);
    for (int m = 0; m < n(); ++m) {
      const std::uint64_t c = counts[static_cast<std::size_t>(m)];
      std::memcpy(packet.data() + static_cast<std::size_t>(m) * 8, &c, 8);
    }
    std::size_t offset = static_cast<std::size_t>(n()) * 8;
    for (int m = 0; m < n(); ++m) {
      const auto& buf = from[static_cast<std::size_t>(m)];
      if (!buf.empty()) std::memcpy(packet.data() + offset, buf.data(), buf.size());
      offset += buf.size();
    }
    for (int m = 1; m < n(); ++m) send_to(m, sb, packet);
    out.assign(packet.begin() + static_cast<std::ptrdiff_t>(n()) * 8,
               packet.end());
  } else {
    send_to(0, sg, send);
    const Frame f = recv_from_member(0, sb);
    if (f.payload.size() < static_cast<std::size_t>(n()) * 8) {
      throw std::logic_error("transport allgatherv: short reply frame");
    }
    std::size_t total = 0;
    for (int m = 0; m < n(); ++m) {
      std::uint64_t c = 0;
      std::memcpy(&c, f.payload.data() + static_cast<std::size_t>(m) * 8, 8);
      counts[static_cast<std::size_t>(m)] = static_cast<std::size_t>(c);
      total += counts[static_cast<std::size_t>(m)];
    }
    check_size(f.payload.size(), static_cast<std::size_t>(n()) * 8 + total,
               "allgatherv");
    out.assign(f.payload.begin() + static_cast<std::ptrdiff_t>(n()) * 8,
               f.payload.end());
  }
  if (counts_bytes) *counts_bytes = counts;
  std::uint64_t total_bytes = 0;
  for (const auto c : counts) total_bytes += c;
  s.finish(total_bytes, static_cast<std::uint64_t>(n() - 1));
}

void Ops::alltoallv(std::span<const std::byte> send,
                    std::span<const std::size_t> send_counts_bytes,
                    std::vector<std::byte>& out,
                    std::vector<std::size_t>* recv_counts_bytes) {
  Scope s(comm_, CollectiveOp::kAllToAllV);
  const std::uint64_t sg = next_seq();
  const std::uint64_t sb = next_seq();
  const std::uint64_t sd = next_seq();
  // Phase 1: leader-relay allgather of the full counts matrix.
  std::vector<std::uint64_t> matrix(
      static_cast<std::size_t>(n()) * static_cast<std::size_t>(n()), 0);
  std::vector<std::uint64_t> row(static_cast<std::size_t>(n()), 0);
  for (int d = 0; d < n(); ++d) {
    row[static_cast<std::size_t>(d)] =
        send_counts_bytes[static_cast<std::size_t>(d)];
  }
  const std::size_t row_bytes = static_cast<std::size_t>(n()) * 8;
  if (me() == 0) {
    std::memcpy(matrix.data(), row.data(), row_bytes);
    for (int i = 1; i < n(); ++i) {
      Frame f = recv_any_member(sg);
      check_size(f.payload.size(), row_bytes, "alltoallv");
      const int m = member_of_world(f.src);
      std::memcpy(matrix.data() + static_cast<std::size_t>(m) * n(),
                  f.payload.data(), row_bytes);
    }
    const std::span<const std::byte> packed(
        reinterpret_cast<const std::byte*>(matrix.data()),
        matrix.size() * 8);
    for (int m = 1; m < n(); ++m) send_to(m, sb, packed);
  } else {
    send_to(0, sg,
            std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(row.data()), row_bytes));
    const Frame f = recv_from_member(0, sb);
    check_size(f.payload.size(), matrix.size() * 8, "alltoallv");
    std::memcpy(matrix.data(), f.payload.data(), f.payload.size());
  }
  // Phase 2: pairwise data. All sends first (the EAGAIN path drains
  // incoming, so a full-mesh burst cannot deadlock), then place by source.
  std::size_t send_offset = 0;
  std::vector<std::size_t> send_offsets(static_cast<std::size_t>(n()), 0);
  for (int d = 0; d < n(); ++d) {
    send_offsets[static_cast<std::size_t>(d)] = send_offset;
    send_offset += send_counts_bytes[static_cast<std::size_t>(d)];
  }
  for (int d = 0; d < n(); ++d) {
    const std::size_t cnt = send_counts_bytes[static_cast<std::size_t>(d)];
    if (d != me() && cnt > 0) {
      send_to(d, sd, send.subspan(send_offsets[static_cast<std::size_t>(d)], cnt));
    }
  }
  std::vector<std::size_t> incoming(static_cast<std::size_t>(n()), 0);
  std::size_t total = 0;
  int pending = 0;
  for (int m = 0; m < n(); ++m) {
    incoming[static_cast<std::size_t>(m)] = static_cast<std::size_t>(
        matrix[static_cast<std::size_t>(m) * n() + me()]);
    total += incoming[static_cast<std::size_t>(m)];
    if (m != me() && incoming[static_cast<std::size_t>(m)] > 0) ++pending;
  }
  out.clear();
  out.resize(total);
  std::vector<std::size_t> out_offsets(static_cast<std::size_t>(n()), 0);
  std::size_t out_offset = 0;
  for (int m = 0; m < n(); ++m) {
    out_offsets[static_cast<std::size_t>(m)] = out_offset;
    out_offset += incoming[static_cast<std::size_t>(m)];
  }
  if (incoming[static_cast<std::size_t>(me())] > 0) {
    std::memcpy(out.data() + out_offsets[static_cast<std::size_t>(me())],
                send.data() + send_offsets[static_cast<std::size_t>(me())],
                incoming[static_cast<std::size_t>(me())]);
  }
  for (int i = 0; i < pending; ++i) {
    Frame f = recv_any_member(sd);
    const int m = member_of_world(f.src);
    check_size(f.payload.size(), incoming[static_cast<std::size_t>(m)],
               "alltoallv");
    std::memcpy(out.data() + out_offsets[static_cast<std::size_t>(m)],
                f.payload.data(), f.payload.size());
  }
  if (recv_counts_bytes) *recv_counts_bytes = incoming;
  // Traffic accounting from the full matrix, exactly like the shm leader
  // (counts are already bytes here, so no sizeof scaling).
  std::uint64_t total_bytes = 0;
  std::uint64_t msgs = 0;
  for (int m = 0; m < n(); ++m) {
    std::uint64_t sent = 0;
    for (int d = 0; d < n(); ++d) {
      const std::uint64_t c = matrix[static_cast<std::size_t>(m) * n() + d];
      sent += c;
      if (d != m && c > 0) ++msgs;
    }
    total_bytes += sent - matrix[static_cast<std::size_t>(m) * n() + m];
  }
  s.finish(total_bytes, msgs);
}

std::vector<int> Ops::split_members(int color, int key,
                                    std::uint64_t* child_channel) {
  Scope s(comm_, CollectiveOp::kSplit);
  const std::uint64_t sg = next_seq();
  const std::uint64_t sb = next_seq();
  // Allgather the (color, key) pairs via the leader...
  struct Entry {
    std::int32_t color;
    std::int32_t key;
  };
  std::vector<Entry> entries(static_cast<std::size_t>(n()));
  const Entry mine{color, key};
  const std::size_t entry_bytes = sizeof(Entry);
  if (me() == 0) {
    entries[0] = mine;
    for (int i = 1; i < n(); ++i) {
      Frame f = recv_any_member(sg);
      check_size(f.payload.size(), entry_bytes, "split");
      std::memcpy(&entries[static_cast<std::size_t>(member_of_world(f.src))],
                  f.payload.data(), entry_bytes);
    }
    const std::span<const std::byte> packed(
        reinterpret_cast<const std::byte*>(entries.data()),
        entries.size() * entry_bytes);
    for (int m = 1; m < n(); ++m) send_to(m, sb, packed);
  } else {
    send_to(0, sg,
            std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(&mine), entry_bytes));
    const Frame f = recv_from_member(0, sb);
    check_size(f.payload.size(), entries.size() * entry_bytes, "split");
    std::memcpy(entries.data(), f.payload.data(), f.payload.size());
  }
  // ...then every member re-runs the shm leader's bucketing locally:
  // (color) -> sorted (key, world_rank). Identical algorithm, identical
  // member order, so split is bit-identical across backends.
  std::map<int, std::vector<std::pair<int, int>>> buckets;
  for (int m = 0; m < n(); ++m) {
    buckets[entries[static_cast<std::size_t>(m)].color].emplace_back(
        entries[static_cast<std::size_t>(m)].key, world_of(m));
  }
  auto& my_bucket = buckets[color];
  std::sort(my_bucket.begin(), my_bucket.end());
  std::vector<int> members;
  members.reserve(my_bucket.size());
  for (const auto& [k, wr] : my_bucket) members.push_back(wr);
  *child_channel = derive_child_channel(comm_.group_->tid_,
                                        comm_.group_->t_split_seq_++, color);
  s.finish(static_cast<std::uint64_t>(n()) * 8,
           static_cast<std::uint64_t>(n() - 1));
  return members;
}

}  // namespace hpcg::comm::transport

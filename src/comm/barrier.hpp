// Abort-aware generation barrier used by every collective.
//
// If any rank's body throws, the runtime raises the world abort flag;
// ranks blocked in a barrier that can no longer complete observe the flag
// on their polling wakeups and unwind with `Aborted`, so a failing test
// never deadlocks the whole process.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace hpcg::comm {

/// Thrown out of communication calls when the world has been aborted by a
/// failure on another rank. Caught by the runtime, never by user code.
struct Aborted {};

class Barrier {
 public:
  Barrier(int participants, const std::atomic<bool>* abort_flag)
      : participants_(participants), abort_(abort_flag) {}

  void arrive_and_wait() {
    std::unique_lock lock(mutex_);
    if (abort_->load(std::memory_order_relaxed)) throw Aborted{};
    const std::uint64_t my_generation = generation_;
    if (++arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    while (generation_ == my_generation) {
      cv_.wait_for(lock, std::chrono::milliseconds(50));
      if (abort_->load(std::memory_order_relaxed)) throw Aborted{};
    }
  }

 private:
  const int participants_;
  const std::atomic<bool>* abort_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace hpcg::comm

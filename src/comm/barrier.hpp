// Abort-aware generation barrier used by every collective.
//
// If any rank's body throws, the runtime raises the world abort flag;
// ranks blocked in a barrier that can no longer complete observe the flag
// on their polling wakeups and unwind with `Aborted`, so a failing test
// never deadlocks the whole process.
//
// A configurable wall-clock deadline (World::comm_timeout_s_, read through
// a pointer so Runtime can set it after group construction) additionally
// bounds the wait: a peer that stopped participating *without* aborting —
// an injected silent death — surfaces as `Timeout` on every survivor
// instead of a hang. Zero (the default) disables the deadline.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "comm/errors.hpp"

namespace hpcg::comm {

class Barrier {
 public:
  Barrier(int participants, const std::atomic<bool>* abort_flag,
          const double* timeout_s = nullptr)
      : participants_(participants), abort_(abort_flag), timeout_s_(timeout_s) {}

  void arrive_and_wait() {
    std::unique_lock lock(mutex_);
    if (abort_->load(std::memory_order_relaxed)) throw Aborted{};
    const std::uint64_t my_generation = generation_;
    if (++arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    const auto entered = std::chrono::steady_clock::now();
    while (generation_ == my_generation) {
      cv_.wait_for(lock, std::chrono::milliseconds(50));
      if (abort_->load(std::memory_order_relaxed)) throw Aborted{};
      if (timeout_s_ && *timeout_s_ > 0) {
        const std::chrono::duration<double> waited =
            std::chrono::steady_clock::now() - entered;
        if (waited.count() > *timeout_s_) {
          throw Timeout("barrier deadline of " + std::to_string(*timeout_s_) +
                        "s exceeded: a peer rank stopped participating");
        }
      }
    }
  }

 private:
  const int participants_;
  const std::atomic<bool>* abort_;
  const double* timeout_s_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace hpcg::comm

// Sender-side small-message aggregation for latency-bound p2p exchanges.
//
// A rank with many small logical messages for the same destination pays the
// link latency alpha once per message; when the per-item payload sits below
// the fitted eager threshold (CollectivePolicy::eager_threshold_bytes, i.e.
// B* = 2*alpha*beta of the pair's link class — see docs/TUNING.md), those
// messages are latency-bound and packing them into one wire message is a
// straight win. p2p_exchange implements that: per-destination item lists go
// out either item-by-item (fixed policy, or items above the threshold) or
// as one coalesced send per destination.
//
// The coalesce decision is computed identically on both endpoints from
// shared state only (the exchanged count matrix, the topology's link class
// for the pair, and the policy threshold), so sender packing and receiver
// unpacking always agree without a control round-trip. Received items are
// assembled in (source group rank, item) order in both modes, so the result
// is bit-identical whether or not coalescing fires — only the modeled time
// and message count change.
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "comm/comm.hpp"
#include "comm/cost_model.hpp"
#include "comm/topology.hpp"

namespace hpcg::comm {

/// Deterministic per-pair coalesce decision: true when the policy's fitted
/// eager threshold for the pair's link class is active (> 0, i.e. adaptive
/// mode with a valid fit) and one item's payload is below it. Depends only
/// on state both endpoints share, never on rank-local data.
inline bool coalesce_pair(const CostModel& cost, const Topology& topo,
                          int src_world_rank, int dst_world_rank,
                          std::size_t item_bytes, std::size_t n_items) {
  if (n_items < 2) return false;  // nothing to aggregate
  const LinkClass cls = topo.link_class(src_world_rank, dst_world_rank);
  const std::size_t threshold = cost.policy().eager_threshold_bytes(cls);
  return threshold > 0 && item_bytes < threshold;
}

/// Traffic summary of one p2p_exchange (rank-local view).
struct CoalesceStats {
  std::size_t items_sent = 0;      // logical messages this rank produced
  std::size_t wire_messages = 0;   // actual sends after aggregation
};

/// Exchanges per-destination item lists over blocking p2p. `send` has one
/// list per group member (group order; the self slot is delivered by local
/// copy); `recv` is resized to the group size and filled with the items
/// received from each source, in that source's send order. Collective over
/// `c` — every member must call it with the same `tag`, and the exchange
/// claims the tag block [tag, tag + group size): the substrate's recv
/// matches by tag alone, so each source sends under its own tag to keep
/// concurrent same-destination streams separable.
///
/// Fixed policy: every item travels as its own message (the legacy
/// latency-per-update behavior). Adaptive policy: item lists whose per-item
/// size is below the pair's fitted eager threshold are packed into a single
/// message per destination. Both modes yield bit-identical `recv` contents.
template <class T>
CoalesceStats p2p_exchange(Comm& c, const std::vector<std::vector<T>>& send,
                           std::vector<std::vector<T>>& recv, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int size = c.size();
  const int rank = c.rank();
  CoalesceStats stats;

  // Share the count matrix so receivers know how many items (and, with the
  // deterministic decision below, how many wire messages) to expect.
  std::vector<std::size_t> my_counts(static_cast<std::size_t>(size), 0);
  for (int d = 0; d < size; ++d) {
    my_counts[static_cast<std::size_t>(d)] = send[static_cast<std::size_t>(d)].size();
  }
  std::vector<std::size_t> all_counts(
      static_cast<std::size_t>(size) * static_cast<std::size_t>(size));
  c.allgather(std::span<const std::size_t>(my_counts),
              std::span<std::size_t>(all_counts));

  const CostModel& cost = c.cost_model();
  const Topology& topo = c.topology();
  auto count_of = [&](int src, int dst) {
    return all_counts[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(size) +
                      static_cast<std::size_t>(dst)];
  };

  // Sends first: the simulator's p2p sends are eager (enqueued at issue),
  // so issuing every send before any recv cannot deadlock.
  for (int d = 0; d < size; ++d) {
    if (d == rank) continue;
    const auto& items = send[static_cast<std::size_t>(d)];
    if (items.empty()) continue;
    stats.items_sent += items.size();
    const int dst_world = c.member_world_rank(d);
    if (coalesce_pair(cost, topo, c.world_rank(), dst_world, sizeof(T),
                      items.size())) {
      c.send(std::span<const T>(items), dst_world, tag + rank);
      stats.wire_messages += 1;
    } else {
      for (const T& item : items) {
        c.send(std::span<const T>(&item, 1), dst_world, tag + rank);
      }
      stats.wire_messages += items.size();
    }
  }

  recv.assign(static_cast<std::size_t>(size), {});
  recv[static_cast<std::size_t>(rank)] = send[static_cast<std::size_t>(rank)];
  std::vector<T> one;
  for (int s = 0; s < size; ++s) {
    if (s == rank) continue;
    const std::size_t n = count_of(s, rank);
    if (n == 0) continue;
    const int src_world = c.member_world_rank(s);
    auto& into = recv[static_cast<std::size_t>(s)];
    if (coalesce_pair(cost, topo, src_world, c.world_rank(), sizeof(T), n)) {
      c.recv(src_world, tag + s, into);
    } else {
      into.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        c.recv(src_world, tag + s, one);
        into.push_back(one[0]);
      }
    }
  }
  return stats;
}

}  // namespace hpcg::comm

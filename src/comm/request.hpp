// Nonblocking-collective request handles (MPI_Request / ncclGroup-shaped).
//
// A `Request` is returned by the i-prefixed Comm operations (iallreduce,
// iallgatherv, ...). Issuing is rank-local and cheap: the communicator
// records the issue point on the rank's virtual clock, consults the fault
// injector (advancing the collective sequence exactly as the blocking op
// would), and captures the operation as a completion closure. The
// rendezvous — data movement plus modeled-cost accounting — runs when the
// rank calls wait().
//
// Overlap semantics: at wait time the rank's clock advances to
//   max(vclock_now, comm_done)
// where comm_done = max(max over members' issue clocks, channel time)
// + modeled cost — i.e. communication priced against the *issue* point, so
// compute performed between issue and wait hides under the transfer
// instead of serializing behind it. The hidden window is reported per
// request via overlap_s().
//
// Contracts (documented MPI-alikes, asserted by tests/test_async_comm.cpp):
//   * every member of the communicator must issue the same nonblocking
//     collectives in the same order and wait them in issue order —
//     wait_all() waits in array order for exactly this reason;
//   * buffers passed to an i-operation (send data, receive vectors, count
//     outputs) must stay valid and at a stable address until wait()
//     returns;
//   * test() is rank-local: it reports completion but never performs a
//     collective rendezvous (only irecv can complete from a poll);
//   * a fault scheduled for the issuing collective-seq surfaces at wait(),
//     keeping fault plans deterministic across sync/async modes.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <utility>

#include "comm/fault_hooks.hpp"

namespace hpcg::comm {

class Comm;

class Request {
 public:
  /// An empty Request; behaves as already complete (wait() is a no-op).
  Request() = default;

  /// Whether this handle refers to an issued operation.
  bool valid() const { return state_ != nullptr; }

  /// Whether the operation has completed (invalid handles count as done).
  bool done() const { return !state_ || state_->done; }

  /// Completes the operation: runs the collective rendezvous (or the
  /// mailbox wait for irecv), applies any stashed fault decision, moves
  /// the data, and advances this rank's clock with overlap accounting.
  /// Idempotent; a no-op on an invalid handle.
  void wait() {
    if (!state_ || state_->done) return;
    state_->complete();
  }

  /// Rank-local completion probe: true once the operation has completed.
  /// For irecv, additionally polls the mailbox and completes without
  /// blocking when the message has already arrived. Never performs a
  /// collective rendezvous — a pending collective only completes in wait().
  bool test() {
    if (!state_ || state_->done) return true;
    if (state_->try_complete) return state_->try_complete();
    return false;
  }

  /// Virtual time at which the operation was issued.
  double issue_time() const { return state_ ? state_->issue_vclock : 0.0; }

  /// Modeled communication cost charged for the operation (valid once
  /// done; 0 for trivially-complete operations).
  double cost_s() const { return state_ ? state_->cost_s : 0.0; }

  /// Portion of the transfer window hidden under compute performed
  /// between issue and wait (valid once done).
  double overlap_s() const { return state_ ? state_->overlap_s : 0.0; }

 private:
  friend class Comm;

  struct State {
    // Runs the full rendezvous at wait(). Captures the issuing Comm by
    // value and this State by raw pointer (the Request holding the
    // shared_ptr keeps it alive; a shared_ptr capture would cycle).
    std::function<void()> complete;
    // irecv only: non-blocking poll; returns whether it completed.
    std::function<bool()> try_complete;
    double issue_vclock = 0.0;
    double cost_s = 0.0;
    double overlap_s = 0.0;
    bool done = false;
    // Injector decision stashed at issue, applied at wait (so the fault
    // keys on the issuing collective-seq but surfaces at the wait site).
    FaultDecision fault{};
  };

  explicit Request(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Waits every valid request in array order. Because members must wait
/// requests on a communicator in issue order, passing them in issue order
/// (the natural array order) is required; mixed-communicator arrays are
/// fine as long as each communicator's relative order is preserved.
inline void wait_all(std::span<Request> requests) {
  for (auto& r : requests) r.wait();
}

}  // namespace hpcg::comm

// Adaptive collective-algorithm selection driven by a fitted alpha-beta
// model (the runtime half of the src/tune calibration subsystem).
//
// The CostModel's legacy formulas hard-code one algorithm per collective
// (Rabenseifner-style allreduce, binomial broadcast, Bruck allgather,
// pairwise alltoallv). Tuned communication libraries instead pick the
// algorithm per call from the message size and group span: latency-bound
// calls want the log-depth tree variants, bandwidth-bound calls want the
// ring variants, tiny groups sometimes want plain direct sends. A
// CollectivePolicy carries per-topology-level constants fitted by
// tune::fit_sweep (or derived exactly from the configured Topology via
// tune::reference_calibration) and selects the argmin-cost algorithm at
// every call site; the CostModel then charges that algorithm's modeled
// duration with its *actual* substrate parameters.
//
// Design invariant: policy selection changes ONLY the modeled duration of
// an operation. Data movement is real shared-memory copying and never
// depends on the cost, so a run under any policy is bit-identical in
// results to the fixed policy (asserted by hpcg_check's `pol=` flip and
// tests/test_tune.cpp). See docs/TUNING.md.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "comm/stats.hpp"
#include "comm/topology.hpp"

namespace hpcg::comm {

/// Collective algorithm variants the policy chooses between. kDefault is
/// the legacy hybrid formula of cost_model.hpp (bit-identical charging).
enum class CollectiveAlgo : std::uint8_t {
  kDefault,
  kRing,
  kTree,
  kDirect,
};

constexpr const char* to_string(CollectiveAlgo a) {
  switch (a) {
    case CollectiveAlgo::kDefault: return "default";
    case CollectiveAlgo::kRing: return "ring";
    case CollectiveAlgo::kTree: return "tree";
    case CollectiveAlgo::kDirect: return "direct";
  }
  return "?";
}

/// Fitted alpha-beta constants of one topology level (link class), as
/// produced by the least-squares fitter. `beta_bytes_s` is the *effective*
/// bandwidth (the fit absorbs CostParams::bw_derate); `software_alpha_s`
/// is the per-operation software overhead observed at this level.
struct FittedLevel {
  bool valid = false;
  double alpha_s = 0.0;
  double beta_bytes_s = 0.0;
  double software_alpha_s = 0.0;
};

/// Closed-form modeled duration of one collective algorithm variant under
/// (alpha, software_alpha, beta) for a group of `group_size` ranks moving
/// `bytes` (the same byte convention the CostModel methods use: payload
/// for allreduce/broadcast, aggregated total for allgather, max per-rank
/// traffic for alltoallv). kDefault reproduces the legacy cost_model.hpp
/// formulas exactly. Used both for selection (with fitted constants) and
/// for charging (with the actual substrate constants), so the crossover
/// math in docs/TUNING.md describes the real decision boundary.
double algo_cost(CollectiveOp op, CollectiveAlgo algo, double alpha_s,
                 double software_alpha_s, double beta_bytes_s, int group_size,
                 std::size_t bytes);

/// Per-run collective selection policy, carried by RunOptions and attached
/// to the World's CostModel. Default-constructed = fixed (legacy formulas,
/// zero behavior change).
struct CollectivePolicy {
  enum class Mode : std::uint8_t {
    kFixed,     // legacy formulas; fitted levels ignored
    kAdaptive,  // argmin over algorithm variants per call site
    kForced,    // always `forced` (bench_collectives baselines)
  };

  Mode mode = Mode::kFixed;
  CollectiveAlgo forced = CollectiveAlgo::kRing;
  /// Indexed by LinkClass; kSelf stays invalid (single-rank groups are
  /// free). Levels the calibration could not fit stay invalid and fall
  /// back to kDefault selection.
  std::array<FittedLevel, kNumLinkClasses> level{};

  bool active() const { return mode != Mode::kFixed; }

  const FittedLevel& at(LinkClass cls) const {
    return level[static_cast<std::size_t>(cls)];
  }

  /// Picks the algorithm for one collective call: the argmin of algo_cost
  /// over {default, ring, tree, direct} evaluated with the *fitted*
  /// constants of the group's bottleneck link class (ties prefer
  /// kDefault). kFixed or an unfitted level selects kDefault.
  CollectiveAlgo select(CollectiveOp op, LinkClass cls, int group_size,
                        std::size_t bytes) const;

  /// Eager->rendezvous protocol switch for point-to-point messages at this
  /// level: B* = 2 * alpha * beta, where the eager copy's halved effective
  /// bandwidth overtakes the rendezvous handshake's extra round trip (see
  /// docs/TUNING.md). Messages at or below the threshold are eager (and
  /// thus eligible for sender-side coalescing, comm/coalesce.hpp).
  /// Returns 0 when the level is unfitted or the policy is not adaptive
  /// (coalescing then stays off).
  double eager_threshold_bytes(LinkClass cls) const;

  /// Derived async pipeline segment count for an exchange moving
  /// `total_bytes` across a group of `group_size` at level `cls`:
  /// k* = clamp(round(sqrt(T / L)), 1, kMaxAutoSegments) with per-segment
  /// latency L = software_alpha + ceil(log2 g) * alpha and serial transfer
  /// time T = B * (g-1) / (g * beta). Returns 1 when the level is unfitted
  /// or the policy is not adaptive.
  int auto_segments(LinkClass cls, int group_size,
                    std::size_t total_bytes) const;

  /// Cap on the derived segment count: beyond this the per-segment
  /// latency bookkeeping dwarfs any remaining overlap win.
  static constexpr int kMaxAutoSegments = 16;

  /// Effective bandwidth share of the eager protocol's bounce-buffer copy
  /// (the payload crosses the wire and then a staging copy).
  static constexpr double kEagerBwShare = 0.5;
};

}  // namespace hpcg::comm

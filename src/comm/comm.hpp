// The communicator: an NCCL/MPI-shaped collective library executed over
// shared memory between rank threads, with modeled timing.
//
// Semantics mirror what HPCGraph-GPU uses on real hardware:
//   * `Comm` is a handle to a communicator (world, or a row/column group
//     produced by `split`, exactly like ncclCommSplit / MPI_Comm_split);
//   * collectives are bulk-synchronous over the group and must be called
//     by every member with compatible arguments;
//   * data movement happens for real (so algorithm correctness is fully
//     exercised), while durations come from the CostModel and advance the
//     participants' virtual clocks.
//
// Synchronization protocol (every collective):
//   phase A (per rank)    publish buffer descriptors into the group slot
//                         array; attribute thread-CPU time since the last
//                         collective to this rank's compute clock.
//   barrier 1
//   phase B (leader)      reduce/copy via the published descriptors into
//                         group scratch where needed; advance the group
//                         members' virtual clocks by the modeled cost.
//   phase B (others)      op-specific direct copies (reads only).
//   barrier 2
//   phase C (per rank)    copy-out from scratch into local buffers. Only
//                         rank-local writes, so no third barrier is needed:
//                         the next collective's shared writes happen after
//                         its own barrier 1, which transitively orders them
//                         after every rank's phase C.
//
// Nonblocking collectives (the i-prefixed operations, comm/request.hpp)
// split every collective into an *issue* and a *wait*:
//   issue (rank-local)    consult the fault injector (advancing the
//                         collective sequence exactly like the blocking
//                         op), flush pending compute, record the issue
//                         point on the virtual clock, capture the
//                         operation as a completion closure. No barrier,
//                         no data movement.
//   wait                  runs the full three-phase protocol above, with
//                         two differences: each member publishes its
//                         issue-time clock in its slot, and instead of
//                         equalizing clocks the leader computes
//                           comm_done = max(max member issue clock,
//                                           channel time) + cost
//                         and each member advances itself to
//                         max(own clock, comm_done) — so compute executed
//                         between issue and wait hides under the transfer
//                         (`max` instead of sum). The per-group channel
//                         time serializes successive transfers on one
//                         communicator like a shared NCCL stream; blocking
//                         collectives update it too, so mixed sequences
//                         stay ordered.
// Data movement still happens eagerly at the wait, so algorithm results
// are bit-identical between blocking and nonblocking modes; only the
// modeled timing differs. See docs/ASYNC.md for the full cost model and
// determinism rules.
//
// Error hierarchy (comm/errors.hpp): every failure a communication call
// can raise derives from `CommError` — `RankFailure` (a rank crashed),
// `Timeout` (a blocking wait exceeded the configured deadline; how silent
// rank death surfaces on survivors), `CorruptPayload` (a p2p payload
// failed checksum verification on receive). Argument/usage errors remain
// std::invalid_argument / std::logic_error and are never retried by
// recovery drivers. Fault injection hooks (comm/fault_hooks.hpp) follow
// the telemetry design: a null `FaultHooks*` on the World means every
// injection site is a single pointer test and behaviour is bit-identical
// to a build without the fault subsystem.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "comm/barrier.hpp"
#include "comm/cost_model.hpp"
#include "comm/errors.hpp"
#include "comm/fault_hooks.hpp"
#include "comm/request.hpp"
#include "comm/stats.hpp"
#include "comm/topology.hpp"
#include "comm/transport/ops.hpp"
#include "telemetry/telemetry.hpp"
#include "util/timer.hpp"

namespace hpcg::comm {

enum class ReduceOp { kSum, kMin, kMax };

class World;

/// One broadcast of a grouped (NCCL group call) multi-broadcast. `root` is
/// a rank index within the communicator; every member passes the same
/// (root, count) list, with `data` pointing at its local buffer.
template <class T>
struct BcastSeg {
  int root;
  T* data;
  std::size_t count;
};

namespace detail {

/// Per-member descriptor slots for the collective in flight.
struct Slot {
  const void* ptr_a = nullptr;
  const void* ptr_b = nullptr;
  std::size_t count = 0;
  int color = 0;
  int key = 0;
  // Nonblocking waits only: the member's virtual clock at issue time.
  // Blocking collectives leave it zero (unused).
  double issue_vclock = 0.0;
};

}  // namespace detail

/// Shared state of one communicator group. Members hold it via shared_ptr;
/// all synchronization between them runs through this object.
class Group {
 public:
  Group(World& world, std::vector<int> members);

  int size() const { return static_cast<int>(members_.size()); }
  const std::vector<int>& members() const { return members_; }
  const GroupLink& link() const { return link_; }

 private:
  friend class Comm;
  friend class Runtime;
  friend class transport::Ops;

  World& world_;
  std::vector<int> members_;  // world ranks, group order
  GroupLink link_;
  Barrier barrier_;
  std::vector<detail::Slot> slots_;
  std::vector<std::byte> scratch_;
  // Children published by the leader during split(); indexed by dense color
  // index, read by members in phase C. The last member to take its child
  // (counted down via children_readers_) clears the list, so the parent
  // group does not keep every child of its most recent split alive.
  std::vector<std::pair<int, std::shared_ptr<Group>>> children_;
  std::atomic<int> children_readers_{0};
  // Nonblocking-wait rendezvous results, published by the leader between
  // the barriers (same happens-before as the clock writes): the transfer
  // window [async_start_, async_done_] and its cost/bytes.
  double async_start_ = 0.0;
  double async_done_ = 0.0;
  double async_cost_ = 0.0;
  std::uint64_t async_bytes_ = 0;
  // Per-communicator "stream" time: successive transfers on one group
  // serialize behind each other (a later transfer cannot start before the
  // previous one finished), mirroring a shared NCCL stream. Tagged with
  // the world clock epoch so reset_clocks invalidates stale values without
  // needing to reach every group. Leader-only, barrier-ordered.
  double channel_time_ = 0.0;
  std::uint64_t channel_epoch_ = 0;
  // Transport-backend state, all zero on the shm path. tid_ is the group's
  // frame channel id (kWorldChannel for the world group, derived for split
  // children); the sequence counters advance in lockstep on every member
  // because collectives are program-ordered within a group.
  std::uint64_t tid_ = 0;
  std::uint64_t t_op_seq_ = 0;
  std::uint64_t t_split_seq_ = 0;
};

/// Global run state shared by all ranks: clocks, traffic counters, topology
/// and cost model, mailboxes for point-to-point messages.
class World {
 public:
  World(Topology topo, CostModel cost);

  const Topology& topology() const { return topo_; }
  const CostModel& cost_model() const { return cost_; }
  int nranks() const { return topo_.nranks(); }

  RunStats snapshot_stats() const;

 private:
  friend class Group;
  friend class Comm;
  friend class Runtime;
  friend class transport::Ops;

  /// Wall-clock seconds since the last reset_clocks (transport backends
  /// only; the shm backend never reads it).
  double wall_elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_origin_)
        .count();
  }

  struct Message {
    int tag;
    std::vector<std::byte> payload;
    double ready_vtime;
    // Filled by the sender only when a fault injector is attached (keeps
    // the fault-free path bit-identical); verified by recv when `checked`.
    std::uint64_t checksum = 0;
    bool checked = false;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<Message> queue;
  };

  Topology topo_;
  CostModel cost_;
  // Attached by Runtime::run when the caller passes a Recorder; null means
  // telemetry is off and every hook reduces to one pointer test.
  telemetry::Recorder* recorder_ = nullptr;
  // Attached by Runtime::run via RunOptions::faults; null means fault
  // injection is off and every injection site is one pointer test.
  FaultHooks* injector_ = nullptr;
  // Wall-clock deadline for blocking waits (barrier, recv); 0 disables.
  // Barriers read it through a pointer, so Runtime may set it after the
  // world group is built.
  double comm_timeout_s_ = 0.0;
  // Attached by Runtime::run when the caller selects a real transport; null
  // means the default shared-memory/virtual-clock substrate. With a
  // transport attached this World hosts exactly ONE local rank (the
  // endpoint's); peer state lives in the peers' own processes.
  transport::Transport* transport_ = nullptr;
  // Origin of the wall-clock time domain for transport backends; rebased by
  // reset_clocks so vclock()/comp_time()/comm_time() report wall seconds.
  std::chrono::steady_clock::time_point wall_origin_{};
  std::atomic<bool> abort_{false};
  // Indexed by world rank. Each entry is written either by its owner rank
  // (compute attribution, p2p) or by the leader of a collective the owner
  // currently participates in; barriers order the two.
  std::vector<double> vclock_;
  std::vector<double> comp_s_;
  std::vector<double> comm_s_;
  std::vector<double> cpu_mark_;
  // Bumped by reset_clocks (leader side, between its barriers) so stale
  // per-group channel times from before the reset are ignored.
  std::uint64_t clock_epoch_ = 0;
  // Run-level nonblocking defaults (RunOptions::async / async_chunk),
  // read back by algorithms via Comm::async_default().
  bool async_default_ = false;
  int async_chunk_ = 4;
  // When true (adaptive policy active and no explicit chunk count was
  // given), Comm::auto_chunk_for derives the async pipeline segment count
  // from the policy's fitted model instead of async_chunk_.
  bool async_chunk_auto_ = false;
  // Run-level kernel-execution defaults (RunOptions::kernel), read back by
  // algorithms via Comm::threads_default() / chunk_grain_default(). A grain
  // of 0 means "use KernelOptions::kDefaultChunkGrain".
  int threads_default_ = 1;
  int chunk_grain_default_ = 0;
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> collectives_{0};
  std::mutex trace_mutex_;
  std::vector<TraceEvent> trace_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::shared_ptr<Group> world_group_;
};

/// Rank-local communicator handle. Cheap to copy.
class Comm {
 public:
  Comm(World* world, std::shared_ptr<Group> group, int world_rank);

  /// Rank index within this communicator.
  int rank() const { return group_rank_; }
  /// Number of ranks in this communicator.
  int size() const { return group_->size(); }
  /// Rank index within the world.
  int world_rank() const { return world_rank_; }
  /// World rank of group member `r` (group order).
  int member_world_rank(int r) const {
    return group_->members()[static_cast<std::size_t>(r)];
  }
  const Topology& topology() const { return world_->topology(); }
  const CostModel& cost_model() const { return world_->cost_model(); }

  /// Splits into subcommunicators by `color`; members of the new group are
  /// ordered by (key, world rank). Collective over this communicator.
  Comm split(int color, int key);

  void barrier();

  template <class T>
  void broadcast(std::span<T> data, int root);

  /// A batch of broadcasts with (potentially) different roots, issued as a
  /// single NCCL-style group call; costs overlap (CostModel::grouped).
  template <class T>
  void multi_broadcast(std::span<const BcastSeg<T>> segments);

  template <class T>
  void allreduce(std::span<T> data, ReduceOp op);

  /// AllReduce with a user combiner `combine(T& into, const T& from)`;
  /// every member must pass the same combiner semantics (used for e.g.
  /// MAXLOC-style matching reductions).
  template <class T, class F>
  void allreduce(std::span<T> data, F&& combine);

  template <class T>
  T allreduce_one(T value, ReduceOp op);

  /// Rooted reduce: like allreduce, but only `root`'s buffer receives the
  /// combined result (other buffers are left unchanged).
  template <class T>
  void reduce(std::span<T> data, int root, ReduceOp op);

  /// Element-wise reduction of every member's `send` (count * size
  /// elements) followed by a scatter of block `rank()` into `recv`
  /// (count elements) — the building block ring AllReduce decomposes
  /// into; exposed for algorithms that only need their own slice.
  template <class T>
  void reduce_scatter(std::span<const T> send, std::span<T> recv, ReduceOp op);

  /// Rooted gather: `root` receives every member's fixed-size `send` in
  /// group order; `recv` is only read on the root (count * size elements).
  template <class T>
  void gather(std::span<const T> send, std::span<T> recv, int root);

  /// Rooted scatter: member i receives block i of `root`'s `send`
  /// (count * size elements) into `recv` (count elements).
  template <class T>
  void scatter(std::span<const T> send, std::span<T> recv, int root);

  /// Gathers `send` (same count on every rank) from all members into
  /// `recv` (count * size elements, group order).
  template <class T>
  void allgather(std::span<const T> send, std::span<T> recv);

  /// Variable-size gather into a caller-owned buffer: `out` is cleared and
  /// resized in place (reusing its capacity across iterations), filled with
  /// the concatenation in group order; `counts_out` (optional) receives the
  /// per-member element counts.
  template <class T>
  void allgatherv(std::span<const T> send, std::vector<T>& out,
                  std::vector<std::size_t>* counts_out = nullptr);

  /// Returning form: thin wrapper over the caller-owned-buffer overload
  /// (one fresh allocation per call — prefer the overload in hot loops).
  template <class T>
  std::vector<T> allgatherv(std::span<const T> send,
                            std::vector<std::size_t>* counts_out = nullptr);

  /// Personalized exchange into a caller-owned buffer: `send` holds the
  /// concatenated per-destination segments sized by `send_counts` (one
  /// entry per member, group order); `out` is cleared and resized in place
  /// with the concatenated received segments; fills `recv_counts`.
  template <class T>
  void alltoallv(std::span<const T> send,
                 std::span<const std::size_t> send_counts, std::vector<T>& out,
                 std::vector<std::size_t>* recv_counts = nullptr);

  /// Returning form: thin wrapper over the caller-owned-buffer overload.
  template <class T>
  std::vector<T> alltoallv(std::span<const T> send,
                           std::span<const std::size_t> send_counts,
                           std::vector<std::size_t>* recv_counts = nullptr);

  // -------------------------------------------------------------------------
  // Nonblocking collectives (comm/request.hpp). Issue is rank-local; the
  // rendezvous and data movement run at Request::wait() with overlap cost
  // accounting (clock advances by max(compute since issue, comm), not the
  // sum). Members must issue and wait in the same order; all buffers must
  // stay valid and at stable addresses until the wait returns.
  // -------------------------------------------------------------------------

  template <class T>
  Request iallreduce(std::span<T> data, ReduceOp op);

  /// Nonblocking allreduce with a user combiner (same contract as the
  /// blocking combiner overload).
  template <class T, class F>
  Request iallreduce(std::span<T> data, F&& combine);

  template <class T>
  Request ibroadcast(std::span<T> data, int root);

  /// Nonblocking grouped multi-broadcast. Takes the segment list by value
  /// and keeps it alive inside the request, so callers may build it in a
  /// temporary.
  template <class T>
  Request imulti_broadcast(std::vector<BcastSeg<T>> segments);

  /// Nonblocking variable-size gather; `out` (and `counts_out`, when
  /// non-null) are filled at wait time.
  template <class T>
  Request iallgatherv(std::span<const T> send, std::vector<T>& out,
                      std::vector<std::size_t>* counts_out = nullptr);

  /// Nonblocking personalized exchange; `send_counts` is copied at issue,
  /// `out`/`recv_counts` are filled at wait time.
  template <class T>
  Request ialltoallv(std::span<const T> send,
                     std::span<const std::size_t> send_counts,
                     std::vector<T>& out,
                     std::vector<std::size_t>* recv_counts = nullptr);

  /// Nonblocking send. Sends are already eager (the payload is enqueued at
  /// issue), so the returned request is complete immediately.
  template <class T>
  Request isend(std::span<const T> data, int dest_world_rank, int tag);

  /// Nonblocking receive into a caller-owned buffer, filled at wait time.
  /// test() polls the mailbox and completes without blocking when the
  /// message has already arrived.
  template <class T>
  Request irecv(int src_world_rank, int tag, std::vector<T>& out);

  /// Point-to-point (world-rank addressed). Blocking, tag-matched.
  template <class T>
  void send(std::span<const T> data, int dest_world_rank, int tag);
  /// Blocking receive into a caller-owned buffer (cleared and resized in
  /// place).
  template <class T>
  void recv(int src_world_rank, int tag, std::vector<T>& out);
  /// Returning form: thin wrapper over the caller-owned-buffer overload.
  template <class T>
  std::vector<T> recv(int src_world_rank, int tag);

  /// Charges an explicit modeled compute duration (already in modeled
  /// seconds) to this rank — used for modeled kernel-launch overheads.
  void charge_compute(double modeled_seconds);

  /// Zeroes all clocks and traffic counters. Collective over this
  /// communicator (normally the world); used to exclude setup phases.
  /// `keep_metrics` preserves the recorder's metrics registry — a
  /// supervised session rebuild must not wipe counters accumulated by
  /// the service it is recovering (docs/RECOVERY.md).
  void reset_clocks(bool keep_metrics = false);

  /// Attributes any thread-CPU time since the last communication call to
  /// this rank's compute clock. The runtime calls it when a rank body
  /// returns so trailing (or, on one rank, *all*) computation is counted;
  /// harmless to call manually around timed phases.
  void flush_compute() {
    enter_collective();
    exit_collective();
  }

  /// This rank's clocks. Valid between collectives.
  double vclock() const { return world_->vclock_[world_rank_]; }
  double comp_time() const { return world_->comp_s_[world_rank_]; }
  double comm_time() const { return world_->comm_s_[world_rank_]; }

  /// The run's telemetry recorder, or null when telemetry is off.
  telemetry::Recorder* recorder() const { return world_->recorder_; }

  /// The run's fault injector, or null when fault injection is off.
  FaultHooks* fault_hooks() const { return world_->injector_; }

  /// Run-level nonblocking defaults (RunOptions::async / async_chunk);
  /// algorithms resolve their SparseOptions against these.
  bool async_default() const { return world_->async_default_; }
  int async_chunk_default() const { return world_->async_chunk_; }

  /// Async pipeline segment count for an exchange moving an estimated
  /// `total_bytes` across THIS communicator's group. Returns the run
  /// default unless the adaptive policy owns chunk sizing (RunOptions::
  /// policy adaptive and both chunk knobs left at their sentinels), in
  /// which case the count is derived from the fitted model for the
  /// group's bottleneck link class (CollectivePolicy::auto_segments).
  /// `total_bytes` MUST be computed from group-uniform quantities — every
  /// member issues one collective per segment, so divergent counts
  /// deadlock the group.
  int auto_chunk_for(std::size_t total_bytes) const {
    if (!world_->async_chunk_auto_) return world_->async_chunk_;
    const GroupLink& g = group_->link();
    return world_->cost_model().policy().auto_segments(g.cls, g.size,
                                                       total_bytes);
  }

  /// Run-level kernel-execution defaults (RunOptions::kernel); algorithms
  /// resolve their KernelOptions against these. chunk_grain_default() == 0
  /// means "use KernelOptions::kDefaultChunkGrain".
  int threads_default() const { return world_->threads_default_; }
  int chunk_grain_default() const { return world_->chunk_grain_default_; }

  /// Number of child groups this communicator still holds from its most
  /// recent split (diagnostic; 0 once every member has taken its child).
  /// Only meaningful after a barrier following the split.
  std::size_t held_child_groups() const { return group_->children_.size(); }

  /// Opens a superstep span on this rank's telemetry track (inert when
  /// telemetry is off). `active_vertices` may be attached now or later via
  /// Span::set_value once the frontier size is known. Compute/collective
  /// records made while the span is open are tagged with its index.
  telemetry::Span superstep_span(const char* label,
                                 std::int64_t active_vertices = -1);

  /// Opens a named phase span (setup, exchange, ...) on this rank's track.
  telemetry::Span phase_span(const char* name);

  /// Connects this rank's telemetry track to its virtual clock so RAII
  /// spans can sample it (no-op when telemetry is off). The runtime calls
  /// it once per rank thread before the body runs.
  void bind_telemetry();

 private:
  friend class transport::Ops;

  bool leader() const { return group_rank_ == 0; }
  detail::Slot& my_slot() { return group_->slots_[group_rank_]; }

  /// True when this Comm runs over a real transport endpoint instead of the
  /// shared-memory substrate. Every collective/p2p template branches on it
  /// before touching slots or barriers (neither exists across processes).
  bool transported() const { return world_->transport_ != nullptr; }

  /// Transport-path epilogue of one collective: advance this rank's clock
  /// to the wall-clock now, record the same telemetry span / metrics /
  /// trace event the shm leader would, bump traffic counters, and
  /// exit_collective. Defined in comm.cpp.
  void transport_finish(CollectiveOp op, std::uint64_t bytes,
                        std::uint64_t msgs);
  /// Transport-path receive epilogue shared by recv/irecv: wall-clock
  /// arrival accounting plus the "p2p.recv" span.
  void transport_recv_advance(std::size_t bytes);

  /// Attributes thread-CPU time since `rank`'s last mark to its compute
  /// clock (and span track), then re-marks. Static so the telemetry clock
  /// binding can call it without holding a Comm.
  static void attribute_compute(World* world, int rank);

  /// Phase A bookkeeping: attribute compute time, then rendezvous.
  void enter_collective();
  /// Re-marks CPU time so collective internals are not billed as compute.
  void exit_collective();
  /// Leader only: advance all members to max(clock)+cost, count traffic,
  /// and record trace events / telemetry spans when enabled.
  void advance_clocks(double cost, std::uint64_t bytes, std::uint64_t msgs,
                      CollectiveOp op);

  // Fault-injection sites (all single-pointer-test no-ops when no
  // injector is attached; non-template so the concrete FaultHooks calls
  // stay in comm.cpp).
  /// Consults the injector on entry to a collective; models transient
  /// retry backoff and throws RankFailure / unwinds silently per decision.
  void fault_collective(CollectiveOp op);
  /// Consults the injector at a superstep boundary (superstep_span).
  void fault_superstep();
  /// Sender-side p2p site: checksums the payload, applies seeded
  /// corruption and the sender's degradation window to `cost`.
  void fault_on_send(World::Message& msg, double* cost);
  /// Receiver-side p2p site: verifies the checksum, throws CorruptPayload.
  void fault_verify_payload(const World::Message& msg) const;
  /// Applies one FaultDecision at a call site (shared by the above).
  void apply_fault_decision(const FaultDecision& decision, const char* site);
  /// Records a zero-duration telemetry instant + metrics counter for a
  /// fault event (no-op when telemetry is off).
  void fault_instant(const char* name, std::int64_t value = -1);

  // Nonblocking-collective internals. The op-specific templates below wire
  // their data movement into async_complete_impl; the non-template
  // protocol pieces live in comm.cpp.
  /// Leader-side modeled charge of one nonblocking collective.
  struct AsyncCharge {
    double cost_s = 0.0;
    std::uint64_t bytes = 0;
    std::uint64_t msgs = 0;
  };
  /// Issue-time bookkeeping shared by all i-collectives: consult the
  /// injector (stashing the decision for the wait), flush compute, record
  /// the issue clock.
  std::shared_ptr<Request::State> async_issue(CollectiveOp op);
  /// Wraps a state that completed at issue (single-rank groups, isend).
  static Request async_completed(std::shared_ptr<Request::State> st);
  /// Leader, between the wait's barriers: applies the degrade multiplier,
  /// computes the transfer window from the published issue clocks and the
  /// group channel, publishes it, and bumps counters/trace.
  void async_leader_commit(AsyncCharge charge, CollectiveOp op);
  /// Every member, after barrier 2: advance own clock to
  /// max(clock, comm_done), record collective/async/overlap spans, fill
  /// the request's cost and overlap.
  void async_member_finish(Request::State& st, CollectiveOp op);
  /// The wait-time rendezvous skeleton. `publish` writes this member's
  /// slot; `mid` runs between the barriers (leader reduce or member-side
  /// copies); `cost` (leader only) prices the transfer from the published
  /// slots; `post` runs after barrier 2 (rank-local copy-out).
  template <class Publish, class Mid, class Cost, class Post>
  void async_complete_impl(Request::State& st, CollectiveOp op,
                           Publish&& publish, Mid&& mid, Cost&& cost,
                           Post&& post);
  /// irecv completion: blocking (wait) or polling (test) mailbox take,
  /// then overlap-aware arrival accounting. Returns whether it completed.
  template <class T>
  bool irecv_complete(Request::State& st, int src_world_rank, int tag,
                      std::vector<T>& out, bool blocking);
  /// Transport-path irecv completion (blocking wait or try_recv poll) with
  /// wall-clock overlap accounting mirroring the shm version.
  template <class T>
  bool transport_irecv(Request::State& st, int tag, std::vector<T>& out,
                       bool blocking);

  World* world_;
  std::shared_ptr<Group> group_;
  int world_rank_;
  int group_rank_;
};

// ---------------------------------------------------------------------------
// Template implementations.
// ---------------------------------------------------------------------------

namespace detail {

template <class T>
void apply_reduce(ReduceOp op, T* into, const T* from, std::size_t count) {
  static_assert(std::is_arithmetic_v<T>,
                "builtin ReduceOp requires arithmetic T; use the combiner "
                "overload for struct payloads");
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < count; ++i) into[i] += from[i];
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < count; ++i)
        into[i] = from[i] < into[i] ? from[i] : into[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < count; ++i)
        into[i] = from[i] > into[i] ? from[i] : into[i];
      break;
  }
}

/// Type-erases a builtin ReduceOp into the transport byte combiner.
template <class T>
transport::ByteCombine byte_combine(ReduceOp op) {
  return [op](std::byte* into, const std::byte* from, std::size_t bytes) {
    apply_reduce(op, reinterpret_cast<T*>(into),
                 reinterpret_cast<const T*>(from), bytes / sizeof(T));
  };
}

/// Type-erases a user combiner `combine(T& into, const T& from)`.
template <class T, class F>
transport::ByteCombine byte_combine_fn(F combine) {
  return [combine](std::byte* into, const std::byte* from,
                   std::size_t bytes) mutable {
    T* a = reinterpret_cast<T*>(into);
    const T* b = reinterpret_cast<const T*>(from);
    for (std::size_t i = 0; i < bytes / sizeof(T); ++i) combine(a[i], b[i]);
  };
}

}  // namespace detail

template <class T>
void Comm::broadcast(std::span<T> data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  fault_collective(CollectiveOp::kBroadcast);
  if (size() == 1) return;
  if (transported()) {
    transport::Ops(*this).broadcast(std::as_writable_bytes(data), root);
    return;
  }
  enter_collective();
  my_slot() = {data.data(), nullptr, data.size(), 0, 0};
  group_->barrier_.arrive_and_wait();
  const auto& root_slot = group_->slots_[root];
  if (leader()) {
    const std::size_t bytes = root_slot.count * sizeof(T);
    advance_clocks(world_->cost_model().broadcast(group_->link(), bytes),
                   bytes * (size() - 1), static_cast<std::uint64_t>(size() - 1),
                   CollectiveOp::kBroadcast);
  }
  if (group_rank_ != root) {
    std::memcpy(data.data(), root_slot.ptr_a, root_slot.count * sizeof(T));
  }
  group_->barrier_.arrive_and_wait();
  exit_collective();
}

template <class T>
void Comm::multi_broadcast(std::span<const BcastSeg<T>> segments) {
  static_assert(std::is_trivially_copyable_v<T>);
  fault_collective(CollectiveOp::kMultiBroadcast);
  if (size() == 1) return;
  if (transported()) {
    std::vector<transport::ByteSeg> segs(segments.size());
    for (std::size_t i = 0; i < segments.size(); ++i) {
      segs[i] = {segments[i].root,
                 reinterpret_cast<std::byte*>(segments[i].data),
                 segments[i].count * sizeof(T)};
    }
    transport::Ops(*this).multi_broadcast(segs);
    return;
  }
  enter_collective();
  // Publish a pointer to this rank's segment-descriptor array; peers read
  // the root's local buffer address for each segment out of it.
  my_slot() = {segments.data(), nullptr, segments.size(), 0, 0};
  group_->barrier_.arrive_and_wait();
  for (const auto& seg : segments) {
    if (seg.root == group_rank_) continue;
    const auto* root_segments =
        static_cast<const BcastSeg<T>*>(group_->slots_[seg.root].ptr_a);
    const auto& src = root_segments[&seg - segments.data()];
    std::memcpy(seg.data, src.data, src.count * sizeof(T));
  }
  if (leader()) {
    double max_cost = 0.0;
    std::uint64_t bytes = 0;
    for (const auto& seg : segments) {
      const std::size_t b = seg.count * sizeof(T);
      max_cost = std::max(max_cost,
                          world_->cost_model().broadcast(group_->link(), b));
      bytes += b * (size() - 1);
    }
    advance_clocks(world_->cost_model().grouped(max_cost, segments.size()),
                   bytes,
                   static_cast<std::uint64_t>(segments.size()) * (size() - 1),
                   CollectiveOp::kMultiBroadcast);
  }
  group_->barrier_.arrive_and_wait();
  exit_collective();
}

template <class T, class F>
void Comm::allreduce(std::span<T> data, F&& combine) {
  static_assert(std::is_trivially_copyable_v<T>);
  fault_collective(CollectiveOp::kAllReduce);
  if (size() == 1) return;
  if (transported()) {
    transport::Ops(*this).allreduce(std::as_writable_bytes(data),
                                    detail::byte_combine_fn<T>(combine));
    return;
  }
  enter_collective();
  my_slot() = {data.data(), nullptr, data.size(), 0, 0};
  group_->barrier_.arrive_and_wait();
  if (leader()) {
    const std::size_t bytes = data.size() * sizeof(T);
    group_->scratch_.resize(bytes);
    auto* acc = reinterpret_cast<T*>(group_->scratch_.data());
    std::memcpy(acc, group_->slots_[0].ptr_a, bytes);
    for (int m = 1; m < size(); ++m) {
      const T* from = static_cast<const T*>(group_->slots_[m].ptr_a);
      for (std::size_t i = 0; i < data.size(); ++i) combine(acc[i], from[i]);
    }
    advance_clocks(world_->cost_model().allreduce(group_->link(), bytes),
                   static_cast<std::uint64_t>(bytes) * 2 * (size() - 1) / size(),
                   static_cast<std::uint64_t>(2 * (size() - 1)), CollectiveOp::kAllReduce);
  }
  group_->barrier_.arrive_and_wait();
  std::memcpy(data.data(), group_->scratch_.data(), data.size() * sizeof(T));
  exit_collective();
}

template <class T>
void Comm::allreduce(std::span<T> data, ReduceOp op) {
  allreduce(data, [op](T& into, const T& from) {
    T tmp = into;
    detail::apply_reduce(op, &tmp, &from, 1);
    into = tmp;
  });
}

template <class T>
T Comm::allreduce_one(T value, ReduceOp op) {
  allreduce(std::span<T>(&value, 1), op);
  return value;
}

template <class T>
void Comm::reduce(std::span<T> data, int root, ReduceOp op) {
  fault_collective(CollectiveOp::kReduce);
  if (size() == 1) return;
  if (transported()) {
    transport::Ops(*this).reduce(std::as_writable_bytes(data), root,
                                 detail::byte_combine<T>(op));
    return;
  }
  enter_collective();
  my_slot() = {data.data(), nullptr, data.size(), 0, 0};
  group_->barrier_.arrive_and_wait();
  if (leader()) {
    const std::size_t bytes = data.size() * sizeof(T);
    group_->scratch_.resize(bytes);
    auto* acc = reinterpret_cast<T*>(group_->scratch_.data());
    std::memcpy(acc, group_->slots_[0].ptr_a, bytes);
    for (int m = 1; m < size(); ++m) {
      detail::apply_reduce(op, acc, static_cast<const T*>(group_->slots_[m].ptr_a),
                           data.size());
    }
    // Tree reduce to one root: half the AllReduce's traffic.
    advance_clocks(
        0.5 * world_->cost_model().allreduce(group_->link(), bytes),
        static_cast<std::uint64_t>(bytes) * (size() - 1) / size(),
        static_cast<std::uint64_t>(size() - 1), CollectiveOp::kReduce);
  }
  group_->barrier_.arrive_and_wait();
  if (group_rank_ == root) {
    std::memcpy(data.data(), group_->scratch_.data(), data.size() * sizeof(T));
  }
  exit_collective();
}

template <class T>
void Comm::reduce_scatter(std::span<const T> send, std::span<T> recv, ReduceOp op) {
  fault_collective(CollectiveOp::kReduceScatter);
  if (size() == 1) {
    std::memcpy(recv.data(), send.data(), recv.size() * sizeof(T));
    return;
  }
  if (transported()) {
    transport::Ops(*this).reduce_scatter(std::as_bytes(send),
                                         std::as_writable_bytes(recv),
                                         detail::byte_combine<T>(op));
    return;
  }
  enter_collective();
  my_slot() = {send.data(), nullptr, send.size(), 0, 0};
  group_->barrier_.arrive_and_wait();
  // Each member reduces its own block directly from the published buffers.
  const std::size_t block = recv.size();
  const std::size_t offset = static_cast<std::size_t>(group_rank_) * block;
  std::memcpy(recv.data(), static_cast<const T*>(group_->slots_[0].ptr_a) + offset,
              block * sizeof(T));
  for (int m = 1; m < size(); ++m) {
    detail::apply_reduce(op, recv.data(),
                         static_cast<const T*>(group_->slots_[m].ptr_a) + offset,
                         block);
  }
  if (leader()) {
    const std::size_t bytes = send.size() * sizeof(T);
    // Ring reduce-scatter: half an AllReduce.
    advance_clocks(0.5 * world_->cost_model().allreduce(group_->link(), bytes),
                   static_cast<std::uint64_t>(bytes) * (size() - 1) / size(),
                   static_cast<std::uint64_t>(size() - 1), CollectiveOp::kReduceScatter);
  }
  group_->barrier_.arrive_and_wait();
  exit_collective();
}

template <class T>
void Comm::gather(std::span<const T> send, std::span<T> recv, int root) {
  fault_collective(CollectiveOp::kGather);
  if (size() == 1) {
    std::memcpy(recv.data(), send.data(), send.size() * sizeof(T));
    return;
  }
  if (transported()) {
    transport::Ops(*this).gather(std::as_bytes(send),
                                 std::as_writable_bytes(recv), root);
    return;
  }
  enter_collective();
  my_slot() = {send.data(), nullptr, send.size(), 0, 0};
  group_->barrier_.arrive_and_wait();
  if (group_rank_ == root) {
    for (int m = 0; m < size(); ++m) {
      std::memcpy(recv.data() + static_cast<std::size_t>(m) * send.size(),
                  group_->slots_[m].ptr_a, send.size() * sizeof(T));
    }
  }
  if (leader()) {
    const std::size_t total = send.size() * sizeof(T) * size();
    // Gather-to-root costs a broadcast's traversal in reverse.
    advance_clocks(world_->cost_model().broadcast(group_->link(), total),
                   total * (size() - 1) / size(),
                   static_cast<std::uint64_t>(size() - 1), CollectiveOp::kGather);
  }
  group_->barrier_.arrive_and_wait();
  exit_collective();
}

template <class T>
void Comm::scatter(std::span<const T> send, std::span<T> recv, int root) {
  fault_collective(CollectiveOp::kScatter);
  if (size() == 1) {
    std::memcpy(recv.data(), send.data(), recv.size() * sizeof(T));
    return;
  }
  if (transported()) {
    transport::Ops(*this).scatter(std::as_bytes(send),
                                  std::as_writable_bytes(recv), root);
    return;
  }
  enter_collective();
  my_slot() = {send.data(), nullptr, send.size(), 0, 0};
  group_->barrier_.arrive_and_wait();
  std::memcpy(recv.data(),
              static_cast<const T*>(group_->slots_[root].ptr_a) +
                  static_cast<std::size_t>(group_rank_) * recv.size(),
              recv.size() * sizeof(T));
  if (leader()) {
    const std::size_t total = recv.size() * sizeof(T) * size();
    advance_clocks(world_->cost_model().broadcast(group_->link(), total),
                   total * (size() - 1) / size(),
                   static_cast<std::uint64_t>(size() - 1), CollectiveOp::kScatter);
  }
  group_->barrier_.arrive_and_wait();
  exit_collective();
}

template <class T>
void Comm::allgather(std::span<const T> send, std::span<T> recv) {
  static_assert(std::is_trivially_copyable_v<T>);
  fault_collective(CollectiveOp::kAllGather);
  if (size() == 1) {
    std::memcpy(recv.data(), send.data(), send.size() * sizeof(T));
    return;
  }
  if (transported()) {
    transport::Ops(*this).allgather(std::as_bytes(send),
                                    std::as_writable_bytes(recv));
    return;
  }
  enter_collective();
  my_slot() = {send.data(), nullptr, send.size(), 0, 0};
  group_->barrier_.arrive_and_wait();
  for (int m = 0; m < size(); ++m) {
    std::memcpy(recv.data() + static_cast<std::size_t>(m) * send.size(),
                group_->slots_[m].ptr_a, send.size() * sizeof(T));
  }
  if (leader()) {
    const std::size_t total = send.size() * sizeof(T) * size();
    advance_clocks(world_->cost_model().allgather(group_->link(), total),
                   total * (size() - 1) / size(),
                   static_cast<std::uint64_t>(size() - 1), CollectiveOp::kAllGather);
  }
  group_->barrier_.arrive_and_wait();
  exit_collective();
}

template <class T>
void Comm::allgatherv(std::span<const T> send, std::vector<T>& out,
                      std::vector<std::size_t>* counts_out) {
  static_assert(std::is_trivially_copyable_v<T>);
  fault_collective(CollectiveOp::kAllGatherV);
  if (size() == 1) {
    if (counts_out) *counts_out = {send.size()};
    out.assign(send.begin(), send.end());
    return;
  }
  if (transported()) {
    std::vector<std::byte> raw;
    std::vector<std::size_t> counts_b;
    transport::Ops(*this).allgatherv(std::as_bytes(send), raw,
                                     counts_out ? &counts_b : nullptr);
    out.clear();
    out.resize(raw.size() / sizeof(T));
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    if (counts_out) {
      counts_out->resize(counts_b.size());
      for (std::size_t i = 0; i < counts_b.size(); ++i) {
        (*counts_out)[i] = counts_b[i] / sizeof(T);
      }
    }
    return;
  }
  enter_collective();
  my_slot() = {send.data(), nullptr, send.size(), 0, 0};
  group_->barrier_.arrive_and_wait();
  std::size_t total = 0;
  for (int m = 0; m < size(); ++m) total += group_->slots_[m].count;
  out.clear();
  out.resize(total);
  if (counts_out) counts_out->resize(size());
  std::size_t offset = 0;
  for (int m = 0; m < size(); ++m) {
    const std::size_t count = group_->slots_[m].count;
    if (count > 0) {
      std::memcpy(out.data() + offset, group_->slots_[m].ptr_a,
                  count * sizeof(T));
    }
    if (counts_out) (*counts_out)[m] = count;
    offset += count;
  }
  if (leader()) {
    advance_clocks(
        world_->cost_model().allgather(group_->link(), total * sizeof(T)),
        total * sizeof(T), static_cast<std::uint64_t>(size() - 1), CollectiveOp::kAllGatherV);
  }
  group_->barrier_.arrive_and_wait();
  exit_collective();
}

template <class T>
std::vector<T> Comm::allgatherv(std::span<const T> send,
                                std::vector<std::size_t>* counts_out) {
  std::vector<T> out;
  allgatherv(send, out, counts_out);
  return out;
}

template <class T>
void Comm::alltoallv(std::span<const T> send,
                     std::span<const std::size_t> send_counts,
                     std::vector<T>& out,
                     std::vector<std::size_t>* recv_counts) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (static_cast<int>(send_counts.size()) != size()) {
    throw std::invalid_argument("alltoallv: send_counts size != comm size");
  }
  fault_collective(CollectiveOp::kAllToAllV);
  if (size() == 1) {
    if (recv_counts) *recv_counts = {send.size()};
    out.assign(send.begin(), send.end());
    return;
  }
  if (transported()) {
    std::vector<std::size_t> counts_b(send_counts.size());
    for (std::size_t i = 0; i < send_counts.size(); ++i) {
      counts_b[i] = send_counts[i] * sizeof(T);
    }
    std::vector<std::byte> raw;
    std::vector<std::size_t> rc_b;
    transport::Ops(*this).alltoallv(std::as_bytes(send), counts_b, raw,
                                    recv_counts ? &rc_b : nullptr);
    out.clear();
    out.resize(raw.size() / sizeof(T));
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    if (recv_counts) {
      recv_counts->resize(rc_b.size());
      for (std::size_t i = 0; i < rc_b.size(); ++i) {
        (*recv_counts)[i] = rc_b[i] / sizeof(T);
      }
    }
    return;
  }
  enter_collective();
  my_slot() = {send.data(), send_counts.data(), send.size(), 0, 0};
  group_->barrier_.arrive_and_wait();
  // Pull my segment out of every peer's send buffer.
  std::vector<std::size_t> incoming(size());
  for (int m = 0; m < size(); ++m) {
    const auto* counts = static_cast<const std::size_t*>(group_->slots_[m].ptr_b);
    incoming[m] = counts[group_rank_];
  }
  std::size_t total = 0;
  for (const auto c : incoming) total += c;
  out.clear();
  out.resize(total);
  std::size_t out_offset = 0;
  for (int m = 0; m < size(); ++m) {
    const auto* counts = static_cast<const std::size_t*>(group_->slots_[m].ptr_b);
    std::size_t in_offset = 0;
    for (int d = 0; d < group_rank_; ++d) in_offset += counts[d];
    if (incoming[m] > 0) {
      std::memcpy(out.data() + out_offset,
                  static_cast<const T*>(group_->slots_[m].ptr_a) + in_offset,
                  incoming[m] * sizeof(T));
    }
    out_offset += incoming[m];
  }
  if (recv_counts) *recv_counts = incoming;
  if (leader()) {
    // Max per-rank traffic (send + receive) bounds the exchange.
    std::size_t max_rank_bytes = 0;
    std::uint64_t total_bytes = 0;
    std::uint64_t msgs = 0;
    std::vector<std::size_t> rank_recv(size(), 0);
    for (int m = 0; m < size(); ++m) {
      const auto* counts = static_cast<const std::size_t*>(group_->slots_[m].ptr_b);
      std::size_t sent = 0;
      for (int d = 0; d < size(); ++d) {
        sent += counts[d];
        rank_recv[d] += counts[d];
        if (d != m && counts[d] > 0) ++msgs;
      }
      total_bytes += (sent - counts[m]) * sizeof(T);
      max_rank_bytes = std::max(max_rank_bytes, sent * sizeof(T));
    }
    for (int m = 0; m < size(); ++m) {
      max_rank_bytes = std::max(max_rank_bytes, rank_recv[m] * sizeof(T));
    }
    advance_clocks(world_->cost_model().alltoallv(group_->link(), max_rank_bytes),
                   total_bytes, msgs, CollectiveOp::kAllToAllV);
  }
  group_->barrier_.arrive_and_wait();
  exit_collective();
}

template <class T>
std::vector<T> Comm::alltoallv(std::span<const T> send,
                               std::span<const std::size_t> send_counts,
                               std::vector<std::size_t>* recv_counts) {
  std::vector<T> out;
  alltoallv(send, send_counts, out, recv_counts);
  return out;
}

template <class T>
void Comm::send(std::span<const T> data, int dest_world_rank, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (dest_world_rank < 0 || dest_world_rank >= world_->nranks()) {
    throw std::invalid_argument("send: dest world rank " +
                                std::to_string(dest_world_rank) +
                                " out of range [0, " +
                                std::to_string(world_->nranks()) + ")");
  }
  if (tag < 0) {
    throw std::invalid_argument("send: negative tag " + std::to_string(tag));
  }
  if (transported()) {
    enter_collective();
    const std::size_t bytes = data.size() * sizeof(T);
    world_->transport_->send(dest_world_rank, transport::kP2pChannel, tag,
                             std::as_bytes(data));
    // Sender pays whatever wall time the (possibly blocking) write took.
    const double now = world_->vclock_[world_rank_];
    const double t = std::max(now, world_->wall_elapsed());
    world_->comm_s_[world_rank_] += t - now;
    world_->vclock_[world_rank_] = t;
    world_->bytes_.fetch_add(bytes, std::memory_order_relaxed);
    world_->messages_.fetch_add(1, std::memory_order_relaxed);
    if (auto* rec = world_->recorder_) {
      rec->metrics().counter("bytes.p2p").add(bytes);
      rec->metrics().counter("messages.p2p").increment();
    }
    exit_collective();
    return;
  }
  enter_collective();  // attribute compute before the modeled send
  const std::size_t bytes = data.size() * sizeof(T);
  const LinkClass link_cls =
      world_->topology().link_class(world_rank_, dest_world_rank);
  const auto& link = world_->topology().params(link_cls);
  double cost = world_->cost_model().p2p(link_cls, link, bytes);
  World::Message msg;
  msg.tag = tag;
  msg.payload.resize(bytes);
  std::memcpy(msg.payload.data(), data.data(), bytes);
  if (world_->injector_) fault_on_send(msg, &cost);
  msg.ready_vtime = world_->vclock_[world_rank_] + cost;
  // Sender pays the latency portion (eager send).
  world_->vclock_[world_rank_] += link.alpha_s;
  world_->comm_s_[world_rank_] += link.alpha_s;
  world_->bytes_.fetch_add(bytes, std::memory_order_relaxed);
  world_->messages_.fetch_add(1, std::memory_order_relaxed);
  if (auto* rec = world_->recorder_) {
    rec->metrics().counter("bytes.p2p").add(bytes);
    rec->metrics().counter("messages.p2p").increment();
  }
  auto& box = *world_->mailboxes_[dest_world_rank];
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
  exit_collective();
}

template <class T>
void Comm::recv(int src_world_rank, int tag, std::vector<T>& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (src_world_rank < 0 || src_world_rank >= world_->nranks()) {
    throw std::invalid_argument("recv: src world rank " +
                                std::to_string(src_world_rank) +
                                " out of range [0, " +
                                std::to_string(world_->nranks()) + ")");
  }
  if (tag < 0) {
    throw std::invalid_argument("recv: negative tag " + std::to_string(tag));
  }
  if (transported()) {
    enter_collective();
    // Tag-matched, any-source — exactly the shm mailbox contract.
    transport::Frame f = world_->transport_->recv_any(
        transport::kP2pChannel, tag, world_->comm_timeout_s_);
    transport_recv_advance(f.payload.size());
    out.clear();
    out.resize(f.payload.size() / sizeof(T));
    if (!f.payload.empty()) {
      std::memcpy(out.data(), f.payload.data(), f.payload.size());
    }
    exit_collective();
    return;
  }
  enter_collective();
  auto& box = *world_->mailboxes_[world_rank_];
  World::Message msg;
  {
    std::unique_lock lock(box.mutex);
    const auto entered = std::chrono::steady_clock::now();
    for (;;) {
      if (world_->abort_.load(std::memory_order_relaxed)) throw Aborted{};
      auto it = box.queue.begin();
      for (; it != box.queue.end(); ++it) {
        if (it->tag == tag) break;
      }
      if (it != box.queue.end()) {
        msg = std::move(*it);
        box.queue.erase(it);
        break;
      }
      if (const double deadline = world_->comm_timeout_s_; deadline > 0) {
        const std::chrono::duration<double> waited =
            std::chrono::steady_clock::now() - entered;
        if (waited.count() > deadline) {
          throw Timeout("recv deadline of " + std::to_string(deadline) +
                        "s exceeded waiting on tag " + std::to_string(tag));
        }
      }
      box.cv.wait_for(lock, std::chrono::milliseconds(50));
    }
  }
  if (msg.checked) fault_verify_payload(msg);
  const double arrival = std::max(world_->vclock_[world_rank_], msg.ready_vtime);
  if (auto* rec = world_->recorder_; rec && arrival > world_->vclock_[world_rank_]) {
    telemetry::SpanRecord span;
    span.start_s = world_->vclock_[world_rank_];
    span.end_s = arrival;
    span.rank = world_rank_;
    span.kind = telemetry::SpanKind::kCollective;
    span.name = "p2p.recv";
    span.bytes = msg.payload.size();
    span.superstep = rec->current_superstep(world_rank_);
    rec->record(std::move(span));
  }
  world_->comm_s_[world_rank_] += arrival - world_->vclock_[world_rank_];
  world_->vclock_[world_rank_] = arrival;
  out.clear();
  out.resize(msg.payload.size() / sizeof(T));
  std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
  exit_collective();
}

template <class T>
std::vector<T> Comm::recv(int src_world_rank, int tag) {
  std::vector<T> out;
  recv(src_world_rank, tag, out);
  return out;
}

// ---------------------------------------------------------------------------
// Nonblocking collectives. Each issue captures a completion closure that
// re-runs the blocking op's rendezvous through async_complete_impl; the
// closure captures the Comm by value and the request state by raw pointer
// (the owning Request keeps it alive — a shared_ptr capture would cycle).
// ---------------------------------------------------------------------------

template <class Publish, class Mid, class Cost, class Post>
void Comm::async_complete_impl(Request::State& st, CollectiveOp op,
                               Publish&& publish, Mid&& mid, Cost&& cost,
                               Post&& post) {
  // A fault keyed on the issuing collective-seq surfaces here, before the
  // rendezvous: a crash unwinds pre-barrier (peers unblock via the abort
  // flag, exactly like a blocking-collective crash) and transient backoff
  // is charged to this rank's clock ahead of the transfer window.
  apply_fault_decision(st.fault, to_string(op));
  st.fault = {};
  enter_collective();
  publish();
  group_->barrier_.arrive_and_wait();
  mid();
  if (leader()) async_leader_commit(cost(), op);
  group_->barrier_.arrive_and_wait();
  post();
  async_member_finish(st, op);
  exit_collective();
  st.done = true;
}

template <class T, class F>
Request Comm::iallreduce(std::span<T> data, F&& combine) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto st = async_issue(CollectiveOp::kAllReduce);
  if (size() == 1) return async_completed(std::move(st));
  if (transported()) {
    // Real transports complete i-collectives at the wait (no modeled
    // overlap window; cost_s/overlap_s stay 0 — see docs/TRANSPORT.md).
    Comm self = *this;
    auto* stp = st.get();
    st->complete = [self, stp, data,
                    combine =
                        std::decay_t<F>(std::forward<F>(combine))]() mutable {
      self.allreduce(data, combine);
      stp->done = true;
    };
    return Request(std::move(st));
  }
  Comm self = *this;
  auto* stp = st.get();
  st->complete = [self, stp, data,
                  combine = std::decay_t<F>(std::forward<F>(combine))]() mutable {
    self.async_complete_impl(
        *stp, CollectiveOp::kAllReduce,
        [&] {
          self.my_slot() = {data.data(), nullptr, data.size(), 0, 0,
                            stp->issue_vclock};
        },
        [&] {
          if (!self.leader()) return;
          const std::size_t bytes = data.size() * sizeof(T);
          self.group_->scratch_.resize(bytes);
          auto* acc = reinterpret_cast<T*>(self.group_->scratch_.data());
          std::memcpy(acc, self.group_->slots_[0].ptr_a, bytes);
          for (int m = 1; m < self.size(); ++m) {
            const T* from = static_cast<const T*>(self.group_->slots_[m].ptr_a);
            for (std::size_t i = 0; i < data.size(); ++i) combine(acc[i], from[i]);
          }
        },
        [&]() -> AsyncCharge {
          const std::size_t bytes = data.size() * sizeof(T);
          return {self.world_->cost_model().allreduce(self.group_->link(), bytes),
                  static_cast<std::uint64_t>(bytes) * 2 * (self.size() - 1) /
                      self.size(),
                  static_cast<std::uint64_t>(2 * (self.size() - 1))};
        },
        [&] {
          std::memcpy(data.data(), self.group_->scratch_.data(),
                      data.size() * sizeof(T));
        });
  };
  return Request(std::move(st));
}

template <class T>
Request Comm::iallreduce(std::span<T> data, ReduceOp op) {
  return iallreduce(data, [op](T& into, const T& from) {
    T tmp = into;
    detail::apply_reduce(op, &tmp, &from, 1);
    into = tmp;
  });
}

template <class T>
Request Comm::ibroadcast(std::span<T> data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto st = async_issue(CollectiveOp::kBroadcast);
  if (size() == 1) return async_completed(std::move(st));
  if (transported()) {
    Comm self = *this;
    auto* stp = st.get();
    st->complete = [self, stp, data, root]() mutable {
      self.broadcast(data, root);
      stp->done = true;
    };
    return Request(std::move(st));
  }
  Comm self = *this;
  auto* stp = st.get();
  st->complete = [self, stp, data, root]() mutable {
    self.async_complete_impl(
        *stp, CollectiveOp::kBroadcast,
        [&] {
          self.my_slot() = {data.data(), nullptr, data.size(), 0, 0,
                            stp->issue_vclock};
        },
        [&] {
          const auto& root_slot = self.group_->slots_[root];
          if (self.group_rank_ != root) {
            std::memcpy(data.data(), root_slot.ptr_a,
                        root_slot.count * sizeof(T));
          }
        },
        [&]() -> AsyncCharge {
          const std::size_t bytes = self.group_->slots_[root].count * sizeof(T);
          return {self.world_->cost_model().broadcast(self.group_->link(), bytes),
                  static_cast<std::uint64_t>(bytes) * (self.size() - 1),
                  static_cast<std::uint64_t>(self.size() - 1)};
        },
        [] {});
  };
  return Request(std::move(st));
}

template <class T>
Request Comm::imulti_broadcast(std::vector<BcastSeg<T>> segments) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto st = async_issue(CollectiveOp::kMultiBroadcast);
  if (size() == 1 || segments.empty()) return async_completed(std::move(st));
  if (transported()) {
    Comm self = *this;
    auto* stp = st.get();
    st->complete = [self, stp, segments = std::move(segments)]() mutable {
      self.multi_broadcast(
          std::span<const BcastSeg<T>>(segments.data(), segments.size()));
      stp->done = true;
    };
    return Request(std::move(st));
  }
  Comm self = *this;
  auto* stp = st.get();
  st->complete = [self, stp, segments = std::move(segments)]() mutable {
    self.async_complete_impl(
        *stp, CollectiveOp::kMultiBroadcast,
        [&] {
          self.my_slot() = {segments.data(), nullptr, segments.size(), 0, 0,
                            stp->issue_vclock};
        },
        [&] {
          for (const auto& seg : segments) {
            if (seg.root == self.group_rank_) continue;
            const auto* root_segments = static_cast<const BcastSeg<T>*>(
                self.group_->slots_[seg.root].ptr_a);
            const auto& src = root_segments[&seg - segments.data()];
            std::memcpy(seg.data, src.data, src.count * sizeof(T));
          }
        },
        [&]() -> AsyncCharge {
          double max_cost = 0.0;
          std::uint64_t bytes = 0;
          for (const auto& seg : segments) {
            const std::size_t b = seg.count * sizeof(T);
            max_cost = std::max(
                max_cost, self.world_->cost_model().broadcast(self.group_->link(), b));
            bytes += b * (self.size() - 1);
          }
          return {self.world_->cost_model().grouped(max_cost, segments.size()),
                  bytes,
                  static_cast<std::uint64_t>(segments.size()) *
                      (self.size() - 1)};
        },
        [] {});
  };
  return Request(std::move(st));
}

template <class T>
Request Comm::iallgatherv(std::span<const T> send, std::vector<T>& out,
                          std::vector<std::size_t>* counts_out) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto st = async_issue(CollectiveOp::kAllGatherV);
  if (size() == 1) {
    out.assign(send.begin(), send.end());
    if (counts_out) *counts_out = {send.size()};
    return async_completed(std::move(st));
  }
  if (transported()) {
    Comm self = *this;
    auto* stp = st.get();
    auto* outp = &out;
    st->complete = [self, stp, send, outp, counts_out]() mutable {
      self.allgatherv(send, *outp, counts_out);
      stp->done = true;
    };
    return Request(std::move(st));
  }
  Comm self = *this;
  auto* stp = st.get();
  auto* outp = &out;
  st->complete = [self, stp, send, outp, counts_out]() mutable {
    self.async_complete_impl(
        *stp, CollectiveOp::kAllGatherV,
        [&] {
          self.my_slot() = {send.data(), nullptr, send.size(), 0, 0,
                            stp->issue_vclock};
        },
        [&] {
          std::size_t total = 0;
          for (int m = 0; m < self.size(); ++m) {
            total += self.group_->slots_[m].count;
          }
          outp->clear();
          outp->resize(total);
          if (counts_out) counts_out->resize(self.size());
          std::size_t offset = 0;
          for (int m = 0; m < self.size(); ++m) {
            const std::size_t count = self.group_->slots_[m].count;
            if (count > 0) {
              std::memcpy(outp->data() + offset, self.group_->slots_[m].ptr_a,
                          count * sizeof(T));
            }
            if (counts_out) (*counts_out)[m] = count;
            offset += count;
          }
        },
        [&]() -> AsyncCharge {
          std::size_t total = 0;
          for (int m = 0; m < self.size(); ++m) {
            total += self.group_->slots_[m].count;
          }
          return {self.world_->cost_model().allgather(self.group_->link(),
                                                      total * sizeof(T)),
                  total * sizeof(T), static_cast<std::uint64_t>(self.size() - 1)};
        },
        [] {});
  };
  return Request(std::move(st));
}

template <class T>
Request Comm::ialltoallv(std::span<const T> send,
                         std::span<const std::size_t> send_counts,
                         std::vector<T>& out,
                         std::vector<std::size_t>* recv_counts) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (static_cast<int>(send_counts.size()) != size()) {
    throw std::invalid_argument("ialltoallv: send_counts size != comm size");
  }
  auto st = async_issue(CollectiveOp::kAllToAllV);
  if (size() == 1) {
    out.assign(send.begin(), send.end());
    if (recv_counts) *recv_counts = {send.size()};
    return async_completed(std::move(st));
  }
  if (transported()) {
    Comm self = *this;
    auto* stp = st.get();
    auto* outp = &out;
    st->complete = [self, stp, send, outp, recv_counts,
                    counts = std::vector<std::size_t>(
                        send_counts.begin(), send_counts.end())]() mutable {
      self.alltoallv(send, counts, *outp, recv_counts);
      stp->done = true;
    };
    return Request(std::move(st));
  }
  Comm self = *this;
  auto* stp = st.get();
  auto* outp = &out;
  // send_counts is copied at issue so the caller need not keep it alive.
  st->complete = [self, stp, send, outp, recv_counts,
                  counts = std::vector<std::size_t>(send_counts.begin(),
                                                    send_counts.end())]() mutable {
    self.async_complete_impl(
        *stp, CollectiveOp::kAllToAllV,
        [&] {
          self.my_slot() = {send.data(), counts.data(), send.size(), 0, 0,
                            stp->issue_vclock};
        },
        [&] {
          std::vector<std::size_t> incoming(self.size());
          for (int m = 0; m < self.size(); ++m) {
            const auto* c =
                static_cast<const std::size_t*>(self.group_->slots_[m].ptr_b);
            incoming[m] = c[self.group_rank_];
          }
          std::size_t total = 0;
          for (const auto c : incoming) total += c;
          outp->clear();
          outp->resize(total);
          std::size_t out_offset = 0;
          for (int m = 0; m < self.size(); ++m) {
            const auto* c =
                static_cast<const std::size_t*>(self.group_->slots_[m].ptr_b);
            std::size_t in_offset = 0;
            for (int d = 0; d < self.group_rank_; ++d) in_offset += c[d];
            if (incoming[m] > 0) {
              std::memcpy(outp->data() + out_offset,
                          static_cast<const T*>(self.group_->slots_[m].ptr_a) +
                              in_offset,
                          incoming[m] * sizeof(T));
            }
            out_offset += incoming[m];
          }
          if (recv_counts) *recv_counts = std::move(incoming);
        },
        [&]() -> AsyncCharge {
          std::size_t max_rank_bytes = 0;
          std::uint64_t total_bytes = 0;
          std::uint64_t msgs = 0;
          std::vector<std::size_t> rank_recv(self.size(), 0);
          for (int m = 0; m < self.size(); ++m) {
            const auto* c =
                static_cast<const std::size_t*>(self.group_->slots_[m].ptr_b);
            std::size_t sent = 0;
            for (int d = 0; d < self.size(); ++d) {
              sent += c[d];
              rank_recv[d] += c[d];
              if (d != m && c[d] > 0) ++msgs;
            }
            total_bytes += (sent - c[m]) * sizeof(T);
            max_rank_bytes = std::max(max_rank_bytes, sent * sizeof(T));
          }
          for (int m = 0; m < self.size(); ++m) {
            max_rank_bytes = std::max(max_rank_bytes, rank_recv[m] * sizeof(T));
          }
          return {self.world_->cost_model().alltoallv(self.group_->link(),
                                                      max_rank_bytes),
                  total_bytes, msgs};
        },
        [] {});
  };
  return Request(std::move(st));
}

template <class T>
Request Comm::isend(std::span<const T> data, int dest_world_rank, int tag) {
  auto st = std::make_shared<Request::State>();
  st->issue_vclock = world_->vclock_[world_rank_];
  // Sends are eager already: the payload is enqueued and the sender's
  // latency charged at issue, so there is nothing left to overlap.
  send(data, dest_world_rank, tag);
  return async_completed(std::move(st));
}

template <class T>
Request Comm::irecv(int src_world_rank, int tag, std::vector<T>& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (src_world_rank < 0 || src_world_rank >= world_->nranks()) {
    throw std::invalid_argument("irecv: src world rank " +
                                std::to_string(src_world_rank) +
                                " out of range [0, " +
                                std::to_string(world_->nranks()) + ")");
  }
  if (tag < 0) {
    throw std::invalid_argument("irecv: negative tag " + std::to_string(tag));
  }
  auto st = std::make_shared<Request::State>();
  flush_compute();
  st->issue_vclock = world_->vclock_[world_rank_];
  if (transported()) {
    Comm self = *this;
    auto* stp = st.get();
    auto* outp = &out;
    st->complete = [self, stp, tag, outp]() mutable {
      self.transport_irecv(*stp, tag, *outp, /*blocking=*/true);
    };
    st->try_complete = [self, stp, tag, outp]() mutable {
      return self.transport_irecv(*stp, tag, *outp, /*blocking=*/false);
    };
    return Request(std::move(st));
  }
  Comm self = *this;
  auto* stp = st.get();
  auto* outp = &out;
  st->complete = [self, stp, src_world_rank, tag, outp]() mutable {
    self.irecv_complete(*stp, src_world_rank, tag, *outp, /*blocking=*/true);
  };
  st->try_complete = [self, stp, src_world_rank, tag, outp]() mutable {
    return self.irecv_complete(*stp, src_world_rank, tag, *outp,
                               /*blocking=*/false);
  };
  return Request(std::move(st));
}

template <class T>
bool Comm::irecv_complete(Request::State& st, int src_world_rank, int tag,
                          std::vector<T>& out, bool blocking) {
  (void)src_world_rank;  // tag-matched, like the blocking recv
  enter_collective();  // attribute compute since issue before overlap math
  auto& box = *world_->mailboxes_[world_rank_];
  World::Message msg;
  {
    std::unique_lock lock(box.mutex);
    const auto entered = std::chrono::steady_clock::now();
    for (;;) {
      if (world_->abort_.load(std::memory_order_relaxed)) throw Aborted{};
      auto it = box.queue.begin();
      for (; it != box.queue.end(); ++it) {
        if (it->tag == tag) break;
      }
      if (it != box.queue.end()) {
        msg = std::move(*it);
        box.queue.erase(it);
        break;
      }
      if (!blocking) {
        exit_collective();
        return false;
      }
      if (const double deadline = world_->comm_timeout_s_; deadline > 0) {
        const std::chrono::duration<double> waited =
            std::chrono::steady_clock::now() - entered;
        if (waited.count() > deadline) {
          throw Timeout("irecv deadline of " + std::to_string(deadline) +
                        "s exceeded waiting on tag " + std::to_string(tag));
        }
      }
      box.cv.wait_for(lock, std::chrono::milliseconds(50));
    }
  }
  if (msg.checked) fault_verify_payload(msg);
  const double now = world_->vclock_[world_rank_];
  const double arrival = std::max(now, msg.ready_vtime);
  const double overlap =
      std::max(0.0, std::min(now, msg.ready_vtime) - st.issue_vclock);
  if (auto* rec = world_->recorder_) {
    const int step = rec->current_superstep(world_rank_);
    if (arrival > now) {
      telemetry::SpanRecord span;
      span.start_s = now;
      span.end_s = arrival;
      span.rank = world_rank_;
      span.kind = telemetry::SpanKind::kCollective;
      span.name = "p2p.recv";
      span.bytes = msg.payload.size();
      span.superstep = step;
      rec->record(std::move(span));
    }
    telemetry::SpanRecord async_span;
    async_span.start_s = st.issue_vclock;
    async_span.end_s = arrival;
    async_span.rank = world_rank_;
    async_span.kind = telemetry::SpanKind::kAsync;
    async_span.name = "irecv";
    async_span.bytes = msg.payload.size();
    async_span.superstep = step;
    rec->record(std::move(async_span));
    if (overlap > 0) {
      telemetry::SpanRecord overlap_span;
      overlap_span.start_s = st.issue_vclock;
      overlap_span.end_s = st.issue_vclock + overlap;
      overlap_span.rank = world_rank_;
      overlap_span.kind = telemetry::SpanKind::kAsync;
      overlap_span.name = "overlap";
      overlap_span.superstep = step;
      rec->record(std::move(overlap_span));
    }
  }
  world_->comm_s_[world_rank_] += arrival - now;
  world_->vclock_[world_rank_] = arrival;
  st.cost_s = std::max(0.0, msg.ready_vtime - st.issue_vclock);
  st.overlap_s = overlap;
  out.clear();
  out.resize(msg.payload.size() / sizeof(T));
  std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
  exit_collective();
  st.done = true;
  return true;
}

template <class T>
bool Comm::transport_irecv(Request::State& st, int tag, std::vector<T>& out,
                           bool blocking) {
  enter_collective();  // attribute compute since issue before overlap math
  transport::Frame f;
  if (blocking) {
    f = world_->transport_->recv_any(transport::kP2pChannel, tag,
                                     world_->comm_timeout_s_);
  } else if (!world_->transport_->try_recv(transport::kP2pChannel, tag, &f)) {
    exit_collective();
    return false;
  }
  // Overlap: the frame was in flight from (at the latest) the issue point
  // until now, so compute done in between hid under the transfer.
  const double now = world_->vclock_[world_rank_];
  st.cost_s = std::max(0.0, now - st.issue_vclock);
  st.overlap_s = std::max(0.0, now - st.issue_vclock);
  transport_recv_advance(f.payload.size());
  out.clear();
  out.resize(f.payload.size() / sizeof(T));
  if (!f.payload.empty()) {
    std::memcpy(out.data(), f.payload.data(), f.payload.size());
  }
  exit_collective();
  st.done = true;
  return true;
}

}  // namespace hpcg::comm

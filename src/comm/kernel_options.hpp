// Unified kernel-execution options (intra-rank threading, edge-balanced
// chunk grain, direction optimization, async exchange pipelining).
//
// Seven PRs grew these knobs in four parallel structs (BfsOptions,
// MsBfsOptions, CcOptions, core::SparseOptions); the per-rank worker pool
// would have made it five. KernelOptions consolidates them: one struct,
// carried by comm::RunOptions as the run-wide default and accepted by every
// algorithm entry point as the per-call override. The old names survive as
// thin aliases for one release (see docs/ARCHITECTURE.md §15).
//
// Resolution model: every field has a "run default" sentinel (0 for the
// integers, kRunDefault for the async tri-state). Runtime::run folds the
// RunOptions-level values into the World, and per-call structs resolve
// against the Comm (resolved_threads / resolved_grain / enabled /
// segments), so `hpcg_run --threads=4` flips a whole run while a single
// call site can still force either mode.
#pragma once

#include <stdexcept>
#include <string>

#include "comm/comm.hpp"

namespace hpcg::comm {

/// Thrown by KernelOptions::validate() (and util::parse_kernel_options) on
/// out-of-range values or contradictory combinations — a typed error so
/// tools can distinguish bad kernel flags from other failures instead of
/// silently falling back to defaults.
class KernelOptionsError : public std::invalid_argument {
 public:
  explicit KernelOptionsError(const std::string& what)
      : std::invalid_argument(what) {}
};

struct KernelOptions {
  // --- Intra-rank worker pool (src/core/worker_pool.hpp) -----------------
  /// Worker threads per rank for the local CSR kernels. 0 = run default
  /// (Comm::threads_default(), itself defaulting to 1); 1 = serial.
  /// Results are bit-identical for any value (fixed edge-balanced chunk
  /// boundaries + chunk-ordered reduction; see docs/KERNELS.md).
  int threads = 0;
  /// Edge-balance grain: target edges per chunk for the Manhattan-style
  /// prefix-sum partitioning. 0 = run default (Comm::chunk_grain_default(),
  /// itself defaulting to kDefaultChunkGrain).
  int chunk_grain = 0;

  // --- Direction optimization (BFS / MS-BFS) -----------------------------
  bool direction_optimizing = true;
  /// Switch top-down -> bottom-up when m_unvisited / edges_in_frontier
  /// falls below alpha (Beamer's alpha).
  double alpha = 15.0;
  /// Switch back when n / frontier_size exceeds beta.
  double beta = 24.0;

  // --- Async exchange pipeline (folded in from core::SparseOptions) ------
  enum class Async : std::uint8_t {
    kRunDefault,  // follow Comm::async_default() (RunOptions::async)
    kOff,         // force blocking exchanges
    kOn,          // force nonblocking chunked exchanges
  };
  Async async = Async::kRunDefault;
  /// Segment count for the chunked async pipeline; 0 = run default
  /// (RunOptions::async_chunk). Every rank must use the same value — it is
  /// the number of collectives issued per phase (empty chunks are legal).
  int chunk = 0;

  /// Default edge-balance grain (edges per chunk) when neither the call
  /// site nor the run sets one. Big enough that chunk bookkeeping is noise,
  /// small enough that 4 workers see >= 8 chunks on a 2^16-vertex block.
  static constexpr int kDefaultChunkGrain = 16384;
  /// Hard cap on threads per rank (ranks are themselves threads of one
  /// process; R*C ranks * threads workers must stay sane).
  static constexpr int kMaxThreads = 64;

  static KernelOptions on(int chunk = 0) {
    KernelOptions o;
    o.async = Async::kOn;
    o.chunk = chunk;
    return o;
  }
  static KernelOptions off() {
    KernelOptions o;
    o.async = Async::kOff;
    return o;
  }
  static KernelOptions with_threads(int threads, int grain = 0) {
    KernelOptions o;
    o.threads = threads;
    o.chunk_grain = grain;
    return o;
  }

  bool enabled(const Comm& c) const {
    return async == Async::kOn ||
           (async == Async::kRunDefault && c.async_default());
  }
  int segments(const Comm& c) const {
    const int n = chunk > 0 ? chunk : c.async_chunk_default();
    return n < 1 ? 1 : n;
  }
  /// Payload-aware variant of segments(): an explicit per-call chunk still
  /// wins, but the run-default falls through Comm::auto_chunk_for so an
  /// adaptive policy can derive the pipeline depth from the fitted model
  /// (docs/TUNING.md). `total_bytes` must be group-uniform — see
  /// Comm::auto_chunk_for.
  int segments_for(const Comm& c, std::size_t total_bytes) const {
    const int n = chunk > 0 ? chunk : c.auto_chunk_for(total_bytes);
    return n < 1 ? 1 : n;
  }
  int resolved_threads(const Comm& c) const {
    const int t = threads > 0 ? threads : c.threads_default();
    return t < 1 ? 1 : t;
  }
  int resolved_grain(const Comm& c) const {
    const int g = chunk_grain > 0 ? chunk_grain : c.chunk_grain_default();
    return g < 1 ? kDefaultChunkGrain : g;
  }

  /// Rejects out-of-range values and contradictory combinations with a
  /// KernelOptionsError naming the offending field. Runtime::run validates
  /// the RunOptions-level instance before spawning ranks.
  void validate() const {
    if (threads < 0 || threads > kMaxThreads) {
      throw KernelOptionsError("kernel threads must be in [0, " +
                               std::to_string(kMaxThreads) + "], got " +
                               std::to_string(threads));
    }
    if (chunk_grain < 0) {
      throw KernelOptionsError("kernel chunk grain must be >= 0, got " +
                               std::to_string(chunk_grain));
    }
    if (chunk < 0) {
      throw KernelOptionsError("async chunk count must be >= 0, got " +
                               std::to_string(chunk));
    }
    if (async == Async::kOff && chunk > 1) {
      throw KernelOptionsError(
          "async pipeline segments (chunk=" + std::to_string(chunk) +
          ") require async exchanges, but async is forced off");
    }
    if (alpha <= 0.0 || beta <= 0.0) {
      throw KernelOptionsError(
          "direction-optimization alpha/beta must be > 0");
    }
  }
};

}  // namespace hpcg::comm

// Timing and traffic statistics produced by a simulated run.
//
// Every rank carries a virtual clock. Compute segments (measured thread-CPU
// time, scaled to modeled device speed) and collective costs (from the
// CostModel) advance it; the resulting per-rank computation/communication
// split is exactly what the paper's Figures 3 and 5 report ("the maximum
// time over all ranks for each is reported").
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "comm/topology.hpp"

namespace hpcg::comm {

/// Every collective operation the communicator implements. Typed (rather
/// than the raw string the substrate once recorded) so trace events
/// compare by value, switch exhaustively, and can never dangle.
enum class CollectiveOp : std::uint8_t {
  kBarrier,
  kBroadcast,
  kMultiBroadcast,
  kAllReduce,
  kReduce,
  kReduceScatter,
  kGather,
  kScatter,
  kAllGather,
  kAllGatherV,
  kAllToAllV,
  kSplit,
};

constexpr const char* to_string(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kBarrier: return "barrier";
    case CollectiveOp::kBroadcast: return "broadcast";
    case CollectiveOp::kMultiBroadcast: return "multi_broadcast";
    case CollectiveOp::kAllReduce: return "allreduce";
    case CollectiveOp::kReduce: return "reduce";
    case CollectiveOp::kReduceScatter: return "reduce_scatter";
    case CollectiveOp::kGather: return "gather";
    case CollectiveOp::kScatter: return "scatter";
    case CollectiveOp::kAllGather: return "allgather";
    case CollectiveOp::kAllGatherV: return "allgatherv";
    case CollectiveOp::kAllToAllV: return "alltoallv";
    case CollectiveOp::kSplit: return "split";
  }
  return "?";
}

/// One collective as the trace records it (leader-side view).
struct TraceEvent {
  double end_time = 0.0;   // virtual-clock time the group reached
  double cost = 0.0;       // modeled duration of the operation
  CollectiveOp op = CollectiveOp::kBarrier;
  int group_size = 0;
  std::uint64_t bytes = 0;
  /// Bottleneck link class of the group (the topology level the cost was
  /// charged against) — lets hpcg_trace compare each event against the
  /// per-level fitted prediction of a calibration file.
  LinkClass link_class = LinkClass::kSelf;

  /// Back-compat accessor for string-comparing tests and CSV writers.
  const char* op_name() const { return to_string(op); }
};

struct RunStats {
  std::vector<double> vclock;  // modeled end time per rank, seconds
  std::vector<double> comp_s;  // modeled computation seconds per rank
  std::vector<double> comm_s;  // modeled communication seconds per rank
  std::uint64_t bytes = 0;       // payload bytes moved between ranks
  std::uint64_t messages = 0;    // modeled point-to-point message count
  std::uint64_t collectives = 0; // collective operations issued
  std::vector<TraceEvent> trace; // per-collective events (CostParams::trace)

  /// Total modeled execution time (max over ranks), as the paper reports.
  double makespan() const {
    return vclock.empty() ? 0.0 : *std::max_element(vclock.begin(), vclock.end());
  }
  double max_comp() const {
    return comp_s.empty() ? 0.0 : *std::max_element(comp_s.begin(), comp_s.end());
  }
  double max_comm() const {
    return comm_s.empty() ? 0.0 : *std::max_element(comm_s.begin(), comm_s.end());
  }
};

}  // namespace hpcg::comm

// Timing and traffic statistics produced by a simulated run.
//
// Every rank carries a virtual clock. Compute segments (measured thread-CPU
// time, scaled to modeled device speed) and collective costs (from the
// CostModel) advance it; the resulting per-rank computation/communication
// split is exactly what the paper's Figures 3 and 5 report ("the maximum
// time over all ranks for each is reported").
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace hpcg::comm {

/// One collective as the trace records it (leader-side view).
struct TraceEvent {
  double end_time = 0.0;   // virtual-clock time the group reached
  double cost = 0.0;       // modeled duration of the operation
  const char* op = "";     // "allreduce", "allgatherv", ...
  int group_size = 0;
  std::uint64_t bytes = 0;
};

struct RunStats {
  std::vector<double> vclock;  // modeled end time per rank, seconds
  std::vector<double> comp_s;  // modeled computation seconds per rank
  std::vector<double> comm_s;  // modeled communication seconds per rank
  std::uint64_t bytes = 0;       // payload bytes moved between ranks
  std::uint64_t messages = 0;    // modeled point-to-point message count
  std::uint64_t collectives = 0; // collective operations issued
  std::vector<TraceEvent> trace; // per-collective events (CostParams::trace)

  /// Total modeled execution time (max over ranks), as the paper reports.
  double makespan() const {
    return vclock.empty() ? 0.0 : *std::max_element(vclock.begin(), vclock.end());
  }
  double max_comp() const {
    return comp_s.empty() ? 0.0 : *std::max_element(comp_s.begin(), comp_s.end());
  }
  double max_comm() const {
    return comm_s.empty() ? 0.0 : *std::max_element(comm_s.begin(), comm_s.end());
  }
};

}  // namespace hpcg::comm

#include "comm/cost_model.hpp"

namespace hpcg::comm {

GroupLink make_group_link(const Topology& topo, const int* members, int size) {
  GroupLink g;
  g.size = size;
  if (size <= 1) {
    g.link = topo.params(LinkClass::kSelf);
    g.cls = LinkClass::kSelf;
    return g;
  }
  // Worst link on the ring of consecutive members (collective algorithms
  // here are ring/tree over group order, so that is what they traverse).
  LinkParams worst = topo.params(members[0], members[1]);
  LinkClass worst_cls = topo.link_class(members[0], members[1]);
  for (int i = 0; i < size; ++i) {
    const LinkClass cls = topo.link_class(members[i], members[(i + 1) % size]);
    const LinkParams& p = topo.params(cls);
    if (p.beta_bytes_s < worst.beta_bytes_s ||
        (p.beta_bytes_s == worst.beta_bytes_s && p.alpha_s > worst.alpha_s)) {
      worst = p;
      worst_cls = cls;
    }
  }
  g.link = worst;
  g.cls = worst_cls;
  return g;
}

}  // namespace hpcg::comm

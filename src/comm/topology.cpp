#include "comm/topology.hpp"

#include <sstream>

namespace hpcg::comm {

namespace {
// Default link parameters, chosen to match the relative hierarchy of the
// paper's systems (V100 NVLink ~ tens of GB/s effective; staged host copies
// far slower; EDR IB ~ 9-10 GB/s effective per endpoint with higher
// latency). Only the relative ordering and rough ratios matter for the
// reproduced scaling shapes.
constexpr LinkParams kNvlinkV100{5e-6, 60e9};
constexpr LinkParams kHostStaged{12e-6, 24e9};
constexpr LinkParams kEdrIb{25e-6, 9e9};
constexpr LinkParams kNvlinkA100{4e-6, 150e9};
}  // namespace

LinkClass link_class_from_string(const std::string& name) {
  if (name == "self") return LinkClass::kSelf;
  if (name == "nvlink") return LinkClass::kNvlink;
  if (name == "intra_node") return LinkClass::kIntraNode;
  if (name == "network") return LinkClass::kNetwork;
  throw std::invalid_argument("unknown link class: " + name);
}

Topology::Topology(int nranks, int gpus_per_node, int clique_size,
                   LinkParams nvlink, LinkParams intra_node, LinkParams network)
    : nranks_(nranks),
      gpus_per_node_(gpus_per_node),
      clique_size_(clique_size),
      nvlink_(nvlink),
      intra_node_(intra_node),
      network_(network) {
  if (nranks < 1) throw std::invalid_argument("topology needs >= 1 rank");
  if (gpus_per_node < 1 || clique_size < 1 || gpus_per_node % clique_size != 0) {
    throw std::invalid_argument("clique size must divide gpus per node");
  }
}

Topology Topology::aimos(int nranks) {
  return Topology(nranks, /*gpus_per_node=*/6, /*clique_size=*/3, kNvlinkV100,
                  kHostStaged, kEdrIb);
}

Topology Topology::zepy(int nranks) {
  // One node, one NVLink domain: clique == node == all ranks.
  return Topology(nranks, nranks, nranks, kNvlinkA100, kNvlinkA100, kNvlinkA100);
}

Topology Topology::flat(int nranks, LinkParams params) {
  return Topology(nranks, 1, 1, params, params, params);
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << nranks_ << " ranks, " << gpus_per_node_ << " per node, NVLink cliques of "
     << clique_size_;
  return os.str();
}

}  // namespace hpcg::comm

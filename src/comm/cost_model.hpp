// Collective cost model. Every collective executed by the runtime advances
// the participating ranks' virtual clocks by the modeled duration computed
// here, using standard alpha-beta formulas for ring/tree collective
// algorithms (Thakur et al.) against the slowest link class spanned by the
// group. This is what turns the shared-memory execution into a simulation
// of the paper's NCCL-over-NVLink/InfiniBand runs.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "comm/policy.hpp"
#include "comm/topology.hpp"

namespace hpcg::comm {

/// Cached communication characteristics of one communicator group:
/// the bottleneck link parameters over the ring the collective algorithms
/// traverse (consecutive members in group order, wrapping), plus that
/// bottleneck's link class — the topology level a CollectivePolicy's
/// fitted constants are looked up under.
struct GroupLink {
  LinkParams link;       // slowest link spanned by the group's ring
  int size = 1;          // group size
  LinkClass cls = LinkClass::kSelf;  // class of the slowest link
  bool single_rank() const { return size <= 1; }
};

/// Tunable knobs. `software_alpha_s` models per-operation software overhead
/// of the communication substrate; HPCGraph-GPU's tuned NCCL path keeps it
/// near zero while the Gluon-like generic substrate sets it high (see
/// baselines/gluon_like). `bw_derate` scales effective bandwidth the same
/// way (serialization cost of a generic payload format).
struct CostParams {
  double compute_scale = 0.02;   // thread-CPU seconds -> modeled device seconds
  double software_alpha_s = 0.5e-6;
  /// Effective-bandwidth derate: every link's beta is multiplied by this
  /// before use. It models sustained-bandwidth loss the per-class LinkParams
  /// cannot see — payload (de)serialization of a generic substrate format
  /// and cache-sharing contention when many simulated ranks stage copies
  /// through one host (the baselines/gluon_like substrate sets it well
  /// below 1; the tuned NCCL-like path keeps it at 1). Must be > 0; values
  /// above 1 would model a link faster than its own hardware parameters
  /// and are almost certainly a configuration bug, but only <= 0 is
  /// rejected (CostModel's constructor throws std::invalid_argument).
  double bw_derate = 1.0;
  double kernel_launch_s = 3e-6; // charged per device kernel launch
  // Record a per-collective trace event stream (op, group size, bytes,
  // modeled cost) retrievable from RunStats — the tool for dissecting an
  // algorithm's communication pattern. Off by default (events cost a
  // mutex + allocation per collective).
  bool trace = false;
  // Work-proportional device compute model, used by the figure benchmarks
  // (with compute_scale = 0). Measured thread-CPU time degrades with the
  // total footprint of simulating many ranks on one host (cache sharing),
  // which a per-rank GPU does not; charging per work item reproduces the
  // device's size-independent throughput. Defaults are V100-class
  // memory-bound graph-kernel rates (~5 Gedge/s, ~2 Gvertex/s).
  double per_edge_s = 0.0;
  double per_vertex_s = 0.0;
};

class CostModel {
 public:
  explicit CostModel(CostParams params = {}) : p_(params) {
    if (!(p_.bw_derate > 0.0)) {
      throw std::invalid_argument(
          "CostParams::bw_derate must be > 0 (it scales effective link "
          "bandwidth), got " + std::to_string(p_.bw_derate));
    }
  }

  const CostParams& params() const { return p_; }

  /// Collective selection policy. kFixed (the default) reproduces the
  /// legacy single-algorithm formulas bit for bit; kAdaptive dispatches
  /// each variant-bearing collective through CollectivePolicy::select.
  /// Attached by Runtime::run from RunOptions::policy.
  void set_policy(const CollectivePolicy& policy) { policy_ = policy; }
  const CollectivePolicy& policy() const { return policy_; }

  /// AllReduce, Rabenseifner-style: logarithmic latency depth (tuned
  /// libraries switch to tree/butterfly algorithms when latency-bound)
  /// with the ring's bandwidth-optimal 2·bytes·(g-1)/g volume term, plus
  /// one software launch (tuned collectives amortize runtime overhead
  /// over the whole operation).
  double allreduce(const GroupLink& g, std::size_t bytes) const {
    if (g.single_rank()) return 0.0;
    if (policy_.active()) return charge(CollectiveOp::kAllReduce, g, bytes);
    const double gs = g.size;
    return p_.software_alpha_s + 2.0 * levels(g) * alpha(g) +
           2.0 * static_cast<double>(bytes) * (gs - 1.0) / (gs * beta(g));
  }

  /// Binomial-tree Broadcast: ceil(log2 g) latency terms; bandwidth term is
  /// the full payload once per tree level for large messages (pipelined:
  /// approximately one traversal).
  double broadcast(const GroupLink& g, std::size_t bytes) const {
    if (g.single_rank()) return 0.0;
    if (policy_.active()) return charge(CollectiveOp::kBroadcast, g, bytes);
    return p_.software_alpha_s + levels(g) * alpha(g) +
           static_cast<double>(bytes) / beta(g);
  }

  /// AllGather of `total_bytes` aggregated payload: Bruck-style log
  /// latency, ring bandwidth term.
  double allgather(const GroupLink& g, std::size_t total_bytes) const {
    if (g.single_rank()) return 0.0;
    if (policy_.active()) {
      return charge(CollectiveOp::kAllGather, g, total_bytes);
    }
    const double gs = g.size;
    return p_.software_alpha_s + levels(g) * alpha(g) +
           static_cast<double>(total_bytes) * (gs - 1.0) / (gs * beta(g));
  }

  /// Pairwise-exchange Alltoallv: every rank sends a *separate message* to
  /// every other member, so both the hardware latency and the software
  /// per-message overhead scale with (g-1); bandwidth term is the maximum
  /// per-rank traffic (send + receive). This is what makes generic
  /// per-destination substrates latency-bound at scale (Figure 9).
  double alltoallv(const GroupLink& g, std::size_t max_rank_bytes) const {
    if (g.single_rank()) return 0.0;
    if (policy_.active()) {
      return charge(CollectiveOp::kAllToAllV, g, max_rank_bytes);
    }
    return (g.size - 1.0) * (alpha(g) + p_.software_alpha_s) +
           static_cast<double>(max_rank_bytes) / beta(g);
  }

  /// A batch of broadcasts issued as one NCCL-style group call: the
  /// operations overlap, so the cost is the maximum individual cost plus a
  /// small per-op launch charge (this is why the paper prefers grouped
  /// broadcasts over explicit Send/Recv when R != C).
  double grouped(double max_op_cost, std::size_t n_ops) const {
    return max_op_cost + static_cast<double>(n_ops) * p_.kernel_launch_s;
  }

  /// Point-to-point message (idealized single-protocol transfer).
  double p2p(const LinkParams& link, std::size_t bytes) const {
    return link.alpha_s + p_.software_alpha_s +
           static_cast<double>(bytes) / (link.beta_bytes_s * p_.bw_derate);
  }

  /// Point-to-point message with protocol modeling: under an adaptive
  /// policy the substrate picks the cheaper of the eager protocol (one
  /// message, payload staged through a bounce buffer at
  /// CollectivePolicy::kEagerBwShare of the link bandwidth) and the
  /// rendezvous protocol (RTS/CTS handshake — two extra latency terms —
  /// then a zero-copy transfer). The crossover is at 2*alpha*beta, the
  /// same threshold that gates sender-side coalescing (docs/TUNING.md).
  /// Fixed policy charges the idealized formula above unchanged.
  double p2p(LinkClass cls, const LinkParams& link, std::size_t bytes) const {
    if (policy_.mode != CollectivePolicy::Mode::kAdaptive ||
        cls == LinkClass::kSelf) {
      return p2p(link, bytes);
    }
    const double beta_eff = link.beta_bytes_s * p_.bw_derate;
    const double eager =
        link.alpha_s + p_.software_alpha_s +
        static_cast<double>(bytes) /
            (beta_eff * CollectivePolicy::kEagerBwShare);
    const double rendezvous = 3.0 * link.alpha_s + p_.software_alpha_s +
                              static_cast<double>(bytes) / beta_eff;
    return eager < rendezvous ? eager : rendezvous;
  }

  double compute_scale() const { return p_.compute_scale; }

 private:
  double alpha(const GroupLink& g) const { return g.link.alpha_s; }
  static double levels(const GroupLink& g) {
    return std::bit_width(static_cast<unsigned>(g.size - 1));
  }
  double beta(const GroupLink& g) const {
    return g.link.beta_bytes_s * p_.bw_derate;
  }

  /// Adaptive/forced charge path: select the algorithm with the fitted
  /// constants, charge its duration with the actual substrate constants.
  double charge(CollectiveOp op, const GroupLink& g, std::size_t bytes) const {
    const CollectiveAlgo a = policy_.select(op, g.cls, g.size, bytes);
    return algo_cost(op, a, alpha(g), p_.software_alpha_s, beta(g), g.size,
                     bytes);
  }

  CostParams p_;
  CollectivePolicy policy_;
};

/// Computes the bottleneck link over a group's communication ring given the
/// members' world ranks in group order.
GroupLink make_group_link(const Topology& topo, const int* members, int size);

}  // namespace hpcg::comm

#include "comm/comm.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace hpcg::comm {

Group::Group(World& world, std::vector<int> members)
    : world_(world),
      members_(std::move(members)),
      link_(make_group_link(world.topology(), members_.data(),
                            static_cast<int>(members_.size()))),
      barrier_(static_cast<int>(members_.size()), &world.abort_,
               &world.comm_timeout_s_),
      slots_(members_.size()) {}

World::World(Topology topo, CostModel cost)
    : topo_(std::move(topo)),
      cost_(cost),
      vclock_(static_cast<std::size_t>(topo_.nranks()), 0.0),
      comp_s_(static_cast<std::size_t>(topo_.nranks()), 0.0),
      comm_s_(static_cast<std::size_t>(topo_.nranks()), 0.0),
      cpu_mark_(static_cast<std::size_t>(topo_.nranks()), 0.0) {
  mailboxes_.reserve(static_cast<std::size_t>(topo_.nranks()));
  for (int r = 0; r < topo_.nranks(); ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

RunStats World::snapshot_stats() const {
  RunStats stats;
  stats.vclock = vclock_;
  stats.comp_s = comp_s_;
  stats.comm_s = comm_s_;
  stats.bytes = bytes_.load();
  stats.messages = messages_.load();
  stats.collectives = collectives_.load();
  stats.trace = trace_;
  return stats;
}

Comm::Comm(World* world, std::shared_ptr<Group> group, int world_rank)
    : world_(world), group_(std::move(group)), world_rank_(world_rank) {
  const auto& members = group_->members();
  const auto it = std::find(members.begin(), members.end(), world_rank);
  if (it == members.end()) {
    throw std::logic_error("rank constructing Comm for a group it is not in");
  }
  group_rank_ = static_cast<int>(it - members.begin());
}

void Comm::attribute_compute(World* world, int rank) {
  if (world->transport_) {
    // Wall-clock time domain: vclock tracks elapsed wall time, so time
    // spent between communication calls is compute by definition.
    const double wall = world->wall_elapsed();
    const double dt = wall - world->vclock_[rank];
    if (dt > 0) {
      if (auto* rec = world->recorder_) {
        telemetry::SpanRecord span;
        span.start_s = world->vclock_[rank];
        span.end_s = wall;
        span.rank = rank;
        span.kind = telemetry::SpanKind::kCompute;
        span.name = "cpu";
        span.superstep = rec->current_superstep(rank);
        rec->record(std::move(span));
      }
      world->vclock_[rank] = wall;
      world->comp_s_[rank] += dt;
    }
    world->cpu_mark_[rank] = util::thread_cpu_seconds();
    return;
  }
  const double now = util::thread_cpu_seconds();
  const double dt =
      (now - world->cpu_mark_[rank]) * world->cost_model().compute_scale();
  if (dt > 0) {
    if (auto* rec = world->recorder_) {
      telemetry::SpanRecord span;
      span.start_s = world->vclock_[rank];
      span.end_s = span.start_s + dt;
      span.rank = rank;
      span.kind = telemetry::SpanKind::kCompute;
      span.name = "cpu";
      span.superstep = rec->current_superstep(rank);
      rec->record(std::move(span));
    }
    world->vclock_[rank] += dt;
    world->comp_s_[rank] += dt;
  }
  world->cpu_mark_[rank] = now;
}

void Comm::enter_collective() { attribute_compute(world_, world_rank_); }

void Comm::exit_collective() {
  world_->cpu_mark_[world_rank_] = util::thread_cpu_seconds();
}

void Comm::bind_telemetry() {
  auto* rec = world_->recorder_;
  if (!rec) return;
  World* world = world_;
  const int rank = world_rank_;
  rec->bind_rank(rank, &world->vclock_[rank],
                 [world, rank] { attribute_compute(world, rank); });
}

telemetry::Span Comm::superstep_span(const char* label,
                                     std::int64_t active_vertices) {
  fault_superstep();
  auto* rec = world_->recorder_;
  if (!rec) return {};
  return rec->open(world_rank_, telemetry::SpanKind::kSuperstep, label,
                   active_vertices);
}

telemetry::Span Comm::phase_span(const char* name) {
  auto* rec = world_->recorder_;
  if (!rec) return {};
  return rec->open(world_rank_, telemetry::SpanKind::kPhase, name);
}

void Comm::advance_clocks(double cost, std::uint64_t bytes, std::uint64_t msgs,
                          CollectiveOp op) {
  if (auto* f = world_->injector_) {
    // Link degradation: the max over members' active windows scales this
    // collective's modeled cost. Reading peers' window state here is safe:
    // phase B is ordered after every member's on_collective by barrier 1.
    const double mult = f->collective_cost_multiplier(
        group_->members().data(), size());
    if (mult != 1.0) {
      cost *= mult;
      if (auto* rec = world_->recorder_) {
        rec->metrics().counter("faults.degraded_collectives").increment();
      }
    }
  }
  double t = 0.0;
  for (const int m : group_->members()) t = std::max(t, world_->vclock_[m]);
  t += cost;
  if (auto* rec = world_->recorder_) {
    // One collective span per member track. The leader writes into peers'
    // buffers while they are parked between the collective's barriers (the
    // same ordering that legitimizes the vclock writes below). A member's
    // span starts at its own clock, so time spent waiting for slower peers
    // is visible as span length — that skew is the load imbalance the
    // paper's balance figures measure.
    for (const int m : group_->members()) {
      telemetry::SpanRecord span;
      span.start_s = world_->vclock_[m];
      span.end_s = t;
      span.rank = m;
      span.kind = telemetry::SpanKind::kCollective;
      span.name = to_string(op);
      span.bytes = bytes;
      span.group_size = size();
      span.superstep = rec->current_superstep(m);
      rec->record(std::move(span));
    }
    auto& metrics = rec->metrics();
    const char* op_name = to_string(op);
    metrics.counter(std::string("bytes.") + op_name).add(bytes);
    metrics.counter(std::string("collectives.") + op_name).increment();
    metrics.counter("messages.collective").add(msgs);
    metrics.histogram("collective.bytes").observe(bytes);
  }
  for (const int m : group_->members()) {
    world_->comm_s_[m] += t - world_->vclock_[m];
    world_->vclock_[m] = t;
  }
  world_->bytes_.fetch_add(bytes, std::memory_order_relaxed);
  world_->messages_.fetch_add(msgs, std::memory_order_relaxed);
  world_->collectives_.fetch_add(1, std::memory_order_relaxed);
  // A blocking collective occupies the group's channel until t: a
  // nonblocking collective waited afterwards cannot start its transfer
  // earlier (one modeled NCCL stream per communicator). Write-only for the
  // sync path, so sync-only runs are unaffected.
  group_->channel_time_ = t;
  group_->channel_epoch_ = world_->clock_epoch_;
  if (world_->cost_model().params().trace) {
    std::lock_guard lock(world_->trace_mutex_);
    world_->trace_.push_back({t, cost, op, size(), bytes, group_->link().cls});
  }
}

std::shared_ptr<Request::State> Comm::async_issue(CollectiveOp op) {
  auto st = std::make_shared<Request::State>();
  if (auto* f = world_->injector_) {
    // Consume the injector at the issue point so the collective sequence
    // advances exactly as the blocking op would; the decision is stashed
    // and applied at wait().
    st->fault = f->on_collective(world_rank_, op, world_->vclock_[world_rank_]);
  }
  flush_compute();  // pin host compute before recording the issue point
  st->issue_vclock = world_->vclock_[world_rank_];
  return st;
}

Request Comm::async_completed(std::shared_ptr<Request::State> st) {
  st->done = true;
  return Request(std::move(st));
}

void Comm::async_leader_commit(AsyncCharge charge, CollectiveOp op) {
  double cost = charge.cost_s;
  if (auto* f = world_->injector_) {
    const double mult =
        f->collective_cost_multiplier(group_->members().data(), size());
    if (mult != 1.0) {
      cost *= mult;
      if (auto* rec = world_->recorder_) {
        rec->metrics().counter("faults.degraded_collectives").increment();
      }
    }
  }
  // The transfer starts once every member has issued and the group's
  // channel (shared modeled NCCL stream) is free — not when the slowest
  // member reaches wait(). That gap is the overlap window.
  double issue_max = 0.0;
  for (int m = 0; m < size(); ++m) {
    issue_max = std::max(issue_max, group_->slots_[m].issue_vclock);
  }
  const double channel = (group_->channel_epoch_ == world_->clock_epoch_)
                             ? group_->channel_time_
                             : 0.0;
  const double start = std::max(issue_max, channel);
  const double done = start + cost;
  group_->async_start_ = start;
  group_->async_done_ = done;
  group_->async_cost_ = cost;
  group_->async_bytes_ = charge.bytes;
  group_->channel_time_ = done;
  group_->channel_epoch_ = world_->clock_epoch_;
  if (auto* rec = world_->recorder_) {
    auto& metrics = rec->metrics();
    const char* op_name = to_string(op);
    metrics.counter(std::string("bytes.") + op_name).add(charge.bytes);
    metrics.counter(std::string("collectives.") + op_name).increment();
    metrics.counter("messages.collective").add(charge.msgs);
    metrics.histogram("collective.bytes").observe(charge.bytes);
  }
  world_->bytes_.fetch_add(charge.bytes, std::memory_order_relaxed);
  world_->messages_.fetch_add(charge.msgs, std::memory_order_relaxed);
  world_->collectives_.fetch_add(1, std::memory_order_relaxed);
  if (world_->cost_model().params().trace) {
    std::lock_guard lock(world_->trace_mutex_);
    world_->trace_.push_back(
        {done, cost, op, size(), charge.bytes, group_->link().cls});
  }
}

void Comm::async_member_finish(Request::State& st, CollectiveOp op) {
  const double start = group_->async_start_;
  const double done = group_->async_done_;
  const double now = world_->vclock_[world_rank_];
  const double t = std::max(now, done);
  const double overlap = std::max(0.0, std::min(now, done) - start);
  if (auto* rec = world_->recorder_) {
    const int step = rec->current_superstep(world_rank_);
    if (t > now) {
      // The exposed (non-hidden) wait, on the rank's main track — what a
      // blocking collective would have shown, minus the overlapped part.
      telemetry::SpanRecord span;
      span.start_s = now;
      span.end_s = t;
      span.rank = world_rank_;
      span.kind = telemetry::SpanKind::kCollective;
      span.name = to_string(op);
      span.bytes = group_->async_bytes_;
      span.group_size = size();
      span.superstep = step;
      rec->record(std::move(span));
    }
    // Issue→completion on the rank's async track.
    telemetry::SpanRecord async_span;
    async_span.start_s = st.issue_vclock;
    async_span.end_s = t;
    async_span.rank = world_rank_;
    async_span.kind = telemetry::SpanKind::kAsync;
    async_span.name = std::string("i") + to_string(op);
    async_span.bytes = group_->async_bytes_;
    async_span.group_size = size();
    async_span.superstep = step;
    rec->record(std::move(async_span));
    if (overlap > 0) {
      telemetry::SpanRecord overlap_span;
      overlap_span.start_s = start;
      overlap_span.end_s = start + overlap;
      overlap_span.rank = world_rank_;
      overlap_span.kind = telemetry::SpanKind::kAsync;
      overlap_span.name = "overlap";
      overlap_span.superstep = step;
      rec->record(std::move(overlap_span));
    }
  }
  // Self-clock update after barrier 2 is safe: the next collective's
  // barrier 1 orders it before any leader reads.
  world_->comm_s_[world_rank_] += t - now;
  world_->vclock_[world_rank_] = t;
  st.cost_s = group_->async_cost_;
  st.overlap_s = overlap;
}

void Comm::transport_finish(CollectiveOp op, std::uint64_t bytes,
                            std::uint64_t msgs) {
  const double now = world_->vclock_[world_rank_];
  const double t = std::max(now, world_->wall_elapsed());
  if (auto* rec = world_->recorder_) {
    if (t > now) {
      telemetry::SpanRecord span;
      span.start_s = now;
      span.end_s = t;
      span.rank = world_rank_;
      span.kind = telemetry::SpanKind::kCollective;
      span.name = to_string(op);
      span.bytes = bytes;
      span.group_size = size();
      span.superstep = rec->current_superstep(world_rank_);
      rec->record(std::move(span));
    }
    auto& metrics = rec->metrics();
    const char* op_name = to_string(op);
    metrics.counter(std::string("bytes.") + op_name).add(bytes);
    metrics.counter(std::string("collectives.") + op_name).increment();
    metrics.counter("messages.collective").add(msgs);
    metrics.histogram("collective.bytes").observe(bytes);
  }
  world_->comm_s_[world_rank_] += t - now;
  world_->vclock_[world_rank_] = t;
  // Each process hosts one rank, so per-process totals are that rank's
  // contribution; every member accounts the group totals once, making them
  // directly comparable to the shm leader's single bump.
  world_->bytes_.fetch_add(bytes, std::memory_order_relaxed);
  world_->messages_.fetch_add(msgs, std::memory_order_relaxed);
  world_->collectives_.fetch_add(1, std::memory_order_relaxed);
  if (world_->cost_model().params().trace) {
    std::lock_guard lock(world_->trace_mutex_);
    world_->trace_.push_back({t, t - now, op, size(), bytes, group_->link().cls});
  }
  exit_collective();
}

void Comm::transport_recv_advance(std::size_t bytes) {
  const double now = world_->vclock_[world_rank_];
  const double arrival = std::max(now, world_->wall_elapsed());
  if (auto* rec = world_->recorder_; rec && arrival > now) {
    telemetry::SpanRecord span;
    span.start_s = now;
    span.end_s = arrival;
    span.rank = world_rank_;
    span.kind = telemetry::SpanKind::kCollective;
    span.name = "p2p.recv";
    span.bytes = bytes;
    span.superstep = rec->current_superstep(world_rank_);
    rec->record(std::move(span));
  }
  world_->comm_s_[world_rank_] += arrival - now;
  world_->vclock_[world_rank_] = arrival;
}

void Comm::barrier() {
  fault_collective(CollectiveOp::kBarrier);
  if (size() == 1) return;
  if (transported()) {
    transport::Ops(*this).barrier();
    return;
  }
  enter_collective();
  group_->barrier_.arrive_and_wait();
  if (leader()) {
    // A barrier is an allreduce of nothing: latency-only.
    advance_clocks(world_->cost_model().allreduce(group_->link(), 0), 0,
                   static_cast<std::uint64_t>(2 * (size() - 1)), CollectiveOp::kBarrier);
  }
  group_->barrier_.arrive_and_wait();
  exit_collective();
}

Comm Comm::split(int color, int key) {
  fault_collective(CollectiveOp::kSplit);
  if (size() == 1) {
    // Trivial: the only member keeps a fresh single-rank group.
    auto child =
        std::make_shared<Group>(*world_, std::vector<int>{world_rank_});
    if (transported()) {
      child->tid_ = transport::derive_child_channel(
          group_->tid_, group_->t_split_seq_++, color);
    }
    return Comm(world_, std::move(child), world_rank_);
  }
  if (transported()) {
    std::uint64_t child_tid = 0;
    std::vector<int> members =
        transport::Ops(*this).split_members(color, key, &child_tid);
    auto child = std::make_shared<Group>(*world_, std::move(members));
    child->tid_ = child_tid;
    return Comm(world_, std::move(child), world_rank_);
  }
  enter_collective();
  my_slot() = {nullptr, nullptr, 0, color, key};
  group_->barrier_.arrive_and_wait();
  if (leader()) {
    // (color) -> list of (key, world_rank), then sort for group order.
    std::map<int, std::vector<std::pair<int, int>>> buckets;
    for (int m = 0; m < size(); ++m) {
      const auto& slot = group_->slots_[m];
      buckets[slot.color].emplace_back(slot.key, group_->members()[m]);
    }
    group_->children_.clear();
    for (auto& [c, entries] : buckets) {
      std::sort(entries.begin(), entries.end());
      std::vector<int> members;
      members.reserve(entries.size());
      for (const auto& [k, wr] : entries) members.push_back(wr);
      group_->children_.emplace_back(c, std::make_shared<Group>(*world_, std::move(members)));
    }
    // Each member decrements this after taking its child in phase C; the
    // last one clears children_ so the parent group does not keep every
    // child of this split alive for its own lifetime.
    group_->children_readers_.store(size(), std::memory_order_relaxed);
    // Communicator creation costs one small allgather.
    advance_clocks(
        world_->cost_model().allgather(group_->link(),
                                       static_cast<std::size_t>(size()) * 8),
        static_cast<std::uint64_t>(size()) * 8,
        static_cast<std::uint64_t>(size() - 1), CollectiveOp::kSplit);
  }
  group_->barrier_.arrive_and_wait();
  std::shared_ptr<Group> child;
  for (const auto& [c, g] : group_->children_) {
    if (c == color) {
      child = g;
      break;
    }
  }
  if (group_->children_readers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    group_->children_.clear();
  }
  exit_collective();
  if (!child) throw std::logic_error("split: leader did not publish my color");
  return Comm(world_, std::move(child), world_rank_);
}

void Comm::charge_compute(double modeled_seconds) {
  if (auto* rec = world_->recorder_; rec && modeled_seconds > 0) {
    telemetry::SpanRecord span;
    span.start_s = world_->vclock_[world_rank_];
    span.end_s = span.start_s + modeled_seconds;
    span.rank = world_rank_;
    span.kind = telemetry::SpanKind::kCompute;
    span.name = "kernel";
    span.superstep = rec->current_superstep(world_rank_);
    rec->record(std::move(span));
  }
  world_->vclock_[world_rank_] += modeled_seconds;
  world_->comp_s_[world_rank_] += modeled_seconds;
}

namespace {

std::uint64_t fnv1a(const std::byte* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void Comm::fault_instant(const char* name, std::int64_t value) {
  auto* rec = world_->recorder_;
  if (!rec) return;
  telemetry::SpanRecord span;
  span.start_s = world_->vclock_[world_rank_];
  span.end_s = span.start_s;
  span.rank = world_rank_;
  span.kind = telemetry::SpanKind::kInstant;
  span.name = name;
  span.value = value;
  span.superstep = rec->current_superstep(world_rank_);
  rec->record(std::move(span));
  rec->metrics().counter(std::string("faults.") + name).increment();
}

void Comm::apply_fault_decision(const FaultDecision& decision,
                                const char* site) {
  if (decision.transient_failures > 0) {
    // Bounded retry with exponential backoff, modeled in virtual time so
    // the replay cost is visible in the cost model and traces.
    double backoff = 0.0;
    double step = decision.backoff_s;
    for (int a = 0; a < decision.transient_failures; ++a, step *= 2) {
      backoff += step;
    }
    if (auto* rec = world_->recorder_) {
      telemetry::SpanRecord span;
      span.start_s = world_->vclock_[world_rank_];
      span.end_s = span.start_s + backoff;
      span.rank = world_rank_;
      span.kind = telemetry::SpanKind::kCollective;
      span.name = "fault.retry";
      span.superstep = rec->current_superstep(world_rank_);
      span.value = decision.transient_failures;
      rec->record(std::move(span));
    }
    world_->vclock_[world_rank_] += backoff;
    world_->comm_s_[world_rank_] += backoff;
    fault_instant("transient", decision.transient_failures);
  }
  switch (decision.action) {
    case FaultDecision::Action::kNone:
      break;
    case FaultDecision::Action::kCrash:
      fault_instant("crash");
      throw RankFailure("injected rank crash on rank " +
                        std::to_string(world_rank_) + " at " + site);
    case FaultDecision::Action::kSilent:
      fault_instant("silent");
      throw SilentDeath{};
  }
}

void Comm::fault_collective(CollectiveOp op) {
  auto* f = world_->injector_;
  if (!f) return;
  apply_fault_decision(
      f->on_collective(world_rank_, op, world_->vclock_[world_rank_]),
      to_string(op));
}

void Comm::fault_superstep() {
  auto* f = world_->injector_;
  if (!f) return;
  apply_fault_decision(
      f->on_superstep(world_rank_, world_->vclock_[world_rank_]),
      "superstep");
}

void Comm::fault_on_send(World::Message& msg, double* cost) {
  auto* f = world_->injector_;
  // Checksum covers the payload as intended by the sender; an injected
  // bit-flip after it models in-flight corruption that recv detects.
  msg.checksum = fnv1a(msg.payload.data(), msg.payload.size());
  msg.checked = true;
  const std::int64_t bit = f->p2p_corrupt_bit(
      world_rank_, msg.payload.size(), world_->vclock_[world_rank_]);
  if (bit >= 0 && !msg.payload.empty()) {
    const std::size_t idx =
        static_cast<std::size_t>(bit) % (msg.payload.size() * 8);
    msg.payload[idx / 8] ^= static_cast<std::byte>(1u << (idx % 8));
    fault_instant("corrupt", static_cast<std::int64_t>(idx));
  }
  *cost *= f->p2p_cost_multiplier(world_rank_, world_->vclock_[world_rank_]);
}

void Comm::fault_verify_payload(const World::Message& msg) const {
  if (fnv1a(msg.payload.data(), msg.payload.size()) != msg.checksum) {
    throw CorruptPayload("p2p payload checksum mismatch on rank " +
                         std::to_string(world_rank_) + " (tag " +
                         std::to_string(msg.tag) + ", " +
                         std::to_string(msg.payload.size()) + " bytes)");
  }
}

void Comm::reset_clocks(bool keep_metrics) {
  if (transported()) {
    transport::Ops ops(*this);
    if (size() > 1) ops.barrier_norecord();
    world_->vclock_[world_rank_] = 0.0;
    world_->comp_s_[world_rank_] = 0.0;
    world_->comm_s_[world_rank_] = 0.0;
    if (auto* rec = world_->recorder_) {
      rec->reset_rank(world_rank_);
      // Not leader-gated: each process owns its metrics registry.
      if (!keep_metrics) rec->metrics().reset();
    }
    world_->bytes_.store(0);
    world_->messages_.store(0);
    world_->collectives_.store(0);
    ++world_->clock_epoch_;
    {
      std::lock_guard lock(world_->trace_mutex_);
      world_->trace_.clear();
    }
    if (size() > 1) ops.barrier_norecord();
    // Rebase the wall-clock origin after the gang is aligned so every
    // rank's clocks restart from (approximately) the same instant.
    world_->wall_origin_ = std::chrono::steady_clock::now();
    world_->cpu_mark_[world_rank_] = util::thread_cpu_seconds();
    return;
  }
  if (size() > 1) group_->barrier_.arrive_and_wait();
  world_->vclock_[world_rank_] = 0.0;
  world_->comp_s_[world_rank_] = 0.0;
  world_->comm_s_[world_rank_] = 0.0;
  if (auto* rec = world_->recorder_) {
    rec->reset_rank(world_rank_);
    if (leader() && !keep_metrics) rec->metrics().reset();
  }
  if (leader()) {
    world_->bytes_.store(0);
    world_->messages_.store(0);
    world_->collectives_.store(0);
    // Invalidate channel reservations on every group, including row/col
    // groups this leader cannot reach: stale channel_epoch_ values no
    // longer match, so their channel_time_ reads as free.
    ++world_->clock_epoch_;
    std::lock_guard lock(world_->trace_mutex_);
    world_->trace_.clear();
  }
  if (size() > 1) group_->barrier_.arrive_and_wait();
  world_->cpu_mark_[world_rank_] = util::thread_cpu_seconds();
}

}  // namespace hpcg::comm

// SPMD launcher: runs `body` once per rank on its own thread, exactly like
// `mpirun -np p` launches the paper's host processes. Rank-private state is
// whatever the body allocates; the Comm handle is the only shared channel.
#pragma once

#include <functional>

#include "comm/comm.hpp"
#include "comm/stats.hpp"

namespace hpcg::comm {

class Runtime {
 public:
  /// Runs `body(comm)` on `nranks` rank threads and returns the modeled
  /// timing/traffic statistics. Rethrows the first rank failure (all other
  /// ranks are aborted, never deadlocked).
  static RunStats run(int nranks, const Topology& topo, const CostModel& cost,
                      const std::function<void(Comm&)>& body);

  /// Convenience overload: AiMOS-like topology, default cost parameters.
  static RunStats run(int nranks, const std::function<void(Comm&)>& body);
};

}  // namespace hpcg::comm

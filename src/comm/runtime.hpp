// SPMD launcher: runs `body` once per rank on its own thread, exactly like
// `mpirun -np p` launches the paper's host processes. Rank-private state is
// whatever the body allocates; the Comm handle is the only shared channel.
#pragma once

#include <functional>

#include "comm/comm.hpp"
#include "comm/fault_hooks.hpp"
#include "comm/stats.hpp"
#include "telemetry/telemetry.hpp"

namespace hpcg::comm {

/// Optional attachments for one run. Defaults reproduce the plain
/// overloads exactly: no telemetry, no fault injection, no deadline.
struct RunOptions {
  telemetry::Recorder* recorder = nullptr;
  /// Fault injector consulted at every communication site; null = off.
  FaultHooks* faults = nullptr;
  /// Wall-clock deadline (seconds) for blocking waits (barrier, recv);
  /// 0 disables. When a fault plan needs a deadline to surface silent
  /// death (FaultHooks::wants_deadline) and none is set, a default of
  /// RunOptions::kDefaultFaultTimeoutS is applied.
  double comm_timeout_s = 0.0;

  static constexpr double kDefaultFaultTimeoutS = 10.0;
};

class Runtime {
 public:
  /// Runs `body(comm)` on `nranks` rank threads and returns the modeled
  /// timing/traffic statistics. Rethrows the first rank failure (all other
  /// ranks are aborted, never deadlocked).
  static RunStats run(int nranks, const Topology& topo, const CostModel& cost,
                      const std::function<void(Comm&)>& body);

  /// As above, with per-rank span tracing and metrics recorded into
  /// `recorder` (which must outlive the call and have nranks tracks).
  /// Passing null is identical to the untraced overload.
  static RunStats run(int nranks, const Topology& topo, const CostModel& cost,
                      telemetry::Recorder* recorder,
                      const std::function<void(Comm&)>& body);

  /// Fully-optioned overload: telemetry, fault injection, deadlines. An
  /// injected silent death unwinds its rank without aborting the world;
  /// survivors surface `Timeout` once the deadline passes.
  static RunStats run(int nranks, const Topology& topo, const CostModel& cost,
                      const RunOptions& options,
                      const std::function<void(Comm&)>& body);

  /// Convenience overload: AiMOS-like topology, default cost parameters.
  static RunStats run(int nranks, const std::function<void(Comm&)>& body);
};

}  // namespace hpcg::comm

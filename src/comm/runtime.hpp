// SPMD launcher: runs `body` once per rank on its own thread, exactly like
// `mpirun -np p` launches the paper's host processes. Rank-private state is
// whatever the body allocates; the Comm handle is the only shared channel.
#pragma once

#include <functional>

#include "comm/comm.hpp"
#include "comm/fault_hooks.hpp"
#include "comm/kernel_options.hpp"
#include "comm/policy.hpp"
#include "comm/stats.hpp"
#include "telemetry/telemetry.hpp"

namespace hpcg::comm {

/// Optional attachments for one run. Defaults reproduce the plain
/// overloads exactly: no telemetry, no fault injection, no deadline.
struct RunOptions {
  telemetry::Recorder* recorder = nullptr;
  /// Fault injector consulted at every communication site; null = off.
  FaultHooks* faults = nullptr;
  /// Wall-clock deadline (seconds) for blocking waits (barrier, recv);
  /// 0 disables. When a fault plan needs a deadline to surface silent
  /// death (FaultHooks::wants_deadline) and none is set, a default of
  /// RunOptions::kDefaultFaultTimeoutS is applied.
  double comm_timeout_s = 0.0;
  /// Run-wide kernel-execution defaults: worker threads per rank, edge
  /// chunk grain, direction optimization and async pipelining (the latter
  /// two folding in the legacy `async` / `async_chunk` fields below when
  /// left at their run-default sentinels). Validated (KernelOptionsError)
  /// before any rank is spawned.
  KernelOptions kernel = {};
  /// DEPRECATED (use kernel.async = KernelOptions::Async::kOn): run-wide
  /// default for algorithm async opt-in: when true, algorithms whose
  /// KernelOptions::async is kRunDefault use the nonblocking collectives
  /// (surfaced as Comm::async_default()). Individual call sites can still
  /// force either mode. An explicit kernel.async wins over this field.
  bool async = false;
  /// DEPRECATED (use kernel.chunk): default segment count for chunked
  /// async sparse exchanges (surfaced as Comm::async_chunk_default());
  /// must be >= 1. The default of 1 issues one nonblocking collective per
  /// phase: every extra segment pays the collective's latency term again,
  /// which only pays off when the pipelined compute (or per-segment
  /// bandwidth) dominates latency. kernel.chunk > 0 wins over this field.
  int async_chunk = 1;
  /// Preserve the recorder's metrics registry through the run's initial
  /// clock reset. Supervised session rebuilds (serve::Supervisor) set this
  /// so serve.* counters accumulate across restarts.
  bool keep_metrics = false;
  /// Collective selection policy (docs/TUNING.md). The default (fixed)
  /// reproduces the legacy single-algorithm cost formulas bit for bit; an
  /// adaptive policy — usually built from a tune::Calibration — selects
  /// ring/tree/direct variants per call site, models the eager/rendezvous
  /// p2p protocol switch, and (when both `async_chunk` and kernel.chunk
  /// are left at their sentinels) derives async pipeline segment counts
  /// from the fitted model. Results are bit-identical under any policy;
  /// only modeled time changes.
  CollectivePolicy policy = {};
  /// Real-transport endpoint for this rank (docs/TRANSPORT.md). When set,
  /// the World hosts exactly ONE local rank — the endpoint's — and `body`
  /// runs once on the calling thread; peers are separate endpoints (usually
  /// separate processes) wired to the same mesh. Timing is wall-clock.
  /// Incompatible with `faults` (the injector's sequencing assumes the
  /// shared-memory substrate); `comm_timeout_s` is filtered through
  /// Transport::resolve_timeout so a backend with its own liveness signal
  /// can decline the implicit fault-work default.
  transport::Transport* transport = nullptr;

  static constexpr double kDefaultFaultTimeoutS = 10.0;
};

class Runtime {
 public:
  /// Canonical entry point: runs `body(comm)` on `nranks` rank threads
  /// with the given options (telemetry, fault injection, deadlines, async
  /// defaults) and returns the modeled timing/traffic statistics.
  /// Rethrows the first rank failure (all other ranks are aborted, never
  /// deadlocked). An injected silent death unwinds its rank without
  /// aborting the world; survivors surface `Timeout` once the deadline
  /// passes.
  static RunStats run(int nranks, const Topology& topo, const CostModel& cost,
                      const RunOptions& options,
                      const std::function<void(Comm&)>& body);

  /// Forwarder kept for source compatibility; prefer the RunOptions
  /// overload (this is equivalent to passing RunOptions{}).
  static RunStats run(int nranks, const Topology& topo, const CostModel& cost,
                      const std::function<void(Comm&)>& body);

  /// Forwarder kept for source compatibility; prefer the RunOptions
  /// overload (this only sets RunOptions::recorder).
  static RunStats run(int nranks, const Topology& topo, const CostModel& cost,
                      telemetry::Recorder* recorder,
                      const std::function<void(Comm&)>& body);

  /// Forwarder kept for source compatibility; prefer the RunOptions
  /// overload with Topology::aimos(nranks) and CostModel{}.
  static RunStats run(int nranks, const std::function<void(Comm&)>& body);
};

}  // namespace hpcg::comm

// Machine topology for the communication cost model.
//
// The paper's primary system (AiMOS at RPI) has 6 V100 GPUs per node; each
// CPU socket hosts a triplet of NVLink-connected GPUs, cross-triplet and
// cross-node traffic staged through the CPUs over EDR InfiniBand. The
// secondary system (zepy) is a single node with 4 A100s. The topology
// classifies every rank pair into a link class with alpha (latency) and
// beta (bandwidth) parameters; collectives are costed against the slowest
// link their group spans, which reproduces the paper's observation that
// "communications across GPU groups and across the network required
// movement through the CPU, which was likely our largest bottleneck".
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace hpcg::comm {

enum class LinkClass {
  kSelf = 0,       // same rank (no transfer)
  kNvlink = 1,     // same NVLink clique
  kIntraNode = 2,  // same node, staged through the host CPU
  kNetwork = 3,    // across the interconnect
};

/// Number of distinct link classes (array-index bound for per-level data).
inline constexpr int kNumLinkClasses = 4;

constexpr const char* to_string(LinkClass c) {
  switch (c) {
    case LinkClass::kSelf: return "self";
    case LinkClass::kNvlink: return "nvlink";
    case LinkClass::kIntraNode: return "intra_node";
    case LinkClass::kNetwork: return "network";
  }
  return "?";
}

/// Inverse of to_string(LinkClass); throws std::invalid_argument on an
/// unknown name (used by the calibration/sweep file parsers).
LinkClass link_class_from_string(const std::string& name);

/// Latency/bandwidth pair of one link class (alpha-beta model).
struct LinkParams {
  double alpha_s = 0.0;        // per-message latency, seconds
  double beta_bytes_s = 1e12;  // bandwidth, bytes/second
};

/// Placement of ranks onto nodes and NVLink cliques plus per-class link
/// parameters. Immutable after construction.
class Topology {
 public:
  /// AiMOS-like: `gpus_per_node` ranks per node (default 6), NVLink cliques
  /// of `clique` ranks (default 3).
  static Topology aimos(int nranks);

  /// zepy-like: one node, one NVLink clique covering all ranks.
  static Topology zepy(int nranks);

  /// Uniform network between all ranks (used by unit tests).
  static Topology flat(int nranks, LinkParams params = {20e-6, 10e9});

  /// Fully custom placement.
  Topology(int nranks, int gpus_per_node, int clique_size, LinkParams nvlink,
           LinkParams intra_node, LinkParams network);

  int nranks() const { return nranks_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int clique_size() const { return clique_size_; }
  int node_of(int rank) const { return rank / gpus_per_node_; }
  int clique_of(int rank) const { return rank / clique_size_; }

  LinkClass link_class(int a, int b) const {
    if (a == b) return LinkClass::kSelf;
    if (clique_of(a) == clique_of(b)) return LinkClass::kNvlink;
    if (node_of(a) == node_of(b)) return LinkClass::kIntraNode;
    return LinkClass::kNetwork;
  }

  const LinkParams& params(LinkClass c) const {
    switch (c) {
      case LinkClass::kSelf:
        return self_;
      case LinkClass::kNvlink:
        return nvlink_;
      case LinkClass::kIntraNode:
        return intra_node_;
      case LinkClass::kNetwork:
        return network_;
    }
    throw std::logic_error("invalid link class");
  }

  const LinkParams& params(int a, int b) const { return params(link_class(a, b)); }

  /// A copy of this topology with all per-message latencies multiplied by
  /// `factor` (bandwidths unchanged). Benchmarks use this to keep the
  /// latency-to-volume operating point of the paper's full-scale runs when
  /// driving miniature analog inputs: the real runs move hundreds of MB per
  /// collective, far above the latency floor, so a graph shrunk by ~10^3-4
  /// needs latencies shrunk similarly for bandwidth effects to remain the
  /// first-order term (see DESIGN.md).
  Topology with_alpha_scale(double factor) const {
    Topology t = *this;
    t.nvlink_.alpha_s *= factor;
    t.intra_node_.alpha_s *= factor;
    t.network_.alpha_s *= factor;
    return t;
  }

  std::string describe() const;

 private:
  int nranks_ = 1;
  int gpus_per_node_ = 6;
  int clique_size_ = 3;
  LinkParams self_{0.0, 1e15};
  LinkParams nvlink_;
  LinkParams intra_node_;
  LinkParams network_;
};

}  // namespace hpcg::comm

#include "comm/policy.hpp"

#include <bit>
#include <cmath>
#include <limits>

namespace hpcg::comm {

namespace {

double levels_of(int group_size) {
  return std::bit_width(static_cast<unsigned>(group_size - 1));
}

}  // namespace

double algo_cost(CollectiveOp op, CollectiveAlgo algo, double alpha_s,
                 double software_alpha_s, double beta_bytes_s, int group_size,
                 std::size_t bytes) {
  if (group_size <= 1) return 0.0;
  const double g = group_size;
  const double L = levels_of(group_size);
  const double B = static_cast<double>(bytes);
  const double a = alpha_s;
  const double s = software_alpha_s;
  const double inv_beta = 1.0 / beta_bytes_s;
  switch (op) {
    case CollectiveOp::kAllReduce:
      // Reduce-scatter + allgather volume 2B(g-1)/g is shared by the
      // default (Rabenseifner) and ring variants; they differ in latency
      // depth. The tree variant sends the full payload down/up every
      // level; direct is a naive (g-1)-message gather+apply.
      switch (algo) {
        case CollectiveAlgo::kDefault:
          return s + 2.0 * L * a + 2.0 * B * (g - 1.0) / g * inv_beta;
        case CollectiveAlgo::kRing:
          return s + 2.0 * (g - 1.0) * a + 2.0 * B * (g - 1.0) / g * inv_beta;
        case CollectiveAlgo::kTree:
          return s + 2.0 * L * a + 2.0 * L * B * inv_beta;
        case CollectiveAlgo::kDirect:
          return (g - 1.0) * (a + s) + B * (g - 1.0) * inv_beta;
      }
      break;
    case CollectiveOp::kBroadcast:
      switch (algo) {
        case CollectiveAlgo::kDefault:
          return s + L * a + B * inv_beta;
        case CollectiveAlgo::kRing:
          return s + (g - 1.0) * a + B * inv_beta;
        case CollectiveAlgo::kTree:
          return s + L * (a + B * inv_beta);
        case CollectiveAlgo::kDirect:
          return (g - 1.0) * (a + s) + (g - 1.0) * B * inv_beta;
      }
      break;
    case CollectiveOp::kAllGather:
    case CollectiveOp::kAllGatherV:
      // B is the aggregated payload; the bandwidth-optimal volume is
      // B(g-1)/g. Bruck (default) and recursive doubling (tree) share the
      // log depth; the ring trades depth for per-step simplicity; direct
      // sends every block to every peer individually.
      switch (algo) {
        case CollectiveAlgo::kDefault:
        case CollectiveAlgo::kTree:
          return s + L * a + B * (g - 1.0) / g * inv_beta;
        case CollectiveAlgo::kRing:
          return s + (g - 1.0) * a + B * (g - 1.0) / g * inv_beta;
        case CollectiveAlgo::kDirect:
          return (g - 1.0) * (a + s) + B * (g - 1.0) * inv_beta;
      }
      break;
    case CollectiveOp::kAllToAllV:
      // B is the maximum per-rank traffic. Pairwise exchange (default /
      // direct) pays a per-destination message; Bruck (tree) trades log
      // depth for the payload crossing the wire once per level; the ring
      // rotation moves each block up to g-1 hops.
      switch (algo) {
        case CollectiveAlgo::kDefault:
        case CollectiveAlgo::kDirect:
          return (g - 1.0) * (a + s) + B * inv_beta;
        case CollectiveAlgo::kTree:
          return L * (a + s) + L * B * inv_beta;
        case CollectiveAlgo::kRing:
          return (g - 1.0) * (a + s) + (g - 1.0) * B * inv_beta;
      }
      break;
    default:
      // Ops without algorithm variants (barrier, reduce, gather, split,
      // multi_broadcast) are charged through the variant-bearing formulas
      // above by the CostModel; treat them as kDefault allreduce-free.
      break;
  }
  return std::numeric_limits<double>::infinity();
}

CollectiveAlgo CollectivePolicy::select(CollectiveOp op, LinkClass cls,
                                        int group_size,
                                        std::size_t bytes) const {
  if (mode == Mode::kFixed || group_size <= 1) return CollectiveAlgo::kDefault;
  if (mode == Mode::kForced) return forced;
  const FittedLevel& fit = at(cls);
  if (!fit.valid) return CollectiveAlgo::kDefault;
  CollectiveAlgo best = CollectiveAlgo::kDefault;
  double best_cost = algo_cost(op, best, fit.alpha_s, fit.software_alpha_s,
                               fit.beta_bytes_s, group_size, bytes);
  for (const CollectiveAlgo a :
       {CollectiveAlgo::kRing, CollectiveAlgo::kTree, CollectiveAlgo::kDirect}) {
    const double c = algo_cost(op, a, fit.alpha_s, fit.software_alpha_s,
                               fit.beta_bytes_s, group_size, bytes);
    if (c < best_cost) {
      best = a;
      best_cost = c;
    }
  }
  return best;
}

double CollectivePolicy::eager_threshold_bytes(LinkClass cls) const {
  if (mode != Mode::kAdaptive) return 0.0;
  const FittedLevel& fit = at(cls);
  if (!fit.valid) return 0.0;
  return 2.0 * fit.alpha_s * fit.beta_bytes_s;
}

int CollectivePolicy::auto_segments(LinkClass cls, int group_size,
                                    std::size_t total_bytes) const {
  if (mode != Mode::kAdaptive || group_size <= 1) return 1;
  const FittedLevel& fit = at(cls);
  if (!fit.valid) return 1;
  const double g = group_size;
  const double lat =
      fit.software_alpha_s + levels_of(group_size) * fit.alpha_s;
  if (lat <= 0.0) return 1;
  const double transfer = static_cast<double>(total_bytes) * (g - 1.0) /
                          (g * fit.beta_bytes_s);
  const int k = static_cast<int>(std::lround(std::sqrt(transfer / lat)));
  if (k <= 1) return 1;
  return k > kMaxAutoSegments ? kMaxAutoSegments : k;
}

}  // namespace hpcg::comm

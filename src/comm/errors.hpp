// Typed failure hierarchy of the communication layer.
//
// Every error a communication call can raise derives from `CommError`, so
// recovery drivers (fault::Runtime::run_with_recovery) can distinguish
// "a rank / the fabric failed — restarting from a checkpoint may help"
// from programming errors (std::logic_error, std::invalid_argument), which
// always propagate:
//
//   CommError
//   ├── RankFailure     a rank crashed (injected or unrecoverable)
//   ├── Timeout         a blocking call exceeded the configured deadline
//   │                   (how silent rank death surfaces on survivors)
//   └── CorruptPayload  a p2p payload failed checksum verification
#pragma once

#include <stdexcept>
#include <string>

namespace hpcg::comm {

/// Root of the communication-failure hierarchy. Retryable by a recovery
/// driver; never used for argument/usage errors.
class CommError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A rank died mid-run: an injected crash fault, or any condition that
/// makes the rank unable to continue participating in collectives.
class RankFailure : public CommError {
 public:
  using CommError::CommError;
};

/// A blocking communication call (barrier wait, recv) exceeded the
/// configured wall-clock deadline — the signature of a peer that stopped
/// participating without aborting (silent death).
class Timeout : public CommError {
 public:
  using CommError::CommError;
};

/// A point-to-point payload failed checksum verification on receive.
class CorruptPayload : public CommError {
 public:
  using CommError::CommError;
};

/// Thrown out of communication calls when the world has been aborted by a
/// failure on another rank. Caught by the runtime, never by user code.
struct Aborted {};

/// Internal control-flow type for an injected *silent* rank death: the
/// faulted rank unwinds without setting the world abort flag, so peers
/// keep waiting until their deadline fires and surfaces as `Timeout`.
/// Caught by the runtime; never escapes Runtime::run.
struct SilentDeath {};

}  // namespace hpcg::comm

#include "comm/runtime.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hpcg::comm {

RunStats Runtime::run(int nranks, const Topology& topo, const CostModel& cost,
                      const std::function<void(Comm&)>& body) {
  return run(nranks, topo, cost, /*recorder=*/nullptr, body);
}

RunStats Runtime::run(int nranks, const Topology& topo, const CostModel& cost,
                      telemetry::Recorder* recorder,
                      const std::function<void(Comm&)>& body) {
  RunOptions options;
  options.recorder = recorder;
  return run(nranks, topo, cost, options, body);
}

RunStats Runtime::run(int nranks, const Topology& topo, const CostModel& cost,
                      const RunOptions& options,
                      const std::function<void(Comm&)>& body) {
  telemetry::Recorder* recorder = options.recorder;
  if (topo.nranks() != nranks) {
    throw std::invalid_argument("topology rank count != requested rank count");
  }
  // Extra recorder tracks beyond the rank count are legal: the serving
  // layer appends host-side tracks (e.g. the per-request track) after the
  // rank tracks. Fewer tracks than ranks would drop spans, so that stays
  // an error.
  if (recorder && recorder->nranks() < nranks) {
    throw std::invalid_argument("recorder rank count < requested rank count");
  }
  // Resolve the run-wide kernel defaults: an explicit kernel.async /
  // kernel.chunk wins over the deprecated RunOptions::async / async_chunk
  // fields, which fold in when the kernel struct is left at run-default.
  options.kernel.validate();
  bool async_default = options.async;
  if (options.kernel.async != KernelOptions::Async::kRunDefault) {
    async_default = options.kernel.async == KernelOptions::Async::kOn;
  }
  int async_chunk =
      options.kernel.chunk > 0 ? options.kernel.chunk : options.async_chunk;
  World world(topo, cost);
  world.cost_.set_policy(options.policy);
  // The adaptive policy owns async chunk sizing only when neither chunk
  // knob was set explicitly (kernel.chunk 0 = "not given"; the deprecated
  // async_chunk's default of 1 doubles as its sentinel — an explicit
  // --async-chunk=1 is indistinguishable from absent and equals the fixed
  // behavior anyway).
  world.async_chunk_auto_ =
      options.policy.mode == CollectivePolicy::Mode::kAdaptive &&
      options.kernel.chunk == 0 && options.async_chunk == 1;
  world.recorder_ = recorder;
  world.injector_ = options.faults;
  world.comm_timeout_s_ = options.comm_timeout_s;
  world.async_default_ = async_default;
  world.async_chunk_ = async_chunk < 1 ? 1 : async_chunk;
  world.threads_default_ = options.kernel.threads < 1 ? 1 : options.kernel.threads;
  world.chunk_grain_default_ = options.kernel.chunk_grain;
  if (auto* t = options.transport) {
    // Real-transport mode: this process hosts exactly one rank — the
    // endpoint's — and the body runs on the calling thread. Errors
    // propagate to the caller (the gang launcher translates CommError into
    // a retryable exit); there is no abort flag to raise because peers
    // observe death through the transport itself.
    if (options.faults) {
      throw std::invalid_argument(
          "fault injection requires the shared-memory backend (the injector "
          "sequences decisions across ranks in one address space); use real "
          "process kills to exercise the transport recovery path");
    }
    if (t->nranks() != nranks) {
      throw std::invalid_argument("transport endpoint gang size " +
                                  std::to_string(t->nranks()) +
                                  " != requested rank count " +
                                  std::to_string(nranks));
    }
    world.transport_ = t;
    // Timeout policy is the transport's call: the implicit default exists
    // for the shm backend's modeled silent-death detection, while a real
    // transport may have a liveness signal of its own.
    world.comm_timeout_s_ = t->resolve_timeout(
        options.comm_timeout_s, /*explicit_request=*/options.comm_timeout_s > 0);
    world.wall_origin_ = std::chrono::steady_clock::now();
    std::vector<int> members(static_cast<std::size_t>(nranks));
    std::iota(members.begin(), members.end(), 0);
    auto world_group = std::make_shared<Group>(world, std::move(members));
    world_group->tid_ = transport::kWorldChannel;
    Comm comm(&world, std::move(world_group), t->rank());
    comm.bind_telemetry();
    comm.reset_clocks(options.keep_metrics);
    body(comm);
    comm.flush_compute();
    return world.snapshot_stats();
  }
  if (options.faults) {
    options.faults->begin_run();
    if (world.comm_timeout_s_ <= 0 && options.faults->wants_deadline()) {
      world.comm_timeout_s_ = RunOptions::kDefaultFaultTimeoutS;
    }
  }
  std::vector<int> members(static_cast<std::size_t>(nranks));
  std::iota(members.begin(), members.end(), 0);
  auto world_group = std::make_shared<Group>(world, std::move(members));

  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(&world, world_group, r);
        comm.bind_telemetry();
        comm.reset_clocks(options.keep_metrics);
        body(comm);
        comm.flush_compute();
      } catch (const Aborted&) {
        // Another rank failed first; unwind quietly.
      } catch (const SilentDeath&) {
        // Injected silent death: this rank stops participating without
        // raising the abort flag, so survivors keep waiting until their
        // deadline fires and surfaces as Timeout — the scenario the
        // configurable comm timeout exists to bound.
      } catch (...) {
        {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Release every rank blocked in a barrier or recv; the flag is
        // reachable here because lambdas in a member function share
        // Runtime's friendship with World.
        world.abort_.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return world.snapshot_stats();
}

RunStats Runtime::run(int nranks, const std::function<void(Comm&)>& body) {
  return run(nranks, Topology::aimos(nranks), CostModel{}, body);
}

}  // namespace hpcg::comm

#include "check/shrink.hpp"

#include <algorithm>

namespace hpcg::check {

namespace {

struct Move {
  const char* name;
  // Returns true when the move changed the config (i.e. it is worth
  // spending a predicate evaluation on the result).
  bool (*apply)(CheckConfig&);
};

// Ordered roughly by how much explanatory noise each dimension removes:
// execution-mode baggage first, then input size, then parameters.
const Move kMoves[] = {
    {"drop-faults",
     [](CheckConfig& c) {
       if (c.faults.empty()) return false;
       c.faults.clear();
       c.fault_seed = 0;
       return true;
     }},
    {"leave-serve-path",
     [](CheckConfig& c) {
       if (c.serve_batch == 0) return false;
       c.serve_batch = 0;
       if (!c.sources.empty()) c.root = c.sources.front();
       c.sources.clear();
       return true;
     }},
    {"drop-mutations",
     [](CheckConfig& c) {
       // Leaves the stream path entirely (pr reverts to the fixed-iteration
       // solve); when the bug survives, it was never about streaming.
       // Supervision rides on the stream path, so it goes too (a kill
       // fault left behind lands on the recovery driver, which is legal).
       if (c.mut_batches == 0) return false;
       c.mut_batches = 0;
       c.sup = 0;
       return true;
     }},
    {"drop-supervision",
     [](CheckConfig& c) {
       // Back to the bare Session + Service stream path; kill faults are
       // only legal under supervision, so they leave with it. When the
       // bug survives, it was never about recovery.
       if (c.sup == 0) return false;
       c.sup = 0;
       c.faults.clear();
       c.fault_seed = 0;
       return true;
     }},
    {"halve-mutations",
     [](CheckConfig& c) {
       if (c.mut_batches <= 1 && c.mut_ops <= 1) return false;
       c.mut_batches = std::max(1, c.mut_batches / 2);
       c.mut_ops = std::max(1, c.mut_ops / 2);
       return true;
     }},
    {"sync-mode",
     [](CheckConfig& c) {
       if (!c.async) return false;
       c.async = false;
       c.chunk = 1;
       return true;
     }},
    {"fixed-policy",
     [](CheckConfig& c) {
       if (c.pol == "fixed") return false;
       c.pol = "fixed";
       return true;
     }},
    {"drop-checkpointing",
     [](CheckConfig& c) {
       if (c.checkpoint_every == 0) return false;
       c.checkpoint_every = 0;
       return true;
     }},
    {"halve-sources",
     [](CheckConfig& c) {
       if (c.sources.size() <= 1) return false;
       const auto keep = std::max<std::size_t>(1, c.sources.size() / 2);
       c.sources.erase(c.sources.begin() + static_cast<std::ptrdiff_t>(keep),
                       c.sources.end());
       if (c.serve_batch > static_cast<int>(c.sources.size())) {
         c.serve_batch = static_cast<int>(c.sources.size());
       }
       return true;
     }},
    {"fewer-iterations",
     [](CheckConfig& c) {
       const int floor = c.algo == "prwarm" ? 2 : 1;
       if (c.iterations <= floor) return false;
       c.iterations = std::max(floor, c.iterations / 2);
       c.warm_split = std::min(c.warm_split, c.iterations - 1);
       return true;
     }},
    {"warm-split-one",
     [](CheckConfig& c) {
       if (c.algo != "prwarm" || c.warm_split <= 1) return false;
       c.warm_split = 1;
       return true;
     }},
    {"shrink-graph",
     [](CheckConfig& c) {
       if (c.scale <= 5) return false;
       --c.scale;
       c.root = std::min(c.root, c.n() - 1);
       for (auto& s : c.sources) s = std::min(s, c.n() - 1);
       return true;
     }},
    {"thin-edges",
     [](CheckConfig& c) {
       if (c.edge_factor <= 4) return false;
       c.edge_factor = std::max(4, c.edge_factor / 2);
       return true;
     }},
    {"plain-generator",
     [](CheckConfig& c) {
       if (c.gen == "er") return false;
       c.gen = "er";
       return true;
     }},
    {"flatten-grid",
     [](CheckConfig& c) {
       if (c.rows == 1 && c.cols == 1) return false;
       if (c.rows > 1 && c.cols > 1) {
         c.cols = 1;  // try a column strip first; a later pass drops rows
       } else if (c.cols > 1) {
         c.cols = 1;
       } else {
         c.rows = 1;
       }
       return true;
     }},
    {"zero-root",
     [](CheckConfig& c) {
       if (c.root == 0) return false;
       c.root = 0;
       return true;
     }},
    {"zero-sources",
     [](CheckConfig& c) {
       bool changed = false;
       for (std::size_t i = 0; i < c.sources.size(); ++i) {
         if (c.sources[i] != static_cast<Gid>(i)) {
           c.sources[i] = static_cast<Gid>(i);
           changed = true;
         }
       }
       return changed;
     }},
};

}  // namespace

ShrinkResult shrink(const CheckConfig& failing,
                    const std::function<bool(const CheckConfig&)>& still_fails,
                    int max_attempts) {
  ShrinkResult out;
  out.config = failing;
  bool progressed = true;
  while (progressed && out.attempts < max_attempts) {
    progressed = false;
    for (const Move& move : kMoves) {
      if (out.attempts >= max_attempts) break;
      CheckConfig candidate = out.config;
      if (!move.apply(candidate)) continue;
      ++out.attempts;
      bool fails = false;
      try {
        fails = still_fails(candidate);
      } catch (...) {
        // A predicate that cannot even evaluate the candidate (e.g. the
        // move made the config nonsensical for the bug) is a rejection.
        fails = false;
      }
      if (fails) {
        out.config = std::move(candidate);
        out.accepted.push_back(move.name);
        progressed = true;
        break;  // restart the scan: earlier moves may apply again now
      }
    }
  }
  return out;
}

}  // namespace hpcg::check

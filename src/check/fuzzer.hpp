// The sweep driver: sample configs, run them through every applicable
// oracle (reference, invariants, recovery accounting, and the identity
// variants — async flip, fault-free twin, alternate grid, serve vs
// direct), shrink whatever fails, and emit one-line reproducers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "check/config.hpp"
#include "check/oracles.hpp"
#include "check/shrink.hpp"

namespace hpcg::check {

struct FuzzOptions {
  std::uint64_t seed = 1;
  int configs = 100;          // configs to sample (corpus replay ignores this)
  double time_budget_s = 0.0;  // wall-clock cap for the sweep; 0 = none
  /// Run the identity variants (each costs extra engine runs of the same
  /// config). Off = reference + invariants + recovery only.
  bool with_identity = true;
  bool shrink_failures = true;
  int shrink_attempts = 24;
  std::ostream* log = nullptr;  // progress + failure reporting; may be null
};

struct FailureReport {
  CheckConfig config;             // as sampled / as replayed
  CheckConfig shrunk;             // after delta-debugging (== config if off)
  std::vector<Failure> failures;  // of the original config
  std::vector<std::string> shrink_moves;
  int shrink_attempts = 0;
};

struct SweepResult {
  int ran = 0;
  int failed = 0;
  bool hit_time_budget = false;
  std::vector<FailureReport> reports;

  bool ok() const { return failed == 0; }
};

/// All-oracle verdict on one config. Uncaught engine exceptions become
/// failures with oracle "exception". Never throws.
std::vector<Failure> check_config(const CheckConfig& cfg, const FuzzOptions& opts);

/// Samples `opts.configs` configurations from `opts.seed` and checks each.
SweepResult fuzz_sweep(const FuzzOptions& opts);

/// Replays explicit configurations (corpus entries) through the oracles.
SweepResult replay(const std::vector<CheckConfig>& configs, const FuzzOptions& opts);

/// Corpus file format: one CheckConfig::to_string() line per entry;
/// blank lines and '#' comments ignored. Throws on unreadable files or
/// unparseable entries.
std::vector<CheckConfig> read_corpus(const std::string& path);
void append_corpus(const std::string& path, const CheckConfig& config,
                   const std::string& comment);

}  // namespace hpcg::check

#include "check/fuzzer.hpp"

#include <chrono>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "check/runner.hpp"

namespace hpcg::check {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs a variant of the same input and folds disagreements (or the
/// variant's refusal to run) into `out`.
void check_variant(std::vector<Failure>& out, const std::string& name,
                   const RunResult& base, const CheckConfig& variant_cfg,
                   double pr_tolerance, bool normalize_cc, bool compare_lp) {
  try {
    const RunResult other = run_config(variant_cfg);
    auto failures =
        check_identity(name, base, other, pr_tolerance, normalize_cc, compare_lp);
    out.insert(out.end(), failures.begin(), failures.end());
  } catch (const std::exception& e) {
    out.push_back({"identity:" + name,
                   std::string("variant threw: ") + e.what() + " [" +
                       variant_cfg.to_string() + "]"});
  }
}

SweepResult run_all(const std::vector<CheckConfig>* replayed, const FuzzOptions& opts) {
  SweepResult result;
  util::Xoshiro256 rng(opts.seed);
  const double start = now_s();
  const int total = replayed ? static_cast<int>(replayed->size()) : opts.configs;
  for (int i = 0; i < total; ++i) {
    if (opts.time_budget_s > 0.0 && now_s() - start > opts.time_budget_s) {
      result.hit_time_budget = true;
      break;
    }
    const CheckConfig cfg =
        replayed ? (*replayed)[static_cast<std::size_t>(i)] : sample_config(rng);
    auto failures = check_config(cfg, opts);
    ++result.ran;
    if (failures.empty()) continue;
    ++result.failed;

    FailureReport report;
    report.config = cfg;
    report.shrunk = cfg;
    report.failures = std::move(failures);
    if (opts.shrink_failures) {
      auto still_fails = [&](const CheckConfig& candidate) {
        return !check_config(candidate, opts).empty();
      };
      auto shrunk = shrink(cfg, still_fails, opts.shrink_attempts);
      report.shrunk = shrunk.config;
      report.shrink_moves = std::move(shrunk.accepted);
      report.shrink_attempts = shrunk.attempts;
    }
    if (opts.log) {
      *opts.log << "FAIL config " << i << ": " << cfg.to_string() << "\n";
      for (const auto& f : report.failures) {
        *opts.log << "  [" << f.oracle << "] " << f.detail << "\n";
      }
      *opts.log << "  reproduce: " << report.shrunk.command() << "\n";
    }
    result.reports.push_back(std::move(report));
  }
  if (opts.log) {
    *opts.log << "checked " << result.ran << " configs, " << result.failed
              << " failing";
    if (result.hit_time_budget) *opts.log << " (time budget reached)";
    *opts.log << "\n";
  }
  return result;
}

}  // namespace

std::vector<Failure> check_config(const CheckConfig& cfg, const FuzzOptions& opts) {
  std::vector<Failure> out;
  RunResult base;
  try {
    base = run_config(cfg);
  } catch (const std::exception& e) {
    out.push_back({"exception", e.what()});
    return out;
  }

  const auto el = build_input(cfg);
  for (auto&& f : check_reference(cfg, el, base)) out.push_back(std::move(f));
  for (auto&& f : check_invariants(cfg, el, base)) out.push_back(std::move(f));
  for (auto&& f : check_recovery(cfg, base)) out.push_back(std::move(f));
  for (auto&& f : check_stream(cfg, el, base)) out.push_back(std::move(f));
  if (!opts.with_identity) return out;

  // Async flip: chunked nonblocking exchanges are documented bit-identical.
  {
    CheckConfig v = cfg;
    v.async = !cfg.async;
    v.chunk = v.async ? 2 : 1;
    check_variant(out, "async-flip", base, v, 0.0, false, true);
  }
  // Thread flip: the worker pool's chunk boundaries and ordered commits
  // make every kernel bit-identical for any thread count.
  {
    CheckConfig v = cfg;
    v.thr = cfg.thr > 1 ? 1 : 4;
    check_variant(out, "thread-flip", base, v, 0.0, false, true);
  }
  // Policy flip: collective selection changes modeled time only
  // (docs/TUNING.md), so the opposite policy must answer bit-identically.
  {
    CheckConfig v = cfg;
    v.pol = cfg.pol == "adaptive" ? "fixed" : "adaptive";
    check_variant(out, "policy-flip", base, v, 0.0, false, true);
  }
  // Fault-free twin: a recovered (or fault-degraded) run must match the
  // clean one bit for bit.
  if (!cfg.faults.empty()) {
    CheckConfig v = cfg;
    v.faults.clear();
    v.fault_seed = 0;
    check_variant(out, "fault-free", base, v, 0.0, false, true);
  }
  // Alternate grid: transposed (or flattened-to-row) placement. Integer
  // state in original positions is placement-independent; PageRank moves
  // within float tolerance (different reduction order); LP is excluded —
  // its tie-breaks are functions of the striping, which changes with the
  // row count.
  if (cfg.algo != "lp") {
    CheckConfig v = cfg;
    if (cfg.rows != cfg.cols) {
      v.rows = cfg.cols;
      v.cols = cfg.rows;
    } else if (cfg.ranks() > 1) {
      v.rows = 1;
      v.cols = cfg.ranks();
    }
    if (v.rows != cfg.rows || v.cols != cfg.cols) {
      check_variant(out, "grid", base, v, 1e-9, true, false);
    }
  }
  // Serve vs direct: the Service's coalesced multi-source batch must
  // answer exactly what a direct msbfs over the same sources answers.
  if (cfg.serve_batch > 0) {
    CheckConfig v = cfg;
    v.serve_batch = 0;
    v.algo = "msbfs";
    check_variant(out, "serve-vs-direct", base, v, 0.0, false, true);
  }
  return out;
}

SweepResult fuzz_sweep(const FuzzOptions& opts) { return run_all(nullptr, opts); }

SweepResult replay(const std::vector<CheckConfig>& configs, const FuzzOptions& opts) {
  return run_all(&configs, opts);
}

std::vector<CheckConfig> read_corpus(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read corpus file: " + path);
  std::vector<CheckConfig> out;
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    out.push_back(CheckConfig::parse(line));
  }
  return out;
}

void append_corpus(const std::string& path, const CheckConfig& config,
                   const std::string& comment) {
  std::ofstream out(path, std::ios::app);
  if (!out) throw std::runtime_error("cannot write corpus file: " + path);
  if (!comment.empty()) out << "# " << comment << "\n";
  out << config.to_string() << "\n";
}

}  // namespace hpcg::check

#include "check/runner.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <stdexcept>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/gather.hpp"
#include "algos/label_prop.hpp"
#include "algos/msbfs.hpp"
#include "algos/pagerank.hpp"
#include "algos/reference.hpp"
#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "serve/supervisor.hpp"
#include "stream/mutation_log.hpp"
#include "tune/calibration.hpp"

namespace hpcg::check {

namespace {

using core::Dist2DGraph;
using core::Grid;
using graph::EdgeList;

bool has_kill_fault(const std::string& faults) {
  return faults.find("crash") != std::string::npos ||
         faults.find("silent") != std::string::npos;
}

/// Wall-clock deadline for silent-death configs: the default 10 s per
/// blocked wait would dominate a sweep, and virtual time is unaffected.
double timeout_for(const CheckConfig& cfg) {
  return cfg.faults.find("silent") != std::string::npos ? 1.0 : 0.0;
}

/// pol=adaptive attaches the topology-derived reference calibration; every
/// oracle comparison then doubles as a check of the policy's bit-identity
/// invariant (results may never depend on the selected algorithm).
comm::CollectivePolicy policy_for(const CheckConfig& cfg) {
  if (cfg.pol != "adaptive") return {};
  return tune::reference_calibration(comm::Topology::aimos(cfg.ranks()))
      .to_policy();
}

std::vector<std::int64_t> to_reference_levels(std::vector<std::int64_t> striped,
                                              const graph::StripedRelabel& relabel) {
  std::vector<std::int64_t> out(striped.size());
  for (std::size_t v = 0; v < out.size(); ++v) {
    const auto s = striped[static_cast<std::size_t>(relabel.to_new(static_cast<Gid>(v)))];
    out[v] = s >= algos::BfsResult::kUnvisited ? -1 : s;
  }
  return out;
}

template <class T>
std::vector<T> to_original_order(std::vector<T> striped,
                                 const graph::StripedRelabel& relabel) {
  std::vector<T> out(striped.size());
  for (std::size_t v = 0; v < out.size(); ++v) {
    out[v] = striped[static_cast<std::size_t>(relabel.to_new(static_cast<Gid>(v)))];
  }
  return out;
}

/// SPMD body shared by the direct and recovery paths; rank 0 deposits the
/// gathered (striped-indexed) results into `out`, converted afterwards.
void run_algo(const CheckConfig& cfg, Canary canary, Dist2DGraph& g,
              fault::Checkpointer* ckpt, RunResult& out,
              const graph::StripedRelabel& relabel) {
  const bool is_root = g.world().rank() == 0;
  if (is_root) {
    // A recovery restart re-enters this body; drop any partial deposit
    // from the failed attempt.
    out.levels.clear();
    out.ms_levels.clear();
    out.rank.clear();
    out.component.clear();
    out.lp_label.clear();
  }
  if (cfg.algo == "bfs") {
    auto res = algos::bfs(g, cfg.root, {}, ckpt);
    auto levels = algos::gather_row_state<std::int64_t>(g, res.level);
    if (is_root) out.levels = to_reference_levels(std::move(levels), relabel);
  } else if (cfg.algo == "msbfs") {
    auto res = algos::multi_source_bfs(g, cfg.sources);
    for (auto& lvl : res.level) {
      auto levels = algos::gather_row_state<std::int64_t>(g, lvl);
      if (is_root) {
        out.ms_levels.push_back(to_reference_levels(std::move(levels), relabel));
      }
    }
  } else if (cfg.algo == "pr") {
    auto res = algos::pagerank(g, cfg.iterations, 0.85, {}, ckpt);
    auto rank = algos::gather_row_state<double>(g, res);
    if (is_root) out.rank = to_original_order(std::move(rank), relabel);
  } else if (cfg.algo == "prwarm") {
    // k cold iterations, then continue warm for the rest: must be
    // bit-identical to running all iterations cold.
    auto state = algos::pagerank(g, cfg.warm_split, 0.85, {}, nullptr);
    auto res = algos::pagerank_warm_start(g, std::move(state),
                                          cfg.iterations - cfg.warm_split, 0.85);
    auto rank = algos::gather_row_state<double>(g, res);
    if (is_root) out.rank = to_original_order(std::move(rank), relabel);
  } else if (cfg.algo == "cc") {
    auto res = algos::connected_components(g, {}, ckpt);
    auto label = algos::gather_row_state<Gid>(g, res.label);
    if (is_root) out.component = to_original_order(std::move(label), relabel);
  } else if (cfg.algo == "lp") {
    const int iters =
        canary == Canary::kLpStaleIteration ? cfg.iterations - 1 : cfg.iterations;
    auto res = algos::label_propagation(
        g, iters, {}, canary == Canary::kLpRestartFromZero ? nullptr : ckpt);
    auto label = algos::gather_row_state<std::uint64_t>(g, res.label);
    if (is_root) {
      out.lp_label = to_original_order(std::move(label), relabel);
      out.lp_total_updates = res.total_updates;
    }
  } else {
    throw std::invalid_argument("unknown algo: " + cfg.algo);
  }
}

void run_serve_path(const CheckConfig& cfg, const EdgeList& el, RunResult& out) {
  fault::FaultInjector injector(fault::FaultPlan::parse(cfg.faults, cfg.fault_seed),
                                cfg.ranks());
  serve::SessionOptions sopts;
  sopts.faults = cfg.faults.empty() ? nullptr : &injector;
  sopts.comm_timeout_s = timeout_for(cfg);
  sopts.async = cfg.async;
  sopts.async_chunk = cfg.chunk;
  sopts.kernel.threads = cfg.thr;
  sopts.policy = policy_for(cfg);
  serve::Session session(el, Grid(cfg.rows, cfg.cols), sopts);

  serve::ServiceOptions vopts;
  vopts.max_batch = cfg.serve_batch;
  vopts.auto_dispatch = false;
  vopts.kernel.threads = cfg.thr;
  serve::Service service(session, vopts);

  std::vector<serve::Service::Ticket> tickets;
  tickets.reserve(cfg.sources.size());
  for (const Gid root : cfg.sources) {
    serve::Request req;
    req.algo = serve::Algo::kBfs;
    req.roots = {root};
    tickets.push_back(service.submit(std::move(req)));
  }
  while (service.pump()) {
  }
  for (auto& ticket : tickets) {
    const serve::Response res = ticket.result.get();
    std::vector<std::int64_t> levels = res.levels.at(0);  // original-id order
    for (auto& l : levels) {
      if (l >= serve::Response::kUnvisited) l = -1;
    }
    out.ms_levels.push_back(std::move(levels));
  }
  service.stop();
  session.close();
}

// Converts one completed query response into the per-epoch record the
// stream oracle replays against its host mirror.
RunResult::EpochResult to_epoch_result(const CheckConfig& cfg,
                                       const serve::Response& res) {
  RunResult::EpochResult e;
  e.epoch = res.epoch;
  e.incremental = res.incremental;
  if (cfg.algo == "bfs") {
    e.levels = res.levels.at(0);  // original-id order
    for (auto& l : e.levels) {
      if (l >= serve::Response::kUnvisited) l = -1;
    }
  } else if (cfg.algo == "pr") {
    e.rank = res.rank;
  } else {
    e.component = res.component;
  }
  return e;
}

void run_stream_path(const CheckConfig& cfg, const EdgeList& el, RunResult& out) {
  fault::FaultInjector injector(fault::FaultPlan::parse(cfg.faults, cfg.fault_seed),
                                cfg.ranks());
  serve::SessionOptions sopts;
  sopts.faults = cfg.faults.empty() ? nullptr : &injector;
  sopts.comm_timeout_s = timeout_for(cfg);
  sopts.async = cfg.async;
  sopts.async_chunk = cfg.chunk;
  sopts.kernel.threads = cfg.thr;
  sopts.policy = policy_for(cfg);

  // sup=N routes the same request stream through a serve::Supervisor
  // instead of a bare Session + Service: kill faults become survivable —
  // the supervisor rebuilds from its committed log and the stream oracle
  // still demands bit-identical answers at every epoch (docs/RECOVERY.md).
  // Inline recovery (auto_recover = false) keeps the run deterministic:
  // rebuilds happen inside pump(), never on a background thread.
  std::unique_ptr<serve::Session> session;
  std::unique_ptr<serve::Service> service;
  std::unique_ptr<serve::Supervisor> supervisor;
  serve::Frontend* frontend = nullptr;
  if (cfg.sup > 0) {
    serve::SupervisorOptions uopts;
    uopts.session = sopts;
    uopts.service.auto_dispatch = false;
    uopts.service.kernel.threads = cfg.thr;
    uopts.auto_recover = false;
    uopts.max_restarts = cfg.sup;
    uopts.backoff_base_s = 0.0;
    uopts.snapshot_every = 2;  // exercise snapshot-restore, not just base replay
    supervisor = std::make_unique<serve::Supervisor>(el, Grid(cfg.rows, cfg.cols),
                                                     uopts);
    frontend = supervisor.get();
  } else {
    session = std::make_unique<serve::Session>(el, Grid(cfg.rows, cfg.cols), sopts);
    serve::ServiceOptions vopts;
    vopts.auto_dispatch = false;
    vopts.kernel.threads = cfg.thr;
    service = std::make_unique<serve::Service>(*session, vopts);
    frontend = service.get();
  }

  const auto query = [&] {
    serve::Request req;
    if (cfg.algo == "bfs") {
      req.algo = serve::Algo::kBfs;
      req.roots = {cfg.root};
    } else if (cfg.algo == "pr") {
      // Tolerance solve, not fixed-iteration: the incremental path seeds
      // delta-PageRank from the resident ranks, and both converge to the
      // same fixpoint the oracle's sequential tolerance solver finds.
      req.algo = serve::Algo::kPageRank;
      req.tolerance = 1e-12;
      req.iterations = 1000;  // cap, never the stop condition at this tol
    } else {
      req.algo = serve::Algo::kCc;
    }
    return frontend->submit(std::move(req));
  };
  const auto drain = [&] {
    while (frontend->pump()) {
    }
  };
  int seen_restarts = 0;
  const auto recovered_since_last = [&] {
    if (!supervisor) return false;
    const int now = supervisor->restarts();
    const bool recovered = now > seen_restarts;
    seen_restarts = now;
    return recovered;
  };

  // The runner's own live-edge mirror: delete picks in generate_ops aim
  // at edges that exist *now*, so delete batches actually delete. The
  // oracle rebuilds the identical mirror from (mut_seed, batch index).
  EdgeList mirror = el;

  auto first = query();
  drain();
  out.epochs.push_back(to_epoch_result(cfg, first.result.get()));
  out.epochs.back().recovered = recovered_since_last();

  for (int b = 0; b < cfg.mut_batches; ++b) {
    serve::Request mreq;
    mreq.algo = serve::Algo::kMutate;
    mreq.ops = stream::generate_ops(cfg.mut_seed, static_cast<std::uint64_t>(b),
                                    cfg.mut_ops, cfg.mut_delete_pct, el.n,
                                    &mirror);
    stream::apply_to_edge_list(mirror, mreq.ops);
    auto mticket = frontend->submit(std::move(mreq));
    auto qticket = query();
    drain();
    const serve::Response mres = mticket.result.get();
    auto e = to_epoch_result(cfg, qticket.result.get());
    e.inserted = mres.edges_inserted;
    e.deleted = mres.edges_deleted;
    e.recovered = recovered_since_last();
    out.epochs.push_back(std::move(e));
  }

  // Mirror entry 0 into the top-level vectors so the reference and
  // invariant oracles check the pre-mutation answer as usual.
  out.levels = out.epochs.front().levels;
  out.rank = out.epochs.front().rank;
  out.component = out.epochs.front().component;

  out.serve_restarts = supervisor ? supervisor->restarts() : 0;
  out.kill_faults_fired = static_cast<int>(
      injector.fired(fault::FaultKind::kCrash) +
      injector.fired(fault::FaultKind::kSilent));

  if (supervisor) {
    supervisor->stop();
  } else {
    service->stop();
    session->close();
  }
}

void apply_canary(Canary canary, const CheckConfig& cfg, RunResult& out) {
  switch (canary) {
    case Canary::kNone:
    case Canary::kLpStaleIteration:
    case Canary::kLpRestartFromZero:
      return;  // engine-level canaries were applied before/during the run
    case Canary::kBfsLevelOffByOne:
      for (auto& l : out.levels) {
        if (l >= 1) {
          ++l;
          return;
        }
      }
      return;
    case Canary::kBfsDropReached:
      for (auto& l : out.levels) {
        if (l >= 1) {
          l = -1;
          return;
        }
      }
      return;
    case Canary::kPrMassLeak:
      if (!out.rank.empty()) out.rank[out.rank.size() / 2] *= 0.999;
      return;
    case Canary::kCcSplitLabel: {
      const auto el = build_input(cfg);
      if (!el.edges.empty()) {
        const Gid v = el.edges.front().u;
        out.component[static_cast<std::size_t>(v)] = cfg.n() + v;
      }
      return;
    }
    case Canary::kMsBfsCrossTalk:
      if (out.ms_levels.size() >= 2) out.ms_levels[1] = out.ms_levels[0];
      return;
    case Canary::kStreamStaleResult:
      // The bug epoch versioning exists to prevent: the final query comes
      // back with the pre-mutation payload (epoch, counts and all), as a
      // stale-cache hit would.
      if (out.epochs.size() >= 2) out.epochs.back() = out.epochs.front();
      return;
    case Canary::kHalfAppliedCommit: {
      // The bug transactional commits (stage-then-swap) exist to prevent:
      // a fault mid-exchange leaves half the final batch applied, yet the
      // response still claims the full batch (epoch, inserted, deleted).
      // Recompute the final answer on the torn graph; the stream oracle's
      // host-mirror replay must notice the payload no longer matches the
      // claimed epoch.
      if (cfg.mut_batches < 1 || cfg.algo != "bfs" || out.epochs.size() < 2) {
        return;
      }
      EdgeList torn = build_input(cfg);
      for (int b = 0; b < cfg.mut_batches; ++b) {
        auto ops = stream::generate_ops(cfg.mut_seed, static_cast<std::uint64_t>(b),
                                        cfg.mut_ops, cfg.mut_delete_pct, torn.n,
                                        &torn);
        if (b + 1 == cfg.mut_batches) ops.resize(ops.size() / 2);
        stream::apply_to_edge_list(torn, ops);
      }
      const graph::Csr csr(torn.n, torn.edges);
      out.epochs.back().levels = algos::ref::bfs_levels(csr, cfg.root);
      return;
    }
  }
}

}  // namespace

const char* to_string(Canary canary) {
  switch (canary) {
    case Canary::kNone: return "none";
    case Canary::kBfsLevelOffByOne: return "bfs-level-off-by-one";
    case Canary::kBfsDropReached: return "bfs-drop-reached";
    case Canary::kPrMassLeak: return "pr-mass-leak";
    case Canary::kCcSplitLabel: return "cc-split-label";
    case Canary::kLpStaleIteration: return "lp-stale-iteration";
    case Canary::kMsBfsCrossTalk: return "msbfs-cross-talk";
    case Canary::kLpRestartFromZero: return "lp-restart-from-zero";
    case Canary::kStreamStaleResult: return "stream-stale-result";
    case Canary::kHalfAppliedCommit: return "half-applied-commit";
  }
  return "?";
}

EdgeList build_input(const CheckConfig& cfg) {
  EdgeList el;
  if (cfg.gen == "rmat") {
    graph::RmatParams params;
    params.scale = cfg.scale;
    params.edge_factor = cfg.edge_factor;
    params.seed = cfg.seed;
    el = graph::generate_rmat(params);
  } else if (cfg.gen == "er") {
    el = graph::generate_erdos_renyi(
        cfg.n(), static_cast<std::int64_t>(cfg.edge_factor) * cfg.n(), cfg.seed);
  } else if (cfg.gen == "ba") {
    el = graph::generate_pref_attach(cfg.n(), std::max(1, cfg.edge_factor / 2),
                                     0.7, cfg.seed);
  } else {
    throw std::invalid_argument("unknown generator: " + cfg.gen);
  }
  graph::remove_self_loops(el);
  graph::symmetrize(el);
  return el;
}

std::string path_for(const CheckConfig& cfg) {
  if (cfg.mut_batches > 0) return "stream";
  if (cfg.serve_batch > 0) return "serve";
  if (has_kill_fault(cfg.faults) || cfg.checkpoint_every > 0) return "recovery";
  return "direct";
}

RunResult run_config(const CheckConfig& cfg, Canary canary) {
  if (cfg.root < 0 || cfg.root >= cfg.n()) {
    throw std::invalid_argument("root out of range");
  }
  if (cfg.algo == "prwarm" &&
      (cfg.warm_split < 1 || cfg.warm_split >= cfg.iterations)) {
    throw std::invalid_argument("warm split must be in [1, iters)");
  }
  if ((cfg.algo == "msbfs" || cfg.serve_batch > 0) && cfg.sources.empty()) {
    throw std::invalid_argument(cfg.algo + " needs sources");
  }
  if (cfg.sup > 0 && cfg.mut_batches == 0) {
    throw std::invalid_argument("sup= requires mut=");
  }
  if (cfg.mut_batches > 0) {
    // Streaming runs live inside one serve session: checkpoint/restart
    // has no meaning there and the batched serve path has its own driver.
    // Kill faults need a recovery story — a serve::Supervisor (sup=N).
    if (cfg.algo != "bfs" && cfg.algo != "pr" && cfg.algo != "cc") {
      throw std::invalid_argument("mut= requires algo bfs|pr|cc");
    }
    if (cfg.serve_batch > 0 || cfg.checkpoint_every > 0) {
      throw std::invalid_argument("mut= is incompatible with serve= and ckpt=");
    }
    if (has_kill_fault(cfg.faults) && cfg.sup == 0) {
      throw std::invalid_argument(
          "mut= with kill faults requires supervision (sup=)");
    }
  }

  const EdgeList el = build_input(cfg);
  const Grid grid(cfg.rows, cfg.cols);
  const graph::StripedRelabel relabel(el.n, grid.row_groups());

  RunResult out;
  out.path = path_for(cfg);
  if (out.path == "stream") {
    run_stream_path(cfg, el, out);
    apply_canary(canary, cfg, out);
    return out;
  }
  if (out.path == "serve") {
    run_serve_path(cfg, el, out);
    apply_canary(canary, cfg, out);
    return out;
  }

  const auto parts = core::Partitioned2D::build(el, grid);
  fault::FaultInjector injector(fault::FaultPlan::parse(cfg.faults, cfg.fault_seed),
                                cfg.ranks());
  fault::FaultInjector* hooks = cfg.faults.empty() ? nullptr : &injector;

  if (out.path == "recovery") {
    fault::RecoveryOptions ropts;
    ropts.injector = hooks;
    ropts.checkpoint_every = cfg.checkpoint_every;
    ropts.comm_timeout_s = timeout_for(cfg);
    ropts.async = cfg.async;
    ropts.async_chunk = cfg.chunk;
    ropts.kernel.threads = cfg.thr;
    ropts.policy = policy_for(cfg);
    const auto rec = fault::Runtime::run_with_recovery(
        cfg.ranks(), comm::Topology::aimos(cfg.ranks()), comm::CostModel{}, ropts,
        [&](comm::Comm& comm, fault::Checkpointer& ckpt) {
          Dist2DGraph g(comm, parts);
          run_algo(cfg, canary, g, &ckpt, out, relabel);
        });
    out.restarts = rec.restarts;
    out.checkpoints_committed = rec.checkpoints_committed;
    out.resume_epochs = rec.resume_epochs;
  } else {
    comm::RunOptions opts;
    opts.faults = hooks;
    opts.comm_timeout_s = timeout_for(cfg);
    opts.async = cfg.async;
    opts.async_chunk = cfg.chunk;
    opts.kernel.threads = cfg.thr;
    opts.policy = policy_for(cfg);
    comm::Runtime::run(cfg.ranks(), comm::Topology::aimos(cfg.ranks()),
                       comm::CostModel{}, opts, [&](comm::Comm& comm) {
                         Dist2DGraph g(comm, parts);
                         run_algo(cfg, canary, g, nullptr, out, relabel);
                       });
  }
  apply_canary(canary, cfg, out);
  return out;
}

}  // namespace hpcg::check

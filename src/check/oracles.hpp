// The three oracle families of the differential checker (docs/CHECKING.md):
//
//  1. Reference equality — the distributed answer must equal the
//     single-threaded algos/reference implementation (exactly for integer
//     state; within 1e-9 for PageRank, whose summation order differs).
//     LP labels live in STRIPED id space (the mode tie-break depends on
//     the relabeling), so its reference runs on the striped edge list.
//  2. Metamorphic invariants — properties any correct answer satisfies
//     without knowing the right one: BFS edge relaxation (adjacent levels
//     differ by at most one, reachability is connected-closed), PageRank
//     mass bounds, CC edge-consistency and label fixpoints.
//  3. Identity — independently produced answers for the same input must
//     agree: across sync/async, across fault-free vs recovered, across
//     grid shapes (CC via min-original-member normalization, PR within
//     float tolerance, LP skipped — striping changes its tie-breaks),
//     and across the direct vs serving path.
//
// Plus the recovery oracle: a restarted run with checkpointing enabled
// must have resumed from a committed epoch, never silently from scratch.
// And the stream oracle: incremental maintenance under a seeded mutation
// stream must match a from-scratch reference on a host-mirrored edge list
// after every batch (bit-identically for BFS/CC, within 1e-9 for PR).
#pragma once

#include <string>
#include <vector>

#include "check/config.hpp"
#include "check/runner.hpp"

namespace hpcg::check {

struct Failure {
  std::string oracle;  // "reference" | "invariant" | "recovery" | "identity:<variant>"
  std::string detail;
};

/// Oracle 1: compare against algos/reference on the same input.
std::vector<Failure> check_reference(const CheckConfig& cfg,
                                     const graph::EdgeList& el,
                                     const RunResult& result);

/// Oracle 2: self-evident properties of the answer.
std::vector<Failure> check_invariants(const CheckConfig& cfg,
                                      const graph::EdgeList& el,
                                      const RunResult& result);

/// Recovery accounting: restarts with checkpointing on must resume from
/// committed epochs (catches checkpoint-less replay-from-zero wiring).
std::vector<Failure> check_recovery(const CheckConfig& cfg, const RunResult& result);

/// Oracle 5 (streaming): replays the config's seeded mutation stream on a
/// sequential host mirror and demands the engine agree after EVERY batch —
/// epoch numbers and insert/delete counts exactly, BFS levels and
/// normalized CC labels bit-identically against a from-scratch reference
/// on the mutated mirror, PageRank within 1e-9 of a sequential tolerance
/// solve. Also pins the incremental-vs-fallback decision: structural
/// deletes must fall back, everything else must take the incremental
/// path. No-op for non-stream paths.
std::vector<Failure> check_stream(const CheckConfig& cfg,
                                  const graph::EdgeList& el,
                                  const RunResult& result);

/// Oracle 3: `variant` (an independently executed run of the same input)
/// must agree with `base`. `pr_tolerance` > 0 compares PageRank within
/// that bound instead of exactly; `normalize_cc` canonicalizes CC labels
/// to min-original-member first (required across grids); `compare_lp`
/// turns off for cross-grid variants.
std::vector<Failure> check_identity(const std::string& variant,
                                    const RunResult& base, const RunResult& other,
                                    double pr_tolerance = 0.0,
                                    bool normalize_cc = false,
                                    bool compare_lp = true);

/// Canonical CC labels: each vertex maps to the smallest ORIGINAL id in
/// its (raw-label) class. Makes labelings comparable across grids and
/// against the union-find reference.
std::vector<Gid> normalize_components(const std::vector<Gid>& raw);

}  // namespace hpcg::check
